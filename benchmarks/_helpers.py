"""Importable benchmark helpers (budget profile and network selection).

Kept separate from ``benchmarks/conftest.py`` for the same reason as
``tests/_helpers.py``: two ``conftest.py`` files exist in this repo, so a
bare ``from conftest import ...`` resolves to whichever directory landed
on ``sys.path`` first.  Benchmarks import these helpers unambiguously as
``from benchmarks._helpers import ...``; the conftest defines fixtures
only.
"""

from __future__ import annotations

import os

from repro.experiments.common import ExperimentProfile

#: Benchmark-sized budget: one seed, short sweep, small eval set.
BENCH_PROFILE = ExperimentProfile(
    name="bench",
    eval_samples=60,
    calib_samples=96,
    seeds=(0,),
    batch_size=60,
    ber_grid=(3e-7, 1e-6, 3e-6, 1e-5, 3e-5),
    train_epochs=8,
)


def bench_networks() -> tuple[str, ...]:
    """Networks swept by the multi-network figures."""
    if os.environ.get("REPRO_BENCH_ALL"):
        return ("densenet169", "resnet50", "vgg19", "googlenet")
    return ("vgg19", "googlenet")
