"""Ablation benches for design choices DESIGN.md calls out.

* Winograd tile size F(2,3) vs F(4,3): larger tiles cut multiplications
  further (36 vs 16 per 4 outputs -> 2.25x vs 4x) but grow the transform
  add census and the transformed-domain dynamic range.
* Systolic dataflow (WS/OS/IS): runtime of both execution modes under each.
"""

from repro.accel import ArrayConfig, Dataflow, simulate_network
from repro.experiments.common import prepare_benchmark, quantized_pair
from repro.faultsim import CampaignConfig, run_point


def test_ablation_winograd_tile(benchmark, profile):
    def run():
        prep = prepare_benchmark("vgg19", profile)
        x = prep.eval_x[: profile.eval_samples]
        y = prep.eval_y[: profile.eval_samples]
        ber = 1e-5
        out = {}
        for tile in (2, 4):
            _, qm_wg = quantized_pair(prep, 16, profile, wg_tile=tile)
            config = CampaignConfig(
                seeds=profile.seeds, batch_size=profile.batch_size,
                max_samples=profile.eval_samples,
            )
            point = run_point(qm_wg, x, y, ber, config)
            counts = qm_wg.total_op_counts()
            out[tile] = {
                "accuracy": point.mean_accuracy,
                "muls": counts.muls,
                "adds": counts.adds,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Winograd tile ablation @ BER 1e-5 (VGG19 int16)")
    print(f"{'tile':>6} {'accuracy':>9} {'muls':>12} {'adds':>12}")
    for tile, row in results.items():
        print(f"F({tile},3) {row['accuracy']:>9.3f} {row['muls']:>12,} {row['adds']:>12,}")
    assert results[4]["muls"] < results[2]["muls"]


def test_ablation_dataflow(benchmark, profile):
    def run():
        prep = prepare_benchmark("vgg19", profile)
        qm_st, qm_wg = quantized_pair(prep, 16, profile)
        out = {}
        for dataflow in Dataflow.ALL:
            config = ArrayConfig(rows=16, cols=16, dataflow=dataflow)
            out[dataflow] = {
                "standard": simulate_network(qm_st, config, batch=16).total_cycles,
                "winograd": simulate_network(qm_wg, config, batch=16).total_cycles,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Dataflow ablation (VGG19 int16, 16x16 array, batch 16)")
    print(f"{'dataflow':>9} {'ST cycles':>12} {'WG cycles':>12} {'speedup':>8}")
    for dataflow, row in results.items():
        speedup = row["standard"] / row["winograd"]
        print(
            f"{dataflow:>9} {row['standard']:>12,} {row['winograd']:>12,} "
            f"{speedup:>8.2f}"
        )
        assert row["winograd"] < row["standard"]
