"""Ablation: how the paper's conclusions depend on fault-model choices.

Two knobs of :class:`repro.faultsim.FaultModelConfig` are swept at one
operating point of VGG19 int16:

* ``semantics`` — PAPER (2W-bit product-result registers) vs RESULT_ALL
  (multiplications flip the same registers as additions).  The Winograd
  advantage should shrink under RESULT_ALL: with symmetric per-op damage,
  executing fewer multiplications buys much less.
* ``amplify_input_transform_adds`` — physically-faithful weight-amplified
  fan-out for Winograd input-transform faults.  This *hurts* Winograd
  (extra vulnerable state the paper's model does not charge), quantifying
  the sensitivity of the headline result to that modeling choice.
"""

from repro.experiments.common import prepare_benchmark, quantized_pair
from repro.faultsim import CampaignConfig, FaultModelConfig, FaultSemantics, run_point


def test_ablation_fault_semantics(benchmark, profile):
    def run():
        prep = prepare_benchmark("vgg19", profile)
        qm_st, qm_wg = quantized_pair(prep, 16, profile)
        x = prep.eval_x[: profile.eval_samples]
        y = prep.eval_y[: profile.eval_samples]
        ber = 1e-5
        out = {}
        variants = {
            "paper": FaultModelConfig(),
            "result_all": FaultModelConfig(semantics=FaultSemantics.RESULT_ALL),
            "amplified_input_adds": FaultModelConfig(
                amplify_input_transform_adds=True
            ),
        }
        for name, fc in variants.items():
            config = CampaignConfig(
                seeds=profile.seeds,
                batch_size=profile.batch_size,
                fault_config=fc,
                max_samples=profile.eval_samples,
            )
            st = run_point(qm_st, x, y, ber, config)
            wg = run_point(qm_wg, x, y, ber, config)
            out[name] = {
                "st": st.mean_accuracy,
                "wg": wg.mean_accuracy,
                "gap": wg.mean_accuracy - st.mean_accuracy,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Fault-model ablation @ BER 1e-5 (VGG19 int16)")
    print(f"{'variant':>22} {'ST':>7} {'WG':>7} {'WG-ST':>7}")
    for name, row in results.items():
        print(f"{name:>22} {row['st']:>7.3f} {row['wg']:>7.3f} {row['gap']:>+7.3f}")
    # The paper-semantics Winograd advantage must exceed the symmetric one.
    assert results["paper"]["gap"] >= results["result_all"]["gap"] - 0.05
