"""Benchmarks the parallel campaign engine against serial execution.

Acceptance targets on a >= 4-core machine with 4 workers (each assertion
is skipped on machines without enough cores, where forked workers just
time-slice one CPU; bit-identity is asserted unconditionally):

* a >= 8-unit sweep through :class:`repro.runtime.CampaignEngine`
  completes at least 2x faster than the serial path;
* the TMR planner's task-batch workload (seed-sharded candidate
  evaluations + speculative lookahead) iterates at least 1.5x faster
  than the serial planner, with identical planning results;
* the sample-sharding workload — a *single* (BER, seed) point under the
  counter RNG scheme, split into sample slices — completes at least
  1.5x faster with 4 workers than the unsharded run, bit-identically;
* the replay workload — a low-BER sweep plus a planner-style batch of
  protection-plan candidates, where most samples are untouched by
  faults — completes at least 3x faster through a
  ``CampaignEngine(replay=True)`` golden-run cache than through the same
  engine without it (golden-build time included), bit-identically.

The distributed work-queue backend is also measured against the pool on
the same sweep; it is gated on bit-identity only (single-host runs pay
subprocess + SQLite coordination overhead by design).

Run standalone for a timing report::

    PYTHONPATH=src python benchmarks/bench_campaign_engine.py [workers]

Pass ``--json PATH`` to also write the stats as a JSON document (CI
uploads this as a build artifact)::

    PYTHONPATH=src python benchmarks/bench_campaign_engine.py 2 --json bench.json
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.datasets import DatasetSpec, make_dataset
from repro.faultsim import (
    CampaignConfig,
    FaultModelConfig,
    ProtectionPlan,
    run_point,
    run_sweep,
)
from repro.nn import GraphBuilder, initialize
from repro.quantized import QuantConfig, quantize_model
from repro.runtime import CampaignEngine, TaskSpec, resolve_workers

#: 4 BERs x 2 seeds = 8 independent (BER, seed) units.
BERS = (1e-6, 3e-6, 1e-5, 3e-5)
SEEDS = (0, 1)


def build_workload():
    """A mid-sized quantized CNN + data sized so one unit takes ~0.5 s."""
    b = GraphBuilder("benchcnn", input_shape=(3, 16, 16))
    x = b.conv2d(b.input_node, 16, kernel=3, padding=1, name="c1")
    x = b.relu(x, name="r1")
    x = b.conv2d(x, 24, kernel=3, padding=1, name="c2")
    x = b.relu(x, name="r2")
    x = b.maxpool2d(x, kernel=2, stride=2, name="p1")
    x = b.conv2d(x, 32, kernel=3, padding=1, name="c3")
    x = b.relu(x, name="r3")
    x = b.globalavgpool(x, name="gap")
    x = b.flatten(x, name="fl")
    graph = b.output(b.linear(x, 8, name="fc"))
    initialize(graph, 0)

    spec = DatasetSpec(name="bench", classes=8, image_size=16, noise=0.3, seed=3)
    dataset = make_dataset(spec, train_per_class=16, test_per_class=24)
    qmodel = quantize_model(
        graph, dataset.train_x[:96], QuantConfig(width=16), "winograd"
    )
    config = CampaignConfig(seeds=SEEDS, batch_size=64, max_samples=192)
    return qmodel, dataset.test_x, dataset.test_y, config


def run_comparison(workers: int = 4) -> dict:
    """Time serial vs engine execution of the same sweep; verify identity."""
    qmodel, x, y, config = build_workload()
    bers = list(BERS)

    start = time.perf_counter()
    serial = run_sweep(qmodel, x, y, bers, config=config)
    serial_seconds = time.perf_counter() - start

    engine = CampaignEngine(workers=workers)
    start = time.perf_counter()
    parallel = engine.run_sweep(qmodel, x, y, bers, config=config)
    engine_seconds = time.perf_counter() - start

    identical = [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]
    return {
        "units": len(bers) * len(config.seeds),
        "workers": engine.workers,
        "available_cores": resolve_workers(0),
        "serial_seconds": serial_seconds,
        "engine_seconds": engine_seconds,
        "speedup": serial_seconds / engine_seconds if engine_seconds else float("inf"),
        "bit_identical": identical,
    }


def run_task_batch_comparison(workers: int = 4) -> dict:
    """Time the Fig. 3-style protected-task batch: serial engine vs workers.

    Exercises :meth:`CampaignEngine.evaluate_tasks` with a distinct
    protection plan per task group (the layer-vulnerability workload),
    which the sweep benchmark above cannot reach.
    """
    from repro.analysis import layer_vulnerability

    qmodel, x, y, config = build_workload()
    ber = BERS[2]

    start = time.perf_counter()
    serial = layer_vulnerability(qmodel, x, y, ber, config=config)
    serial_seconds = time.perf_counter() - start

    engine = CampaignEngine(workers=workers)
    start = time.perf_counter()
    parallel = layer_vulnerability(qmodel, x, y, ber, config=config, engine=engine)
    engine_seconds = time.perf_counter() - start

    return {
        "units": engine.last_stats.total_units,
        "workers": engine.workers,
        "serial_seconds": serial_seconds,
        "engine_seconds": engine_seconds,
        "speedup": serial_seconds / engine_seconds if engine_seconds else float("inf"),
        "bit_identical": parallel.to_dict() == serial.to_dict(),
    }


def run_planner_comparison(workers: int = 4) -> dict:
    """Time the Fig. 5 planner workload: serial vs speculative + sharded.

    The serial side is the paper's heuristic on a workers=1 engine (one
    candidate per iteration, seeds evaluated sequentially).  The engine
    side seed-shards every candidate evaluation *and* speculates
    ``lookahead`` candidates per round, so each round keeps ``workers``
    subtasks in flight.  Planning results must be identical; on a pool
    that can actually run ``workers`` processes the per-iteration
    wall-clock should drop >= 1.5x.

    The benchmark model is untrained (timing is what matters), so the
    accuracy goal is pinned unreachable and the run length fixed by
    ``max_iterations`` — both planners then evaluate exactly the same
    ``ITERATIONS`` candidates, making the timing comparison exact.
    """
    from repro.tmr import plan_tmr

    ITERATIONS = 6
    qmodel, x, y, config = build_workload()
    ber = BERS[3]
    # Rank layers in model order; the exact ranking is irrelevant to the
    # timing comparison as long as both sides share it.
    ranking = [(layer.name, 1.0) for layer in qmodel.injectable_layers()]

    start = time.perf_counter()
    serial = plan_tmr(
        qmodel, x, y, ber, 1.0, ranking, config=config, step=0.25,
        max_iterations=ITERATIONS, engine=CampaignEngine(workers=1),
    )
    serial_seconds = time.perf_counter() - start

    engine = CampaignEngine(workers=workers)
    start = time.perf_counter()
    speculative = plan_tmr(
        qmodel, x, y, ber, 1.0, ranking, config=config, step=0.25,
        max_iterations=ITERATIONS, engine=engine, speculative=True,
    )
    engine_seconds = time.perf_counter() - start

    identical = (
        serial.to_dict() == speculative.to_dict()
        and serial.history == speculative.history
    )
    iterations = max(1, serial.iterations)
    return {
        "iterations": serial.iterations,
        "converged": serial.converged,
        "workers": engine.workers,
        "available_cores": resolve_workers(0),
        "serial_seconds": serial_seconds,
        "engine_seconds": engine_seconds,
        "serial_seconds_per_iteration": serial_seconds / iterations,
        "engine_seconds_per_iteration": engine_seconds / iterations,
        "speedup": serial_seconds / engine_seconds if engine_seconds else float("inf"),
        "identical_results": identical,
    }


def run_sample_shard_comparison(workers: int = 4, shard: int = 24) -> dict:
    """Time one (BER, seed) point: unsharded serial vs sample-sharded pool.

    The single-point case is where seed sharding cannot help (one seed =
    one subtask) and the dominant wall-clock case for ``plan_tmr`` on big
    models.  Sample sharding under the counter RNG scheme splits the
    point's evaluation batch into slices and must stay bit-identical to
    the unsharded run while filling the pool.
    """
    qmodel, x, y, base = build_workload()
    config = CampaignConfig(
        seeds=(0,),
        batch_size=base.batch_size,
        max_samples=base.max_samples,
        fault_config=FaultModelConfig(rng_scheme="counter"),
    )
    ber = BERS[2]

    start = time.perf_counter()
    serial = run_point(qmodel, x, y, ber, config=config)
    serial_seconds = time.perf_counter() - start

    engine = CampaignEngine(workers=workers, sample_shard=shard)
    start = time.perf_counter()
    sharded = engine.run_point(qmodel, x, y, ber, config=config)
    engine_seconds = time.perf_counter() - start

    return {
        "units": engine.last_stats.total_units,
        "shard": shard,
        "workers": engine.workers,
        "available_cores": resolve_workers(0),
        "serial_seconds": serial_seconds,
        "engine_seconds": engine_seconds,
        "speedup": serial_seconds / engine_seconds if engine_seconds else float("inf"),
        "bit_identical": sharded.to_dict() == serial.to_dict(),
    }


def run_replay_comparison(workers: int = 4) -> dict:
    """Time a low-BER sweep + planner candidate batch: replay off vs on.

    The regime the golden-run cache targets: rare Poisson events leave
    most samples bit-identical to the fault-free pass, so the replay
    engine runs one clean forward (shared copy-on-write by the pool and
    by every protection-plan candidate — plans only thin event rates)
    and recomputes just the fault-touched samples of each unit.  Both
    sides use the same worker count; the speedup measures replay alone,
    with the golden build included in the replay side's wall-clock.
    """
    qmodel, x, y, base = build_workload()
    config = CampaignConfig(
        seeds=SEEDS,
        batch_size=base.batch_size,
        max_samples=base.max_samples,
        fault_config=FaultModelConfig(rng_scheme="counter"),
    )
    # Low-BER grid: a handful of events per (BER, seed) unit, so dirty
    # sets stay small.  BER 0 rides along as the pure-lookup case.
    bers = (0.0, 5e-10, 1e-9, 2e-9, 4e-9)
    names = [layer.name for layer in qmodel.injectable_layers()]
    plans = [ProtectionPlan.fault_free_layer(name, names) for name in names]
    tasks = [TaskSpec(ber=ber, seeds=SEEDS) for ber in bers] + [
        TaskSpec(ber=bers[3], seeds=SEEDS, protection=plan) for plan in plans
    ]

    baseline = CampaignEngine(workers=workers)
    start = time.perf_counter()
    base_results = baseline.evaluate_tasks(qmodel, x, y, tasks, config=config)
    baseline_seconds = time.perf_counter() - start

    replaying = CampaignEngine(workers=workers, replay=True)
    start = time.perf_counter()
    replay_results = replaying.evaluate_tasks(qmodel, x, y, tasks, config=config)
    replay_seconds = time.perf_counter() - start

    events = sum(sum(r.events_per_seed) for r in base_results)
    return {
        "units": baseline.last_stats.total_units,
        "workers": replaying.workers,
        "available_cores": resolve_workers(0),
        "events": events,
        "baseline_seconds": baseline_seconds,
        "replay_seconds": replay_seconds,
        "speedup": baseline_seconds / replay_seconds
        if replay_seconds
        else float("inf"),
        "bit_identical": [r.to_dict() for r in base_results]
        == [r.to_dict() for r in replay_results],
    }


def run_distributed_comparison(workers: int = 4) -> dict:
    """Time the same sweep through the pool vs the work-queue backend.

    Measures the distributed backend's coordination overhead (worker
    subprocess startup, SQLite leasing, shard tailing + merge) against
    the fork pool's on the standard 8-unit sweep, and asserts the
    contract that justifies it: bit-identical results.  The distributed
    side is expected to be *slower* on one host — its value is going
    wider than one host — so the interesting numbers are the absolute
    overhead and the identity flag, not a speedup gate.
    """
    import tempfile

    qmodel, x, y, config = build_workload()
    bers = list(BERS)

    pool = CampaignEngine(workers=workers)
    start = time.perf_counter()
    pool_results = pool.run_sweep(qmodel, x, y, bers, config=config)
    pool_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as queue_dir:
        distributed = CampaignEngine(
            workers=workers, backend="distributed", queue_dir=queue_dir
        )
        start = time.perf_counter()
        dist_results = distributed.run_sweep(qmodel, x, y, bers, config=config)
        distributed_seconds = time.perf_counter() - start

    return {
        "units": len(bers) * len(config.seeds),
        "workers": pool.workers,
        "available_cores": resolve_workers(0),
        "pool_seconds": pool_seconds,
        "distributed_seconds": distributed_seconds,
        "overhead_seconds": distributed_seconds - pool_seconds,
        "bit_identical": [r.to_dict() for r in pool_results]
        == [r.to_dict() for r in dist_results],
    }


def run_adaptive_comparison(workers: int = 4) -> dict:
    """Count (seed x point) units: fixed grid at full budget vs early stop.

    The adaptive engine's claim is a *sample-count* saving, not a raw
    speedup: on a low-BER grid, points whose confidence interval settles
    inside the target half-width stop adding seeds, while the fixed grid
    spends ``max_seeds`` everywhere.  Both sides run the same engine and
    worker count; ``saved_ratio`` is the fraction of the fixed grid's
    (seed x point) units the adaptive run never evaluated.
    """
    import dataclasses

    from repro.stats import StopRule, adaptive_sweep, extended_seeds

    qmodel, x, y, base = build_workload()
    config = CampaignConfig(
        seeds=SEEDS,
        batch_size=base.batch_size,
        max_samples=base.max_samples,
        fault_config=FaultModelConfig(rng_scheme="counter"),
    )
    # Low-BER-heavy grid: the regime where points settle early.
    bers = (1e-8, 1e-7) + BERS
    rule = StopRule(halfwidth=0.04, min_seeds=len(SEEDS), max_seeds=6)

    full = dataclasses.replace(
        config, seeds=extended_seeds(SEEDS, rule.max_seeds)
    )
    engine = CampaignEngine(workers=workers)
    start = time.perf_counter()
    engine.run_sweep(qmodel, x, y, list(bers), config=full)
    fixed_seconds = time.perf_counter() - start
    fixed_units = len(bers) * rule.max_seeds

    start = time.perf_counter()
    sweep = adaptive_sweep(
        qmodel, x, y, list(bers), config=config, rule=rule, engine=engine
    )
    adaptive_seconds = time.perf_counter() - start

    return {
        "bers": len(bers),
        "workers": engine.workers,
        "available_cores": resolve_workers(0),
        "halfwidth": rule.halfwidth,
        "max_seeds": rule.max_seeds,
        "fixed_units": fixed_units,
        "adaptive_units": sweep.total_units,
        "stopped_early": sum(1 for p in sweep.points if p.stopped_early),
        "rounds": sweep.rounds,
        "saved_ratio": 1.0 - sweep.total_units / fixed_units,
        "fixed_seconds": fixed_seconds,
        "adaptive_seconds": adaptive_seconds,
        "speedup": fixed_seconds / adaptive_seconds
        if adaptive_seconds
        else float("inf"),
    }


def format_report(stats: dict) -> str:
    return (
        f"campaign engine benchmark — {stats['units']} (BER, seed) units\n"
        f"  available cores : {stats['available_cores']}\n"
        f"  workers         : {stats['workers']}\n"
        f"  serial          : {stats['serial_seconds']:.2f} s\n"
        f"  engine          : {stats['engine_seconds']:.2f} s\n"
        f"  speedup         : {stats['speedup']:.2f}x\n"
        f"  bit-identical   : {stats['bit_identical']}"
    )


def format_sample_shard_report(stats: dict) -> str:
    return (
        f"sample-shard benchmark — 1 (BER, seed) point, "
        f"{stats['units']} slices of {stats['shard']} samples\n"
        f"  available cores : {stats['available_cores']}\n"
        f"  workers         : {stats['workers']}\n"
        f"  unsharded       : {stats['serial_seconds']:.2f} s\n"
        f"  sharded         : {stats['engine_seconds']:.2f} s\n"
        f"  speedup         : {stats['speedup']:.2f}x\n"
        f"  bit-identical   : {stats['bit_identical']}"
    )


def format_replay_report(stats: dict) -> str:
    return (
        f"replay benchmark — {stats['units']} low-BER units "
        f"({stats['events']} injected events)\n"
        f"  available cores : {stats['available_cores']}\n"
        f"  workers         : {stats['workers']}\n"
        f"  no replay       : {stats['baseline_seconds']:.2f} s\n"
        f"  replay          : {stats['replay_seconds']:.2f} s (incl. golden build)\n"
        f"  speedup         : {stats['speedup']:.2f}x\n"
        f"  bit-identical   : {stats['bit_identical']}"
    )


def format_adaptive_report(stats: dict) -> str:
    return (
        f"adaptive benchmark — {stats['bers']} BER points, "
        f"halfwidth {stats['halfwidth']}, budget {stats['max_seeds']} seeds\n"
        f"  workers         : {stats['workers']}\n"
        f"  fixed grid      : {stats['fixed_units']} units, "
        f"{stats['fixed_seconds']:.2f} s\n"
        f"  adaptive        : {stats['adaptive_units']} units, "
        f"{stats['adaptive_seconds']:.2f} s "
        f"({stats['stopped_early']} points stopped early, "
        f"{stats['rounds']} rounds)\n"
        f"  saved units     : {stats['saved_ratio']:.1%}\n"
        f"  speedup         : {stats['speedup']:.2f}x"
    )


def format_distributed_report(stats: dict) -> str:
    return (
        f"distributed benchmark — {stats['units']} (BER, seed) units "
        f"via the work-queue backend\n"
        f"  available cores : {stats['available_cores']}\n"
        f"  workers         : {stats['workers']}\n"
        f"  pool            : {stats['pool_seconds']:.2f} s\n"
        f"  distributed     : {stats['distributed_seconds']:.2f} s "
        f"(+{stats['overhead_seconds']:.2f} s coordination)\n"
        f"  bit-identical   : {stats['bit_identical']}"
    )


def format_planner_report(stats: dict) -> str:
    return (
        f"planner benchmark — {stats['iterations']} iterations "
        f"(converged: {stats['converged']})\n"
        f"  workers           : {stats['workers']}\n"
        f"  serial            : {stats['serial_seconds']:.2f} s "
        f"({stats['serial_seconds_per_iteration']:.2f} s/iter)\n"
        f"  speculative       : {stats['engine_seconds']:.2f} s "
        f"({stats['engine_seconds_per_iteration']:.2f} s/iter)\n"
        f"  speedup           : {stats['speedup']:.2f}x\n"
        f"  identical results : {stats['identical_results']}"
    )


def test_campaign_engine_speedup():
    """>= 2x on 4 workers with >= 4 cores; always bit-identical."""
    import pytest

    stats = run_comparison(workers=4)
    print()
    print(format_report(stats))
    assert stats["bit_identical"], "engine results diverged from serial"
    if stats["available_cores"] < 4:
        pytest.skip(
            f"speedup needs >= 4 cores, machine has {stats['available_cores']}"
        )
    assert stats["speedup"] >= 2.0, (
        f"expected >= 2x speedup with 4 workers, got {stats['speedup']:.2f}x"
    )


def test_speculative_planner_speedup():
    """>= 1.5x planner iterations on 4 workers with >= 4 cores; results
    always identical to the serial heuristic."""
    import pytest

    stats = run_planner_comparison(workers=4)
    print()
    print(format_planner_report(stats))
    assert stats["identical_results"], "speculative planning diverged from serial"
    assert stats["iterations"] > 1, "workload converged trivially; tune the target"
    if stats["available_cores"] < 4:
        pytest.skip(
            f"speedup needs >= 4 cores, machine has {stats['available_cores']}"
        )
    assert stats["speedup"] >= 1.5, (
        f"expected >= 1.5x planner speedup with 4 workers, "
        f"got {stats['speedup']:.2f}x"
    )


def test_sample_shard_speedup():
    """>= 1.5x on a single (BER, seed) point with 4 workers and >= 4
    cores; always bit-identical to the unsharded counter-scheme run."""
    import pytest

    stats = run_sample_shard_comparison(workers=4)
    print()
    print(format_sample_shard_report(stats))
    assert stats["bit_identical"], "sample-sharded results diverged from serial"
    assert stats["units"] > 1, "shard did not split the point; tune the workload"
    if stats["available_cores"] < 4:
        pytest.skip(
            f"speedup needs >= 4 cores, machine has {stats['available_cores']}"
        )
    assert stats["speedup"] >= 1.5, (
        f"expected >= 1.5x single-point speedup with 4 workers, "
        f"got {stats['speedup']:.2f}x"
    )


def test_replay_speedup():
    """>= 3x on the low-BER replay workload with 4 workers and >= 4
    cores; always bit-identical to the non-replay engine."""
    import pytest

    stats = run_replay_comparison(workers=4)
    print()
    print(format_replay_report(stats))
    assert stats["bit_identical"], "replay results diverged from full forward"
    assert stats["events"] > 0, "workload too quiet to exercise replay"
    if stats["available_cores"] < 4:
        pytest.skip(
            f"speedup needs >= 4 cores, machine has {stats['available_cores']}"
        )
    assert stats["speedup"] >= 3.0, (
        f"expected >= 3x replay speedup with 4 workers, "
        f"got {stats['speedup']:.2f}x"
    )


def test_adaptive_saves_units():
    """Early stopping must evaluate measurably fewer (seed x point) units
    than the fixed grid on the low-BER workload — on any machine (the
    unit counts are deterministic, no core-count skip)."""
    stats = run_adaptive_comparison(workers=2)
    print()
    print(format_adaptive_report(stats))
    assert stats["stopped_early"] > 0, "no point settled; tune the workload"
    assert stats["adaptive_units"] < stats["fixed_units"], (
        f"adaptive evaluated {stats['adaptive_units']} units, fixed grid "
        f"{stats['fixed_units']} — no saving"
    )
    assert stats["saved_ratio"] >= 0.2, (
        f"expected >= 20% saved units on the low-BER grid, "
        f"got {stats['saved_ratio']:.1%}"
    )


def test_distributed_backend_parity():
    """The work-queue backend must stay bit-identical to the pool on the
    full benchmark sweep; overhead is reported but not gated (one host
    pays subprocess + SQLite coordination costs the pool doesn't)."""
    stats = run_distributed_comparison(workers=2)
    print()
    print(format_distributed_report(stats))
    assert stats["bit_identical"], (
        "distributed backend diverged from the pool on the benchmark sweep"
    )


if __name__ == "__main__":
    np.random.seed(0)
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("workers", type=int, nargs="?", default=4)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the benchmark stats to PATH as JSON",
    )
    args = parser.parse_args()

    sweep = run_comparison(workers=args.workers)
    tasks = run_task_batch_comparison(workers=args.workers)
    planner = run_planner_comparison(workers=args.workers)
    sample_shard = run_sample_shard_comparison(workers=args.workers)
    replay = run_replay_comparison(workers=args.workers)
    adaptive = run_adaptive_comparison(workers=args.workers)
    distributed = run_distributed_comparison(workers=args.workers)
    print(format_report(sweep))
    print(
        f"task-batch benchmark — {tasks['units']} protected tasks "
        f"(layer vulnerability)\n"
        f"  serial          : {tasks['serial_seconds']:.2f} s\n"
        f"  engine          : {tasks['engine_seconds']:.2f} s\n"
        f"  speedup         : {tasks['speedup']:.2f}x\n"
        f"  bit-identical   : {tasks['bit_identical']}"
    )
    print(format_planner_report(planner))
    print(format_sample_shard_report(sample_shard))
    print(format_replay_report(replay))
    print(format_adaptive_report(adaptive))
    print(format_distributed_report(distributed))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "sweep": sweep,
                    "task_batch": tasks,
                    "planner": planner,
                    "sample_shard": sample_shard,
                    "replay": replay,
                    "adaptive": adaptive,
                    "distributed": distributed,
                },
                handle, indent=2, sort_keys=True,
            )
            handle.write("\n")
        print(f"wrote {args.json}")
