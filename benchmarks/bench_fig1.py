"""Regenerates Figure 1: neuron-level vs operation-level fault injection.

Expected shape (paper): the neuron-level series for standard and Winograd
convolution coincide; only the operation-level platform separates them.
"""

from repro.experiments import fig1


def test_fig1_neuron_vs_operation_injection(benchmark, profile):
    payload = benchmark.pedantic(
        lambda: fig1.run(profile), rounds=1, iterations=1
    )
    print()
    print(fig1.format_report(payload))

    series = payload["series"]
    neuron_gap = max(
        abs(a["mean_accuracy"] - b["mean_accuracy"])
        for a, b in zip(series["standard/neuron"], series["winograd/neuron"])
    )
    # Neuron-level injection cannot distinguish the two algorithms.
    assert neuron_gap < 0.05
