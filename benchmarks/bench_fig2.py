"""Regenerates Figure 2: accuracy vs BER for standard vs Winograd DNNs.

Expected shape (paper): Winograd accuracy >= standard at every BER, with
the improvement peaking mid-cliff (paper reports up to +35 points); int16
models degrade at lower BER than int8.
"""

from benchmarks._helpers import bench_networks
from repro.experiments import fig2


def test_fig2_network_fault_tolerance(benchmark, profile):
    payload = benchmark.pedantic(
        lambda: fig2.run(profile, benchmarks=bench_networks()),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig2.format_report(payload))

    for panel in payload["panels"].values():
        for data in panel["widths"].values():
            # Winograd never loses by more than Monte-Carlo noise ...
            assert all(d > -0.10 for d in data["improvement"])
            # ... and wins somewhere on the sweep.
            assert max(data["improvement"]) > 0.0
