"""Regenerates Figure 3: layer-wise fault tolerance of VGG19.

Expected shape (paper): protecting any single layer recovers some accuracy;
mid-network layers with the most multiplications are the most critical, and
the Winograd baseline sits above the standard-conv baseline.
"""

from repro.experiments import fig3


def test_fig3_layer_vulnerability(benchmark, profile):
    payload = benchmark.pedantic(
        lambda: fig3.run(profile), rounds=1, iterations=1
    )
    print()
    print(fig3.format_report(payload))

    st = payload["standard"]
    wg = payload["winograd"]
    assert wg["baseline_accuracy"] >= st["baseline_accuracy"] - 0.05
    best = max(lv["vulnerability_factor"] for lv in st["layers"])
    assert best >= 0.0
