"""Regenerates Figure 4: operation-type sensitivity across the suite.

Expected shape (paper): keeping multiplications fault-free recovers far
more accuracy than keeping additions fault-free, in both execution modes;
Winograd's only-multiplication-fault accuracy matches standard conv's
despite executing 2.25x fewer multiplications.
"""

from benchmarks._helpers import bench_networks
from repro.experiments import fig4


def test_fig4_operation_type_sensitivity(benchmark, profile):
    payload = benchmark.pedantic(
        lambda: fig4.run(profile, benchmarks=bench_networks()),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig4.format_report(payload))

    wins = sum(
        e["ST-Conv-Mul"] >= e["ST-Conv-Add"] for e in payload["entries"]
    )
    assert wins >= len(payload["entries"]) - 1  # allow one noisy config
