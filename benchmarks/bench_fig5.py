"""Regenerates Figure 5: normalized fine-grained TMR overhead.

Expected shape (paper): overhead grows with the accuracy goal for every
scheme; WG-Conv-W/AFT needs the least protection (paper: -61.21% vs
ST-Conv, -27.49% vs WG-Conv-W/O-AFT on average).
"""

from repro.experiments import fig5


def test_fig5_tmr_overhead(benchmark, profile):
    payload = benchmark.pedantic(
        lambda: fig5.run(profile, goal_fractions=(0.65, 0.80, 0.95)),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig5.format_report(payload))

    norm = payload["normalized_overheads"]
    for i in range(len(payload["goals"])):
        assert norm["WG-Conv-W/AFT"][i] <= norm["ST-Conv"][i] + 1e-9
    assert payload["average_reduction"]["vs ST-Conv"] >= 0.0
