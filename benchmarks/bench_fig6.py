"""Regenerates Figure 6: voltage vs BER vs model accuracy.

Expected shape (paper): BER rises exponentially as voltage drops; accuracy
stays at the fault-free level over most of the range and falls at the
bottom, with Winograd holding out to lower voltages than standard conv.
"""

from repro.experiments import fig6


def test_fig6_voltage_accuracy(benchmark, profile):
    payload = benchmark.pedantic(
        lambda: fig6.run(profile), rounds=1, iterations=1
    )
    print()
    print(fig6.format_report(payload))

    rows = payload["rows"]
    # BER monotone decreasing in voltage.
    bers = [r["ber"] for r in rows]
    assert all(a >= b for a, b in zip(bers, bers[1:]))
    # Winograd accuracy >= standard at every voltage (within noise).
    assert all(
        r["accuracy_winograd"] >= r["accuracy_standard"] - 0.05 for r in rows
    )
