"""Regenerates Figure 7: voltage-scaling-assisted energy consumption.

Expected shape (paper): every scheme beats the 0.9 V baseline;
WG-Conv-W/AFT is cheapest (paper: -42.89% vs voltage-scaled ST-Conv,
-7.19% vs the fault-tolerance-unaware Winograd scheme on average).
"""

from repro.experiments import fig7


def test_fig7_voltage_scaling_energy(benchmark, profile):
    payload = benchmark.pedantic(
        lambda: fig7.run(profile), rounds=1, iterations=1
    )
    print()
    print(fig7.format_report(payload))

    for col in payload["columns"]:
        n = col["normalized"]
        assert n["WG-Conv-W/AFT"] <= n["WG-Conv-W/O-AFT"] + 1e-9
        assert n["WG-Conv-W/AFT"] < n["Base"]
    assert payload["average_reduction"]["vs ST-Conv"] > 0.0
