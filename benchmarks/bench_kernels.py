"""Micro-benchmarks of the computational kernels (throughput tracking).

Two entry points share this file:

* **pytest-benchmark tests** (below) run at real benchmark cadence
  (multiple rounds) since each call is milliseconds: Winograd vs direct
  convolution kernels, the integer quantized paths, and one
  fault-injected forward pass.
* **standalone backend comparison** (``python benchmarks/bench_kernels.py
  --json out.json``) times the channel-reduce-dominated integer Winograd
  workload once per registered kernel backend (:mod:`repro.backends`),
  emits a machine-readable report, and *gates* the ``optimized`` backend
  at a minimum speedup over ``reference`` (exit status 1 on failure).
  CI uploads the JSON as an artifact.
"""

import argparse
import json
import sys
import time

import numpy as np

try:
    import pytest
except ImportError:  # pragma: no cover - standalone CLI use without pytest
    pytest = None

from repro.utils.im2col import im2col
from repro.winograd import (
    get_transform,
    transform_filter_int,
    winograd_conv2d_float,
    winograd_conv2d_int,
)

N, C, K, H = 4, 32, 32, 32

# Standalone comparison workload: deeper channels so the channel-reduce
# GEMM dominates (the stage the optimized backend targets hardest).
BENCH_N, BENCH_C, BENCH_K, BENCH_H = 4, 64, 64, 32


# --- pytest-benchmark suite --------------------------------------------------
if pytest is not None:

    @pytest.fixture(scope="module")
    def float_inputs():
        rng = np.random.default_rng(0)
        return (
            rng.standard_normal((N, C, H, H)).astype(np.float32),
            rng.standard_normal((K, C, 3, 3)).astype(np.float32),
        )

    @pytest.fixture(scope="module")
    def int_inputs():
        rng = np.random.default_rng(0)
        x = rng.integers(-(2**12), 2**12, size=(N, C, H, H)).astype(np.int64)
        w = rng.integers(-(2**12), 2**12, size=(K, C, 3, 3)).astype(np.int64)
        return x, w

    def test_direct_conv_float(benchmark, float_inputs):
        x, w = float_inputs

        def run():
            cols = im2col(x, (3, 3), 1, 1)
            return np.einsum("kr,nrp->nkp", w.reshape(K, -1), cols)

        benchmark(run)

    @pytest.mark.parametrize("m", [2, 4])
    def test_winograd_conv_float(benchmark, float_inputs, m):
        x, w = float_inputs
        benchmark(lambda: winograd_conv2d_float(x, w, padding=1, m=m))

    def test_winograd_conv_int(benchmark, int_inputs):
        x, w = int_inputs
        v = transform_filter_int(w, get_transform(2, 3))
        benchmark(
            lambda: winograd_conv2d_int(x, v, padding=1, m=2, keep_intermediates=False)
        )

    def test_filter_transform_int(benchmark, int_inputs):
        _, w = int_inputs
        tf = get_transform(2, 3)
        benchmark(lambda: transform_filter_int(w, tf))

    def test_injected_forward(benchmark, int_inputs):
        """One Winograd conv with operation-level faults at a cliff-scale BER."""
        x, w = int_inputs
        tf = get_transform(2, 3)
        v = transform_filter_int(w, tf)

        def run():
            return winograd_conv2d_int(x, v, padding=1, m=2, keep_intermediates=True)

        benchmark(run)


# --- standalone per-backend comparison ---------------------------------------
def _bench_inputs(x_bound: int, w_bound: int):
    """Deterministic integer workload for the backend comparison."""
    rng = np.random.default_rng(0)
    x = rng.integers(
        -x_bound, x_bound, size=(BENCH_N, BENCH_C, BENCH_H, BENCH_H)
    ).astype(np.int64)
    w = rng.integers(-w_bound, w_bound, size=(BENCH_K, BENCH_C, 3, 3)).astype(np.int64)
    return x, w


def _time_backend(backend, x, w, x_bound, repeats: int, keep: bool) -> dict:
    """Best/mean wall-clock of the full int Winograd conv on one backend."""
    tf = get_transform(2, 3)
    v = backend.filter_transform(tf, w)
    v_bound = int(np.abs(v).max(initial=0))

    def run():
        return winograd_conv2d_int(
            x,
            v,
            padding=1,
            m=2,
            keep_intermediates=keep,
            backend=backend,
            x_bound=x_bound,
            v_bound=v_bound,
        )

    run()  # warm transform/scratch caches so steady-state cost is measured
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        run()
        times.append(time.perf_counter() - t0)
    return {"best_s": min(times), "mean_s": sum(times) / len(times)}


def run_backend_comparison(
    repeats: int = 7,
    min_speedup: float = 1.5,
    keep_intermediates: bool = False,
    backends: list[str] | None = None,
) -> dict:
    """Time every available backend on the comparison workload.

    Returns a JSON-serializable report with per-backend timings, the
    speedup of each backend over ``reference``, and a ``gate_passed``
    flag: ``optimized`` must be at least ``min_speedup`` faster than
    ``reference``.  Other backends (``torch``) are informational only.
    """
    from repro.backends import available_backends, get_backend

    names = backends if backends is not None else list(available_backends())
    if "reference" not in names:
        names.insert(0, "reference")

    x_bound = 1 << 15
    x, w = _bench_inputs(x_bound, 1 << 7)
    report = {
        "workload": {
            "n": BENCH_N,
            "c": BENCH_C,
            "k": BENCH_K,
            "h": BENCH_H,
            "m": 2,
            "r": 3,
            "padding": 1,
            "keep_intermediates": keep_intermediates,
        },
        "repeats": repeats,
        "backends": {},
        "speedup_vs_reference": {},
        "min_speedup": min_speedup,
        "gate_passed": None,
    }
    for name in names:
        backend = get_backend(name)
        report["backends"][name] = _time_backend(
            backend, x, w, x_bound, repeats, keep_intermediates
        )
    ref_best = report["backends"]["reference"]["best_s"]
    for name, timing in report["backends"].items():
        if name != "reference":
            report["speedup_vs_reference"][name] = ref_best / timing["best_s"]
    if "optimized" in report["speedup_vs_reference"]:
        report["gate_passed"] = bool(
            report["speedup_vs_reference"]["optimized"] >= min_speedup
        )
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI: per-backend kernel comparison with a JSON report and speed gate."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", help="write the report here")
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="required optimized-vs-reference speedup (default 1.5)",
    )
    parser.add_argument(
        "--keep-intermediates",
        action="store_true",
        help="also materialize u/m tiles (the fault-injection configuration)",
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=None,
        help="backend names to time (default: every available backend)",
    )
    args = parser.parse_args(argv)

    report = run_backend_comparison(
        repeats=args.repeats,
        min_speedup=args.min_speedup,
        keep_intermediates=args.keep_intermediates,
        backends=args.backends,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)

    for name, timing in report["backends"].items():
        speed = report["speedup_vs_reference"].get(name)
        extra = f"  ({speed:.2f}x vs reference)" if speed is not None else ""
        print(f"{name:>10}: best {timing['best_s'] * 1e3:8.2f} ms{extra}")
    if report["gate_passed"] is False:
        print(
            f"FAIL: optimized speedup "
            f"{report['speedup_vs_reference']['optimized']:.2f}x "
            f"< required {report['min_speedup']:.2f}x",
            file=sys.stderr,
        )
        return 1
    print("gate: PASS" if report["gate_passed"] else "gate: skipped (no optimized)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
