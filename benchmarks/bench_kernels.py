"""Micro-benchmarks of the computational kernels (throughput tracking).

These run at real pytest-benchmark cadence (multiple rounds) since each
call is milliseconds: Winograd vs direct convolution kernels, the integer
quantized paths, and one fault-injected forward pass.
"""

import numpy as np
import pytest

from repro.faultsim import OperationLevelInjector
from repro.utils.im2col import im2col
from repro.winograd import (
    get_transform,
    transform_filter_int,
    winograd_conv2d_float,
    winograd_conv2d_int,
)

N, C, K, H = 4, 32, 32, 32


@pytest.fixture(scope="module")
def float_inputs():
    rng = np.random.default_rng(0)
    return (
        rng.standard_normal((N, C, H, H)).astype(np.float32),
        rng.standard_normal((K, C, 3, 3)).astype(np.float32),
    )


@pytest.fixture(scope="module")
def int_inputs():
    rng = np.random.default_rng(0)
    x = rng.integers(-(2**12), 2**12, size=(N, C, H, H)).astype(np.int64)
    w = rng.integers(-(2**12), 2**12, size=(K, C, 3, 3)).astype(np.int64)
    return x, w


def test_direct_conv_float(benchmark, float_inputs):
    x, w = float_inputs

    def run():
        cols = im2col(x, (3, 3), 1, 1)
        return np.einsum("kr,nrp->nkp", w.reshape(K, -1), cols)

    benchmark(run)


@pytest.mark.parametrize("m", [2, 4])
def test_winograd_conv_float(benchmark, float_inputs, m):
    x, w = float_inputs
    benchmark(lambda: winograd_conv2d_float(x, w, padding=1, m=m))


def test_winograd_conv_int(benchmark, int_inputs):
    x, w = int_inputs
    v = transform_filter_int(w, get_transform(2, 3))
    benchmark(lambda: winograd_conv2d_int(x, v, padding=1, m=2, keep_intermediates=False))


def test_filter_transform_int(benchmark, int_inputs):
    _, w = int_inputs
    tf = get_transform(2, 3)
    benchmark(lambda: transform_filter_int(w, tf))


def test_injected_forward(benchmark, int_inputs):
    """One Winograd conv with operation-level faults at a cliff-scale BER."""
    x, w = int_inputs
    tf = get_transform(2, 3)
    v = transform_filter_int(w, tf)

    def run():
        return winograd_conv2d_int(x, v, padding=1, m=2, keep_intermediates=True)

    benchmark(run)
