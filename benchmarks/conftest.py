"""Shared configuration for the figure-regeneration benchmarks.

Every benchmark regenerates one figure of the paper (the paper has no
numbered tables; Figs. 1-7 are its entire evaluation).  Budgets are kept
small so the whole suite completes in minutes; set ``REPRO_BENCH_ALL=1`` to
sweep all four networks in Figs. 2 and 4, and ``REPRO_RESULTS`` to relocate
the cache.  Results (JSON + text report) land under ``results/``.

Fixture-only by design — the budget profile and network selection are
importable from :mod:`benchmarks._helpers` (a bare ``from conftest
import ...`` is ambiguous against ``tests/conftest.py``).
"""

from __future__ import annotations

import pytest

from benchmarks._helpers import BENCH_PROFILE
from repro.experiments.common import ExperimentProfile


@pytest.fixture(scope="session")
def profile() -> ExperimentProfile:
    """The benchmark evaluation budget."""
    return BENCH_PROFILE
