"""Shared configuration for the figure-regeneration benchmarks.

Every benchmark regenerates one figure of the paper (the paper has no
numbered tables; Figs. 1-7 are its entire evaluation).  Budgets are kept
small so the whole suite completes in minutes; set ``REPRO_BENCH_ALL=1`` to
sweep all four networks in Figs. 2 and 4, and ``REPRO_RESULTS`` to relocate
the cache.  Results (JSON + text report) land under ``results/``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentProfile

#: Benchmark-sized budget: one seed, short sweep, small eval set.
BENCH_PROFILE = ExperimentProfile(
    name="bench",
    eval_samples=60,
    calib_samples=96,
    seeds=(0,),
    batch_size=60,
    ber_grid=(3e-7, 1e-6, 3e-6, 1e-5, 3e-5),
    train_epochs=8,
)


def bench_networks() -> tuple[str, ...]:
    """Networks swept by the multi-network figures."""
    if os.environ.get("REPRO_BENCH_ALL"):
        return ("densenet169", "resnet50", "vgg19", "googlenet")
    return ("vgg19", "googlenet")


@pytest.fixture(scope="session")
def profile() -> ExperimentProfile:
    """The benchmark evaluation budget."""
    return BENCH_PROFILE
