"""ABFT checksum detection vs. inherent Winograd fault tolerance.

The paper's related work contrasts inherent fault tolerance with
algorithm-based fault tolerance (checksum detection).  This example runs
both on the same injected inference: the ABFT checker flags corrupted
outputs (which a deployment would then recompute), while Winograd execution
simply absorbs more of the faults to begin with.

Run:  python examples/abft_detection.py
"""

import numpy as np

from repro.datasets import DatasetSpec, make_dataset
from repro.faultsim import OperationLevelInjector, detection_coverage
from repro.nn import Adam, GraphBuilder, TrainConfig, initialize, train
from repro.quantized import QuantConfig, quantize_model


def build_model(classes: int):
    b = GraphBuilder("abft-demo", input_shape=(3, 16, 16))
    x = b.conv2d(b.input_node, 16, kernel=3, padding=1, name="conv1")
    x = b.relu(b.batchnorm2d(x, name="bn1"), name="r1")
    x = b.conv2d(x, 32, kernel=3, padding=1, name="conv2")
    x = b.relu(b.batchnorm2d(x, name="bn2"), name="r2")
    x = b.flatten(b.globalavgpool(x))
    return b.output(b.linear(x, classes, name="fc"))


def main() -> None:
    spec = DatasetSpec(name="abft", classes=5, image_size=16, seed=3)
    data = make_dataset(spec, train_per_class=40, test_per_class=12)
    model = build_model(spec.classes)
    initialize(model, 0)
    train(
        model, Adam(model, 3e-3),
        data.train_x, data.train_y, data.test_x, data.test_y,
        TrainConfig(epochs=8, batch_size=40, target_accuracy=0.95),
    )

    calib = data.train_x[:80]
    for mode in ("standard", "winograd"):
        qm = quantize_model(model, calib, QuantConfig(width=16), mode)
        print(f"\n=== {mode} convolution ===")
        print(f"{'BER':>9} {'events':>7} {'flagged outputs':>16} {'accuracy':>9}")
        for ber in (1e-5, 1e-4, 3e-4):
            injector = OperationLevelInjector(ber, seed=0)
            report = detection_coverage(qm, data.test_x[:32], injector)
            # Accuracy of the same injected inference (fresh injector, same seed).
            accuracy = qm.evaluate(
                data.test_x[:32], data.test_y[:32],
                injector=OperationLevelInjector(ber, seed=0),
            )
            events = sum(injector.event_counts.values())
            print(
                f"{ber:>9.0e} {events:>7} {report.total_detections:>16} "
                f"{accuracy:>9.3f}"
            )
    print("\nABFT *detects* corrupted outputs at the cost of checksum compute;")
    print("Winograd needs fewer faults detected because fewer multiplications")
    print("were exposed in the first place — the paper's central trade-off.")


if __name__ == "__main__":
    main()
