"""Fault-tolerance study of a paper benchmark network (Fig. 2/3/4 style).

Uses the experiment infrastructure (cached model zoo) to characterize one
benchmark end to end:

* accuracy-vs-BER curves for standard and Winograd execution;
* layer-wise vulnerability factors (which layers deserve protection);
* operation-type sensitivity (multiplications vs additions).

Run:  python examples/fault_tolerance_study.py [benchmark]
      (benchmark in {vgg19, googlenet, resnet50, densenet169}; default vgg19)
"""

import sys

from repro.analysis import layer_vulnerability, operation_type_sensitivity
from repro.experiments import QUICK, accuracy_curve, pick_cliff_ber, prepare_benchmark, quantized_pair


def main(benchmark: str = "vgg19") -> None:
    profile = QUICK
    prep = prepare_benchmark(benchmark, profile)
    print(f"{prep.paper_label}: float accuracy {prep.float_accuracy:.3f}")

    qm_st, qm_wg = quantized_pair(prep, width=16, profile=profile)
    config = profile.campaign()
    bers = list(profile.ber_grid)

    # --- accuracy vs BER ------------------------------------------------------
    st_curve = accuracy_curve(qm_st, prep, bers, config)
    wg_curve = accuracy_curve(qm_wg, prep, bers, config)
    print(f"\n{'BER':>9} {'lambda':>9} {'standard':>9} {'winograd':>9}")
    for st, wg in zip(st_curve, wg_curve):
        print(
            f"{st.ber:>9.0e} {st.lam:>9.0f} "
            f"{st.mean_accuracy:>9.3f} {wg.mean_accuracy:>9.3f}"
        )

    # --- pick the mid-cliff operating point ----------------------------------
    ber = pick_cliff_ber(st_curve, qm_st.metadata["fault_free_accuracy"], 0.6)
    print(f"\nmid-cliff operating point: BER {ber:.1e}")

    # --- layer-wise vulnerability --------------------------------------------
    x = prep.eval_x[: profile.eval_samples]
    y = prep.eval_y[: profile.eval_samples]
    report = layer_vulnerability(qm_st, x, y, ber, config=config)
    print("\nmost vulnerable layers (standard conv):")
    for lv in report.ranked()[:5]:
        print(
            f"  {lv.layer:>12}: vulnerability {lv.vulnerability_factor:+.3f} "
            f"({lv.muls:,} muls)"
        )

    # --- operation-type sensitivity -------------------------------------------
    for qm, label in ((qm_st, "standard"), (qm_wg, "winograd")):
        sens = operation_type_sensitivity(qm, x, y, ber, config=config)
        print(
            f"\n{label}: baseline {sens.baseline_accuracy:.3f} | "
            f"muls fault-free {sens.accuracy_muls_fault_free:.3f} | "
            f"adds fault-free {sens.accuracy_adds_fault_free:.3f}"
        )
    print("\nprotecting multiplications recovers (almost) everything —")
    print("the asymmetry Winograd convolution exploits.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "vgg19")
