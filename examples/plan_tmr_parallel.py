"""Speculative TMR planning end-to-end (Fig. 5 machinery, parallel).

Demonstrates the campaign runtime's two planner accelerations on a small
CNN:

1. **Intra-task seed sharding** — each candidate-plan evaluation is one
   seed-batch task whose per-seed subtasks spread across the worker pool.
2. **Speculative planning** (``speculative=True``) — because the paper's
   plan-growth rule never consults a measured accuracy, the chain of
   candidate plans is predetermined; several are evaluated concurrently
   per round and the first (in the paper's deterministic order) meeting
   the accuracy goal is kept.

Both are result-identical to the paper's serial heuristic — this script
runs the planner both ways and verifies it.

Run:  PYTHONPATH=src python examples/plan_tmr_parallel.py [workers]
"""

import sys

from repro.analysis import layer_vulnerability
from repro.datasets import DatasetSpec, make_dataset
from repro.faultsim import CampaignConfig
from repro.nn import Adam, GraphBuilder, TrainConfig, initialize, train
from repro.quantized import QuantConfig, quantize_model
from repro.runtime import CampaignEngine, resolve_workers
from repro.tmr import plan_tmr

BER = 5e-4
TARGET_FRACTION = 0.85


def build_model_and_data():
    """A small trained Winograd-mode quantized CNN plus an eval split."""
    b = GraphBuilder("speccnn", input_shape=(3, 16, 16))
    x = b.conv2d(b.input_node, 12, kernel=3, padding=1, name="c1")
    x = b.relu(x, name="r1")
    x = b.maxpool2d(x, kernel=2, stride=2, name="p1")
    x = b.conv2d(x, 16, kernel=3, padding=1, name="c2")
    x = b.relu(x, name="r2")
    x = b.globalavgpool(x, name="gap")
    x = b.flatten(x, name="fl")
    graph = b.output(b.linear(x, 4, name="fc"))
    initialize(graph, 0)

    spec = DatasetSpec(name="spec", classes=4, image_size=16, noise=0.25, seed=11)
    dataset = make_dataset(spec, train_per_class=32, test_per_class=12)
    train(
        graph,
        Adam(graph, 3e-3),
        dataset.train_x,
        dataset.train_y,
        dataset.test_x,
        dataset.test_y,
        TrainConfig(epochs=6, batch_size=32, target_accuracy=0.95),
    )
    qmodel = quantize_model(
        graph, dataset.train_x[:64], QuantConfig(width=16), "winograd"
    )
    return qmodel, dataset.test_x, dataset.test_y


def main(workers: int | None = None) -> None:
    """Plan TMR serially and speculatively; verify identical results."""
    workers = resolve_workers(workers)
    qmodel, x, y = build_model_and_data()
    config = CampaignConfig(seeds=(0, 1), batch_size=24, max_samples=48)

    fault_free = qmodel.evaluate(x[:48], y[:48])
    target = fault_free * TARGET_FRACTION
    print(f"model fault-free accuracy : {fault_free:.3f}")
    print(f"accuracy goal             : {target:.3f} @ BER {BER:.1e}")

    engine = CampaignEngine(workers=workers)
    report = layer_vulnerability(qmodel, x, y, BER, config=config, engine=engine)
    ranking = [(lv.layer, lv.vulnerability_factor) for lv in report.ranked()]
    print(f"vulnerability ranking     : {[name for name, _ in ranking]}")

    serial = plan_tmr(
        qmodel, x, y, BER, target, ranking, config=config, step=0.5,
        engine=CampaignEngine(workers=1),
    )
    speculative = plan_tmr(
        qmodel, x, y, BER, target, ranking, config=config, step=0.5,
        engine=engine, speculative=True,
    )

    identical = (
        serial.to_dict() == speculative.to_dict()
        and serial.history == speculative.history
    )
    print(f"planner iterations        : {speculative.iterations} "
          f"(converged: {speculative.converged})")
    print(f"achieved accuracy         : {speculative.achieved_accuracy:.3f}")
    print(f"protected fractions       : {speculative.to_dict()['fractions']}")
    print(f"speculative == serial heuristic : {identical}")
    if not identical:
        raise SystemExit("speculative planning diverged from the serial heuristic")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else None)
