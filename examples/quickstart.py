"""Quickstart: train a small CNN, quantize it both ways, inject faults.

Demonstrates the library's core loop in under a minute:

1. build + train a small network on synthetic data (pure NumPy);
2. post-training-quantize it to int16, once with standard convolution and
   once with integer-exact Winograd convolution;
3. verify the two executions are bit-identical fault-free;
4. inject operation-level faults at increasing bit error rates and watch
   Winograd's fault-tolerance advantage appear.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.datasets import DatasetSpec, make_dataset
from repro.faultsim import CampaignConfig, run_point
from repro.nn import Adam, GraphBuilder, TrainConfig, initialize, train
from repro.quantized import QuantConfig, quantize_model


def build_model(classes: int):
    """A VGG-flavored 4-conv network."""
    b = GraphBuilder("quickstart", input_shape=(3, 16, 16))
    x = b.input_node
    for i, width in enumerate((16, 16, 32, 32), start=1):
        x = b.conv2d(x, width, kernel=3, padding=1, name=f"conv{i}")
        x = b.batchnorm2d(x, name=f"bn{i}")
        x = b.relu(x, name=f"relu{i}")
        if i % 2 == 0:
            x = b.maxpool2d(x, kernel=2, stride=2, name=f"pool{i}")
    x = b.flatten(b.globalavgpool(x))
    return b.output(b.linear(x, classes, name="fc"))


def main() -> None:
    # 1. Data + training -----------------------------------------------------
    spec = DatasetSpec(name="quickstart", classes=6, image_size=16, seed=11)
    data = make_dataset(spec, train_per_class=50, test_per_class=15)
    model = build_model(spec.classes)
    initialize(model, seed=0)
    result = train(
        model,
        Adam(model, 3e-3),
        data.train_x,
        data.train_y,
        data.test_x,
        data.test_y,
        TrainConfig(epochs=10, batch_size=50, target_accuracy=0.97),
    )
    print(f"float model accuracy: {result.final_eval_accuracy:.3f}")

    # 2. Quantize both execution modes ---------------------------------------
    calib = data.train_x[:100]
    qm_standard = quantize_model(model, calib, QuantConfig(width=16), "standard")
    qm_winograd = quantize_model(model, calib, QuantConfig(width=16), "winograd")

    # 3. Winograd is a lossless rewrite: outputs are bit-identical -----------
    logits_st = qm_standard.forward(data.test_x[:16])
    logits_wg = qm_winograd.forward(data.test_x[:16])
    assert np.array_equal(logits_st, logits_wg)
    print("standard and Winograd integer outputs are bit-identical (fault-free)")
    counts_st = qm_standard.total_op_counts()
    counts_wg = qm_winograd.total_op_counts()
    print(
        f"multiplications per inference: standard {counts_st.muls:,} "
        f"-> winograd {counts_wg.muls:,} "
        f"({counts_st.muls / counts_wg.muls:.2f}x fewer)"
    )

    # 4. Fault injection ------------------------------------------------------
    config = CampaignConfig(seeds=(0, 1))
    print(f"\n{'BER':>9} {'standard':>9} {'winograd':>9}")
    for ber in (1e-6, 1e-5, 1e-4, 3e-4):
        st = run_point(qm_standard, data.test_x, data.test_y, ber, config)
        wg = run_point(qm_winograd, data.test_x, data.test_y, ber, config)
        print(f"{ber:>9.0e} {st.mean_accuracy:>9.3f} {wg.mean_accuracy:>9.3f}")
    print("\nWinograd executes fewer multiplications — the operation class that")
    print("dominates soft-error vulnerability — so it degrades later.")


if __name__ == "__main__":
    main()
