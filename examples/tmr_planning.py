"""Fine-grained TMR planning (Fig. 5 style).

Plans selective triple-modular-redundancy protection for VGG19 under the
paper's three schemes and reports the overhead each needs to reach the same
accuracy goal, demonstrating the headline claim: being *aware* of Winograd's
inherent fault tolerance buys protection overhead.

Run:  python examples/tmr_planning.py
"""

from repro.experiments import QUICK, accuracy_curve, pick_cliff_ber, prepare_benchmark, quantized_pair
from repro.tmr import average_reduction, normalized_overheads, run_tmr_schemes


def main() -> None:
    profile = QUICK
    prep = prepare_benchmark("vgg19", profile)
    qm_st, qm_wg = quantized_pair(prep, width=16, profile=profile)
    config = profile.campaign()

    st_curve = accuracy_curve(qm_st, prep, list(profile.ber_grid), config)
    fault_free = qm_st.metadata["fault_free_accuracy"]
    ber = pick_cliff_ber(st_curve, fault_free, target_fraction=0.6)
    print(
        f"{prep.paper_label} int16 @ BER {ber:.1e} "
        f"(fault-free accuracy {fault_free:.3f})"
    )

    goals = [fault_free * f for f in (0.70, 0.85, 0.95)]
    x = prep.eval_x[: profile.eval_samples]
    y = prep.eval_y[: profile.eval_samples]
    curves = run_tmr_schemes(qm_st, qm_wg, x, y, ber, goals, config=config)

    norm = normalized_overheads(curves)
    print(f"\n{'accuracy goal':>14} {'ST-Conv':>9} {'WG-W/O-AFT':>11} {'WG-W/AFT':>9}")
    for i, goal in enumerate(goals):
        print(
            f"{goal:>14.3f} {norm['ST-Conv'][i]:>9.3f} "
            f"{norm['WG-Conv-W/O-AFT'][i]:>11.3f} {norm['WG-Conv-W/AFT'][i]:>9.3f}"
        )

    red = average_reduction(curves)
    print(
        f"\nfault-tolerance-aware Winograd TMR needs "
        f"{red['vs ST-Conv']:.1%} less overhead than standard conv"
        f" and {red['vs WG-Conv-W/O-AFT']:.1%} less than unaware Winograd"
    )
    print("(paper reports 61.21% and 27.49% on the full-size testbed)")


if __name__ == "__main__":
    main()
