"""Voltage scaling for energy efficiency (Figs. 6-7 style).

Combines the fault-injection accuracy curves with the accelerator models:
the DNN-Engine-calibrated voltage-BER characteristic, Scale-Sim-style
runtime, and the V^2 power law.  Each scheme scales its supply voltage as
deep as its accuracy budget allows; awareness of Winograd's fault tolerance
unlocks the deepest scaling.

Run:  python examples/voltage_scaling.py
"""

from repro.accel import DNN_ENGINE, scheme_energies, simulate_network
from repro.experiments import QUICK, prepare_benchmark, quantized_pair
from repro.experiments.fig6 import build_accuracy_curves, calibrated_vber


def main() -> None:
    profile = QUICK
    prep = prepare_benchmark("vgg19", profile)
    qm_st, qm_wg = quantized_pair(prep, width=16, profile=profile)

    # Accuracy-vs-BER curves for both execution modes (cached sweeps).
    curve_st, curve_wg = build_accuracy_curves(prep, qm_st, qm_wg, profile)
    # Voltage-BER model calibrated in expected-faults-per-inference space.
    vber = calibrated_vber(qm_st)

    timing_st = simulate_network(qm_st, DNN_ENGINE, batch=16)
    timing_wg = simulate_network(qm_wg, DNN_ENGINE, batch=16)
    print(
        f"{prep.paper_label} int16 on the DNN-Engine-like accelerator:\n"
        f"  standard conv: {timing_st.total_cycles:,} cycles/batch\n"
        f"  winograd conv: {timing_wg.total_cycles:,} cycles/batch "
        f"({timing_st.total_cycles / timing_wg.total_cycles:.2f}x faster)"
    )

    print(f"\n{'loss':>6} {'Base':>6} {'ST-Conv':>8} {'WG-W/O-AFT':>11} {'WG-W/AFT':>9}")
    for loss in (0.01, 0.03, 0.05, 0.10):
        points = scheme_energies(
            curve_st,
            curve_wg,
            timing_st.total_cycles,
            timing_wg.total_cycles,
            accuracy_loss=loss,
            vber=vber,
        )
        base = points["Base"].energy_joules
        print(
            f"{loss:>6.0%} {1.0:>6.2f} "
            f"{points['ST-Conv'].energy_joules / base:>8.3f} "
            f"{points['WG-Conv-W/O-AFT'].energy_joules / base:>11.3f} "
            f"{points['WG-Conv-W/AFT'].energy_joules / base:>9.3f}"
        )
    print("\nlower is better; the paper reports WG-Conv-W/AFT at -42.89% vs")
    print("voltage-scaled ST-Conv and -7.19% vs unaware Winograd on average.")


if __name__ == "__main__":
    main()
