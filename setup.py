"""Setup shim for environments without the `wheel` package.

Enables `pip install -e . --no-use-pep517`; all metadata lives in
pyproject.toml.
"""
from setuptools import setup

setup()
