"""repro — reproduction of "Winograd Convolution: A Perspective from Fault
Tolerance" (Xue et al., DAC 2022).

Subpackages
-----------
``repro.fixedpoint``
    Q-format fixed-point arithmetic and two's-complement bit flips.
``repro.winograd``
    Cook–Toom transform construction, integer-exact F(m, r) convolution,
    DWM decomposition for large kernels/strides, op counting.
``repro.nn``
    Minimal NumPy DNN framework (graph IR, training, inference).
``repro.quantized``
    BN folding, post-training quantization, integer direct & Winograd
    executors with fault-injection hooks.
``repro.models`` / ``repro.datasets``
    Width-scaled benchmark networks and synthetic datasets.
``repro.faultsim``
    The paper's operation-level fault-injection platform plus a
    neuron-level baseline injector, protection plans, campaigns.
``repro.analysis`` / ``repro.tmr``
    Layer vulnerability, op-type sensitivity, fine-grained TMR planning.
``repro.accel``
    Scale-Sim-style systolic timing, DNN-Engine voltage/power models, DVFS.
``repro.experiments``
    Drivers regenerating every figure of the paper.
"""

__version__ = "1.0.0"

from repro.errors import (
    ConfigurationError,
    FaultModelError,
    MappingError,
    QuantizationError,
    ReproError,
    ShapeError,
    TrainingError,
    TransformError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "QuantizationError",
    "TransformError",
    "ShapeError",
    "FaultModelError",
    "MappingError",
    "TrainingError",
]
