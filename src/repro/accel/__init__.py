"""Accelerator models: systolic timing, voltage/BER, power, DVFS search."""

from repro.accel.config import DNN_ENGINE, ArrayConfig, Dataflow
from repro.accel.dataflow import GemmShape, GemmTiming, gemm_timing
from repro.accel.simulator import LayerTiming, NetworkTiming, simulate_network
from repro.accel.voltage import DNN_ENGINE_VBER, VoltageBerModel
from repro.accel.power import DNN_ENGINE_POWER, PowerModel
from repro.accel.dvfs import (
    AccuracyCurve,
    VoltageOperatingPoint,
    min_voltage_for_accuracy,
    scheme_energies,
)

__all__ = [
    "ArrayConfig",
    "Dataflow",
    "DNN_ENGINE",
    "GemmShape",
    "GemmTiming",
    "gemm_timing",
    "LayerTiming",
    "NetworkTiming",
    "simulate_network",
    "VoltageBerModel",
    "DNN_ENGINE_VBER",
    "PowerModel",
    "DNN_ENGINE_POWER",
    "AccuracyCurve",
    "VoltageOperatingPoint",
    "min_voltage_for_accuracy",
    "scheme_energies",
]
