"""Accelerator configuration and the DNN-Engine-like preset.

The paper's energy study (§4.2) runs VGG19 on "a typical neural network
accelerator" (Whatmough et al., JSSC 2018 — the 28 nm DNN Engine: 0.9 V
nominal at 667 MHz, voltage-scalable to 0.7 V) with runtime estimated by a
simulator "modified on top of Scale-Sim".  This module defines the array
geometry, memory and clocking parameters those models consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Dataflow", "ArrayConfig", "DNN_ENGINE"]


class Dataflow:
    """Systolic dataflow identifiers (Scale-Sim's three classics)."""

    WEIGHT_STATIONARY = "ws"
    OUTPUT_STATIONARY = "os"
    INPUT_STATIONARY = "is"

    ALL = (WEIGHT_STATIONARY, OUTPUT_STATIONARY, INPUT_STATIONARY)


@dataclass(frozen=True)
class ArrayConfig:
    """Systolic-array and memory-system parameters.

    Attributes
    ----------
    rows, cols:
        PE array dimensions.
    dataflow:
        One of :class:`Dataflow`.
    vector_lanes:
        Width of the scalar/vector unit that executes Winograd transforms,
        bias adds and sub-conv recombination (ops per cycle).
    ifmap_sram_kb, filter_sram_kb, ofmap_sram_kb:
        Scratchpad sizes (traffic accounting).
    frequency_hz:
        Nominal clock.
    """

    rows: int = 16
    cols: int = 16
    dataflow: str = Dataflow.WEIGHT_STATIONARY
    vector_lanes: int = 16
    ifmap_sram_kb: int = 64
    filter_sram_kb: int = 64
    ofmap_sram_kb: int = 64
    frequency_hz: float = 667e6

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("array dimensions must be positive")
        if self.dataflow not in Dataflow.ALL:
            raise ConfigurationError(
                f"dataflow must be one of {Dataflow.ALL}, got {self.dataflow!r}"
            )
        if self.vector_lanes < 1:
            raise ConfigurationError("vector_lanes must be positive")


#: The paper's target accelerator: DNN-Engine-like 28 nm design at 667 MHz.
DNN_ENGINE = ArrayConfig(
    rows=16,
    cols=16,
    dataflow=Dataflow.WEIGHT_STATIONARY,
    vector_lanes=16,
    frequency_hz=667e6,
)
