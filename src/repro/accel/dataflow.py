"""Analytical systolic-array GEMM timing (Scale-Sim-style equations).

Scale-Sim (Samajdar et al., 2018) models a GEMM ``(M x K) @ (K x N)`` on an
``R x C`` array as a sequence of *folds*: the stationary tensor is tiled
onto the array, and each fold streams the moving tensor through the
pipeline.  Cycle counts per fold are the streamed extent plus pipeline
fill/drain; SRAM traffic follows from which tensor is re-fetched per fold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.config import ArrayConfig, Dataflow
from repro.errors import MappingError
from repro.utils.mathx import ceil_div

__all__ = ["GemmShape", "GemmTiming", "gemm_timing"]


@dataclass(frozen=True)
class GemmShape:
    """``(M x K) @ (K x N)``: M output rows, K reduction, N output columns."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if self.m < 1 or self.k < 1 or self.n < 1:
            raise MappingError(f"GEMM dims must be positive, got {self}")

    @property
    def macs(self) -> int:
        """Total multiply-accumulates."""
        return self.m * self.k * self.n


@dataclass
class GemmTiming:
    """Cycle count and scratchpad traffic (element granularity) of one GEMM."""

    cycles: int
    ifmap_reads: int
    filter_reads: int
    ofmap_writes: int
    folds: int

    def __add__(self, other: "GemmTiming") -> "GemmTiming":
        return GemmTiming(
            cycles=self.cycles + other.cycles,
            ifmap_reads=self.ifmap_reads + other.ifmap_reads,
            filter_reads=self.filter_reads + other.filter_reads,
            ofmap_writes=self.ofmap_writes + other.ofmap_writes,
            folds=self.folds + other.folds,
        )


def _ws_timing(shape: GemmShape, rows: int, cols: int) -> GemmTiming:
    """Weight stationary: a (K_t x N_t) filter tile resides in the array;
    ifmap rows stream through.  Partial sums spill across K folds."""
    folds_k = ceil_div(shape.k, rows)
    folds_n = ceil_div(shape.n, cols)
    folds = folds_k * folds_n
    per_fold = 2 * rows + cols + shape.m - 2  # load + stream M + drain
    cycles = folds * per_fold
    ifmap_reads = shape.m * shape.k * folds_n  # ifmap re-read per N fold
    filter_reads = shape.k * shape.n  # each filter element loaded once
    ofmap_writes = shape.m * shape.n * folds_k  # psum spills across K folds
    return GemmTiming(cycles, ifmap_reads, filter_reads, ofmap_writes, folds)


def _os_timing(shape: GemmShape, rows: int, cols: int) -> GemmTiming:
    """Output stationary: an (M_t x N_t) output tile accumulates in place;
    both operands stream for K cycles per fold."""
    folds_m = ceil_div(shape.m, rows)
    folds_n = ceil_div(shape.n, cols)
    folds = folds_m * folds_n
    per_fold = shape.k + rows + cols - 2
    cycles = folds * per_fold
    ifmap_reads = shape.m * shape.k * folds_n
    filter_reads = shape.k * shape.n * folds_m
    ofmap_writes = shape.m * shape.n
    return GemmTiming(cycles, ifmap_reads, filter_reads, ofmap_writes, folds)


def _is_timing(shape: GemmShape, rows: int, cols: int) -> GemmTiming:
    """Input stationary: a (K_t x M_t) ifmap tile resides; filters stream."""
    folds_k = ceil_div(shape.k, rows)
    folds_m = ceil_div(shape.m, cols)
    folds = folds_k * folds_m
    per_fold = 2 * rows + cols + shape.n - 2
    cycles = folds * per_fold
    ifmap_reads = shape.m * shape.k
    filter_reads = shape.k * shape.n * folds_m
    ofmap_writes = shape.m * shape.n * folds_k
    return GemmTiming(cycles, ifmap_reads, filter_reads, ofmap_writes, folds)


def gemm_timing(shape: GemmShape, config: ArrayConfig) -> GemmTiming:
    """Timing of one GEMM under the configured dataflow."""
    if config.dataflow == Dataflow.WEIGHT_STATIONARY:
        return _ws_timing(shape, config.rows, config.cols)
    if config.dataflow == Dataflow.OUTPUT_STATIONARY:
        return _os_timing(shape, config.rows, config.cols)
    return _is_timing(shape, config.rows, config.cols)
