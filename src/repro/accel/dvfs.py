"""Voltage scaling under accuracy constraints (paper §4.2, Figs. 6-7).

Given a model's accuracy-vs-BER curve and the accelerator's voltage-BER
characteristic, find the lowest supply voltage whose induced errors keep
accuracy within the allowed loss, then price the resulting inference energy
with the runtime and power models.

The three schemes mirror the TMR study:

* **ST-Conv** — standard convolution; picks its voltage from its own curve.
* **WG-Conv-W/O-AFT** — runs Winograd (cheaper runtime) but, unaware of
  Winograd's extra tolerance, derives its voltage from the *standard*
  convolution's accuracy curve (conservative).
* **WG-Conv-W/AFT** — Winograd runtime *and* Winograd accuracy curve, so
  it scales deeper and saves the additional energy the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.power import DNN_ENGINE_POWER, PowerModel
from repro.accel.voltage import DNN_ENGINE_VBER, VoltageBerModel
from repro.errors import ConfigurationError

__all__ = [
    "AccuracyCurve",
    "VoltageOperatingPoint",
    "min_voltage_for_accuracy",
    "scheme_energies",
]


@dataclass
class AccuracyCurve:
    """Monotone accuracy-vs-BER curve from a fault-injection sweep.

    Interpolates accuracy in ``log10(BER)``; below the lowest measured BER
    the fault-free accuracy applies, above the highest the worst measured
    accuracy applies.
    """

    bers: np.ndarray
    accuracies: np.ndarray
    fault_free_accuracy: float

    def __init__(self, bers, accuracies, fault_free_accuracy: float):
        bers = np.asarray(bers, dtype=np.float64)
        accuracies = np.asarray(accuracies, dtype=np.float64)
        if bers.shape != accuracies.shape or bers.ndim != 1 or bers.size == 0:
            raise ConfigurationError("bers and accuracies must be equal-length 1-D")
        if np.any(bers <= 0):
            raise ConfigurationError("BER samples must be positive")
        order = np.argsort(bers)
        self.bers = bers[order]
        self.accuracies = accuracies[order]
        self.fault_free_accuracy = float(fault_free_accuracy)

    def accuracy_at(self, ber: float) -> float:
        """Interpolated accuracy at ``ber``."""
        if ber <= 0 or ber < self.bers[0]:
            return self.fault_free_accuracy
        log_b = np.log10(ber)
        return float(
            np.interp(log_b, np.log10(self.bers), self.accuracies)
        )


@dataclass
class VoltageOperatingPoint:
    """One scheme's chosen operating point and its cost."""

    scheme: str
    voltage: float
    ber: float
    accuracy: float
    cycles: int
    energy_joules: float
    feasible: bool

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "scheme": self.scheme,
            "voltage": self.voltage,
            "ber": self.ber,
            "accuracy": self.accuracy,
            "cycles": self.cycles,
            "energy_joules": self.energy_joules,
            "feasible": self.feasible,
        }


def min_voltage_for_accuracy(
    curve: AccuracyCurve,
    accuracy_floor: float,
    vber: VoltageBerModel = DNN_ENGINE_VBER,
    step_mv: float = 2.5,
) -> tuple[float, bool]:
    """Lowest voltage keeping ``curve`` accuracy at or above the floor.

    Scans the operating range downward in ``step_mv`` increments (accuracy
    is monotone in voltage through the BER curve).  Returns ``(voltage,
    feasible)``; infeasible floors pin to the maximum voltage.
    """
    voltages = np.arange(vber.v_max, vber.v_min - 1e-9, -step_mv / 1000.0)
    best = None
    for voltage in voltages:
        accuracy = curve.accuracy_at(vber.ber(float(voltage)))
        if accuracy >= accuracy_floor:
            best = float(voltage)
        else:
            break
    if best is None:
        return vber.v_max, curve.accuracy_at(vber.ber(vber.v_max)) >= accuracy_floor
    return best, True


def scheme_energies(
    curve_standard: AccuracyCurve,
    curve_winograd: AccuracyCurve,
    cycles_standard: int,
    cycles_winograd: int,
    accuracy_loss: float,
    vber: VoltageBerModel = DNN_ENGINE_VBER,
    power: PowerModel = DNN_ENGINE_POWER,
) -> dict[str, VoltageOperatingPoint]:
    """Fig. 7's four bars at one accuracy-loss constraint.

    ``accuracy_loss`` is relative to each execution's fault-free accuracy
    (e.g. 0.03 for the 3 % constraint).  Returns operating points for the
    0.9 V baseline and the three voltage-scaled schemes.
    """
    floor_st = curve_standard.fault_free_accuracy - accuracy_loss
    floor_wg = curve_winograd.fault_free_accuracy - accuracy_loss

    baseline = VoltageOperatingPoint(
        scheme="Base",
        voltage=vber.v_max,
        ber=vber.ber(vber.v_max),
        accuracy=curve_standard.fault_free_accuracy,
        cycles=cycles_standard,
        energy_joules=power.energy(vber.v_max, cycles_standard),
        feasible=True,
    )

    v_st, ok_st = min_voltage_for_accuracy(curve_standard, floor_st, vber)
    st = VoltageOperatingPoint(
        scheme="ST-Conv",
        voltage=v_st,
        ber=vber.ber(v_st),
        accuracy=curve_standard.accuracy_at(vber.ber(v_st)),
        cycles=cycles_standard,
        energy_joules=power.energy(v_st, cycles_standard),
        feasible=ok_st,
    )

    # Unaware: winograd execution at the voltage the ST curve allows.
    wo_aft = VoltageOperatingPoint(
        scheme="WG-Conv-W/O-AFT",
        voltage=v_st,
        ber=vber.ber(v_st),
        accuracy=curve_winograd.accuracy_at(vber.ber(v_st)),
        cycles=cycles_winograd,
        energy_joules=power.energy(v_st, cycles_winograd),
        feasible=ok_st,
    )

    v_wg, ok_wg = min_voltage_for_accuracy(curve_winograd, floor_wg, vber)
    w_aft = VoltageOperatingPoint(
        scheme="WG-Conv-W/AFT",
        voltage=v_wg,
        ber=vber.ber(v_wg),
        accuracy=curve_winograd.accuracy_at(vber.ber(v_wg)),
        cycles=cycles_winograd,
        energy_joules=power.energy(v_wg, cycles_winograd),
        feasible=ok_wg,
    )

    return {
        "Base": baseline,
        "ST-Conv": st,
        "WG-Conv-W/O-AFT": wo_aft,
        "WG-Conv-W/AFT": w_aft,
    }
