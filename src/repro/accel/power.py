"""Accelerator power model under voltage scaling.

Dynamic power follows the CMOS ``C V^2 f`` law; leakage grows super-linearly
with supply voltage (modeled cubic, a standard fit in the 28 nm regime).
Nominal numbers approximate the DNN Engine (Whatmough, JSSC 2018): a 28 nm
design dissipating tens of milliwatts at 0.9 V / 667 MHz.  Absolute watts
cancel in the paper's normalized energy comparisons; what matters is the
V-dependence and the dynamic/leakage split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["PowerModel", "DNN_ENGINE_POWER"]


@dataclass(frozen=True)
class PowerModel:
    """``P(V) = P_dyn * (V/V_nom)^2 * (f/f_nom) + P_leak * (V/V_nom)^3``."""

    v_nom: float = 0.9
    f_nom_hz: float = 667e6
    p_dynamic_w: float = 0.056
    p_leakage_w: float = 0.008

    def power(self, voltage: float, frequency_hz: float | None = None) -> float:
        """Total power (watts) at ``voltage`` and optional frequency."""
        if voltage <= 0:
            raise ConfigurationError(f"voltage must be positive, got {voltage}")
        frequency_hz = self.f_nom_hz if frequency_hz is None else frequency_hz
        ratio_v = voltage / self.v_nom
        dynamic = self.p_dynamic_w * ratio_v**2 * (frequency_hz / self.f_nom_hz)
        leakage = self.p_leakage_w * ratio_v**3
        return dynamic + leakage

    def energy(self, voltage: float, cycles: int, frequency_hz: float | None = None) -> float:
        """Energy (joules) to execute ``cycles`` at ``voltage``."""
        frequency_hz = self.f_nom_hz if frequency_hz is None else frequency_hz
        runtime = cycles / frequency_hz
        return self.power(voltage, frequency_hz) * runtime


#: Nominal DNN-Engine-like operating point.
DNN_ENGINE_POWER = PowerModel()
