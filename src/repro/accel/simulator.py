"""Network-level runtime simulation on the systolic accelerator.

Maps every layer of a :class:`~repro.quantized.qmodel.QuantizedModel` onto
the array and sums cycles:

* direct convolution -> one im2col GEMM ``(K x C r^2) @ (C r^2 x P Q)``;
* Winograd convolution -> ``t^2`` batched GEMMs ``(K x C) @ (C x T)`` per
  DWM piece (the element-wise stage as in FPGA/ASIC Winograd engines) plus
  input/output transforms, bias and recombination on the vector unit;
* fully-connected -> one GEMM with ``N = 1``.

The Winograd mapping is what realizes the paper's premise that the
transformed convolution is cheaper on the same hardware: fewer MACs enter
the array at the cost of vector-unit additions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.config import ArrayConfig, DNN_ENGINE
from repro.accel.dataflow import GemmShape, GemmTiming, gemm_timing
from repro.quantized.qmodel import QuantizedModel
from repro.quantized.qops import QConvDirect, QConvWinograd, QLinear
from repro.utils.mathx import ceil_div
from repro.winograd.transforms import get_transform

__all__ = ["LayerTiming", "NetworkTiming", "simulate_network"]


@dataclass
class LayerTiming:
    """Cycles and traffic for one layer (one image)."""

    name: str
    kind: str
    array_cycles: int
    vector_cycles: int
    macs: int
    ifmap_reads: int = 0
    filter_reads: int = 0
    ofmap_writes: int = 0

    @property
    def cycles(self) -> int:
        """Total layer cycles.

        Winograd accelerators pipeline the transform units with the
        element-wise GEMM stage (Lu et al., FCCM 2017 — the design family
        the paper cites), so the slower of the two phases sets the layer
        latency.  Direct layers have negligible vector work; the max is
        then just the array time plus nothing surprising.
        """
        return max(self.array_cycles, self.vector_cycles)


@dataclass
class NetworkTiming:
    """Whole-network timing summary (one batch of ``batch`` images)."""

    batch: int = 1
    layers: list[LayerTiming] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        """End-to-end cycles for the whole batch."""
        return sum(layer.cycles for layer in self.layers)

    @property
    def cycles_per_image(self) -> float:
        """Amortized cycles per inference."""
        return self.total_cycles / self.batch

    @property
    def total_macs(self) -> int:
        """Total MAC operations entering the array."""
        return sum(layer.macs for layer in self.layers)

    def runtime_seconds(self, frequency_hz: float) -> float:
        """Wall-clock inference latency at the given clock."""
        return self.total_cycles / frequency_hz

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "total_cycles": self.total_cycles,
            "total_macs": self.total_macs,
            "layers": [
                {
                    "name": l.name,
                    "kind": l.kind,
                    "array_cycles": l.array_cycles,
                    "vector_cycles": l.vector_cycles,
                    "macs": l.macs,
                }
                for l in self.layers
            ],
        }


def _direct_conv_timing(layer: QConvDirect, config: ArrayConfig, batch: int) -> LayerTiming:
    c, _, _ = layer.in_shape
    k, p, q = layer.out_shape
    shape = GemmShape(m=k, k=c * layer.kernel * layer.kernel, n=p * q * batch)
    timing = gemm_timing(shape, config)
    bias_cycles = ceil_div(k * p * q * batch, config.vector_lanes)
    return LayerTiming(
        name=layer.name,
        kind="conv-direct",
        array_cycles=timing.cycles,
        vector_cycles=bias_cycles,
        macs=shape.macs,
        ifmap_reads=timing.ifmap_reads,
        filter_reads=timing.filter_reads,
        ofmap_writes=timing.ofmap_writes,
    )


def _winograd_conv_timing(layer: QConvWinograd, config: ArrayConfig, batch: int) -> LayerTiming:
    c, _, _ = layer.in_shape
    k, p, q = layer.out_shape
    tf = get_transform(layer.m, 3)
    tiles = ceil_div(p, tf.m) * ceil_div(q, tf.m)
    pieces = max(1, len(layer.sub_specs))

    array = GemmTiming(0, 0, 0, 0, 0)
    # Batching images along the tile dimension keeps the array's columns
    # utilized even on late layers whose per-image tile count collapses.
    point_gemm = GemmShape(m=k, k=c, n=tiles * batch)
    for _ in range(pieces):
        point = gemm_timing(point_gemm, config)
        # t^2 independent point GEMMs per piece.
        array = array + GemmTiming(
            cycles=point.cycles * tf.t * tf.t,
            ifmap_reads=point.ifmap_reads * tf.t * tf.t,
            filter_reads=point.filter_reads * tf.t * tf.t,
            ofmap_writes=point.ofmap_writes * tf.t * tf.t,
            folds=point.folds * tf.t * tf.t,
        )

    counts = layer.op_counts
    vector_ops = (counts.wg_input_add + counts.wg_output_add) * batch
    vector_cycles = ceil_div(vector_ops, config.vector_lanes)
    macs = counts.wg_mul  # element-wise products executed on the array
    return LayerTiming(
        name=layer.name,
        kind="conv-winograd",
        array_cycles=array.cycles,
        vector_cycles=vector_cycles,
        macs=macs,
        ifmap_reads=array.ifmap_reads,
        filter_reads=array.filter_reads,
        ofmap_writes=array.ofmap_writes,
    )


def _linear_timing(layer: QLinear, config: ArrayConfig, batch: int) -> LayerTiming:
    f_out, f_in = layer.weight_int.shape
    shape = GemmShape(m=f_out, k=f_in, n=batch)
    timing = gemm_timing(shape, config)
    return LayerTiming(
        name=layer.name,
        kind="linear",
        array_cycles=timing.cycles,
        vector_cycles=ceil_div(f_out * batch, config.vector_lanes),
        macs=shape.macs,
        ifmap_reads=timing.ifmap_reads,
        filter_reads=timing.filter_reads,
        ofmap_writes=timing.ofmap_writes,
    )


def simulate_network(
    qmodel: QuantizedModel, config: ArrayConfig = DNN_ENGINE, batch: int = 16
) -> NetworkTiming:
    """Simulate a ``batch``-image inference of ``qmodel`` on the accelerator.

    Batching amortizes pipeline fill/drain and keeps the array utilized on
    layers with few output pixels; ``NetworkTiming.cycles_per_image`` gives
    the amortized per-inference cost.
    """
    timing = NetworkTiming(batch=batch)
    for layer in qmodel.injectable_layers():
        if isinstance(layer, QConvWinograd):
            timing.layers.append(_winograd_conv_timing(layer, config, batch))
        elif isinstance(layer, QConvDirect):
            timing.layers.append(_direct_conv_timing(layer, config, batch))
        elif isinstance(layer, QLinear):
            timing.layers.append(_linear_timing(layer, config, batch))
    return timing
