"""Supply-voltage to bit-error-rate model (DNN-Engine calibration).

The paper's Fig. 6 plots the accelerator's timing-error BER against supply
voltage: roughly 1e-12 at 0.82 V rising to 1e-8 at 0.77 V — four decades
over 50 mV, the classic exponential onset of timing violations under
voltage scaling.  We model

    log10(BER(V)) = log10(BER(V_ref)) - slope * (V - V_ref)

calibrated to those two plotted points, clamped to a floor (error-free
margin above ~0.85 V) and a ceiling (functional collapse).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["VoltageBerModel", "DNN_ENGINE_VBER"]


@dataclass(frozen=True)
class VoltageBerModel:
    """Exponential voltage-to-BER curve.

    Attributes
    ----------
    v_ref:
        Reference voltage (volts).
    ber_ref:
        BER at the reference voltage.
    decades_per_volt:
        Slope of ``log10(BER)`` versus voltage (negative direction: lower
        voltage, higher BER).
    ber_floor, ber_ceil:
        Clamps for the error-free and collapse regimes.
    v_min, v_max:
        Electrical operating range of the accelerator.
    """

    v_ref: float = 0.77
    ber_ref: float = 1e-8
    decades_per_volt: float = 80.0
    ber_floor: float = 1e-15
    ber_ceil: float = 1e-2
    v_min: float = 0.70
    v_max: float = 0.90

    def ber(self, voltage: float) -> float:
        """BER at ``voltage`` (clamped to the model's floor/ceiling)."""
        if not self.v_min - 1e-9 <= voltage <= self.v_max + 1e-9:
            raise ConfigurationError(
                f"voltage {voltage:.3f} V outside operating range "
                f"[{self.v_min}, {self.v_max}] V"
            )
        log_ber = np.log10(self.ber_ref) - self.decades_per_volt * (voltage - self.v_ref)
        return float(np.clip(10.0**log_ber, self.ber_floor, self.ber_ceil))

    def voltage_for_ber(self, ber: float) -> float:
        """Lowest in-range voltage whose BER does not exceed ``ber``."""
        if ber <= 0:
            return self.v_max
        log_target = np.log10(ber)
        voltage = self.v_ref - (log_target - np.log10(self.ber_ref)) / self.decades_per_volt
        return float(np.clip(voltage, self.v_min, self.v_max))

    def sweep(self, points: int = 27) -> list[tuple[float, float]]:
        """(voltage, BER) samples across the operating range."""
        voltages = np.linspace(self.v_min, self.v_max, points)
        return [(float(v), self.ber(float(v))) for v in voltages]


#: Calibrated to the paper's Fig. 6 plotted curve.
DNN_ENGINE_VBER = VoltageBerModel()
