"""Vulnerability and sensitivity analyses built on the fault-injection platform."""

from repro.analysis.vulnerability import (
    LayerVulnerability,
    VulnerabilityReport,
    layer_vulnerability,
)
from repro.analysis.optype import OpTypeSensitivity, operation_type_sensitivity

__all__ = [
    "LayerVulnerability",
    "VulnerabilityReport",
    "layer_vulnerability",
    "OpTypeSensitivity",
    "operation_type_sensitivity",
]
