"""Vulnerability and sensitivity analyses built on the fault-injection platform.

Both analyses accept an ``engine=`` argument
(:class:`repro.runtime.CampaignEngine`) and submit their protected
evaluations as one task batch to
:meth:`~repro.runtime.CampaignEngine.evaluate_tasks`, so figs 3–4 honor
``--workers/--resume/--checkpoint`` end-to-end while remaining
bit-identical to serial execution.  Omitting ``engine`` falls back to a
serial in-process engine.
"""

from repro.analysis.vulnerability import (
    LayerVulnerability,
    VulnerabilityReport,
    layer_vulnerability,
)
from repro.analysis.optype import OpTypeSensitivity, operation_type_sensitivity

__all__ = [
    "LayerVulnerability",
    "VulnerabilityReport",
    "layer_vulnerability",
    "OpTypeSensitivity",
    "operation_type_sensitivity",
]
