"""Operation-type sensitivity analysis (paper §3.2.4, Fig. 4).

Measures network accuracy with all multiplications fault-free (exposing the
sensitivity of additions) and with all additions fault-free (exposing the
sensitivity of multiplications), for any model/BER operating point.

Execution model
---------------
The three campaigns (baseline, muls-fault-free, adds-fault-free) are one
batch of three seed-batch tasks submitted to
:meth:`repro.runtime.CampaignEngine.evaluate_tasks`, which shards the
per-seed subtasks across the pool and reduces each task back to a
:class:`~repro.faultsim.campaign.CampaignResult`; pass ``engine=`` to
shard the batch across workers with per-seed checkpoint/resume (the
experiments CLI's ``--workers/--resume/--checkpoint`` reach here through
Fig. 4).  Without an engine a serial in-process engine is used; results
are bit-identical in every case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faultsim.campaign import CampaignConfig
from repro.faultsim.protection import ProtectionPlan
from repro.quantized.qmodel import QuantizedModel
from repro.runtime.engine import CampaignEngine
from repro.runtime.tasks import TaskSpec

__all__ = ["OpTypeSensitivity", "operation_type_sensitivity"]


@dataclass
class OpTypeSensitivity:
    """Fig. 4-style measurement at one operating point.

    Following the paper's reading: a *higher* accuracy when a category is
    kept fault-free means that category is the more vulnerable one (its
    removal recovers more accuracy).
    """

    ber: float
    baseline_accuracy: float
    accuracy_muls_fault_free: float
    accuracy_adds_fault_free: float

    @property
    def mul_sensitivity(self) -> float:
        """Accuracy recovered by protecting all multiplications."""
        return self.accuracy_muls_fault_free - self.baseline_accuracy

    @property
    def add_sensitivity(self) -> float:
        """Accuracy recovered by protecting all additions."""
        return self.accuracy_adds_fault_free - self.baseline_accuracy

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "ber": self.ber,
            "baseline_accuracy": self.baseline_accuracy,
            "accuracy_muls_fault_free": self.accuracy_muls_fault_free,
            "accuracy_adds_fault_free": self.accuracy_adds_fault_free,
            "mul_sensitivity": self.mul_sensitivity,
            "add_sensitivity": self.add_sensitivity,
        }


def operation_type_sensitivity(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    ber: float,
    config: CampaignConfig | None = None,
    engine: CampaignEngine | None = None,
) -> OpTypeSensitivity:
    """Run the three campaigns (baseline, muls-free, adds-free) at ``ber``.

    All three expand into one task batch, sharded by ``engine`` when one
    is provided (bit-identical to serial for any worker count).
    """
    config = config or CampaignConfig()
    engine = engine if engine is not None else CampaignEngine(workers=1)
    layer_names = [layer.name for layer in qmodel.injectable_layers()]

    plans: list[ProtectionPlan | None] = [
        None,
        ProtectionPlan.fault_free_muls(layer_names),
        ProtectionPlan.fault_free_adds(layer_names),
    ]
    tags = ["baseline", "muls-fault-free", "adds-fault-free"]
    tasks = [
        TaskSpec(ber=ber, seeds=tuple(config.seeds), protection=plan, tag=tag)
        for plan, tag in zip(plans, tags)
    ]
    baseline, muls_free, adds_free = engine.evaluate_tasks(
        qmodel, x, labels, tasks, config=config
    )
    return OpTypeSensitivity(
        ber=ber,
        baseline_accuracy=baseline.mean_accuracy,
        accuracy_muls_fault_free=muls_free.mean_accuracy,
        accuracy_adds_fault_free=adds_free.mean_accuracy,
    )
