"""Pluggable kernel backends for the quantized per-layer hot paths.

Three backends serve the :class:`~repro.backends.base.KernelBackend`
protocol (filter/input/output tile transforms, the ``_channel_reduce``
channel GEMM, the im2col direct-convolution GEMM, requantization):

* ``reference`` — the original NumPy kernels, extracted verbatim; the
  bit-identity baseline.
* ``optimized`` — fused Kronecker transform GEMMs, preallocated scratch
  buffers, zero-copy strided im2col consumption, blocked int64
  fallbacks, in-place requantize.  Bit-identical, substantially faster.
* ``torch`` — optional PyTorch implementation, import-gated: selecting
  it without torch installed raises
  :class:`~repro.errors.BackendUnavailableError`.

Backends are identified by these plain string names everywhere (model
fields, engine/CLI options) and resolved to per-process instances
lazily, which keeps models picklable and fork-safe and — together with
the bit-identity contract — keeps the backend choice out of checkpoint
keys and campaign fingerprints.
"""

from __future__ import annotations

from repro.backends.base import (
    BoundedCache,
    EINSUM_PATHS,
    KernelBackend,
    cached_einsum,
    format_bound,
    kron_row_bound,
    row_bound,
)
from repro.backends.optimized import OptimizedBackend
from repro.backends.reference import ReferenceBackend
from repro.errors import BackendUnavailableError, ConfigurationError

__all__ = [
    "BACKEND_NAMES",
    "BoundedCache",
    "DEFAULT_BACKEND",
    "EINSUM_PATHS",
    "KernelBackend",
    "OptimizedBackend",
    "ReferenceBackend",
    "available_backends",
    "cached_einsum",
    "format_bound",
    "get_backend",
    "kron_row_bound",
    "row_bound",
]

#: Every selectable backend name (torch may still be unavailable).
BACKEND_NAMES = ("reference", "optimized", "torch")

#: The backend models use unless told otherwise.
DEFAULT_BACKEND = "reference"

#: Per-process singleton instances; lazy so the torch import only
#: happens when the torch backend is actually requested.
_INSTANCES: dict[str, KernelBackend] = {}


def get_backend(name: str = DEFAULT_BACKEND) -> KernelBackend:
    """Resolve a backend name to its per-process singleton instance.

    Raises :class:`~repro.errors.ConfigurationError` for unknown names
    and :class:`~repro.errors.BackendUnavailableError` when the torch
    backend is requested without torch installed.
    """
    backend = _INSTANCES.get(name)
    if backend is not None:
        return backend
    if name == "reference":
        backend = ReferenceBackend()
    elif name == "optimized":
        backend = OptimizedBackend()
    elif name == "torch":
        from repro.backends.torch_backend import TorchBackend

        backend = TorchBackend()
    else:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; choose from {BACKEND_NAMES}"
        )
    _INSTANCES[name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """The backend names that can actually be instantiated here.

    ``torch`` is included only when PyTorch imports cleanly, so callers
    (benchmarks, CI matrix steps) can skip it gracefully.
    """
    names = ["reference", "optimized"]
    try:
        get_backend("torch")
    except BackendUnavailableError:
        pass
    else:
        names.append("torch")
    return tuple(names)
