"""Kernel-backend protocol and the shared bounded caches.

The quantized inference path bottoms out in four per-layer hot paths:
the Winograd tile transforms (filter/input/output), the channel GEMM
(:meth:`KernelBackend.channel_reduce`), the im2col direct-convolution
GEMM, and requantization.  :class:`KernelBackend` is the narrow protocol
a compute backend implements to serve those paths; every implementation
must be **bit-identical** to the ``reference`` backend (int64
accumulator semantics), which is what keeps campaign checkpoints
shareable across backends.

This module also hosts :class:`BoundedCache` — the size-capped mapping
behind the einsum-path memo (previously an unbounded module global in
``winograd/conv2d.py``), the fused-transform-matrix cache and the
scratch-buffer pool — plus the magnitude-bound helpers used by the
float64-exactness probes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction

import numpy as np

__all__ = [
    "BoundedCache",
    "EINSUM_PATHS",
    "KernelBackend",
    "cached_einsum",
    "format_bound",
    "kron_row_bound",
    "row_bound",
]


class BoundedCache:
    """Insertion-ordered mapping with a size cap and hit/miss counters.

    Eviction is FIFO: when a *new* key would exceed ``capacity``, the
    oldest entry is dropped.  The cached workloads (einsum contraction
    paths, fused transform matrices, scratch buffers) are keyed by a
    small set of recurring layer geometries, so FIFO behaves like LRU in
    practice while keeping ``put`` O(1) and the implementation trivial
    to reason about in forked worker processes.
    """

    def __init__(self, capacity: int):
        """Create an empty cache holding at most ``capacity`` entries."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data: dict = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key, default=None):
        """Return the cached value for ``key`` (counts a hit or miss)."""
        try:
            value = self._data[key]
        except KeyError:
            self._misses += 1
            return default
        self._hits += 1
        return value

    def put(self, key, value) -> None:
        """Insert ``key``, evicting the oldest entry when over capacity."""
        if key not in self._data and len(self._data) >= self.capacity:
            oldest = next(iter(self._data))
            del self._data[oldest]
            self._evictions += 1
        self._data[key] = value

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._data.clear()

    def __len__(self) -> int:
        """Number of live entries."""
        return len(self._data)

    def __contains__(self, key) -> bool:
        """Membership test without touching the hit/miss counters."""
        return key in self._data

    def stats(self) -> dict:
        """Counters snapshot: size, capacity, hits, misses, evictions."""
        return {
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
        }


#: (subscripts, structural key) -> precomputed np.einsum contraction path.
#: The integer pipeline evaluates the same handful of contraction shapes
#: for every batch of every layer of every campaign unit; recomputing the
#: optimal path each call costs more than some of the small contractions
#: themselves.  Exactness is unaffected: optimized paths only reassociate
#: integer sums/products, and int64 tensordot stays int64.  The cap keeps
#: a long campaign over many layer geometries from growing one dict per
#: process without bound.
EINSUM_PATHS = BoundedCache(capacity=256)


def cached_einsum(
    subscripts: str, *operands: np.ndarray, key: tuple | None = None
) -> np.ndarray:
    """``np.einsum`` with a memoized contraction path.

    ``key`` names the contraction's *structure*; callers whose operands
    carry a batch axis pass shapes with that axis dropped, so the replay
    executor's variable dirty-subset sizes share one cache entry per
    layer geometry instead of growing the cache per batch size (a path
    is a contraction order — valid for any batch extent).  ``None``
    falls back to the full operand shapes.
    """
    if key is None:
        key = tuple(op.shape for op in operands)
    cache_key = (subscripts,) + tuple(key)
    path = EINSUM_PATHS.get(cache_key)
    if path is None:
        path = np.einsum_path(subscripts, *operands, optimize="optimal")[0]
        EINSUM_PATHS.put(cache_key, path)
    return np.einsum(subscripts, *operands, optimize=path)


def format_bound(width: int) -> int:
    """Magnitude bound of a ``width``-bit two's-complement stored integer.

    Every activation entering a quantized layer is saturated to its
    :class:`~repro.fixedpoint.qformat.QFormat` (and the neuron-level
    injector's bit flips stay within the stored width), so ``|x| <=
    2**(width-1)`` holds for all layer inputs.  The exactness probes use
    this instead of scanning ``np.abs(x).max()`` per call.
    """
    return 1 << (width - 1)


def row_bound(matrix: np.ndarray) -> int:
    """Maximum absolute row sum of an integer matrix.

    Applying the matrix to a vector bounded by ``b`` yields entries
    bounded by ``row_bound(matrix) * b`` — the amplification factor the
    transform-stage exactness probes rely on.
    """
    mat = np.asarray(matrix, dtype=np.int64)
    return int(np.abs(mat).sum(axis=1).max())


def kron_row_bound(matrix: np.ndarray) -> int:
    """Maximum absolute row sum of ``kron(matrix, matrix)``.

    Row sums of a Kronecker square are products of row-sum pairs, so the
    maximum is ``row_bound(matrix) ** 2`` — the amplification of the 2-D
    (row *and* column) application of a 1-D Winograd transform.
    """
    return row_bound(matrix) ** 2


class KernelBackend(ABC):
    """Compute backend for the quantized per-layer hot paths.

    Implementations MUST be bit-identical to the ``reference`` backend:
    every method returns exactly the int64 values the reference NumPy
    code produces (the cross-backend differential suite in
    ``tests/test_backends_differential.py`` enforces this).  Because of
    that contract the backend choice never enters checkpoint keys or
    campaign fingerprints.

    All ``*_bound`` parameters are optional conservative magnitude
    bounds on the corresponding operand (``bound >= |operand|.max()``),
    typically derived from the layer's quantization format.  When given,
    a backend may use them for its float64-exactness probes instead of
    scanning the operand; when ``None`` it must fall back to the actual
    magnitudes.  Either probe source selects between two *exact* paths,
    so results never depend on which was used.

    Returned arrays are always freshly allocated (callers accumulate
    into them and retain them in injector contexts); scratch buffers may
    be reused only for internal temporaries.
    """

    #: Registry name of the backend.
    name: str = ""

    @abstractmethod
    def filter_transform(self, tf, weight_int: np.ndarray) -> np.ndarray:
        """Integer filter transform ``G_int g G_int^T``.

        ``(K, C, r, r) -> (K, C, t, t)`` int64; ``tf`` is the
        :class:`~repro.winograd.transforms.WinogradTransform` bundle.
        """

    @abstractmethod
    def input_transform(
        self, tf, tiles: np.ndarray, x_bound: int | None = None
    ) -> np.ndarray:
        """Integer input transform ``B^T d B`` per tile.

        ``(N, C, T, t, t) -> (N, C, T, t, t)`` int64.
        """

    @abstractmethod
    def output_transform(
        self, tf, m_arr: np.ndarray, m_bound: int | None = None
    ) -> np.ndarray:
        """Integer output transform ``A^T M A`` per tile.

        ``(N, K, T, t, t) -> (N, K, T, m, m)`` int64.
        """

    @abstractmethod
    def channel_reduce(
        self,
        u: np.ndarray,
        v: np.ndarray,
        u_bound: int | None = None,
        v_bound: int | None = None,
    ) -> np.ndarray:
        """``M[n,k,T,i,j] = sum_c U[n,c,T,i,j] * V[k,c,i,j]`` exactly."""

    @abstractmethod
    def im2col_gemm(
        self,
        weight2d: np.ndarray,
        cols: np.ndarray,
        w_bound: int | None = None,
        x_bound: int | None = None,
    ) -> np.ndarray:
        """``acc[n,k,p] = sum_r weight2d[k,r] * cols[n,r,p]`` exactly.

        ``cols`` is either the materialized ``(N, C*R*S, P*Q)`` im2col
        matrix or the zero-copy strided ``(N, C, R, S, P, Q)`` patches
        view (:func:`repro.utils.im2col.im2col_patches`); backends that
        cannot consume the view directly materialize it themselves.
        """

    @abstractmethod
    def linear_gemm(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        w_bound: int | None = None,
        x_bound: int | None = None,
    ) -> np.ndarray:
        """``acc[n,k] = sum_f x[n,f] * weight[k,f]`` exactly (int64)."""

    @abstractmethod
    def requantize(
        self,
        acc: np.ndarray,
        acc_frac: int,
        out_fmt,
        extra_ratio: Fraction = Fraction(1),
    ) -> np.ndarray:
        """Accumulator -> stored-integer output format, with saturation.

        Must match :func:`repro.fixedpoint.requantize` bit-for-bit
        (exact rational rescale, round half away from zero, clip).
        """

    def cache_stats(self) -> dict:
        """Snapshot of this backend's internal cache counters by name."""
        return {"einsum_paths": EINSUM_PATHS.stats()}
