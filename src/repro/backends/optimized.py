"""Optimized NumPy kernel backend (bit-identical, substantially faster).

Same int64 results as :class:`~repro.backends.reference.ReferenceBackend`
for every input, from four levers:

* **Fused transform matrices** — the 2-D tile transforms ``B^T d B`` /
  ``A^T M A`` are evaluated as a single float64 BLAS GEMM against the
  precomputed Kronecker square ``kron(M, M)`` (cached per (transform,
  stage, dtype)), replacing the int64 einsum which has no BLAS kernel.
  The float64-exactness fast path of ``_channel_reduce`` is thereby
  extended to the transform stages: a transform output entry is a dot
  product against one row of the Kronecker square, so every partial sum
  is bounded by ``operand_bound * max_row_abs_sum`` and the f64 GEMM is
  provably exact whenever that product stays under ``2**52``.
* **Preallocated scratch buffers** — per-layer f64/int64 temporaries are
  reused across calls via a bounded (tag, shape, dtype) pool, and the
  int64→f64→int64 conversions run as single fused ``np.copyto`` casts
  (including straight out of strided im2col views: zero-copy gather +
  cast in one pass).  Returned arrays are always freshly allocated.
* **No redundant rounding** — f64 GEMM results are provably exact
  integers, so the ``np.rint`` pass is skipped and the cast truncates
  exactly.
* **Blocked int64 fallbacks + vectorized requantize** — when a bound
  exceeds the f64 window the kernels fall back to cache-blocked 2-D
  int64 matmuls (still exact), and requantization runs the fixedpoint
  fast path in-place on a scratch buffer (2 allocations instead of ~6).

Bounds passed by callers are conservative (derived from quantization
formats); both probe outcomes select exact paths, so path choice never
changes results — the same invariant the reference backend relies on.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.backends.base import BoundedCache, EINSUM_PATHS, KernelBackend
from repro.backends.reference import ReferenceBackend, filter_transform_int
from repro.fixedpoint import requantize as _fixedpoint_requantize

__all__ = ["OptimizedBackend"]

#: Target int64 elements per operand block in the blocked matmul
#: fallbacks (roughly half an L2 cache worth of columns).
_INT64_BLOCK_ELEMS = 1 << 16

#: Partial sums below this magnitude are exactly representable in f64.
_F64_EXACT = 2**52


class OptimizedBackend(KernelBackend):
    """Scratch-buffer + fused-transform NumPy backend (bit-identical)."""

    name = "optimized"

    def __init__(self):
        """Set up the fused-matrix cache and the scratch-buffer pool."""
        self._reference = ReferenceBackend()
        #: (stage, m, r, dtype) -> (kron(M, M) as that dtype, row bound).
        self._fused = BoundedCache(capacity=64)
        #: (tag, shape, dtype) -> reusable scratch ndarray.
        self._scratch = BoundedCache(capacity=24)

    # --- internal helpers ----------------------------------------------------
    def _buf(self, tag: str, shape: tuple, dtype=np.float64) -> np.ndarray:
        """Reusable uninitialized scratch array for one internal temporary."""
        key = (tag, shape, np.dtype(dtype).str)
        buf = self._scratch.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._scratch.put(key, buf)
        return buf

    def _fused_matrix(self, stage: str, tf, matrix: np.ndarray) -> tuple:
        """``(kron(M, M) as float64, max abs row sum)`` for a transform stage."""
        key = (stage, tf.m, tf.r, "float64")
        entry = self._fused.get(key)
        if entry is None:
            mat = np.asarray(matrix, dtype=np.int64)
            kron = np.kron(mat, mat)
            bound = int(np.abs(kron).sum(axis=1).max())
            entry = (kron.astype(np.float64), bound)
            self._fused.put(key, entry)
        return entry

    def _fused_apply(
        self, tag: str, kron_f: np.ndarray, flat_src: np.ndarray, out_shape: tuple
    ) -> np.ndarray:
        """One fused cast + GEMM + cast: ``out = flat_src @ kron_f.T`` exactly.

        ``flat_src`` is int64 ``(rows, in_dim)``; the result is a fresh
        int64 array of ``out_shape`` (whose trailing dims flatten to the
        kron's output dim).  Only valid when the caller proved every
        partial sum fits the f64 mantissa.
        """
        rows, in_dim = flat_src.shape
        out_dim = kron_f.shape[0]
        src_f = self._buf(tag + ".in", (rows, in_dim))
        np.copyto(src_f, flat_src, casting="unsafe")
        prod = self._buf(tag + ".out", (rows, out_dim))
        np.matmul(src_f, kron_f.T, out=prod)
        out = np.empty(out_shape, dtype=np.int64)
        np.copyto(out.reshape(rows, out_dim), prod, casting="unsafe")
        return out

    # --- protocol ------------------------------------------------------------
    def filter_transform(self, tf, weight_int: np.ndarray) -> np.ndarray:
        """Offline per-model transform: delegates to the reference einsum."""
        return filter_transform_int(weight_int, tf)

    def input_transform(
        self, tf, tiles: np.ndarray, x_bound: int | None = None
    ) -> np.ndarray:
        """``B^T d B`` as one f64 GEMM against ``kron(B^T, B^T)``."""
        kron_f, amp = self._fused_matrix("input", tf, tf.bt_int)
        x_max = (
            int(x_bound) if x_bound is not None
            else int(np.abs(tiles).max(initial=0))
        )
        n, c, t_count, th, tw = tiles.shape
        if x_max * amp < _F64_EXACT:
            flat = np.ascontiguousarray(tiles).reshape(n * c * t_count, th * tw)
            return self._fused_apply("it", kron_f, flat, tiles.shape)
        return self._reference.input_transform(tf, tiles, x_bound=x_bound)

    def output_transform(
        self, tf, m_arr: np.ndarray, m_bound: int | None = None
    ) -> np.ndarray:
        """``A^T M A`` as one f64 GEMM against ``kron(A^T, A^T)``."""
        kron_f, amp = self._fused_matrix("output", tf, tf.at_int)
        m_max = (
            int(m_bound) if m_bound is not None
            else int(np.abs(m_arr).max(initial=0))
        )
        n, k, t_count, th, tw = m_arr.shape
        if m_max * amp < _F64_EXACT:
            flat = np.ascontiguousarray(m_arr).reshape(n * k * t_count, th * tw)
            return self._fused_apply(
                "ot", kron_f, flat, (n, k, t_count, tf.m, tf.m)
            )
        return self._reference.output_transform(tf, m_arr, m_bound=m_bound)

    def channel_reduce(
        self,
        u: np.ndarray,
        v: np.ndarray,
        u_bound: int | None = None,
        v_bound: int | None = None,
    ) -> np.ndarray:
        """Batched f64 GEMM via fused transpose-casts; blocked int64 fallback."""
        n, c, t_count, th, tw = u.shape
        k = v.shape[0]
        u_max = int(u_bound) if u_bound is not None else int(np.abs(u).max(initial=0))
        v_max = int(v_bound) if v_bound is not None else int(np.abs(v).max(initial=0))
        nt = n * t_count
        out = np.empty((n, k, t_count, th, tw), dtype=np.int64)
        if u_max * v_max * c < _F64_EXACT:
            # One fused cast+transpose per operand, one batched DGEMM,
            # one fused cast+transpose back — no rint pass (the products
            # are exact integers) and no intermediate int64 copies.
            u_f = self._buf("cr.u", (th * tw, c, nt))
            np.copyto(
                u_f.reshape(th, tw, c, n, t_count),
                u.transpose(3, 4, 1, 0, 2),
                casting="unsafe",
            )
            v_f = self._buf("cr.v", (th * tw, k, c))
            np.copyto(
                v_f.reshape(th, tw, k, c), v.transpose(2, 3, 0, 1), casting="unsafe"
            )
            m_f = self._buf("cr.m", (th * tw, k, nt))
            np.matmul(v_f, u_f, out=m_f)
            np.copyto(
                out.transpose(3, 4, 1, 0, 2),
                m_f.reshape(th, tw, k, n, t_count),
                casting="unsafe",
            )
            return out
        # Exact int64 fallback: per tile position, a 2-D matmul blocked
        # over the (N*T) columns so operands stay cache-resident.
        block = max(1, _INT64_BLOCK_ELEMS // max(1, c))
        um = self._buf("cr.ui", (c, nt), np.int64)
        res = self._buf("cr.mi", (k, nt), np.int64)
        for i in range(th):
            for j in range(tw):
                vm = np.ascontiguousarray(v[:, :, i, j])
                np.copyto(um.reshape(c, n, t_count), u[:, :, :, i, j].transpose(1, 0, 2))
                for s in range(0, nt, block):
                    e = min(nt, s + block)
                    np.matmul(vm, um[:, s:e], out=res[:, s:e])
                np.copyto(out[:, :, :, i, j].transpose(1, 0, 2), res.reshape(k, n, t_count))
        return out

    def im2col_gemm(
        self,
        weight2d: np.ndarray,
        cols: np.ndarray,
        w_bound: int | None = None,
        x_bound: int | None = None,
    ) -> np.ndarray:
        """f64 GEMM straight out of the strided patches view when exact."""
        k, reduction = weight2d.shape
        if cols.ndim == 6:
            n = cols.shape[0]
            pq = cols.shape[4] * cols.shape[5]
        else:
            n, _, pq = cols.shape
        w_max = (
            int(w_bound) if w_bound is not None
            else int(np.abs(weight2d).max(initial=0))
        )
        x_max = (
            int(x_bound) if x_bound is not None
            else int(np.abs(cols).max(initial=0))
        )
        if w_max * x_max * reduction < _F64_EXACT:
            cols_f = self._buf("gm.cols", (n, reduction, pq))
            # Fused gather + cast: reads the strided view (or the
            # materialized matrix) directly into f64 scratch in one pass.
            np.copyto(
                cols_f.reshape(cols.shape) if cols.ndim == 6 else cols_f,
                cols,
                casting="unsafe",
            )
            acc_f = self._buf("gm.acc", (n, k, pq))
            np.matmul(weight2d.astype(np.float64), cols_f, out=acc_f)
            out = np.empty((n, k, pq), dtype=np.int64)
            np.copyto(out, acc_f, casting="unsafe")
            return out
        # Blocked exact int64 fallback.
        if cols.ndim == 6:
            cols_i = self._buf("gm.cols64", (n, reduction, pq), np.int64)
            np.copyto(cols_i.reshape(cols.shape), cols)
        else:
            cols_i = cols
        out = np.empty((n, k, pq), dtype=np.int64)
        block = max(1, _INT64_BLOCK_ELEMS // max(1, reduction))
        for s in range(0, pq, block):
            e = min(pq, s + block)
            out[:, :, s:e] = np.matmul(weight2d, cols_i[:, :, s:e])
        return out

    def linear_gemm(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        w_bound: int | None = None,
        x_bound: int | None = None,
    ) -> np.ndarray:
        """f64 GEMM with bound probe; exact int64 matmul fallback."""
        w_max = (
            int(w_bound) if w_bound is not None
            else int(np.abs(weight).max(initial=0))
        )
        x_max = (
            int(x_bound) if x_bound is not None
            else int(np.abs(x).max(initial=0))
        )
        if w_max * x_max * weight.shape[1] < _F64_EXACT:
            n, f = x.shape
            k = weight.shape[0]
            x_f = self._buf("ln.x", (n, f))
            np.copyto(x_f, x, casting="unsafe")
            w_f = weight.astype(np.float64)
            acc_f = self._buf("ln.acc", (n, k))
            np.matmul(x_f, w_f.T, out=acc_f)
            out = np.empty((n, k), dtype=np.int64)
            np.copyto(out, acc_f, casting="unsafe")
            return out
        return x @ weight.T

    def requantize(
        self,
        acc: np.ndarray,
        acc_frac: int,
        out_fmt,
        extra_ratio: Fraction = Fraction(1),
    ) -> np.ndarray:
        """In-place vectorized fixedpoint fast path (bit-identical).

        Runs the int64 rescale-round on a scratch buffer (multiply, abs,
        round, sign restore all in place) and returns the fresh clipped
        array; extreme scales delegate to the exact object-dtype
        fallback of :func:`repro.fixedpoint.requantize`.
        """
        shift = out_fmt.frac - acc_frac
        ratio = extra_ratio * (Fraction(2) ** shift)
        acc = np.asarray(acc, dtype=np.int64)
        num, den = ratio.numerator, ratio.denominator
        if acc.size == 0 or ratio <= 0:
            return _fixedpoint_requantize(acc, acc_frac, out_fmt, extra_ratio=extra_ratio)
        max_abs = int(np.max(np.abs(acc)))
        if max_abs * num + den // 2 >= 2**62:
            return _fixedpoint_requantize(acc, acc_frac, out_fmt, extra_ratio=extra_ratio)
        buf = self._buf("rq", acc.shape, np.int64)
        np.multiply(acc, num, out=buf)
        neg = buf < 0
        np.abs(buf, out=buf)
        buf += den // 2
        buf //= den
        np.negative(buf, out=buf, where=neg)
        return np.clip(buf, out_fmt.qmin, out_fmt.qmax)

    def cache_stats(self) -> dict:
        """Counters for the einsum-path, fused-matrix and scratch caches."""
        return {
            "einsum_paths": EINSUM_PATHS.stats(),
            "fused_transforms": self._fused.stats(),
            "scratch_buffers": self._scratch.stats(),
        }
