"""Reference NumPy kernel backend (the bit-identity baseline).

The hot-path kernels extracted verbatim from ``winograd/conv2d.py`` and
``quantized/qops.py``; every other backend is differentially tested
against this one.  The tile transforms run as memoized-path int64
einsums, the channel GEMM and the im2col GEMM use the float64-exactness
fast path (BLAS matmul + rint when every partial sum provably fits the
f64 mantissa, int64 matmul otherwise), and requantization delegates to
the exact rational :func:`repro.fixedpoint.requantize`.

The exactness probes accept optional operand magnitude bounds (derived
from the layer's quantization format) and fall back to an actual
``np.abs(...).max()`` scan when no bound is supplied — replay's tiny
dirty subsets no longer pay a full-tensor-shaped scan per call when the
format bound is available.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.backends.base import EINSUM_PATHS, KernelBackend, cached_einsum
from repro.fixedpoint import requantize as _fixedpoint_requantize

__all__ = [
    "ReferenceBackend",
    "channel_reduce",
    "exact_int_gemm",
    "filter_transform_int",
    "linear_gemm",
    "materialize_cols",
]


def filter_transform_int(weight_int: np.ndarray, tf) -> np.ndarray:
    """Integer filter transform ``G_int g G_int^T``; scale is ``g_scale**2``."""
    g = tf.g_int
    out = cached_einsum("ij,kcjl,ml->kcim", g, weight_int.astype(np.int64), g)
    return out.astype(np.int64)


def channel_reduce(
    u: np.ndarray,
    v: np.ndarray,
    u_bound: int | None = None,
    v_bound: int | None = None,
) -> np.ndarray:
    """Compute ``M[n,k,T,i,j] = sum_c U[n,c,T,i,j] * V[k,c,i,j]`` exactly.

    This is the arithmetic bottleneck of the integer path.  When every
    partial sum provably fits a float64 mantissa, the reduction runs as a
    batched BLAS matmul in float64 — exact and an order of magnitude
    faster than the int64 einsum fallback.  The proof uses the supplied
    conservative ``u_bound``/``v_bound`` when available (skipping the
    full-tensor magnitude scan), the actual magnitudes otherwise; both
    probe sources choose between two exact paths, so results are
    identical either way.
    """
    n, c, t_count, th, tw = u.shape
    k = v.shape[0]
    u_max = int(u_bound) if u_bound is not None else int(np.abs(u).max(initial=0))
    v_max = int(v_bound) if v_bound is not None else int(np.abs(v).max(initial=0))
    exact_in_f64 = u_max * v_max * c < 2**52

    # Layout: (t*t, C, N*T) and (t*t, K, C) -> (t*t, K, N*T)
    u_r = u.transpose(3, 4, 1, 0, 2).reshape(th * tw, c, n * t_count)
    v_r = v.transpose(2, 3, 0, 1).reshape(th * tw, k, c)
    if exact_in_f64:
        m_r = np.matmul(v_r.astype(np.float64), u_r.astype(np.float64))
        m_r = np.rint(m_r).astype(np.int64)
    else:
        m_r = np.matmul(v_r, u_r)  # int64 matmul: exact, slower
    return (
        m_r.reshape(th, tw, k, n, t_count)
        .transpose(3, 2, 4, 0, 1)
        .copy()
    )


def materialize_cols(cols: np.ndarray) -> np.ndarray:
    """Materialize an im2col operand into its ``(N, C*R*S, P*Q)`` matrix.

    Accepts either the already-materialized matrix (returned unchanged)
    or the zero-copy strided ``(N, C, R, S, P, Q)`` patches view from
    :func:`repro.utils.im2col.im2col_patches`.
    """
    if cols.ndim == 3:
        return cols
    n, c, r, s, p, q = cols.shape
    return np.ascontiguousarray(cols).reshape(n, c * r * s, p * q)


def exact_int_gemm(
    weight: np.ndarray,
    cols: np.ndarray,
    w_bound: int | None = None,
    x_bound: int | None = None,
) -> np.ndarray:
    """``acc[n, k, p] = sum_r weight[k, r] * cols[n, r, p]`` exactly.

    Uses BLAS float64 when every partial sum provably fits the mantissa
    (from the supplied bounds when available, actual magnitudes
    otherwise), int64 otherwise.
    """
    cols = materialize_cols(cols)
    w_max = int(w_bound) if w_bound is not None else int(np.abs(weight).max(initial=0))
    x_max = int(x_bound) if x_bound is not None else int(np.abs(cols).max(initial=0))
    reduction = weight.shape[1]
    if w_max * x_max * reduction < 2**52:
        acc = np.matmul(
            weight.astype(np.float64), cols.astype(np.float64)
        )
        return np.rint(acc).astype(np.int64)
    return np.matmul(weight[None], cols)  # int64 matmul (exact, slower)


def linear_gemm(
    x: np.ndarray,
    weight: np.ndarray,
    w_bound: int | None = None,
    x_bound: int | None = None,
) -> np.ndarray:
    """``acc[n, k] = sum_f x[n, f] * weight[k, f]`` exactly (int64)."""
    w_max = int(w_bound) if w_bound is not None else int(np.abs(weight).max(initial=0))
    x_max = int(x_bound) if x_bound is not None else int(np.abs(x).max(initial=0))
    if w_max * x_max * weight.shape[1] < 2**52:
        return np.rint(
            x.astype(np.float64) @ weight.T.astype(np.float64)
        ).astype(np.int64)
    return x @ weight.T


class ReferenceBackend(KernelBackend):
    """The verbatim NumPy hot paths; bit-identity baseline for all backends."""

    name = "reference"

    def filter_transform(self, tf, weight_int: np.ndarray) -> np.ndarray:
        """Memoized-path int64 einsum ``G_int g G_int^T``."""
        return filter_transform_int(weight_int, tf)

    def input_transform(
        self, tf, tiles: np.ndarray, x_bound: int | None = None
    ) -> np.ndarray:
        """Memoized-path int64 einsum ``B^T d B`` (bounds unused here)."""
        bt = tf.bt_int
        return cached_einsum(
            "ij,nctjl,ml->nctim", bt, tiles, bt,
            key=(bt.shape, tiles.shape[1:], bt.shape),
        )

    def output_transform(
        self, tf, m_arr: np.ndarray, m_bound: int | None = None
    ) -> np.ndarray:
        """Memoized-path int64 einsum ``A^T M A`` (bounds unused here)."""
        at = tf.at_int
        return cached_einsum(
            "ui,nktij,vj->nktuv", at, m_arr, at,
            key=(at.shape, m_arr.shape[1:], at.shape),
        )

    def channel_reduce(
        self,
        u: np.ndarray,
        v: np.ndarray,
        u_bound: int | None = None,
        v_bound: int | None = None,
    ) -> np.ndarray:
        """Batched f64 BLAS matmul with exactness probe; int64 fallback."""
        return channel_reduce(u, v, u_bound=u_bound, v_bound=v_bound)

    def im2col_gemm(
        self,
        weight2d: np.ndarray,
        cols: np.ndarray,
        w_bound: int | None = None,
        x_bound: int | None = None,
    ) -> np.ndarray:
        """f64 GEMM with exactness probe; int64 matmul fallback."""
        return exact_int_gemm(weight2d, cols, w_bound=w_bound, x_bound=x_bound)

    def linear_gemm(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        w_bound: int | None = None,
        x_bound: int | None = None,
    ) -> np.ndarray:
        """f64 GEMM with exactness probe; int64 matmul fallback."""
        return linear_gemm(x, weight, w_bound=w_bound, x_bound=x_bound)

    def requantize(
        self,
        acc: np.ndarray,
        acc_frac: int,
        out_fmt,
        extra_ratio: Fraction = Fraction(1),
    ) -> np.ndarray:
        """Exact rational rescale + round + saturate (fixedpoint kernel)."""
        return _fixedpoint_requantize(acc, acc_frac, out_fmt, extra_ratio=extra_ratio)

    def cache_stats(self) -> dict:
        """Einsum-path cache counters (the reference's only cache)."""
        return {"einsum_paths": EINSUM_PATHS.stats()}
