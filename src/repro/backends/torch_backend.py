"""Optional PyTorch kernel backend (import-gated, bit-identical).

Mirrors the optimized backend's strategy with torch ops: the f64-exact
fast paths run as ``torch.matmul`` double-precision GEMMs (exact for the
same mantissa-bound reason as the NumPy BLAS paths), and any stage whose
magnitude bound exceeds the float64 window falls back to the exact int64
reference kernels — so the backend honors the bit-identity contract on
every input, not just the friendly ones.

When torch is not importable, :data:`TORCH_AVAILABLE` is False and
instantiating :class:`TorchBackend` raises
:class:`~repro.errors.BackendUnavailableError`; the registry surfaces
that as a clean configuration error and every torch-specific test skips.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.backends.base import EINSUM_PATHS, KernelBackend
from repro.backends.reference import ReferenceBackend, materialize_cols
from repro.errors import BackendUnavailableError

try:  # pragma: no cover - exercised only where torch is installed
    import torch

    TORCH_AVAILABLE = True
except Exception:  # pragma: no cover - ImportError or a broken install
    torch = None
    TORCH_AVAILABLE = False

__all__ = ["TORCH_AVAILABLE", "TorchBackend"]

#: Partial sums below this magnitude are exactly representable in f64.
_F64_EXACT = 2**52


def _to_f64(array: np.ndarray):
    """Contiguous float64 torch tensor from an int64 NumPy array/view."""
    return torch.from_numpy(
        np.ascontiguousarray(array, dtype=np.float64)
    )


def _to_int64(tensor) -> np.ndarray:
    """Fresh int64 NumPy array from an exact-integer f64 torch tensor."""
    return tensor.numpy().astype(np.int64)


class TorchBackend(KernelBackend):
    """Torch f64 GEMM fast paths; exact int64 reference fallbacks."""

    name = "torch"

    def __init__(self):
        """Fail fast with a clean error when torch is not importable."""
        if not TORCH_AVAILABLE:
            raise BackendUnavailableError(
                "the 'torch' kernel backend requires PyTorch, which is not "
                "importable in this environment; use 'reference' or "
                "'optimized' instead"
            )
        self._reference = ReferenceBackend()
        #: (stage, m, r) -> (kron(M, M) as f64 tensor, max abs row sum).
        self._fused: dict = {}

    # --- internal helpers ----------------------------------------------------
    def _fused_matrix(self, stage: str, tf, matrix: np.ndarray) -> tuple:
        """``(kron(M, M) as torch f64, max abs row sum)`` per stage."""
        key = (stage, tf.m, tf.r)
        entry = self._fused.get(key)
        if entry is None:
            mat = np.asarray(matrix, dtype=np.int64)
            kron = np.kron(mat, mat)
            bound = int(np.abs(kron).sum(axis=1).max())
            entry = (torch.from_numpy(kron.astype(np.float64)), bound)
            self._fused[key] = entry
        return entry

    def _fused_transform(
        self, stage: str, tf, matrix: np.ndarray, arr: np.ndarray,
        bound: int | None, out_tile: int,
    ):
        """Shared kron-GEMM body of the input/output transforms."""
        kron_f, amp = self._fused_matrix(stage, tf, matrix)
        a_max = (
            int(bound) if bound is not None else int(np.abs(arr).max(initial=0))
        )
        if a_max * amp >= _F64_EXACT:
            return None
        n, c, t_count, th, tw = arr.shape
        flat = _to_f64(arr).reshape(n * c * t_count, th * tw)
        prod = torch.matmul(flat, kron_f.T)
        return _to_int64(prod).reshape(n, c, t_count, out_tile, out_tile)

    # --- protocol ------------------------------------------------------------
    def filter_transform(self, tf, weight_int: np.ndarray) -> np.ndarray:
        """Offline per-model transform: delegates to the reference einsum."""
        return self._reference.filter_transform(tf, weight_int)

    def input_transform(
        self, tf, tiles: np.ndarray, x_bound: int | None = None
    ) -> np.ndarray:
        """``B^T d B`` as a torch f64 kron GEMM; reference fallback."""
        out = self._fused_transform("input", tf, tf.bt_int, tiles, x_bound, tf.t)
        if out is None:
            return self._reference.input_transform(tf, tiles, x_bound=x_bound)
        return out

    def output_transform(
        self, tf, m_arr: np.ndarray, m_bound: int | None = None
    ) -> np.ndarray:
        """``A^T M A`` as a torch f64 kron GEMM; reference fallback."""
        out = self._fused_transform("output", tf, tf.at_int, m_arr, m_bound, tf.m)
        if out is None:
            return self._reference.output_transform(tf, m_arr, m_bound=m_bound)
        return out

    def channel_reduce(
        self,
        u: np.ndarray,
        v: np.ndarray,
        u_bound: int | None = None,
        v_bound: int | None = None,
    ) -> np.ndarray:
        """Batched torch f64 bmm when exact; reference int64 fallback."""
        n, c, t_count, th, tw = u.shape
        k = v.shape[0]
        u_max = int(u_bound) if u_bound is not None else int(np.abs(u).max(initial=0))
        v_max = int(v_bound) if v_bound is not None else int(np.abs(v).max(initial=0))
        if u_max * v_max * c >= _F64_EXACT:
            return self._reference.channel_reduce(u, v, u_bound=u_bound, v_bound=v_bound)
        u_r = _to_f64(u.transpose(3, 4, 1, 0, 2)).reshape(th * tw, c, n * t_count)
        v_r = _to_f64(v.transpose(2, 3, 0, 1)).reshape(th * tw, k, c)
        m_r = torch.bmm(v_r, u_r)
        return np.ascontiguousarray(
            _to_int64(m_r)
            .reshape(th, tw, k, n, t_count)
            .transpose(3, 2, 4, 0, 1)
        )

    def im2col_gemm(
        self,
        weight2d: np.ndarray,
        cols: np.ndarray,
        w_bound: int | None = None,
        x_bound: int | None = None,
    ) -> np.ndarray:
        """Torch f64 GEMM when exact; reference int64 fallback."""
        cols = materialize_cols(cols)
        w_max = (
            int(w_bound) if w_bound is not None
            else int(np.abs(weight2d).max(initial=0))
        )
        x_max = (
            int(x_bound) if x_bound is not None
            else int(np.abs(cols).max(initial=0))
        )
        if w_max * x_max * weight2d.shape[1] >= _F64_EXACT:
            return self._reference.im2col_gemm(
                weight2d, cols, w_bound=w_bound, x_bound=x_bound
            )
        acc = torch.matmul(_to_f64(weight2d), _to_f64(cols))
        return _to_int64(acc)

    def linear_gemm(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        w_bound: int | None = None,
        x_bound: int | None = None,
    ) -> np.ndarray:
        """Torch f64 GEMM when exact; reference int64 fallback."""
        w_max = (
            int(w_bound) if w_bound is not None
            else int(np.abs(weight).max(initial=0))
        )
        x_max = (
            int(x_bound) if x_bound is not None
            else int(np.abs(x).max(initial=0))
        )
        if w_max * x_max * weight.shape[1] >= _F64_EXACT:
            return self._reference.linear_gemm(
                x, weight, w_bound=w_bound, x_bound=x_bound
            )
        acc = torch.matmul(_to_f64(x), _to_f64(weight).T)
        return _to_int64(acc)

    def requantize(
        self,
        acc: np.ndarray,
        acc_frac: int,
        out_fmt,
        extra_ratio: Fraction = Fraction(1),
    ) -> np.ndarray:
        """Exact rational requantization (delegates to the fixedpoint kernel)."""
        return self._reference.requantize(acc, acc_frac, out_fmt, extra_ratio=extra_ratio)

    def cache_stats(self) -> dict:
        """Einsum-path counters plus the fused-matrix cache size."""
        return {
            "einsum_paths": EINSUM_PATHS.stats(),
            "fused_transforms": {"size": len(self._fused)},
        }
