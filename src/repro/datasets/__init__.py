"""Synthetic dataset generation (offline stand-ins for the paper's datasets)."""

from repro.datasets.synthetic import (
    DATASET_PRESETS,
    DatasetSpec,
    SyntheticDataset,
    make_dataset,
)

__all__ = ["DATASET_PRESETS", "DatasetSpec", "SyntheticDataset", "make_dataset"]
