"""Deterministic synthetic image datasets.

The paper evaluates on ImageNet, CIFAR-10 and CIFAR-100, none of which can
be shipped offline.  Fault-injection experiments measure accuracy
*degradation relative to the fault-free model*, so any dataset on which the
model reaches a high, stable fault-free accuracy supports the same relative
measurement (see DESIGN.md §2).

Classes are defined by smooth spatial templates (mixtures of random
low-frequency sinusoidal gratings per channel).  Samples add amplitude
jitter, random circular shifts and white noise, which makes the task
translation-tolerant — learnable by a convnet, not by a linear probe on raw
pixels alone — while staying easy enough that the width-scaled model zoo
trains to a high fault-free accuracy in a few epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import as_rng

__all__ = ["DatasetSpec", "SyntheticDataset", "make_dataset", "DATASET_PRESETS"]


@dataclass(frozen=True)
class DatasetSpec:
    """Generation parameters for a synthetic dataset."""

    name: str
    classes: int
    image_size: int
    channels: int = 3
    #: Number of sinusoidal gratings mixed into each class template.
    components: int = 6
    #: Standard deviation of the additive white noise.
    noise: float = 0.35
    #: Maximum circular shift (pixels) applied per sample.
    max_shift: int = 2
    seed: int = 2022


@dataclass
class SyntheticDataset:
    """A realized dataset split into train and test portions."""

    spec: DatasetSpec
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @property
    def input_shape(self) -> tuple[int, int, int]:
        """Per-image shape ``(C, H, W)``."""
        return self.train_x.shape[1:]


#: Presets mirroring the paper's benchmark pairings (class counts scaled —
#: documented in DESIGN.md; relative fault measurements are class-count
#: independent).
DATASET_PRESETS: dict[str, DatasetSpec] = {
    "cifar10-syn": DatasetSpec(name="cifar10-syn", classes=10, image_size=32),
    "cifar100-syn": DatasetSpec(name="cifar100-syn", classes=20, image_size=32),
    "imagenet-syn": DatasetSpec(name="imagenet-syn", classes=16, image_size=32),
}


def _class_templates(spec: DatasetSpec, rng: np.random.Generator) -> np.ndarray:
    """Build one smooth template per class, shape (classes, C, H, W)."""
    size = spec.image_size
    yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    templates = np.zeros((spec.classes, spec.channels, size, size), dtype=np.float64)
    for c in range(spec.classes):
        for ch in range(spec.channels):
            acc = np.zeros((size, size), dtype=np.float64)
            for _ in range(spec.components):
                fy, fx = rng.uniform(0.5, 3.0, size=2) * (2 * np.pi / size)
                phase = rng.uniform(0, 2 * np.pi)
                amp = rng.uniform(0.5, 1.0)
                acc += amp * np.sin(fy * yy + fx * xx + phase)
            templates[c, ch] = acc
    # Normalize each template to unit RMS so classes are equally "loud".
    rms = np.sqrt((templates**2).mean(axis=(1, 2, 3), keepdims=True))
    return templates / np.maximum(rms, 1e-9)


def _sample_class(
    template: np.ndarray,
    count: int,
    spec: DatasetSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``count`` samples around one class template."""
    c, h, w = template.shape
    amps = rng.uniform(0.8, 1.2, size=(count, 1, 1, 1))
    samples = amps * template[None]
    if spec.max_shift > 0:
        shifts = rng.integers(-spec.max_shift, spec.max_shift + 1, size=(count, 2))
        for i, (dy, dx) in enumerate(shifts):
            samples[i] = np.roll(samples[i], (int(dy), int(dx)), axis=(1, 2))
    samples += rng.normal(0.0, spec.noise, size=samples.shape)
    return samples


def make_dataset(
    spec: DatasetSpec | str,
    train_per_class: int = 64,
    test_per_class: int = 24,
    seed: int | None = None,
) -> SyntheticDataset:
    """Generate a dataset (deterministic for a given spec and seed).

    Parameters
    ----------
    spec:
        A :class:`DatasetSpec` or the name of a preset in
        :data:`DATASET_PRESETS`.
    train_per_class, test_per_class:
        Split sizes per class.
    seed:
        Overrides ``spec.seed`` when given.
    """
    if isinstance(spec, str):
        try:
            spec = DATASET_PRESETS[spec]
        except KeyError:
            raise ConfigurationError(
                f"unknown dataset preset '{spec}'; "
                f"available: {sorted(DATASET_PRESETS)}"
            ) from None
    rng = as_rng(spec.seed if seed is None else seed)
    templates = _class_templates(spec, rng)

    train_parts, test_parts = [], []
    train_labels, test_labels = [], []
    for c in range(spec.classes):
        block = _sample_class(
            templates[c], train_per_class + test_per_class, spec, rng
        )
        train_parts.append(block[:train_per_class])
        test_parts.append(block[train_per_class:])
        train_labels.append(np.full(train_per_class, c, dtype=np.int64))
        test_labels.append(np.full(test_per_class, c, dtype=np.int64))

    train_x = np.concatenate(train_parts).astype(np.float32)
    test_x = np.concatenate(test_parts).astype(np.float32)
    train_y = np.concatenate(train_labels)
    test_y = np.concatenate(test_labels)

    # Standardize with train statistics (shared with test, as in practice).
    mean = train_x.mean()
    std = train_x.std() + 1e-8
    train_x = (train_x - mean) / std
    test_x = (test_x - mean) / std

    # Deterministic shuffle so batches are class-mixed.
    order = as_rng(spec.seed if seed is None else seed).permutation(len(train_x))
    return SyntheticDataset(
        spec=spec,
        train_x=train_x[order],
        train_y=train_y[order],
        test_x=test_x,
        test_y=test_y,
    )
