"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class CheckpointError(ConfigurationError):
    """A campaign checkpoint file is damaged or unreadable.

    Subclasses :class:`ConfigurationError` so existing callers that guard
    checkpoint loading keep working; raised instead of a raw
    ``json.JSONDecodeError`` so corruption is always reported with the
    file path and the salvage options.
    """


class TaskExecutionError(ReproError):
    """A campaign task failed while executing on a backend worker.

    Raised by :class:`repro.runtime.CampaignEngine` for both backends —
    a task that raises inside a forked pool worker and a task a
    distributed queue quarantines after its retry budget — with the
    failing task's identity attached, so campaign drivers report
    failures uniformly regardless of where the work ran.
    """

    def __init__(self, message: str, task_key: str = "", tag: str = ""):
        """Store the failing task's content-hash key and tag on the error."""
        super().__init__(message)
        #: Content-hash checkpoint key of the failing unit ("" if unknown).
        self.task_key = task_key
        #: The failing task's human-readable tag ("" if untagged).
        self.tag = tag


class BackendUnavailableError(ConfigurationError):
    """A kernel backend was requested whose runtime dependency is missing.

    Subclasses :class:`ConfigurationError` so generic configuration
    guards keep working; raised by the backend registry when e.g. the
    ``torch`` backend is selected in an environment without PyTorch.
    """


class QuantizationError(ReproError):
    """A fixed-point format or quantization request is invalid."""


class TransformError(ReproError):
    """A Winograd transform could not be constructed or applied."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class FaultModelError(ReproError):
    """A fault-injection configuration or site reference is invalid."""


class MappingError(ReproError):
    """A layer could not be mapped onto the accelerator model."""


class TrainingError(ReproError):
    """Model training failed to make progress or received bad inputs."""
