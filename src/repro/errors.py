"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class TransientError(ReproError):
    """A failure expected to clear on retry (infrastructure, not logic).

    The unified :class:`repro.runtime.RetryPolicy` classifies exceptions
    into *transient* (worth retrying with backoff: lock contention, chaos
    injections, lost workers) and *permanent* (retrying re-raises the
    same error: bad configuration, shape mismatches).  Library code
    raises a :class:`TransientError` subclass whenever the failure is an
    infrastructure condition rather than a property of the task itself.
    """


class ChaosError(TransientError):
    """A deterministic chaos-framework injection fired (test harness).

    Raised by :class:`repro.runtime.ChaosSpec` hooks — a unit exception
    or a simulated worker crash — so resilience tests can tell injected
    faults from organic ones.  Classified transient: the injection
    decision is a pure function of (chaos seed, task key, attempt), so
    the retried attempt draws fresh and usually succeeds.
    """


class WorkerCrashError(ChaosError):
    """Chaos injection: the executing worker was declared dead mid-unit.

    The distributed backend realizes this as a real ``os._exit`` (the
    lease protocol recovers); the pool backend — whose queue dies with
    its process — raises this in-band instead, and the engine's retry
    path re-runs the unit exactly as a lease reclaim would.
    """


class UnitDeadlineError(TransientError):
    """A unit exceeded its per-unit deadline and was aborted.

    Raised by the :func:`repro.runtime.unit_deadline` watchdog inside
    the worker executing the unit.  Transient by classification: a stall
    is usually environmental (a stolen core, a chaos slow-unit
    injection), so the retry policy re-runs the unit before giving up.
    """


class QueueContentionError(TransientError):
    """SQLite work-queue lock contention outlasted the retry budget.

    Every :class:`repro.runtime.WorkQueue` operation retries
    ``database is locked`` errors with backoff on top of SQLite's own
    ``busy_timeout``; when the budget is spent the operation surfaces
    this typed error instead of a raw ``sqlite3.OperationalError``.
    """


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class CheckpointError(ConfigurationError):
    """A campaign checkpoint file is damaged or unreadable.

    Subclasses :class:`ConfigurationError` so existing callers that guard
    checkpoint loading keep working; raised instead of a raw
    ``json.JSONDecodeError`` so corruption is always reported with the
    file path and the salvage options.
    """


class CheckpointWriteError(CheckpointError, TransientError):
    """A checkpoint flush could not persist its pending records.

    Raised by :class:`repro.runtime.CampaignCheckpoint` when an append
    is torn (short write) or the disk is full (``ENOSPC``).  The store
    rolls the file back to its pre-write state and *retains every
    pending record in memory*, so the flush can be retried with backoff
    — and the engine degrades to checkpoint-less completion (with a loud
    warning) rather than crashing mid-campaign when retries exhaust.
    """


class TaskExecutionError(ReproError):
    """A campaign task failed while executing on a backend worker.

    Raised by :class:`repro.runtime.CampaignEngine` for both backends —
    a task that raises inside a forked pool worker and a task a
    distributed queue quarantines after its retry budget — with the
    failing task's identity attached, so campaign drivers report
    failures uniformly regardless of where the work ran.
    """

    def __init__(self, message: str, task_key: str = "", tag: str = ""):
        """Store the failing task's content-hash key and tag on the error."""
        super().__init__(message)
        #: Content-hash checkpoint key of the failing unit ("" if unknown).
        self.task_key = task_key
        #: The failing task's human-readable tag ("" if untagged).
        self.tag = tag


class TaskQuarantinedError(TaskExecutionError):
    """One or more tasks exhausted their retry budget and were quarantined.

    Both backends raise this same subclass — the pool after the unified
    :class:`repro.runtime.RetryPolicy` spends a unit's attempts, the
    distributed queue when a task's claim budget is spent — so campaign
    scripts can branch on quarantine as a failure class distinct from a
    first-attempt execution error.  ``task_key``/``tag`` name the first
    quarantined unit; :attr:`quarantined_keys` lists every one.
    """

    def __init__(
        self,
        message: str,
        task_key: str = "",
        tag: str = "",
        quarantined_keys: tuple[str, ...] = (),
    ):
        """Store the first failing identity plus all quarantined keys."""
        super().__init__(message, task_key=task_key, tag=tag)
        #: Content-hash keys of every quarantined unit, in batch order.
        self.quarantined_keys = tuple(quarantined_keys)


class BackendUnavailableError(ConfigurationError):
    """A kernel backend was requested whose runtime dependency is missing.

    Subclasses :class:`ConfigurationError` so generic configuration
    guards keep working; raised by the backend registry when e.g. the
    ``torch`` backend is selected in an environment without PyTorch.
    """


class QuantizationError(ReproError):
    """A fixed-point format or quantization request is invalid."""


class TransformError(ReproError):
    """A Winograd transform could not be constructed or applied."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class FaultModelError(ReproError):
    """A fault-injection configuration or site reference is invalid."""


class MappingError(ReproError):
    """A layer could not be mapped onto the accelerator model."""


class TrainingError(ReproError):
    """Model training failed to make progress or received bad inputs."""


#: CLI exit code: success.
EXIT_OK = 0
#: CLI exit code: any :class:`ReproError` without a more specific code.
EXIT_FAILURE = 1
#: CLI exit code: argparse usage errors (argparse's own convention).
EXIT_USAGE = 2
#: CLI exit code: invalid configuration (:class:`ConfigurationError`).
EXIT_CONFIG = 3
#: CLI exit code: a campaign task failed (:class:`TaskExecutionError`).
EXIT_TASK_FAILURE = 4
#: CLI exit code: tasks quarantined (:class:`TaskQuarantinedError`).
EXIT_QUARANTINE = 5
#: CLI exit code: checkpoint corruption (:class:`CheckpointError`).
EXIT_CHECKPOINT = 6


def exit_code_for(exc: BaseException) -> int:
    """Map an exception onto the CLI's documented exit codes.

    Most-specific classes match first — quarantine before generic task
    failure, checkpoint corruption before generic configuration — so
    scripts can branch on the exit status alone.  Exceptions outside the
    :class:`ReproError` taxonomy map to :data:`EXIT_FAILURE`.
    """
    if isinstance(exc, TaskQuarantinedError):
        return EXIT_QUARANTINE
    if isinstance(exc, TaskExecutionError):
        return EXIT_TASK_FAILURE
    if isinstance(exc, CheckpointError):
        return EXIT_CHECKPOINT
    if isinstance(exc, ConfigurationError):
        return EXIT_CONFIG
    return EXIT_FAILURE
