"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class CheckpointError(ConfigurationError):
    """A campaign checkpoint file is damaged or unreadable.

    Subclasses :class:`ConfigurationError` so existing callers that guard
    checkpoint loading keep working; raised instead of a raw
    ``json.JSONDecodeError`` so corruption is always reported with the
    file path and the salvage options.
    """


class QuantizationError(ReproError):
    """A fixed-point format or quantization request is invalid."""


class TransformError(ReproError):
    """A Winograd transform could not be constructed or applied."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class FaultModelError(ReproError):
    """A fault-injection configuration or site reference is invalid."""


class MappingError(ReproError):
    """A layer could not be mapped onto the accelerator model."""


class TrainingError(ReproError):
    """Model training failed to make progress or received bad inputs."""
