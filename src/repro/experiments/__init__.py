"""Experiment drivers: one module per paper figure, plus shared plumbing."""

from repro.experiments.common import (
    FULL,
    QUICK,
    ExperimentProfile,
    PreparedBenchmark,
    accuracy_curve,
    make_engine,
    pick_cliff_ber,
    prepare_benchmark,
    quantized_pair,
    results_dir,
)

__all__ = [
    "ExperimentProfile",
    "QUICK",
    "FULL",
    "PreparedBenchmark",
    "make_engine",
    "prepare_benchmark",
    "quantized_pair",
    "accuracy_curve",
    "pick_cliff_ber",
    "results_dir",
]
