"""Command-line entry point: ``python -m repro.experiments.cli <figure>``.

Examples
--------
Run a single figure with the quick profile::

    python -m repro.experiments.cli fig2

Run everything at full fidelity on all cores, resuming any interrupted
campaign from its checkpoint::

    python -m repro.experiments.cli all --profile full --workers 0 --resume

``--workers/--resume/--checkpoint`` apply to every figure: the accuracy
sweeps of figs 1–2/6–7 and the protected-evaluation batches behind figs
3–5 (layer vulnerability, operation-type sensitivity, TMR planning) all
execute through the same :class:`repro.runtime.CampaignEngine`.
``--speculative`` applies to the planner figures (fig5 and portfolio):
the planner evaluates several candidate protection plans per iteration
concurrently and keeps the first (in the deterministic growth order) that
meets the accuracy goal — results identical to the serial heuristic,
wall-clock much lower on multi-core machines (see ``docs/RUNTIME.md``).
``--protection {tmr,abft,portfolio,all}`` selects which strategies the
``portfolio`` figure compares.

``--shard-samples N`` additionally splits every (BER, seed) evaluation
into N-sample slices, filling the pool even when a figure evaluates a
single point at a time (``--shard-samples auto`` picks the slice size
per batch).  Sample sharding needs partition-invariant fault draws, so
it switches the campaigns to the counter RNG scheme (``--rng-scheme
counter``) — a different, equally valid Monte-Carlo draw than the
default stream scheme, cached and checkpointed separately.

``--replay`` serves every figure's campaigns through the golden-run
cache: the fault-free forward runs once per (model, data) and each
evaluation recomputes only its fault-touched samples — bit-identical
results, a fraction of the arithmetic at low BER.  Replay also requires
the counter RNG scheme, which it implies just like ``--shard-samples``.

``--adaptive-ber`` switches figs 2/6/7 from their fixed BER grids to the
adaptive engine (:mod:`repro.stats`): the BER points are chosen by knee
bisection over the grid's extremes, and every point stops adding seeds
once its confidence interval is inside ``--ci-halfwidth`` (seed budget
``--max-seeds``).  Stopping decisions depend only on canonically ordered
per-seed results, so adaptive runs stay bit-reproducible and resumable
for any ``--workers``/``--shard-samples``/``--replay`` combination.

``--kernel-backend {reference,optimized,torch}`` selects the per-layer
compute backend (:mod:`repro.backends`) for every model: the same int64
results bit-for-bit — backends are differentially tested against the
reference — so campaign checkpoints are shared across kernel backends;
only wall-clock changes.  ``torch`` is available only where PyTorch is
installed and fails with a clean error otherwise.

``--backend distributed`` swaps the forked pool for the work-queue
backend (:mod:`repro.runtime.distributed`): ``--workers`` worker
*subprocesses* pull task leases from a SQLite queue under ``--queue``
(default ``<results>/queue``) and report through per-worker checkpoint
shards — bit-identical results, and resilient to worker death (lease
expiry reclaims the task).  ``python -m repro.experiments.cli worker
--queue DIR`` runs one such worker by hand against an existing batch
directory.

``--chaos SPEC`` arms the deterministic chaos framework
(:mod:`repro.runtime.chaos`) for resilience drills: ``SPEC`` is either a
JSON object or compact ``key=value`` pairs (``seed=7,worker_crash=0.2,
torn_write=0.1,slow_unit=0.05``), and every injection decision is a
pure function of (chaos seed, task key, attempt) — reruns reproduce the
same faults, and a chaos run that completes is bit-identical to an
undisturbed one.
``--max-attempts`` / ``--unit-deadline`` configure the unified retry
policy (:class:`repro.runtime.RetryPolicy`) both backends share.

``python -m repro.experiments.cli checkpoint fsck PATH [--repair]
[--json]`` verifies a checkpoint store or shard directory offline
(per-record CRCs, record shape, duplicates) and with ``--repair``
compacts it to a clean version-3 store, quarantining damaged raw lines
into ``*.quarantined`` sidecars.

Exit codes follow the :mod:`repro.errors` taxonomy so scripts can branch
on the status alone: 0 success, 2 usage errors (argparse), 3 invalid
configuration, 4 task execution failure, 5 tasks quarantined after
retry exhaustion, 6 checkpoint corruption, 1 anything else.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.errors import (
    EXIT_CHECKPOINT,
    EXIT_OK,
    ReproError,
    exit_code_for,
)
from repro.experiments import fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig_portfolio
from repro.experiments.common import FULL, QUICK, make_engine
from repro.runtime import ChaosSpec, RetryPolicy, fsck, stream_reporter
from repro.stats import StopRule

_FIGURES = {
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "portfolio": fig_portfolio,
}


def _shard_samples(value: str):
    """Parse ``--shard-samples``: a positive int or the string 'auto'."""
    if value == "auto":
        return value
    try:
        shard = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if shard < 1:
        raise argparse.ArgumentTypeError("--shard-samples must be >= 1")
    return shard


def _worker_main(argv: list[str]) -> int:
    """Entry point of ``cli worker``: run one queue worker to completion.

    Distinct from the figure interface — a worker serves exactly one
    batch directory (prepared by a coordinating engine) and exits when
    the batch settles, so fleets can be scripted with nothing but this
    command and a shared filesystem.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments worker",
        description="Pull-based campaign worker over one batch directory.",
    )
    parser.add_argument(
        "--queue",
        required=True,
        metavar="DIR",
        help="batch directory holding the payload, queue database and shards",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="stable worker identity; names the checkpoint shard "
        "(default: worker-<host>-<pid>)",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="sleep between claim attempts while leases are outstanding "
        "elsewhere (default: 0.1)",
    )
    parser.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        metavar="N",
        help="exit after completing N tasks (default: run until the "
        "batch settles)",
    )
    args = parser.parse_args(argv)

    from repro.runtime.distributed import run_worker

    completed = run_worker(
        args.queue,
        worker_id=args.worker_id,
        poll=args.poll,
        max_tasks=args.max_tasks,
    )
    print(f"worker finished: {completed} task(s) completed")
    return EXIT_OK


def _format_fsck_report(report) -> str:
    """Human-readable fsck summary naming every dropped key."""
    lines = [
        f"checkpoint fsck: {len(report.files)} file(s), "
        f"{report.intact_records} intact record(s), "
        f"{report.damaged_lines} damaged line(s)"
    ]
    for entry in report.files:
        version = (
            f"v{entry.version}" if entry.version is not None else "not a checkpoint"
        )
        flags = []
        if entry.duplicates:
            flags.append(f"{entry.duplicates} duplicate(s)")
        if entry.repaired:
            flags.append("repaired")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        lines.append(
            f"  {entry.path}: {version}, {entry.records} record(s), "
            f"{len(entry.damaged)} damaged{suffix}"
        )
    if report.dropped_keys:
        lines.append("dropped keys (no intact copy anywhere in the set):")
        lines.extend(f"  {key}" for key in report.dropped_keys)
    keyless = report.unrecoverable - len(report.dropped_keys)
    if keyless:
        lines.append(f"damaged line(s) without an extractable key: {keyless}")
    if report.clean:
        lines.append("store is clean")
    elif report.repaired:
        lines.append(
            "store repaired; damaged lines quarantined to *.quarantined "
            "(resume recomputes any dropped keys)"
        )
    else:
        lines.append("store is DAMAGED; rerun with --repair to compact")
    return "\n".join(lines)


def _checkpoint_main(argv: list[str]) -> int:
    """Entry point of ``cli checkpoint``: offline store maintenance.

    ``fsck PATH`` verifies a checkpoint store (or a directory of shards
    and stores) line by line — version-3 CRCs, record shape, duplicates
    — and with ``--repair`` compacts every damaged or legacy file to a
    clean version-3 store, quarantining damaged raw lines aside.  Exits
    0 when the store is (or was repaired to) clean, 6 when damage
    remains.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments checkpoint",
        description="Verify and repair campaign checkpoint stores.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    fsck_parser = sub.add_parser(
        "fsck",
        help="verify per-record CRCs; --repair compacts to a clean store",
    )
    fsck_parser.add_argument(
        "path",
        metavar="PATH",
        help="checkpoint file, or directory of shards/stores to walk",
    )
    fsck_parser.add_argument(
        "--repair",
        action="store_true",
        help="rewrite damaged/legacy files as clean v3 stores "
        "(damaged raw lines are kept in *.quarantined sidecars)",
    )
    fsck_parser.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit the full report as JSON (for CI artifacts)",
    )
    args = parser.parse_args(argv)
    report = fsck(args.path, repair=args.repair)
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(_format_fsck_report(report))
    if report.clean:
        return EXIT_OK
    if args.repair and fsck(args.path).clean:
        return EXIT_OK
    return EXIT_CHECKPOINT


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, run the requested experiments, print reports.

    Dispatches the ``worker`` and ``checkpoint`` subcommands, then the
    figure interface.  :class:`~repro.errors.ReproError` failures exit
    with the taxonomy's code (see the module docstring) instead of a
    traceback.
    """
    if argv is None:
        argv = sys.argv[1:]
    try:
        if argv and argv[0] == "worker":
            return _worker_main(argv[1:])
        if argv and argv[0] == "checkpoint":
            return _checkpoint_main(argv[1:])
        return _figures_main(argv)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


def _figures_main(argv: list[str]) -> int:
    """The figure interface: parse flags, run figures, print reports."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures as text reports + JSON.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        choices=sorted(_FIGURES) + ["all", "headline"],
        help="figure id(s) to regenerate, or 'headline' for the summary",
    )
    parser.add_argument(
        "--profile",
        choices=("quick", "full"),
        default="quick",
        help="evaluation budget (default: quick)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="campaign worker processes for all figures, including the "
        "figs 3-5 analysis batches; 0 = all visible cores (default: 1)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume completed evaluation tasks from the campaign checkpoint",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="campaign checkpoint file (default: <results>/checkpoints/campaign.json)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream per-point campaign progress to stderr",
    )
    parser.add_argument(
        "--speculative",
        action="store_true",
        help="fig5/portfolio only: evaluate several planner candidates per "
        "iteration concurrently (result-identical to the paper's serial "
        "heuristic; pairs with --workers)",
    )
    parser.add_argument(
        "--protection",
        choices=("tmr", "abft", "portfolio", "all"),
        default="all",
        help="portfolio figure only: which protection strategies to "
        "compare — whole-layer TMR, checksum ABFT, the mixed per-layer "
        "portfolio, or all three (default: all)",
    )
    parser.add_argument(
        "--shard-samples",
        type=_shard_samples,
        default=None,
        metavar="N",
        help="split every (BER, seed) evaluation into N-sample slices so "
        "a single point fills the worker pool ('auto' picks the slice "
        "size per batch); implies --rng-scheme counter (pairs with "
        "--workers)",
    )
    parser.add_argument(
        "--replay",
        action="store_true",
        help="serve every campaign through the golden-run cache: one "
        "fault-free forward per (model, data), each evaluation recomputes "
        "only fault-touched samples (bit-identical results); implies "
        "--rng-scheme counter",
    )
    parser.add_argument(
        "--no-replay",
        dest="replay",
        action="store_false",
        help="disable golden-run replay (the default)",
    )
    parser.add_argument(
        "--adaptive-ber",
        action="store_true",
        help="figs 2/6/7: replace the fixed BER grid with adaptive "
        "knee-bisection sampling and per-point early stopping "
        "(deterministic for any --workers/--shard-samples/--replay)",
    )
    parser.add_argument(
        "--ci-halfwidth",
        type=float,
        default=None,
        metavar="W",
        help="adaptive mode: stop adding seeds at a BER point once its "
        "Wilson confidence interval's half-width is <= W (default: 0.02)",
    )
    parser.add_argument(
        "--max-seeds",
        type=int,
        default=None,
        metavar="N",
        help="adaptive mode: seed budget per BER point (default: 8)",
    )
    parser.add_argument(
        "--rng-scheme",
        choices=("stream", "counter"),
        default=None,
        help="injector RNG scheme: 'stream' (legacy sequential draws, "
        "default) or 'counter' (site-keyed partition-invariant draws, "
        "required by --shard-samples)",
    )
    parser.add_argument(
        "--backend",
        choices=("pool", "distributed"),
        default="pool",
        help="campaign executor: 'pool' (forked multiprocessing pool, "
        "default) or 'distributed' (work-queue worker subprocesses with "
        "lease/heartbeat/retry; bit-identical results; pairs with "
        "--workers)",
    )
    parser.add_argument(
        "--queue",
        metavar="DIR",
        default=None,
        help="distributed backend only: directory for its batch "
        "directories (default: <results>/queue)",
    )
    parser.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="deterministic chaos injection for resilience drills: a JSON "
        "object or pairs like 'seed=7,worker_crash=0.2,torn_write=0.1,"
        "slow_unit=0.05' (rates: unit_error, slow_unit, worker_crash, "
        "torn_write, enospc, lost_heartbeat; plus seed, "
        "slow_unit_seconds, fail_tags=a|b).  Decisions are pure "
        "functions of (seed, task key, attempt); a completing chaos run "
        "is bit-identical to an undisturbed one",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="retry budget per campaign unit on both backends before it "
        "is quarantined (default: 3)",
    )
    parser.add_argument(
        "--unit-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-unit deadline watchdog: a unit running longer is "
        "aborted and retried under the same budget (default: none)",
    )
    parser.add_argument(
        "--kernel-backend",
        choices=("reference", "optimized", "torch"),
        default=None,
        help="per-layer compute backend for every model (see "
        "repro.backends): 'reference' (default NumPy kernels), "
        "'optimized' (fused-transform/scratch-buffer NumPy, same bits, "
        "faster) or 'torch' (optional, needs PyTorch installed).  "
        "Bit-identical by contract, so checkpoints are shared across "
        "kernel backends",
    )
    args = parser.parse_args(argv)
    if args.queue is not None and args.backend != "distributed":
        parser.error("--queue requires --backend distributed")

    scheme = args.rng_scheme
    if args.shard_samples is not None:
        if scheme == "stream":
            parser.error(
                "--shard-samples requires the counter RNG scheme; drop "
                "--rng-scheme stream"
            )
        scheme = "counter"
    if args.replay:
        if scheme == "stream":
            parser.error(
                "--replay requires the counter RNG scheme; drop "
                "--rng-scheme stream"
            )
        scheme = "counter"

    rule = None
    if args.adaptive_ber:
        rule_kwargs = {}
        if args.ci_halfwidth is not None:
            rule_kwargs["halfwidth"] = args.ci_halfwidth
        if args.max_seeds is not None:
            rule_kwargs["max_seeds"] = args.max_seeds
        rule = rule_kwargs  # completed below once the profile is known
    elif args.ci_halfwidth is not None or args.max_seeds is not None:
        parser.error("--ci-halfwidth/--max-seeds require --adaptive-ber")

    # Parsed here (not in argparse) so a malformed spec exits with the
    # configuration code (3), not argparse's usage code (2).
    chaos = ChaosSpec.parse(args.chaos) if args.chaos else None
    retry = None
    if args.max_attempts is not None or args.unit_deadline is not None:
        retry_kwargs = {}
        if args.max_attempts is not None:
            retry_kwargs["max_attempts"] = args.max_attempts
        if args.unit_deadline is not None:
            retry_kwargs["deadline"] = args.unit_deadline
        retry = RetryPolicy(**retry_kwargs)

    profile = FULL if args.profile == "full" else QUICK
    if scheme is not None:
        profile = dataclasses.replace(profile, rng_scheme=scheme)
    if rule is not None:
        # min_seeds anchors at the profile's configured seed count, so a
        # settled point's estimate matches the fixed-grid estimate (and
        # shares its checkpoint entries) exactly.
        rule = StopRule(min_seeds=len(profile.seeds), **rule)
    engine = make_engine(
        workers=args.workers,
        resume=args.resume,
        checkpoint=args.checkpoint,
        progress=stream_reporter() if args.progress else None,
        sample_shard=args.shard_samples,
        replay=args.replay,
        backend=args.backend,
        queue=args.queue,
        kernel_backend=args.kernel_backend,
        chaos=chaos,
        retry=retry,
    )
    targets = sorted(_FIGURES) if "all" in args.figures else args.figures
    for name in targets:
        if name == "headline":
            from repro.experiments.headline import collect_headlines, format_headlines

            print(format_headlines(collect_headlines()))
            print()
            continue
        module = _FIGURES[name]
        extra = {}
        if name == "fig5":
            extra = {"speculative": args.speculative}
        elif name == "portfolio":
            extra = {
                "speculative": args.speculative,
                "protection": args.protection,
            }
        elif name in ("fig2", "fig6", "fig7") and rule is not None:
            extra = {"adaptive": rule}
        payload = module.run(profile=profile, engine=engine, **extra)
        print(module.format_report(payload))
        print()
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
