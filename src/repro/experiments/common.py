"""Shared experiment infrastructure: model zoo, caching, profiles.

Experiment drivers share four services:

* :func:`prepare_benchmark` — build, train (once, cached to
  ``results/models``) and package a benchmark network with its dataset;
* :func:`quantized_pair` — int8/int16 standard + Winograd quantizations;
* :func:`accuracy_curve` — cached accuracy-vs-BER sweeps;
* :class:`ExperimentProfile` — quick/full evaluation budgets.

BER axis note (DESIGN.md §2): our width-scaled models execute fewer ops per
inference than the paper's full-size networks, so the same expected fault
count per inference (lambda) occurs at a proportionally higher BER.  Every
cached curve stores both axes; voltage experiments calibrate the
voltage-BER model in lambda space.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.datasets import SyntheticDataset, make_dataset
from repro.errors import ConfigurationError
from repro.faultsim import (
    CampaignConfig,
    CampaignResult,
    FaultModelConfig,
    RNG_STREAM,
    run_sweep,
)
from repro.runtime import CampaignEngine, adaptive_fingerprint
from repro.stats import KneeConfig, StopRule, adaptive_sweep, knee_search
from repro.models import BENCHMARKS, build_benchmark_model
from repro.nn import Adam, TrainConfig, evaluate_accuracy, initialize, train
from repro.quantized import QuantConfig, QuantizedModel, quantize_model
from repro.utils.serialization import load_json, load_npz_state, save_json, save_npz_state

__all__ = [
    "ExperimentProfile",
    "QUICK",
    "FULL",
    "PreparedBenchmark",
    "results_dir",
    "make_engine",
    "prepare_benchmark",
    "quantized_pair",
    "accuracy_curve",
    "adaptive_accuracy_curve",
    "pick_cliff_ber",
]


def results_dir() -> Path:
    """Root directory for cached artifacts (override with ``REPRO_RESULTS``)."""
    return Path(os.environ.get("REPRO_RESULTS", "results"))


def make_engine(
    workers: int | None = 1,
    resume: bool = False,
    checkpoint: str | Path | None = None,
    progress=None,
    sample_shard: int | str | None = None,
    replay: bool = False,
    backend: str = "pool",
    queue: str | Path | None = None,
    kernel_backend: str | None = None,
    chaos=None,
    retry=None,
) -> CampaignEngine:
    """Campaign engine with the default checkpoint under ``results_dir()``.

    The shared checkpoint file is safe across figures and models: points
    are keyed by a content hash of (model, campaign, BER, seed[, sample
    slice]).  ``sample_shard`` splits every (BER, seed) subtask into
    sample slices (requires a counter-scheme profile; see the CLI's
    ``--shard-samples``); ``replay`` serves campaigns through the
    golden-run cache (CLI ``--replay``) — both change wall-clock only,
    never results.  ``backend="distributed"`` executes batches through
    the work-queue backend (CLI ``--backend distributed``) with its batch
    directories under ``queue`` (default ``<results>/queue``) —
    bit-identical to the pool.  ``kernel_backend`` selects the per-layer
    compute backend (CLI ``--kernel-backend``; see :mod:`repro.backends`)
    applied to every model the engine evaluates — also bit-identical by
    contract, so checkpoints stay shareable across kernel backends.
    ``chaos`` (a :class:`repro.runtime.ChaosSpec`; CLI ``--chaos``)
    injects deterministic faults for resilience drills, and ``retry``
    (a :class:`repro.runtime.RetryPolicy`; CLI ``--max-attempts`` /
    ``--unit-deadline``) sets the shared retry/backoff/deadline policy —
    neither changes completed results, chaos only perturbs the road
    there.
    """
    path = Path(checkpoint) if checkpoint else results_dir() / "checkpoints" / "campaign.json"
    queue_dir = None
    if backend == "distributed":
        queue_dir = Path(queue) if queue else results_dir() / "queue"
    return CampaignEngine(
        workers=workers,
        checkpoint_path=path,
        resume=resume,
        progress=progress,
        sample_shard=sample_shard,
        replay=replay,
        backend=backend,
        queue_dir=queue_dir,
        kernel_backend=kernel_backend,
        chaos=chaos,
        retry=retry,
    )


@dataclass(frozen=True)
class ExperimentProfile:
    """Evaluation budget for an experiment run."""

    name: str
    eval_samples: int = 120
    calib_samples: int = 128
    seeds: tuple[int, ...] = (0, 1)
    batch_size: int = 60
    #: BER sweep for Fig. 2-style curves (0 is always prepended).
    ber_grid: tuple[float, ...] = (1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5)
    train_epochs: int = 8
    #: Injector RNG scheme ("stream" or "counter"); the CLI switches to
    #: "counter" when sample sharding is requested.  The two schemes are
    #: different (equally valid) Monte-Carlo draws, so curves and
    #: checkpoints are cached per scheme.
    rng_scheme: str = RNG_STREAM

    def campaign(self, injector: str = "operation") -> CampaignConfig:
        """Campaign configuration matching this profile."""
        return CampaignConfig(
            seeds=self.seeds,
            batch_size=self.batch_size,
            injector=injector,
            max_samples=self.eval_samples,
            fault_config=FaultModelConfig(rng_scheme=self.rng_scheme),
        )


QUICK = ExperimentProfile(
    name="quick",
    eval_samples=80,
    seeds=(0, 1),
    ber_grid=(3e-7, 1e-6, 3e-6, 1e-5, 3e-5),
)

FULL = ExperimentProfile(
    name="full",
    eval_samples=240,
    seeds=(0, 1, 2),
    ber_grid=(1e-8, 1e-7, 3e-7, 1e-6, 2e-6, 4e-6, 1e-5, 2e-5, 4e-5, 1e-4),
    train_epochs=10,
)


@dataclass
class PreparedBenchmark:
    """A trained benchmark network packaged with its data."""

    name: str
    paper_label: str
    graph: object
    dataset: SyntheticDataset
    float_accuracy: float

    @property
    def eval_x(self) -> np.ndarray:
        return self.dataset.test_x

    @property
    def eval_y(self) -> np.ndarray:
        return self.dataset.test_y

    @property
    def calib_x(self) -> np.ndarray:
        return self.dataset.train_x


#: Width scalings per benchmark (keep the NumPy substrate tractable).
_TRAIN_SETTINGS: dict[str, dict] = {
    "vgg19": {"lr": 2e-3, "train_per_class": 48, "test_per_class": 14},
    "resnet50": {"lr": 2e-3, "train_per_class": 60, "test_per_class": 16},
    "googlenet": {"lr": 2e-3, "train_per_class": 56, "test_per_class": 26},
    "densenet169": {"lr": 2e-3, "train_per_class": 40, "test_per_class": 16},
}


def prepare_benchmark(
    name: str,
    profile: ExperimentProfile = QUICK,
    seed: int = 0,
    force_retrain: bool = False,
) -> PreparedBenchmark:
    """Build and train a benchmark model, caching weights on disk."""
    bench = BENCHMARKS[name]
    settings = _TRAIN_SETTINGS[name]
    dataset = make_dataset(
        bench.dataset,
        train_per_class=settings["train_per_class"],
        test_per_class=settings["test_per_class"],
    )
    graph = build_benchmark_model(name)
    initialize(graph, seed)

    cache = results_dir() / "models" / f"{name}-seed{seed}.npz"
    if cache.exists() and not force_retrain:
        graph.load_state_dict(load_npz_state(cache))
    else:
        optimizer = Adam(graph, settings["lr"])
        train(
            graph,
            optimizer,
            dataset.train_x,
            dataset.train_y,
            dataset.test_x,
            dataset.test_y,
            TrainConfig(
                epochs=profile.train_epochs,
                batch_size=64,
                target_accuracy=0.985,
            ),
        )
        save_npz_state(cache, graph.state_dict())

    accuracy = evaluate_accuracy(graph, dataset.test_x, dataset.test_y)
    return PreparedBenchmark(
        name=name,
        paper_label=bench.paper_label,
        graph=graph,
        dataset=dataset,
        float_accuracy=accuracy,
    )


def quantized_pair(
    prep: PreparedBenchmark,
    width: int,
    profile: ExperimentProfile = QUICK,
    wg_tile: int = 2,
) -> tuple[QuantizedModel, QuantizedModel]:
    """Standard and Winograd quantizations of a prepared benchmark."""
    config = QuantConfig(width=width, wg_tile=wg_tile)
    calib = prep.calib_x[: profile.calib_samples]
    qm_st = quantize_model(prep.graph, calib, config, "standard")
    qm_wg = quantize_model(prep.graph, calib, config, "winograd")
    for qm in (qm_st, qm_wg):
        qm.metadata["benchmark"] = prep.name
        qm.metadata["float_accuracy"] = prep.float_accuracy
        qm.metadata["fault_free_accuracy"] = qm.evaluate(
            prep.eval_x[: profile.eval_samples], prep.eval_y[: profile.eval_samples]
        )
    return qm_st, qm_wg


def _curve_cache_key(qmodel: QuantizedModel, bers, config: CampaignConfig) -> str:
    payload = json.dumps(
        {
            "benchmark": qmodel.metadata.get("benchmark", qmodel.name),
            "mode": qmodel.conv_mode,
            "width": qmodel.config.width,
            "guard": qmodel.config.acc_guard,
            "tile": qmodel.config.wg_tile,
            "bers": list(map(float, bers)),
            "seeds": list(config.seeds),
            "samples": config.max_samples,
            "injector": config.injector,
            "semantics": config.fault_config.semantics.value,
            "convention": config.fault_config.convention.value,
            "amplify": config.fault_config.amplify_input_transform_adds,
            # Empty at the stream default (historical cache keys stay
            # valid); counter-scheme curves cache separately.
            **config.fault_config.rng_identity(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def accuracy_curve(
    qmodel: QuantizedModel,
    prep: PreparedBenchmark,
    bers: list[float],
    config: CampaignConfig,
    use_cache: bool = True,
    engine: CampaignEngine | None = None,
) -> list[CampaignResult]:
    """Accuracy-vs-BER sweep with JSON result caching.

    When ``engine`` is provided the sweep's (BER, seed) units are executed
    through the :class:`~repro.runtime.CampaignEngine` (sharded workers,
    point-level checkpoint/resume); results are bit-identical to the serial
    path, so the curve cache is shared between both.
    """
    key = _curve_cache_key(qmodel, bers, config)
    cache = results_dir() / "curves" / f"{key}.json"
    if use_cache and cache.exists():
        rows = load_json(cache)
        return [
            CampaignResult(
                ber=row["ber"],
                lam=row["lambda"],
                mean_accuracy=row["mean_accuracy"],
                std_accuracy=row["std_accuracy"],
                per_seed=row["per_seed"],
                events_per_seed=row["events_per_seed"],
            )
            for row in rows
        ]
    if engine is not None:
        results = engine.run_sweep(
            qmodel, prep.eval_x, prep.eval_y, bers, config=config
        )
    else:
        results = run_sweep(
            qmodel,
            prep.eval_x,
            prep.eval_y,
            bers,
            config=config,
        )
    save_json(cache, [r.to_dict() for r in results])
    return results


def _adaptive_point_meta(point) -> dict:
    """Per-point metadata row (the result rows carry the accuracies)."""
    row = point.to_dict()
    row.pop("result")
    return row


def adaptive_accuracy_curve(
    qmodel: QuantizedModel,
    prep: PreparedBenchmark,
    config: CampaignConfig,
    rule: StopRule,
    knee: KneeConfig | None = None,
    grid: list[float] | None = None,
    use_cache: bool = True,
    engine: CampaignEngine | None = None,
) -> tuple[list[CampaignResult], dict]:
    """Adaptive accuracy-vs-BER curve with JSON result caching.

    Exactly one of ``knee`` (BER-knee bisection chooses the points,
    :func:`repro.stats.knee_search`) and ``grid`` (explicit BER points,
    each early-stopped, :func:`repro.stats.adaptive_sweep`) must be
    given.  Returns ``(rows, meta)``: ``rows`` are ordinary
    :class:`CampaignResult` entries (BER-ascending in knee mode, grid
    order otherwise) and ``meta`` records the per-point seed usage, stop
    decisions, intervals, the knee bracket and the unit totals.

    The cache key is the fixed-grid curve key suffixed with
    :func:`repro.runtime.adaptive_fingerprint` over the stop rule and
    the knee window / grid — legacy fixed-grid cache files are never
    touched, and two adaptive runs differing only in ``round_seeds``
    (scheduling, not decisions) share one entry.  Unit-level checkpoint
    entries are shared with fixed-grid runs regardless.
    """
    if (knee is None) == (grid is None):
        raise ConfigurationError(
            "adaptive_accuracy_curve requires exactly one of knee= or grid="
        )
    base = _curve_cache_key(qmodel, [], config)
    suffix = adaptive_fingerprint(
        rule.identity(),
        knee.identity() if knee is not None else None,
        grid,
    )
    cache = results_dir() / "curves" / f"{base}-a{suffix}.json"
    if use_cache and cache.exists():
        doc = load_json(cache)
        rows = [
            CampaignResult(
                ber=row["ber"],
                lam=row["lambda"],
                mean_accuracy=row["mean_accuracy"],
                std_accuracy=row["std_accuracy"],
                per_seed=row["per_seed"],
                events_per_seed=row["events_per_seed"],
            )
            for row in doc["rows"]
        ]
        return rows, doc["meta"]
    if knee is not None:
        found = knee_search(
            qmodel, prep.eval_x, prep.eval_y, knee,
            config=config, rule=rule, engine=engine,
        )
        points = found.points
        meta = {
            "mode": "knee",
            "rule": rule.identity(),
            "knee": knee.identity(),
            "knee_ber": found.knee_ber,
            "bracket": list(found.bracket) if found.bracket else None,
            "target_accuracy": found.target_accuracy,
            "rounds": found.rounds,
            "total_units": found.total_units,
            "computed_units": found.computed_units,
            "cached_units": found.cached_units,
            "points": [_adaptive_point_meta(p) for p in points],
        }
    else:
        sweep = adaptive_sweep(
            qmodel, prep.eval_x, prep.eval_y, list(grid),
            config=config, rule=rule, engine=engine,
        )
        points = sweep.points
        meta = {
            "mode": "grid",
            "rule": rule.identity(),
            "grid": [float(b) for b in grid],
            "rounds": sweep.rounds,
            "total_units": sweep.total_units,
            "computed_units": sweep.computed_units,
            "cached_units": sweep.cached_units,
            "points": [_adaptive_point_meta(p) for p in points],
        }
    rows = [p.result for p in points]
    save_json(cache, {"rows": [r.to_dict() for r in rows], "meta": meta})
    return rows, meta


def pick_cliff_ber(
    results: list[CampaignResult],
    fault_free_accuracy: float,
    target_fraction: float = 0.6,
) -> float:
    """BER whose accuracy is closest to ``target_fraction`` of fault-free.

    Fig. 3/4/5 operate "mid-cliff" (the paper's 3e-10 puts VGG19 at roughly
    55 % of its original accuracy); this selects the equivalent operating
    point on our scaled BER axis.
    """
    target = fault_free_accuracy * target_fraction
    best = min(results, key=lambda r: abs(r.mean_accuracy - target))
    return best.ber
