"""Figure 1 — neuron-level vs operation-level fault injection.

Reproduces the paper's motivating comparison: VGG19 (int16) executed with
standard and Winograd convolution, injected by (a) a neuron-level platform
(TensorFI/PyTorchFI-style) and (b) the operation-level platform.  The
neuron-level series for the two convolution algorithms coincide — the
injector perturbs activation values, which are identical between the two
algorithms — while the operation-level series separate cleanly.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentProfile,
    QUICK,
    accuracy_curve,
    prepare_benchmark,
    quantized_pair,
)
from repro.experiments.common import results_dir
from repro.utils.serialization import save_json

__all__ = ["run", "format_report"]


def run(
    profile: ExperimentProfile = QUICK,
    benchmark: str = "vgg19",
    width: int = 16,
    engine=None,
) -> dict:
    """Execute the Fig. 1 experiment; returns the four accuracy series."""
    prep = prepare_benchmark(benchmark, profile)
    qm_st, qm_wg = quantized_pair(prep, width, profile)
    bers = list(profile.ber_grid)

    series = {}
    for injector in ("operation", "neuron"):
        config = profile.campaign(injector)
        for qm, mode in ((qm_st, "standard"), (qm_wg, "winograd")):
            results = accuracy_curve(qm, prep, bers, config, engine=engine)
            series[f"{mode}/{injector}"] = [r.to_dict() for r in results]

    payload = {
        "figure": "fig1",
        "benchmark": prep.paper_label,
        "width": width,
        "fault_free_accuracy": qm_st.metadata["fault_free_accuracy"],
        "bers": bers,
        "series": series,
    }
    save_json(results_dir() / "fig1.json", payload)
    return payload


def format_report(payload: dict) -> str:
    """Paper-style text table of the four series."""
    lines = [
        f"Figure 1 — {payload['benchmark']} int{payload['width']}: "
        "neuron-level vs operation-level fault injection",
        f"{'BER':>10} | {'ST op-FI':>9} {'WG op-FI':>9} | {'ST neuron':>9} {'WG neuron':>9}",
    ]
    op_st = payload["series"]["standard/operation"]
    op_wg = payload["series"]["winograd/operation"]
    nr_st = payload["series"]["standard/neuron"]
    nr_wg = payload["series"]["winograd/neuron"]
    for i, ber in enumerate(payload["bers"]):
        lines.append(
            f"{ber:>10.1e} | {op_st[i]['mean_accuracy']:>9.3f} "
            f"{op_wg[i]['mean_accuracy']:>9.3f} | "
            f"{nr_st[i]['mean_accuracy']:>9.3f} {nr_wg[i]['mean_accuracy']:>9.3f}"
        )
    max_gap_op = max(
        abs(a["mean_accuracy"] - b["mean_accuracy"]) for a, b in zip(op_st, op_wg)
    )
    max_gap_nr = max(
        abs(a["mean_accuracy"] - b["mean_accuracy"]) for a, b in zip(nr_st, nr_wg)
    )
    lines.append(
        f"max ST/WG separation: operation-level {max_gap_op:.3f}, "
        f"neuron-level {max_gap_nr:.3f} (paper: only operation-level separates)"
    )
    return "\n".join(lines)
