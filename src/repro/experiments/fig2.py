"""Figure 2 — network-wise fault tolerance of standard vs Winograd DNNs.

Accuracy under operation-level injection across the BER sweep for all four
benchmark networks, each at int8 and int16, executed with standard and
Winograd convolution; plus the Winograd accuracy-improvement series (the
dotted curves of the paper's figure).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentProfile,
    QUICK,
    accuracy_curve,
    adaptive_accuracy_curve,
    prepare_benchmark,
    quantized_pair,
    results_dir,
)
from repro.stats import KneeConfig, StopRule
from repro.utils.serialization import save_json

__all__ = ["run", "format_report", "DEFAULT_BENCHMARKS"]

DEFAULT_BENCHMARKS = ("densenet169", "resnet50", "vgg19", "googlenet")


def run(
    profile: ExperimentProfile = QUICK,
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    widths: tuple[int, ...] = (8, 16),
    engine=None,
    adaptive: StopRule | None = None,
) -> dict:
    """Execute the Fig. 2 experiment for the selected benchmarks/widths.

    With ``adaptive`` set (CLI ``--adaptive-ber``), the profile's fixed
    BER grid is replaced per panel: the standard-convolution curve's
    points are chosen by BER-knee bisection over the grid's extremes
    (:func:`repro.stats.knee_search`), then the Winograd curve is
    evaluated at those same BERs (each point early-stopped) so the
    improvement series shares its axis.  Every point reports its seed
    usage and confidence interval in the panel's ``adaptive`` block, and
    the top-level ``bers`` is ``None`` — each panel carries its own axis.
    """
    config = profile.campaign()
    bers = list(profile.ber_grid)
    panels = {}
    for name in benchmarks:
        prep = prepare_benchmark(name, profile)
        panel: dict = {"paper_label": prep.paper_label, "widths": {}}
        for width in widths:
            qm_st, qm_wg = quantized_pair(prep, width, profile)
            meta = None
            if adaptive is not None:
                window = KneeConfig(lo=min(bers), hi=max(bers))
                st, st_meta = adaptive_accuracy_curve(
                    qm_st, prep, config, adaptive, knee=window, engine=engine
                )
                grid_bers = [r.ber for r in st]
                wg, wg_meta = adaptive_accuracy_curve(
                    qm_wg, prep, config, adaptive, grid=grid_bers, engine=engine
                )
                meta = {"standard": st_meta, "winograd": wg_meta}
            else:
                st = accuracy_curve(qm_st, prep, bers, config, engine=engine)
                wg = accuracy_curve(qm_wg, prep, bers, config, engine=engine)
            improvement = [
                w.mean_accuracy - s.mean_accuracy for s, w in zip(st, wg)
            ]
            data = {
                "fault_free": qm_st.metadata["fault_free_accuracy"],
                "standard": [r.to_dict() for r in st],
                "winograd": [r.to_dict() for r in wg],
                "improvement": improvement,
            }
            if meta is not None:
                data["bers"] = [r.ber for r in st]
                data["adaptive"] = meta
            panel["widths"][str(width)] = data
        panels[name] = panel

    payload = {
        "figure": "fig2",
        "bers": None if adaptive is not None else bers,
        "panels": panels,
    }
    save_json(results_dir() / "fig2.json", payload)
    return payload


def format_report(payload: dict) -> str:
    """Text rendering of every panel (one block per network/width)."""
    lines = ["Figure 2 — accuracy vs BER, standard vs Winograd convolution"]
    for name, panel in payload["panels"].items():
        for width, data in panel["widths"].items():
            lines.append(
                f"\n{panel['paper_label']} @int{width} "
                f"(fault-free {data['fault_free']:.3f})"
            )
            lines.append(
                f"{'BER':>10} {'lambda':>10} {'ST':>7} {'WG':>7} {'WG-ST':>7}"
            )
            for st, wg, diff in zip(
                data["standard"], data["winograd"], data["improvement"]
            ):
                lines.append(
                    f"{st['ber']:>10.1e} {st['lambda']:>10.0f} "
                    f"{st['mean_accuracy']:>7.3f} {wg['mean_accuracy']:>7.3f} "
                    f"{diff:>+7.3f}"
                )
            peak = max(data["improvement"])
            lines.append(f"peak Winograd improvement: {peak:+.3f} (paper: up to +0.35)")
    return "\n".join(lines)
