"""Figure 3 — layer-wise fault tolerance of VGG19.

One layer at a time is kept fault-free while the rest of the network is
injected at the mid-cliff BER; the per-layer accuracy recovery (for both
standard and Winograd execution) is overlaid with each layer's
multiplication count, reproducing the paper's observation that mid-network
layers with the most multiplications are the most vulnerable.

The per-layer campaigns run as one engine task batch per model, so this
figure honors the CLI's ``--workers/--resume/--checkpoint`` flags.
"""

from __future__ import annotations

from repro.analysis import layer_vulnerability
from repro.experiments.common import (
    ExperimentProfile,
    QUICK,
    accuracy_curve,
    pick_cliff_ber,
    prepare_benchmark,
    quantized_pair,
    results_dir,
)
from repro.utils.serialization import save_json

__all__ = ["run", "format_report"]


def run(
    profile: ExperimentProfile = QUICK,
    benchmark: str = "vgg19",
    width: int = 16,
    ber: float | None = None,
    engine=None,
) -> dict:
    """Execute the Fig. 3 experiment (layer-wise fault-free accuracy)."""
    prep = prepare_benchmark(benchmark, profile)
    qm_st, qm_wg = quantized_pair(prep, width, profile)
    config = profile.campaign()

    if ber is None:
        st_curve = accuracy_curve(
            qm_st, prep, list(profile.ber_grid), config, engine=engine
        )
        ber = pick_cliff_ber(
            st_curve, qm_st.metadata["fault_free_accuracy"], target_fraction=0.6
        )

    x = prep.eval_x[: profile.eval_samples]
    y = prep.eval_y[: profile.eval_samples]
    report_st = layer_vulnerability(qm_st, x, y, ber, config=config, engine=engine)
    report_wg = layer_vulnerability(qm_wg, x, y, ber, config=config, engine=engine)

    payload = {
        "figure": "fig3",
        "benchmark": prep.paper_label,
        "width": width,
        "ber": ber,
        "standard": report_st.to_dict(),
        "winograd": report_wg.to_dict(),
    }
    save_json(results_dir() / "fig3.json", payload)
    return payload


def format_report(payload: dict) -> str:
    """Per-layer table: ST/WG fault-free-layer accuracy + multiply counts."""
    st = payload["standard"]
    wg = payload["winograd"]
    lines = [
        f"Figure 3 — {payload['benchmark']} int{payload['width']} @ BER {payload['ber']:.1e}",
        f"baselines: ST-Conv-Base={st['baseline_accuracy']:.3f} "
        f"WG-Conv-Base={wg['baseline_accuracy']:.3f}",
        f"{'layer':>12} {'ST acc':>7} {'WG acc':>7} {'#mul ST':>12} {'#mul WG':>12}",
    ]
    wg_by_layer = {lv["layer"]: lv for lv in wg["layers"]}
    for lv in st["layers"]:
        wv = wg_by_layer.get(lv["layer"])
        lines.append(
            f"{lv['layer']:>12} {lv['accuracy_when_fault_free']:>7.3f} "
            f"{(wv['accuracy_when_fault_free'] if wv else float('nan')):>7.3f} "
            f"{lv['muls']:>12,} {(wv['muls'] if wv else 0):>12,}"
        )
    # The paper's takeaway: recovery tracks the multiplication census.
    ranked = sorted(st["layers"], key=lambda l: l["vulnerability_factor"], reverse=True)
    lines.append(
        "most vulnerable (ST): "
        + ", ".join(l["layer"] for l in ranked[:3])
        + " (paper: centering layers with the most multiplications)"
    )
    return "\n".join(lines)
