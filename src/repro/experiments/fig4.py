"""Figure 4 — operation-type sensitivity across the benchmark suite.

For every network and width: accuracy with all additions fault-free (only
multiplication faults active) and with all multiplications fault-free (only
addition faults active), at that configuration's mid-cliff BER.  Reproduces
the paper's two conclusions: multiplications are the vulnerable class in
both execution modes, and Winograd's far smaller multiplication census
keeps its only-multiplication-faults accuracy at least as high as standard
convolution's.

Each (benchmark, width, model) sensitivity runs as one engine task batch,
so this figure honors the CLI's ``--workers/--resume/--checkpoint`` flags.
"""

from __future__ import annotations

from repro.analysis import operation_type_sensitivity
from repro.experiments.common import (
    ExperimentProfile,
    QUICK,
    accuracy_curve,
    pick_cliff_ber,
    prepare_benchmark,
    quantized_pair,
    results_dir,
)
from repro.utils.serialization import save_json

__all__ = ["run", "format_report"]

DEFAULT_BENCHMARKS = ("densenet169", "resnet50", "vgg19", "googlenet")


def run(
    profile: ExperimentProfile = QUICK,
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    widths: tuple[int, ...] = (8, 16),
    engine=None,
) -> dict:
    """Execute the Fig. 4 experiment."""
    config = profile.campaign()
    entries = []
    for name in benchmarks:
        prep = prepare_benchmark(name, profile)
        x = prep.eval_x[: profile.eval_samples]
        y = prep.eval_y[: profile.eval_samples]
        for width in widths:
            qm_st, qm_wg = quantized_pair(prep, width, profile)
            st_curve = accuracy_curve(
                qm_st, prep, list(profile.ber_grid), config, engine=engine
            )
            ber = pick_cliff_ber(
                st_curve, qm_st.metadata["fault_free_accuracy"], target_fraction=0.6
            )
            sens_st = operation_type_sensitivity(
                qm_st, x, y, ber, config=config, engine=engine
            )
            sens_wg = operation_type_sensitivity(
                qm_wg, x, y, ber, config=config, engine=engine
            )
            entries.append(
                {
                    "benchmark": prep.paper_label,
                    "width": width,
                    "ber": ber,
                    "ST-Conv-Mul": sens_st.accuracy_muls_fault_free,
                    "ST-Conv-Add": sens_st.accuracy_adds_fault_free,
                    "WG-Conv-Mul": sens_wg.accuracy_muls_fault_free,
                    "WG-Conv-Add": sens_wg.accuracy_adds_fault_free,
                    "ST-base": sens_st.baseline_accuracy,
                    "WG-base": sens_wg.baseline_accuracy,
                }
            )

    payload = {"figure": "fig4", "entries": entries}
    save_json(results_dir() / "fig4.json", payload)
    return payload


def format_report(payload: dict) -> str:
    """Fig. 4-style table.

    Column naming follows the paper: ``X-Conv-Mul`` is the accuracy with
    multiplications *fault-free* (higher = multiplications more vulnerable);
    ``X-Conv-Add`` likewise for additions.
    """
    lines = [
        "Figure 4 — operation-type sensitivity (fault-free mul vs fault-free add)",
        f"{'benchmark':>22} {'w':>3} {'BER':>9} "
        f"{'ST-Mul':>7} {'ST-Add':>7} {'WG-Mul':>7} {'WG-Add':>7}",
    ]
    muls_win = 0
    for e in payload["entries"]:
        lines.append(
            f"{e['benchmark']:>22} {e['width']:>3} {e['ber']:>9.1e} "
            f"{e['ST-Conv-Mul']:>7.3f} {e['ST-Conv-Add']:>7.3f} "
            f"{e['WG-Conv-Mul']:>7.3f} {e['WG-Conv-Add']:>7.3f}"
        )
        if (
            e["ST-Conv-Mul"] >= e["ST-Conv-Add"]
            and e["WG-Conv-Mul"] >= e["WG-Conv-Add"]
        ):
            muls_win += 1
    lines.append(
        f"multiplications more vulnerable in {muls_win}/{len(payload['entries'])} "
        "configurations (paper: all)"
    )
    return "\n".join(lines)
