"""Figure 5 — normalized fine-grained TMR overhead vs accuracy goal.

Runs the three schemes (ST-Conv, WG-Conv-W/O-AFT, WG-Conv-W/AFT) on VGG19
int16 at the mid-cliff BER across a ladder of accuracy goals, normalizing
every overhead to ST-Conv's at the highest goal.  The headline numbers the
paper reports — 61.21 % average overhead reduction vs ST-Conv and 27.49 %
vs the fault-tolerance-unaware Winograd scheme — are computed the same way
from our curves.

The vulnerability analyses and every planner iteration route through the
campaign engine, so this figure honors the CLI's
``--workers/--resume/--checkpoint`` flags; ``--speculative`` additionally
turns on the planner's result-identical lookahead mode (candidate plans
evaluated concurrently, see :mod:`repro.tmr.planner`).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentProfile,
    QUICK,
    accuracy_curve,
    pick_cliff_ber,
    prepare_benchmark,
    quantized_pair,
    results_dir,
)
from repro.tmr import average_reduction, normalized_overheads, run_tmr_schemes
from repro.utils.serialization import save_json

__all__ = ["run", "format_report"]

#: Accuracy goals as fractions of the fault-free accuracy; matches the
#: paper's 45-70 % ladder on a 72.6 %-accurate model.
GOAL_FRACTIONS = (0.62, 0.69, 0.76, 0.83, 0.90, 0.96)


def run(
    profile: ExperimentProfile = QUICK,
    benchmark: str = "vgg19",
    width: int = 16,
    ber: float | None = None,
    goal_fractions: tuple[float, ...] = GOAL_FRACTIONS,
    step: float = 0.5,
    engine=None,
    speculative: bool = False,
) -> dict:
    """Execute the Fig. 5 experiment.

    ``speculative`` forwards to :func:`repro.tmr.run_tmr_schemes`: planner
    candidates are evaluated concurrently through ``engine`` with results
    identical to the paper's serial heuristic.
    """
    prep = prepare_benchmark(benchmark, profile)
    qm_st, qm_wg = quantized_pair(prep, width, profile)
    config = profile.campaign()

    if ber is None:
        st_curve = accuracy_curve(
            qm_st, prep, list(profile.ber_grid), config, engine=engine
        )
        ber = pick_cliff_ber(
            st_curve, qm_st.metadata["fault_free_accuracy"], target_fraction=0.6
        )

    fault_free = qm_st.metadata["fault_free_accuracy"]
    goals = [fault_free * f for f in goal_fractions]

    x = prep.eval_x[: profile.eval_samples]
    y = prep.eval_y[: profile.eval_samples]
    curves = run_tmr_schemes(
        qm_st, qm_wg, x, y, ber, goals, config=config, step=step, engine=engine,
        speculative=speculative,
    )
    normalized = normalized_overheads(curves)
    reductions = average_reduction(curves)

    payload = {
        "figure": "fig5",
        "benchmark": prep.paper_label,
        "width": width,
        "ber": ber,
        "fault_free_accuracy": fault_free,
        "goals": goals,
        "curves": {name: curve.to_dict() for name, curve in curves.items()},
        "normalized_overheads": normalized,
        "average_reduction": reductions,
        "paper_reference": {"vs ST-Conv": 0.6121, "vs WG-Conv-W/O-AFT": 0.2749},
    }
    save_json(results_dir() / "fig5.json", payload)
    return payload


def format_report(payload: dict) -> str:
    """Normalized-overhead table plus headline reductions."""
    lines = [
        f"Figure 5 — normalized TMR overhead, {payload['benchmark']} "
        f"int{payload['width']} @ BER {payload['ber']:.1e}",
        f"{'accuracy goal':>14} {'ST-Conv':>9} {'WG-W/O-AFT':>11} {'WG-W/AFT':>9}",
    ]
    norm = payload["normalized_overheads"]
    for i, goal in enumerate(payload["goals"]):
        lines.append(
            f"{goal:>14.3f} {norm['ST-Conv'][i]:>9.3f} "
            f"{norm['WG-Conv-W/O-AFT'][i]:>11.3f} {norm['WG-Conv-W/AFT'][i]:>9.3f}"
        )
    red = payload["average_reduction"]
    lines.append(
        f"average overhead reduction of WG-Conv-W/AFT: "
        f"{red['vs ST-Conv']:.2%} vs ST-Conv (paper 61.21%), "
        f"{red['vs WG-Conv-W/O-AFT']:.2%} vs WG-Conv-W/O-AFT (paper 27.49%)"
    )
    return "\n".join(lines)
