"""Figure 6 — voltage vs BER and model accuracy under voltage scaling.

Reproduces the paper's overlay: the accelerator's exponential voltage-BER
characteristic and the accuracy of VGG19 (standard and Winograd execution)
at each voltage's induced BER.

Axis calibration (DESIGN.md §2): the DNN-Engine curve is calibrated in
*expected-faults-per-inference* space.  The paper's 0.77 V -> 1e-8 BER on a
~1e10-operation network yields the same fault count per inference as a
proportionally higher BER on our width-scaled models, so the model's
``ber_ref`` is set to the BER at which our standard-conv exposure matches
that reference fault count.
"""

from __future__ import annotations

import numpy as np

from repro.accel import AccuracyCurve, VoltageBerModel
from repro.experiments.common import (
    ExperimentProfile,
    QUICK,
    accuracy_curve,
    adaptive_accuracy_curve,
    prepare_benchmark,
    quantized_pair,
    results_dir,
)
from repro.faultsim import expected_faults_per_image
from repro.stats import KneeConfig, StopRule
from repro.utils.serialization import save_json

__all__ = ["run", "format_report", "calibrated_vber", "build_accuracy_curves"]

#: Expected faults/inference at the paper's 0.77 V reference point
#: (1e-8 BER x ~1e10 ops x 16 bits, rounded to one significant figure).
REFERENCE_LAMBDA = 1600.0


def calibrated_vber(qm_standard) -> VoltageBerModel:
    """Voltage-BER model with ``ber_ref`` matched to our model's exposure."""
    exposure_per_ber = expected_faults_per_image(qm_standard, 1.0)
    ber_ref = REFERENCE_LAMBDA / exposure_per_ber
    return VoltageBerModel(ber_ref=ber_ref)


def build_accuracy_curves(
    prep,
    qm_st,
    qm_wg,
    profile: ExperimentProfile,
    engine=None,
    adaptive: StopRule | None = None,
) -> tuple[AccuracyCurve, AccuracyCurve, dict | None]:
    """Accuracy-vs-BER curves for both execution modes (cached sweeps).

    With ``adaptive`` set, the fixed profile grid is replaced by a
    BER-knee bisection on the standard-convolution curve
    (:func:`repro.stats.knee_search`); the Winograd curve is then
    evaluated at the same BERs, each point early-stopped, so both curves
    interpolate over one axis.  The third return value is the adaptive
    metadata (per-point seed usage, intervals, knee bracket, unit
    totals) — ``None`` on the fixed-grid path.
    """
    config = profile.campaign()
    bers = list(profile.ber_grid)
    meta = None
    if adaptive is not None:
        window = KneeConfig(lo=min(bers), hi=max(bers))
        st, st_meta = adaptive_accuracy_curve(
            qm_st, prep, config, adaptive, knee=window, engine=engine
        )
        wg, wg_meta = adaptive_accuracy_curve(
            qm_wg, prep, config, adaptive,
            grid=[r.ber for r in st], engine=engine,
        )
        meta = {"standard": st_meta, "winograd": wg_meta}
    else:
        st = accuracy_curve(qm_st, prep, bers, config, engine=engine)
        wg = accuracy_curve(qm_wg, prep, bers, config, engine=engine)
    curve_st = AccuracyCurve(
        [r.ber for r in st],
        [r.mean_accuracy for r in st],
        qm_st.metadata["fault_free_accuracy"],
    )
    curve_wg = AccuracyCurve(
        [r.ber for r in wg],
        [r.mean_accuracy for r in wg],
        qm_wg.metadata["fault_free_accuracy"],
    )
    return curve_st, curve_wg, meta


def run(
    profile: ExperimentProfile = QUICK,
    benchmark: str = "vgg19",
    width: int = 16,
    voltage_points: int = 21,
    engine=None,
    adaptive: StopRule | None = None,
) -> dict:
    """Execute the Fig. 6 experiment."""
    prep = prepare_benchmark(benchmark, profile)
    qm_st, qm_wg = quantized_pair(prep, width, profile)
    vber = calibrated_vber(qm_st)
    curve_st, curve_wg, adaptive_meta = build_accuracy_curves(
        prep, qm_st, qm_wg, profile, engine=engine, adaptive=adaptive
    )

    # The paper plots 0.77-0.82 V; sample that window within our range.
    voltages = np.linspace(0.77, 0.82, voltage_points)
    rows = []
    for v in voltages:
        ber = vber.ber(float(v))
        rows.append(
            {
                "voltage": float(v),
                "ber": ber,
                "accuracy_standard": curve_st.accuracy_at(ber),
                "accuracy_winograd": curve_wg.accuracy_at(ber),
            }
        )

    payload = {
        "figure": "fig6",
        "benchmark": prep.paper_label,
        "width": width,
        "ber_ref": vber.ber_ref,
        "reference_lambda": REFERENCE_LAMBDA,
        "rows": rows,
    }
    if adaptive_meta is not None:
        payload["adaptive"] = adaptive_meta
    save_json(results_dir() / "fig6.json", payload)
    return payload


def format_report(payload: dict) -> str:
    """Voltage / BER / accuracy table."""
    lines = [
        f"Figure 6 — voltage scaling: BER and {payload['benchmark']} "
        f"int{payload['width']} accuracy",
        f"(voltage-BER curve calibrated so 0.77 V gives "
        f"lambda={payload['reference_lambda']:.0f} faults/inference; "
        f"ber_ref={payload['ber_ref']:.2e})",
        f"{'V':>6} {'BER':>10} {'ST acc':>7} {'WG acc':>7}",
    ]
    for row in payload["rows"]:
        lines.append(
            f"{row['voltage']:>6.3f} {row['ber']:>10.2e} "
            f"{row['accuracy_standard']:>7.3f} {row['accuracy_winograd']:>7.3f}"
        )
    return "\n".join(lines)
