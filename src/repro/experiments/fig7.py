"""Figure 7 — voltage-scaling-assisted energy under accuracy-loss constraints.

For accuracy-loss budgets of 1/3/5/10 %, each scheme scales the supply
voltage as deep as its accuracy curve allows; inference energy combines the
Scale-Sim-style runtime of its execution mode with the DNN-Engine power
model, normalized to standard convolution at nominal voltage (Base).

Headline numbers (paper): WG-Conv-W/AFT saves 42.89 % energy vs voltage-
scaled ST-Conv and 7.19 % vs the fault-tolerance-unaware Winograd scheme.
"""

from __future__ import annotations

import numpy as np

from repro.accel import DNN_ENGINE, scheme_energies, simulate_network
from repro.experiments.common import (
    ExperimentProfile,
    QUICK,
    prepare_benchmark,
    quantized_pair,
    results_dir,
)
from repro.experiments.fig6 import build_accuracy_curves, calibrated_vber
from repro.stats import StopRule
from repro.utils.serialization import save_json

__all__ = ["run", "format_report"]

ACCURACY_LOSSES = (0.01, 0.03, 0.05, 0.10)


def run(
    profile: ExperimentProfile = QUICK,
    benchmark: str = "vgg19",
    width: int = 16,
    accuracy_losses: tuple[float, ...] = ACCURACY_LOSSES,
    engine=None,
    adaptive: StopRule | None = None,
) -> dict:
    """Execute the Fig. 7 experiment."""
    prep = prepare_benchmark(benchmark, profile)
    qm_st, qm_wg = quantized_pair(prep, width, profile)
    vber = calibrated_vber(qm_st)
    curve_st, curve_wg, adaptive_meta = build_accuracy_curves(
        prep, qm_st, qm_wg, profile, engine=engine, adaptive=adaptive
    )

    timing_st = simulate_network(qm_st, DNN_ENGINE)
    timing_wg = simulate_network(qm_wg, DNN_ENGINE)

    columns = []
    for loss in accuracy_losses:
        points = scheme_energies(
            curve_st,
            curve_wg,
            timing_st.total_cycles,
            timing_wg.total_cycles,
            accuracy_loss=loss,
            vber=vber,
        )
        base_energy = points["Base"].energy_joules
        columns.append(
            {
                "accuracy_loss": loss,
                "points": {name: p.to_dict() for name, p in points.items()},
                "normalized": {
                    name: p.energy_joules / base_energy for name, p in points.items()
                },
            }
        )

    # Headline averages across the loss ladder.
    aware = [c["normalized"]["WG-Conv-W/AFT"] for c in columns]
    st = [c["normalized"]["ST-Conv"] for c in columns]
    unaware = [c["normalized"]["WG-Conv-W/O-AFT"] for c in columns]
    reductions = {
        "vs ST-Conv": float(np.mean([1 - a / s for a, s in zip(aware, st)])),
        "vs WG-Conv-W/O-AFT": float(
            np.mean([1 - a / u for a, u in zip(aware, unaware)])
        ),
    }

    payload = {
        "figure": "fig7",
        "benchmark": prep.paper_label,
        "width": width,
        "cycles": {
            "standard": timing_st.total_cycles,
            "winograd": timing_wg.total_cycles,
        },
        "columns": columns,
        "average_reduction": reductions,
        "paper_reference": {"vs ST-Conv": 0.4289, "vs WG-Conv-W/O-AFT": 0.0719},
    }
    if adaptive_meta is not None:
        payload["adaptive"] = adaptive_meta
    save_json(results_dir() / "fig7.json", payload)
    return payload


def format_report(payload: dict) -> str:
    """Normalized-energy table plus headline reductions."""
    lines = [
        f"Figure 7 — voltage-scaling energy, {payload['benchmark']} "
        f"int{payload['width']} "
        f"(cycles: ST {payload['cycles']['standard']:,} / "
        f"WG {payload['cycles']['winograd']:,})",
        f"{'loss':>6} {'Base':>6} {'ST-Conv':>8} {'WG-W/O-AFT':>11} {'WG-W/AFT':>9} "
        f"{'V(ST)':>6} {'V(WG)':>6}",
    ]
    for col in payload["columns"]:
        n = col["normalized"]
        p = col["points"]
        lines.append(
            f"{col['accuracy_loss']:>6.0%} {n['Base']:>6.2f} {n['ST-Conv']:>8.3f} "
            f"{n['WG-Conv-W/O-AFT']:>11.3f} {n['WG-Conv-W/AFT']:>9.3f} "
            f"{p['ST-Conv']['voltage']:>6.3f} {p['WG-Conv-W/AFT']['voltage']:>6.3f}"
        )
    red = payload["average_reduction"]
    lines.append(
        f"average energy reduction of WG-Conv-W/AFT: "
        f"{red['vs ST-Conv']:.2%} vs ST-Conv (paper 42.89%), "
        f"{red['vs WG-Conv-W/O-AFT']:.2%} vs WG-Conv-W/O-AFT (paper 7.19%)"
    )
    return "\n".join(lines)
