"""Portfolio experiment — per-layer protection-scheme tradeoff (journal ext.).

The journal extension of the paper (arXiv 2308.08230) widens Fig. 5's
question from "how much TMR" to "which scheme per layer": for a ladder of
accuracy goals it compares whole-layer TMR, output-channel checksum ABFT
and the mixed per-layer portfolio chosen by
:func:`repro.tmr.plan_portfolio`, all on the Winograd execution at the
mid-cliff BER.  Overheads are normalized to the whole-layer TMR strategy's
cost at the highest goal, so the table reads as "fraction of the TMR bill
each strategy pays".

Every vulnerability analysis and planner iteration routes through the
campaign engine, so this experiment honors the CLI's
``--workers/--resume/--checkpoint/--shard-samples/--replay`` flags;
``--protection`` restricts which strategies run and ``--speculative``
turns on the planner's result-identical lookahead mode.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentProfile,
    QUICK,
    accuracy_curve,
    pick_cliff_ber,
    prepare_benchmark,
    quantized_pair,
    results_dir,
)
from repro.tmr import (
    PROTECTION_ABFT,
    PROTECTION_PORTFOLIO,
    PROTECTION_TMR,
    run_protection_portfolio,
)
from repro.utils.serialization import save_json

__all__ = ["run", "format_report"]

#: Accuracy goals as fractions of the fault-free accuracy (Fig. 5 ladder).
GOAL_FRACTIONS = (0.62, 0.69, 0.76, 0.83, 0.90, 0.96)

_ALL_STRATEGIES = (PROTECTION_TMR, PROTECTION_ABFT, PROTECTION_PORTFOLIO)


def run(
    profile: ExperimentProfile = QUICK,
    benchmark: str = "vgg19",
    width: int = 16,
    ber: float | None = None,
    goal_fractions: tuple[float, ...] = GOAL_FRACTIONS,
    engine=None,
    speculative: bool = False,
    protection: str = "all",
) -> dict:
    """Execute the protection-portfolio experiment.

    ``protection`` selects the strategies: ``"tmr"``, ``"abft"``,
    ``"portfolio"`` or ``"all"`` (the default three-way comparison).
    ``speculative`` forwards to the planner exactly as in Fig. 5.
    """
    if protection == "all":
        strategies = _ALL_STRATEGIES
    elif protection in _ALL_STRATEGIES:
        strategies = (protection,)
    else:
        raise ConfigurationError(
            f"protection must be one of {_ALL_STRATEGIES + ('all',)}, "
            f"got {protection!r}"
        )

    prep = prepare_benchmark(benchmark, profile)
    _qm_st, qm_wg = quantized_pair(prep, width, profile)
    config = profile.campaign()

    if ber is None:
        wg_curve = accuracy_curve(
            qm_wg, prep, list(profile.ber_grid), config, engine=engine
        )
        ber = pick_cliff_ber(
            wg_curve, qm_wg.metadata["fault_free_accuracy"], target_fraction=0.6
        )

    fault_free = qm_wg.metadata["fault_free_accuracy"]
    goals = [fault_free * f for f in goal_fractions]

    x = prep.eval_x[: profile.eval_samples]
    y = prep.eval_y[: profile.eval_samples]
    curves = run_protection_portfolio(
        qm_wg, x, y, ber, goals, config=config, strategies=strategies,
        engine=engine, speculative=speculative,
    )

    # Normalize to the whole-layer TMR bill at the highest goal when that
    # curve ran; otherwise to the largest overhead measured.
    anchor = 0.0
    if PROTECTION_TMR in curves:
        anchor = curves[PROTECTION_TMR].overheads[-1]
    if anchor <= 0:
        anchor = max(
            max(curve.overheads, default=0.0) for curve in curves.values()
        ) or 1.0
    normalized = {
        name: [o / anchor for o in curve.overheads]
        for name, curve in curves.items()
    }

    payload = {
        "figure": "portfolio",
        "benchmark": prep.paper_label,
        "width": width,
        "ber": ber,
        "fault_free_accuracy": fault_free,
        "goals": goals,
        "strategies": list(strategies),
        "curves": {name: curve.to_dict() for name, curve in curves.items()},
        "normalized_overheads": normalized,
    }
    save_json(results_dir() / "fig_portfolio.json", payload)
    return payload


def format_report(payload: dict) -> str:
    """Normalized-overhead table per strategy plus chosen schemes."""
    lines = [
        f"Portfolio — normalized protection overhead, {payload['benchmark']} "
        f"int{payload['width']} @ BER {payload['ber']:.1e}",
    ]
    strategies = payload["strategies"]
    header = f"{'accuracy goal':>14}" + "".join(
        f" {name:>10}" for name in strategies
    )
    lines.append(header)
    norm = payload["normalized_overheads"]
    for i, goal in enumerate(payload["goals"]):
        row = f"{goal:>14.3f}" + "".join(
            f" {norm[name][i]:>10.3f}" for name in strategies
        )
        lines.append(row)
    if PROTECTION_PORTFOLIO in payload["curves"]:
        top = payload["curves"][PROTECTION_PORTFOLIO]["results"][-1]
        schemes = top.get("schemes", {})
        chosen = ", ".join(f"{layer}:{s}" for layer, s in schemes.items()) or "none"
        lines.append(f"portfolio schemes at top goal: {chosen}")
    return "\n".join(lines)
