"""Aggregate the paper's four headline numbers from figure artifacts.

The abstract claims: Winograd awareness reduces fault-tolerant design
(TMR) overhead by **61.21 %** vs standard convolution and **27.49 %** vs
unaware Winograd, and energy by **42.89 %** / **7.19 %** under voltage
scaling.  This module reads the Fig. 5 and Fig. 7 artifacts produced by the
experiment drivers and renders the side-by-side comparison.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.common import results_dir
from repro.utils.serialization import load_json

__all__ = ["collect_headlines", "format_headlines"]

#: (metric, artifact file, reference values from the paper's abstract).
_HEADLINES = (
    ("TMR overhead reduction", "fig5.json", {"vs ST-Conv": 0.6121, "vs WG-Conv-W/O-AFT": 0.2749}),
    ("energy reduction", "fig7.json", {"vs ST-Conv": 0.4289, "vs WG-Conv-W/O-AFT": 0.0719}),
)


def collect_headlines(base: Path | None = None) -> list[dict]:
    """Read available figure artifacts and pair measured vs paper numbers.

    Missing artifacts are reported as absent rather than raising, so the
    summary degrades gracefully while experiments are still being run.
    """
    base = base or results_dir()
    rows = []
    for metric, filename, reference in _HEADLINES:
        path = base / filename
        entry = {"metric": metric, "paper": reference, "measured": None, "source": str(path)}
        if path.exists():
            payload = load_json(path)
            entry["measured"] = payload.get("average_reduction")
        rows.append(entry)
    return rows


def format_headlines(rows: list[dict]) -> str:
    """Render the headline comparison as a text table."""
    lines = [
        "Headline numbers — WG-Conv-W/AFT improvement over the two references",
        f"{'metric':>26} {'reference':>18} {'paper':>8} {'measured':>9}",
    ]
    for row in rows:
        for reference, paper_value in row["paper"].items():
            measured = row["measured"].get(reference) if row["measured"] else None
            measured_text = f"{measured:8.2%}" if measured is not None else "   (run)"
            lines.append(
                f"{row['metric']:>26} {reference:>18} {paper_value:>8.2%} {measured_text:>9}"
            )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_headlines(collect_headlines()))
