"""Fault-injection platform: operation-level and neuron-level injectors."""

from repro.faultsim.model import (
    BerConvention,
    FaultModelConfig,
    FaultSemantics,
    RNG_COUNTER,
    RNG_STREAM,
)
from repro.faultsim.protection import (
    ProtectionPlan,
    SCHEME_ABFT,
    SCHEME_NONE,
    SCHEME_TMR,
)
from repro.faultsim.sites import (
    category_exposure_bits,
    expected_faults_per_image,
    layer_exposure,
    model_exposure,
)
from repro.faultsim.operation_level import (
    OperationLevelInjector,
    register_flip_delta,
    register_scale_pow,
)
from repro.faultsim.neuron_level import NeuronLevelInjector
from repro.faultsim.replay import (
    GoldenRun,
    ReplayStats,
    SiteSpec,
    build_golden_run,
    replay_forward,
)
from repro.faultsim.abft import AbftChecker, AbftReport, detection_coverage
from repro.faultsim.campaign import (
    CampaignConfig,
    CampaignResult,
    INJECTOR_NEURON,
    INJECTOR_OPERATION,
    SampleSliceResult,
    SeedPointResult,
    campaign_lambda,
    combine_seed_results,
    combine_slice_results,
    evaluate_sample_slice,
    evaluate_seed_point,
    run_point,
    run_sweep,
    validate_ber,
)

__all__ = [
    "FaultModelConfig",
    "FaultSemantics",
    "BerConvention",
    "RNG_STREAM",
    "RNG_COUNTER",
    "ProtectionPlan",
    "SCHEME_NONE",
    "SCHEME_ABFT",
    "SCHEME_TMR",
    "category_exposure_bits",
    "layer_exposure",
    "model_exposure",
    "expected_faults_per_image",
    "OperationLevelInjector",
    "NeuronLevelInjector",
    "GoldenRun",
    "ReplayStats",
    "SiteSpec",
    "build_golden_run",
    "replay_forward",
    "AbftChecker",
    "AbftReport",
    "detection_coverage",
    "register_scale_pow",
    "register_flip_delta",
    "CampaignConfig",
    "CampaignResult",
    "SeedPointResult",
    "SampleSliceResult",
    "INJECTOR_OPERATION",
    "INJECTOR_NEURON",
    "campaign_lambda",
    "combine_seed_results",
    "combine_slice_results",
    "evaluate_seed_point",
    "evaluate_sample_slice",
    "run_point",
    "run_sweep",
    "validate_ber",
]
