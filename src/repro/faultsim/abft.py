"""Algorithm-based fault tolerance (ABFT) checksum detection baseline.

The paper positions Winograd's inherent tolerance against conventional
protection schemes; its related work covers checksum-based ABFT for
convolutions (Kosaian & Rashmi, 2021) and Sanity-Check's spatial checksums
(Ozen & Orailoglu, 2019).  This module implements the classic
output-channel checksum for the quantized GEMM/convolution layers, giving
the library a detection-coverage baseline to compare protection approaches
against:

For a convolution ``y[k] = sum_{c,r,s} w[k,c,r,s] * x[c,r,s] + b[k]`` the
channel-summed filter ``w_sum = sum_k w[k]`` satisfies, for every output
position, ``sum_k y[k] = conv(x, w_sum) + sum_k b[k]`` *exactly* in integer
arithmetic.  Any operation-level fault that perturbs one output's
accumulator breaks the identity at that position, so comparing the two
sides detects (and spatially locates) faults with one extra output
channel's worth of compute.

Limitations mirror real ABFT: faults that cancel within a checksum group
escape detection, and the checksum computation itself is assumed protected
(it would otherwise need its own redundancy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultModelError
from repro.quantized.interface import Injector
from repro.quantized.qmodel import QuantizedModel
from repro.quantized.qops import QConvDirect, QConvWinograd, QLinear
from repro.utils.im2col import im2col

__all__ = ["AbftReport", "AbftChecker"]


@dataclass
class AbftReport:
    """Detection outcome for one checked inference batch."""

    #: Per-layer count of output positions whose checksum mismatched.
    detections: dict[str, int]
    #: Per-layer count of checked output positions.
    checked: dict[str, int]

    @property
    def total_detections(self) -> int:
        """Output positions flagged across all layers."""
        return sum(self.detections.values())

    @property
    def any_fault_detected(self) -> bool:
        """True when at least one checksum mismatched."""
        return self.total_detections > 0

    def detection_rate(self, layer: str) -> float:
        """Fraction of a layer's checked positions that flagged."""
        checked = self.checked.get(layer, 0)
        return self.detections.get(layer, 0) / checked if checked else 0.0


class AbftChecker(Injector):
    """Checksum-verifying injector wrapper.

    Wraps an inner injector (or none, for false-positive testing): after the
    inner injector perturbs a layer's accumulator, the checker recomputes
    the channel checksum from the (uncorrupted) inputs and compares.  Usage::

        checker = AbftChecker(OperationLevelInjector(ber, seed=0))
        qmodel.forward(x, injector=checker)
        report = checker.report()
    """

    def __init__(self, inner: Injector | None = None):
        self.inner = inner
        self._detections: dict[str, int] = {}
        self._checked: dict[str, int] = {}

    # --- bookkeeping -----------------------------------------------------------
    def report(self) -> AbftReport:
        """Detection summary accumulated since construction."""
        return AbftReport(dict(self._detections), dict(self._checked))

    def _record(self, layer_name: str, mismatches: int, checked: int) -> None:
        self._detections[layer_name] = self._detections.get(layer_name, 0) + mismatches
        self._checked[layer_name] = self._checked.get(layer_name, 0) + checked

    # --- injector protocol ------------------------------------------------------
    def begin_inference(self, batch_size: int) -> None:
        if self.inner is not None:
            self.inner.begin_inference(batch_size)

    def visit_direct(self, layer, x_int, cols, acc):
        clean_checksum = self._conv_checksum(layer, cols, acc.shape)
        if self.inner is not None:
            self.inner.visit_direct(layer, x_int, cols, acc)
        self._verify(layer, acc.sum(axis=1), clean_checksum)

    def visit_linear(self, layer, x_int, acc):
        w_sum = layer.weight_int.sum(axis=0).astype(np.float64)
        checksum = np.rint(x_int.astype(np.float64) @ w_sum).astype(np.int64)
        checksum += int(layer.bias_acc.sum())
        if self.inner is not None:
            self.inner.visit_linear(layer, x_int, acc)
        self._verify(layer, acc.sum(axis=1), checksum.reshape(acc.shape[0]))

    def visit_winograd(self, layer, sub_contexts, y_scaled):
        # Checksum in the scaled output domain: sum the transformed filters
        # over output channels and rerun the (cheap) single-channel pipeline.
        checksum = None
        for spec, ctx in sub_contexts:
            v_sum = ctx.v_int.sum(axis=0, keepdims=True)  # (1, C, t, t)
            part = self._winograd_checksum(ctx, v_sum)
            checksum = part if checksum is None else checksum + part
        h, w = y_scaled.shape[2], y_scaled.shape[3]
        checksum = checksum[:, 0, :h, :w]
        checksum += int(layer.bias_acc.sum()) * layer.transform.output_scale_2d
        if self.inner is not None:
            self.inner.visit_winograd(layer, sub_contexts, y_scaled)
        self._verify(layer, y_scaled.sum(axis=1), checksum)

    def visit_output(self, layer, y_int):
        if self.inner is not None:
            return self.inner.visit_output(layer, y_int)
        return y_int

    # --- checksum kernels --------------------------------------------------------
    @staticmethod
    def _conv_checksum(layer: QConvDirect, cols: np.ndarray, acc_shape) -> np.ndarray:
        w_sum = layer.weight_int.reshape(layer.weight_int.shape[0], -1).sum(axis=0)
        checksum = np.rint(
            np.einsum("r,nrp->np", w_sum.astype(np.float64), cols.astype(np.float64))
        ).astype(np.int64)
        checksum += int(layer.bias_acc.sum())
        n = acc_shape[0]
        return checksum.reshape(n, acc_shape[2], acc_shape[3])

    @staticmethod
    def _winograd_checksum(ctx, v_sum: np.ndarray) -> np.ndarray:
        """Single-channel Winograd pipeline on the channel-summed filters."""
        from repro.winograd.conv2d import _channel_reduce
        from repro.winograd.tiling import assemble_tiles

        tf = ctx.transform
        m_arr = _channel_reduce(ctx.u_int, v_sum.astype(np.int64))
        at = tf.at_int
        y_tiles = np.einsum("ui,nktij,vj->nktuv", at, m_arr, at)
        return assemble_tiles(y_tiles, ctx.grid)

    def _verify(self, layer, actual: np.ndarray, expected: np.ndarray) -> None:
        if actual.shape != expected.shape:
            raise FaultModelError(
                f"ABFT shape mismatch on '{layer.name}': "
                f"{actual.shape} vs {expected.shape}"
            )
        mismatches = int(np.count_nonzero(actual != expected))
        self._record(layer.name, mismatches, actual.size)


def detection_coverage(
    qmodel: QuantizedModel,
    x: np.ndarray,
    inner_injector: Injector,
) -> AbftReport:
    """Run one checked inference and return the detection report.

    Note: Winograd layers must retain intermediates (they do whenever an
    injector is attached), so coverage measurement has the same memory
    profile as fault injection itself.
    """
    checker = AbftChecker(inner_injector)
    qmodel.forward(x, injector=checker)
    return checker.report()
