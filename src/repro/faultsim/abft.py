"""Algorithm-based fault tolerance (ABFT): checksum detection + correction.

The paper positions Winograd's inherent tolerance against conventional
protection schemes; its related work covers checksum-based ABFT for
convolutions (Kosaian & Rashmi, 2021) and Sanity-Check's spatial checksums
(Ozen & Orailoglu, 2019), and the journal extension (arXiv 2308.08230)
makes ABFT a full competitor in the protection-cost tradeoff.  This module
implements the classic output-channel checksum for the quantized
GEMM/convolution layers:

For a convolution ``y[k] = sum_{c,r,s} w[k,c,r,s] * x[c,r,s] + b[k]`` the
channel-summed filter ``w_sum = sum_k w[k]`` satisfies, for every output
position, ``sum_k y[k] = conv(x, w_sum) + sum_k b[k]`` *exactly* in integer
arithmetic.  Any operation-level fault that perturbs one output's
accumulator breaks the identity at that position, so comparing the two
sides detects (and spatially locates) faults with one extra output
channel's worth of compute.  Both sides are computed with pure int64
contractions (:func:`repro.winograd.conv2d._cached_einsum` /
``_channel_reduce``) — a float64 path would silently round past 2^53 and
flag *clean* positions, breaking the exactness contract in precisely the
int64-accumulator regime the campaign operates in.

:class:`AbftChecker` plays two roles:

* **coverage baseline** — ``AbftChecker(inner)`` checks every layer,
  detection-only, and :func:`detection_coverage` summarizes the report;
* **engine-grade protection** — ``AbftChecker(inner, layers=..,
  correct=True)`` checks only the plan's ABFT layers and *repairs* flagged
  accumulator positions from a pre-injection snapshot (detect ⇒ recompute).
  It exposes merged ``event_counts`` and forwards the golden-run replay
  protocol to the inner injector, so ABFT-protected campaign points run
  through the pool, sample sharding and the replay executor unchanged.

Limitations mirror real ABFT: faults that cancel within a checksum group
escape detection, post-requantization neuron flips are outside the
accumulator checksum's protection domain, and the checksum computation
itself is assumed protected (it would otherwise need its own redundancy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultModelError
from repro.quantized.interface import Injector
from repro.quantized.qmodel import QuantizedModel
from repro.quantized.qops import QConvDirect
from repro.winograd.conv2d import _cached_einsum

__all__ = ["AbftReport", "AbftChecker"]


@dataclass
class AbftReport:
    """Detection outcome for one checked inference batch."""

    #: Per-layer count of output positions whose checksum mismatched.
    detections: dict[str, int]
    #: Per-layer count of checked output positions.
    checked: dict[str, int]

    @property
    def total_detections(self) -> int:
        """Output positions flagged across all layers."""
        return sum(self.detections.values())

    @property
    def any_fault_detected(self) -> bool:
        """True when at least one checksum mismatched."""
        return self.total_detections > 0

    def detection_rate(self, layer: str) -> float:
        """Fraction of a layer's checked positions that flagged."""
        checked = self.checked.get(layer, 0)
        return self.detections.get(layer, 0) / checked if checked else 0.0


class AbftChecker(Injector):
    """Checksum-verifying (and optionally correcting) injector wrapper.

    Wraps an inner injector (or none, for false-positive testing): after the
    inner injector perturbs a layer's accumulator, the checker recomputes
    the channel checksum from the (uncorrupted) inputs and compares.  Usage::

        checker = AbftChecker(OperationLevelInjector(ber, seed=0))
        qmodel.forward(x, injector=checker)
        report = checker.report()

    Parameters
    ----------
    inner:
        Injector whose faults are being checked; ``None`` runs the checker
        against a clean forward (false-positive measurement).
    layers:
        Names of the layers to check.  ``None`` (the default) checks every
        injectable layer — the coverage-baseline mode.  A campaign plan's
        :attr:`~repro.faultsim.protection.ProtectionPlan.abft_layers`
        restricts checking (and correction cost) to the protected subset;
        unchecked layers pass straight through to ``inner``.
    correct:
        When True, every output position whose checksum mismatches has
        *all* of its output channels restored from a pre-injection
        snapshot of the accumulator — the standard ABFT detect-⇒-recompute
        response.  Faults that cancel within a checksum group still
        escape.

    The checker is engine-compatible: :attr:`event_counts` merges the
    inner injector's per-category counts with ``abft_detected`` /
    ``abft_corrected``, and the replay protocol (:attr:`replay_ready`,
    :meth:`set_replay_rows`, :meth:`replay_struck`) forwards to ``inner``
    so golden-run replay drives struck-sample discovery exactly as it
    would unwrapped.
    """

    def __init__(
        self,
        inner: Injector | None = None,
        layers: frozenset[str] | None = None,
        correct: bool = False,
    ):
        self.inner = inner
        self.layers = frozenset(layers) if layers is not None else None
        self.correct = bool(correct)
        self._detections: dict[str, int] = {}
        self._checked: dict[str, int] = {}
        self._events: dict[str, int] = {}

    # --- bookkeeping -----------------------------------------------------------
    def report(self) -> AbftReport:
        """Detection summary accumulated since construction."""
        return AbftReport(dict(self._detections), dict(self._checked))

    @property
    def event_counts(self) -> dict[str, int]:
        """Inner injector's fault events merged with ABFT outcome events.

        ``abft_detected`` counts flagged output positions and
        ``abft_corrected`` the subset restored from the clean snapshot;
        the category names never collide with the injectors' site
        categories, so ``sum(event_counts.values())`` still includes every
        injected fault.
        """
        merged: dict[str, int] = {}
        if self.inner is not None and hasattr(self.inner, "event_counts"):
            merged.update(self.inner.event_counts)
        for category, count in self._events.items():
            merged[category] = merged.get(category, 0) + count
        return merged

    def _record(self, layer_name: str, mismatches: int, checked: int) -> None:
        """Accumulate per-layer detection/checked counters."""
        self._detections[layer_name] = self._detections.get(layer_name, 0) + mismatches
        self._checked[layer_name] = self._checked.get(layer_name, 0) + checked

    def _active(self, layer) -> bool:
        """Whether this layer is in the checked set."""
        return self.layers is None or layer.name in self.layers

    # --- replay protocol --------------------------------------------------------
    @property
    def replay_ready(self) -> bool:
        """True when the inner injector supports golden-run replay."""
        return (
            self.inner is not None
            and getattr(self.inner, "replay_ready", False)
        )

    def set_replay_rows(self, rows) -> None:
        """Forward the replay row restriction to the inner injector."""
        if self.inner is None:
            raise FaultModelError("AbftChecker has no inner injector to replay")
        self.inner.set_replay_rows(rows)

    def replay_struck(self, layer_name, sites, start, stop):
        """Forward struck-sample discovery to the inner injector."""
        if self.inner is None:
            raise FaultModelError("AbftChecker has no inner injector to replay")
        return self.inner.replay_struck(layer_name, sites, start, stop)

    # --- injector protocol ------------------------------------------------------
    def begin_inference(self, batch_size: int) -> None:
        """Forward the batch boundary to the inner injector."""
        if self.inner is not None:
            self.inner.begin_inference(batch_size)

    def visit_direct(self, layer, x_int, cols, acc):
        """Check (and optionally repair) a direct convolution accumulator."""
        if not self._active(layer):
            if self.inner is not None:
                self.inner.visit_direct(layer, x_int, cols, acc)
            return
        expected = self._conv_checksum(layer, cols, acc.shape)
        snapshot = acc.copy() if self.correct else None
        if self.inner is not None:
            self.inner.visit_direct(layer, x_int, cols, acc)
        self._check(layer, acc, acc.sum(axis=1), expected, snapshot)

    def visit_linear(self, layer, x_int, acc):
        """Check (and optionally repair) a linear layer accumulator."""
        if not self._active(layer):
            if self.inner is not None:
                self.inner.visit_linear(layer, x_int, acc)
            return
        # Pure int64 contraction: the float64 path this replaces rounded
        # past 2^53 and false-detected on clean accumulators.
        w_sum = layer.weight_int.sum(axis=0, dtype=np.int64)
        x64 = np.ascontiguousarray(x_int, dtype=np.int64)
        expected = _cached_einsum(
            "nr,r->n", x64, w_sum, key=(x64.shape[1:], w_sum.shape)
        )
        expected = expected + int(layer.bias_acc.sum())
        snapshot = acc.copy() if self.correct else None
        if self.inner is not None:
            self.inner.visit_linear(layer, x_int, acc)
        self._check(layer, acc, acc.sum(axis=1), expected, snapshot)

    def visit_winograd(self, layer, sub_contexts, y_scaled):
        """Check (and optionally repair) a Winograd scaled-output tensor.

        The checksum lives in the scaled output domain: sum the transformed
        filters over output channels and rerun the (cheap) single-channel
        pipeline per sub-convolution.
        """
        if not self._active(layer):
            if self.inner is not None:
                self.inner.visit_winograd(layer, sub_contexts, y_scaled)
            return
        if not sub_contexts:
            raise FaultModelError(
                f"ABFT checksum for '{layer.name}' needs at least one "
                "Winograd sub-convolution context; got none"
            )
        checksum = None
        for spec, ctx in sub_contexts:
            if ctx.u_int is None:
                raise FaultModelError(
                    f"ABFT checksum for '{layer.name}' needs the transformed "
                    "input (u_int=None): run the forward with an injector "
                    "whose needs_intermediates is True"
                )
            v_sum = ctx.v_int.sum(axis=0, keepdims=True)  # (1, C, t, t)
            part = self._winograd_checksum(ctx, v_sum)
            checksum = part if checksum is None else checksum + part
        h, w = y_scaled.shape[2], y_scaled.shape[3]
        checksum = checksum[:, 0, :h, :w]
        checksum = checksum + int(layer.bias_acc.sum()) * layer.transform.output_scale_2d
        snapshot = y_scaled.copy() if self.correct else None
        if self.inner is not None:
            self.inner.visit_winograd(layer, sub_contexts, y_scaled)
        self._check(layer, y_scaled, y_scaled.sum(axis=1), checksum, snapshot)

    def visit_output(self, layer, y_int):
        """Pass the requantized output through the inner injector.

        Post-requantization neuron flips happen *after* the accumulator
        checksum, so they are outside ABFT's protection domain — the
        checker deliberately does not re-verify here.
        """
        if self.inner is not None:
            return self.inner.visit_output(layer, y_int)
        return y_int

    # --- checksum kernels --------------------------------------------------------
    @staticmethod
    def _conv_checksum(layer: QConvDirect, cols: np.ndarray, acc_shape) -> np.ndarray:
        """Exact int64 channel checksum of a direct convolution batch."""
        w_sum = (
            layer.weight_int.reshape(layer.weight_int.shape[0], -1)
            .sum(axis=0, dtype=np.int64)
        )
        cols64 = np.ascontiguousarray(cols, dtype=np.int64)
        checksum = _cached_einsum(
            "r,nrp->np", w_sum, cols64, key=(w_sum.shape, cols64.shape[1:])
        )
        checksum = checksum + int(layer.bias_acc.sum())
        n = acc_shape[0]
        return checksum.reshape(n, acc_shape[2], acc_shape[3])

    @staticmethod
    def _winograd_checksum(ctx, v_sum: np.ndarray) -> np.ndarray:
        """Single-channel Winograd pipeline on the channel-summed filters."""
        from repro.winograd.conv2d import _channel_reduce
        from repro.winograd.tiling import assemble_tiles

        tf = ctx.transform
        m_arr = _channel_reduce(ctx.u_int, v_sum.astype(np.int64))
        at = tf.at_int
        y_tiles = np.einsum("ui,nktij,vj->nktuv", at, m_arr, at)
        return assemble_tiles(y_tiles, ctx.grid)

    def _check(self, layer, acc, actual, expected, snapshot) -> None:
        """Compare channel sums against the checksum; repair on mismatch.

        ``actual`` is the post-injection channel sum (output-channel axis
        already reduced), ``expected`` the clean-side checksum.  With a
        ``snapshot`` (correction mode), every flagged position has all of
        its output channels restored from the pre-injection accumulator.
        """
        if actual.shape != expected.shape:
            raise FaultModelError(
                f"ABFT shape mismatch on '{layer.name}': "
                f"{actual.shape} vs {expected.shape}"
            )
        mismatch = actual != expected
        mismatches = int(np.count_nonzero(mismatch))
        self._record(layer.name, mismatches, actual.size)
        if not mismatches:
            return
        self._events["abft_detected"] = (
            self._events.get("abft_detected", 0) + mismatches
        )
        if snapshot is None:
            return
        if acc.ndim == 2:  # linear: (N, F), mismatch over (N,)
            rows = np.nonzero(mismatch)[0]
            acc[rows] = snapshot[rows]
        else:  # conv: (N, K, H, W), mismatch over (N, H, W)
            n_idx, h_idx, w_idx = np.nonzero(mismatch)
            acc[n_idx, :, h_idx, w_idx] = snapshot[n_idx, :, h_idx, w_idx]
        self._events["abft_corrected"] = (
            self._events.get("abft_corrected", 0) + mismatches
        )


def detection_coverage(
    qmodel: QuantizedModel,
    x: np.ndarray,
    inner_injector: Injector,
) -> AbftReport:
    """Run one checked inference and return the detection report.

    Note: Winograd layers must retain intermediates (they do whenever an
    injector is attached), so coverage measurement has the same memory
    profile as fault injection itself.
    """
    checker = AbftChecker(inner_injector)
    qmodel.forward(x, injector=checker)
    return checker.report()
