"""Monte-Carlo fault-injection campaigns.

A campaign evaluates a quantized model's accuracy under fault injection for
one or more bit error rates, averaging over independent seeds.  Results
carry both the raw BER and the expected-faults-per-inference (lambda),
which is the axis that transfers across model scales (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faultsim.model import FaultModelConfig
from repro.faultsim.neuron_level import NeuronLevelInjector
from repro.faultsim.operation_level import OperationLevelInjector
from repro.faultsim.protection import ProtectionPlan
from repro.faultsim.sites import expected_faults_per_image
from repro.quantized.qmodel import QuantizedModel

__all__ = ["CampaignConfig", "CampaignResult", "run_point", "run_sweep"]

INJECTOR_OPERATION = "operation"
INJECTOR_NEURON = "neuron"


@dataclass(frozen=True)
class CampaignConfig:
    """Evaluation parameters shared by all points of a campaign."""

    seeds: tuple[int, ...] = (0, 1, 2)
    batch_size: int = 64
    injector: str = INJECTOR_OPERATION
    fault_config: FaultModelConfig = field(default_factory=FaultModelConfig)
    #: Optional limit on evaluation samples (None = use all provided).
    max_samples: int | None = None


@dataclass
class CampaignResult:
    """Accuracy statistics for one (model, BER) operating point."""

    ber: float
    lam: float
    mean_accuracy: float
    std_accuracy: float
    per_seed: list[float]
    events_per_seed: list[int]

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "ber": self.ber,
            "lambda": self.lam,
            "mean_accuracy": self.mean_accuracy,
            "std_accuracy": self.std_accuracy,
            "per_seed": self.per_seed,
            "events_per_seed": self.events_per_seed,
        }


def _make_injector(config: CampaignConfig, ber: float, seed: int, protection):
    if config.injector == INJECTOR_NEURON:
        return NeuronLevelInjector(ber, seed=seed, config=config.fault_config)
    if config.injector == INJECTOR_OPERATION:
        return OperationLevelInjector(
            ber, seed=seed, config=config.fault_config, protection=protection
        )
    raise ValueError(f"unknown injector kind '{config.injector}'")


def run_point(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    ber: float,
    config: CampaignConfig | None = None,
    protection: ProtectionPlan | None = None,
) -> CampaignResult:
    """Evaluate accuracy at one BER, averaged over the configured seeds."""
    config = config or CampaignConfig()
    if config.max_samples is not None:
        x, labels = x[: config.max_samples], labels[: config.max_samples]

    accuracies, events = [], []
    for seed in config.seeds:
        if ber == 0.0:
            accuracy = qmodel.evaluate(x, labels, batch_size=config.batch_size)
            accuracies.append(accuracy)
            events.append(0)
            continue
        injector = _make_injector(config, ber, seed, protection)
        accuracy = qmodel.evaluate(
            x, labels, injector=injector, batch_size=config.batch_size
        )
        accuracies.append(accuracy)
        events.append(int(sum(injector.event_counts.values())))

    lam = (
        expected_faults_per_image(qmodel, ber, config.fault_config, protection)
        if config.injector == INJECTOR_OPERATION
        else ber * sum(
            np.prod(layer.out_shape) * layer.out_fmt.width
            for layer in qmodel.injectable_layers()
        )
    )
    return CampaignResult(
        ber=ber,
        lam=float(lam),
        mean_accuracy=float(np.mean(accuracies)),
        std_accuracy=float(np.std(accuracies)),
        per_seed=[float(a) for a in accuracies],
        events_per_seed=events,
    )


def run_sweep(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    bers: list[float],
    config: CampaignConfig | None = None,
    protection: ProtectionPlan | None = None,
) -> list[CampaignResult]:
    """Evaluate a list of BER points (Fig. 2-style accuracy curves)."""
    return [
        run_point(qmodel, x, labels, ber, config=config, protection=protection)
        for ber in bers
    ]
