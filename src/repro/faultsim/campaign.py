"""Monte-Carlo fault-injection campaigns.

A campaign evaluates a quantized model's accuracy under fault injection for
one or more bit error rates, averaging over independent seeds.  Results
carry both the raw BER and the expected-faults-per-inference (lambda),
which is the axis that transfers across model scales (see DESIGN.md §2).

The module is factored around one *pure* unit of work,
:func:`evaluate_seed_point`: the accuracy of one (BER, seed, protection)
evaluation depends only on its arguments, never on any other point of the
sweep.  That makes each unit independently dispatchable — the parallel
campaign engine (:mod:`repro.runtime`) wraps it in a
:class:`~repro.runtime.TaskSpec`, shards task batches across a worker pool
and recombines them with :func:`combine_seed_results`, bit-identical to
the serial loop in :func:`run_point`.

Under the counter RNG scheme (``FaultModelConfig.rng_scheme ==
"counter"``) the unit splits further: :func:`evaluate_sample_slice` scores
one contiguous slice of the evaluation samples, and
:func:`combine_slice_results` folds a full partition of slices back into
the exact :class:`SeedPointResult` the unsliced evaluation produces —
bit-identical for *any* slice size, because every fault draw is keyed by
(seed, layer, site, sample chunk) rather than by stream position.

Both units accept a pre-built golden run (``golden=``,
:class:`repro.faultsim.replay.GoldenRun`): BER = 0 evaluations become
pure lookups of the cached clean predictions, and faulty counter-scheme
evaluations execute through the dirty-sample replay executor
(:func:`repro.faultsim.replay.replay_forward`) — bit-identical, but only
fault-touched samples are recomputed.  Faulty *stream*-scheme
evaluations silently bypass the cache (stream draws are not
partition-invariant), so passing ``golden=`` never changes any result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, FaultModelError
from repro.faultsim.abft import AbftChecker
from repro.faultsim.model import FaultModelConfig, RNG_COUNTER
from repro.faultsim.neuron_level import NeuronLevelInjector
from repro.faultsim.operation_level import OperationLevelInjector
from repro.faultsim.protection import ProtectionPlan
from repro.faultsim.replay import GoldenRun, replay_forward
from repro.faultsim.sites import expected_faults_per_image
from repro.quantized.qmodel import QuantizedModel

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "SeedPointResult",
    "SampleSliceResult",
    "campaign_lambda",
    "combine_seed_results",
    "combine_slice_results",
    "evaluate_seed_point",
    "evaluate_sample_slice",
    "run_point",
    "run_sweep",
    "validate_ber",
]

INJECTOR_OPERATION = "operation"
INJECTOR_NEURON = "neuron"


def validate_ber(ber: float) -> float:
    """Validate a bit error rate at the task boundary; returns it as float.

    A NaN or negative BER would otherwise flow straight into Poisson
    lambdas (silently poisoning draws) *and* into content-hashed
    checkpoint keys — producing persisted rows a resume can never
    reconcile, because the poisoned key is as stable as a valid one.
    Rejecting here, before any unit runs or any key is derived, keeps the
    checkpoint free of garbage identities.  Probabilities are accepted on
    the closed interval: 0 (fault-free golden point) and 1 are both
    meaningful.
    """
    try:
        ber = float(ber)
    except (TypeError, ValueError):
        raise ConfigurationError(f"ber must be a real number, got {ber!r}") from None
    if math.isnan(ber):
        raise ConfigurationError("ber must not be NaN")
    if not 0.0 <= ber <= 1.0:
        raise ConfigurationError(
            f"ber must be a probability in [0, 1], got {ber!r}"
        )
    return ber


@dataclass(frozen=True)
class CampaignConfig:
    """Evaluation parameters shared by all points of a campaign."""

    seeds: tuple[int, ...] = (0, 1, 2)
    batch_size: int = 64
    injector: str = INJECTOR_OPERATION
    fault_config: FaultModelConfig = field(default_factory=FaultModelConfig)
    #: Optional limit on evaluation samples (None = use all provided).
    max_samples: int | None = None


@dataclass
class CampaignResult:
    """Accuracy statistics for one (model, BER) operating point."""

    ber: float
    lam: float
    mean_accuracy: float
    std_accuracy: float
    per_seed: list[float]
    events_per_seed: list[int]

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "ber": self.ber,
            "lambda": self.lam,
            "mean_accuracy": self.mean_accuracy,
            "std_accuracy": self.std_accuracy,
            "per_seed": self.per_seed,
            "events_per_seed": self.events_per_seed,
        }


@dataclass(frozen=True)
class SeedPointResult:
    """Outcome of one (BER, seed) evaluation — the atomic campaign unit."""

    ber: float
    seed: int
    accuracy: float
    events: int

    def to_dict(self) -> dict:
        """JSON-serializable form (checkpoint record)."""
        return {
            "ber": self.ber,
            "seed": self.seed,
            "accuracy": self.accuracy,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, row: dict) -> "SeedPointResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            ber=float(row["ber"]),
            seed=int(row["seed"]),
            accuracy=float(row["accuracy"]),
            events=int(row["events"]),
        )


@dataclass(frozen=True)
class SampleSliceResult:
    """Outcome of one (BER, seed) evaluation over a sample slice.

    The sub-seed campaign unit: ``[start, stop)`` indexes the
    (``max_samples``-trimmed) evaluation set, and correct/total counts —
    not a ratio — are carried so a partition of slices recombines into the
    *exact* accuracy of the unsliced evaluation
    (:func:`combine_slice_results`).  Only meaningful under the counter
    RNG scheme (or at BER 0), where fault draws are partition-invariant.
    """

    ber: float
    seed: int
    start: int
    stop: int
    correct: int
    total: int
    events: int

    @property
    def accuracy(self) -> float:
        """Slice-local accuracy (progress reporting; reduction uses counts)."""
        return float(self.correct) / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable form (checkpoint record)."""
        return {
            "ber": self.ber,
            "seed": self.seed,
            "start": self.start,
            "stop": self.stop,
            "correct": self.correct,
            "total": self.total,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, row: dict) -> "SampleSliceResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            ber=float(row["ber"]),
            seed=int(row["seed"]),
            start=int(row["start"]),
            stop=int(row["stop"]),
            correct=int(row["correct"]),
            total=int(row["total"]),
            events=int(row["events"]),
        )


def _make_injector(
    config: CampaignConfig, ber: float, seed: int, protection, sample_base: int = 0
):
    """Build the injector for one evaluation unit.

    An operation-level campaign whose plan marks ABFT layers gets its base
    injector wrapped in a correcting :class:`~repro.faultsim.abft.AbftChecker`
    restricted to those layers — faults are injected in full (ABFT layers
    keep their TMR fractions at 0) and then detected/repaired at the
    accumulator.  Neuron-level faults flip bits *after* requantization,
    outside the accumulator checksum's protection domain, so the neuron
    injector is never wrapped (a wrap would silently change nothing but
    cost a checksum per layer).
    """
    if config.injector == INJECTOR_NEURON:
        return NeuronLevelInjector(
            ber, seed=seed, config=config.fault_config, sample_base=sample_base
        )
    if config.injector == INJECTOR_OPERATION:
        injector = OperationLevelInjector(
            ber,
            seed=seed,
            config=config.fault_config,
            protection=protection,
            sample_base=sample_base,
        )
        abft_layers = (
            protection.abft_layers if protection is not None else frozenset()
        )
        if abft_layers:
            return AbftChecker(injector, layers=abft_layers, correct=True)
        return injector
    raise ValueError(f"unknown injector kind '{config.injector}'")


def _replay_usable(golden, config: CampaignConfig, ber: float, n: int) -> bool:
    """Whether a golden run can serve this evaluation.

    BER 0 is always a cache lookup; faulty points additionally need the
    partition-invariant counter RNG scheme (stream draws depend on visit
    order, so replay would change the Monte-Carlo realization).  When
    usable, structural identity is validated; otherwise the caller falls
    back to the full forward and results are unchanged either way.
    """
    if golden is None:
        return False
    if ber != 0.0 and config.fault_config.rng_scheme != RNG_COUNTER:
        return False
    golden.check(config.injector, config.fault_config, n)
    return True


def evaluate_seed_point(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    ber: float,
    seed: int,
    config: CampaignConfig | None = None,
    protection: ProtectionPlan | None = None,
    golden: GoldenRun | None = None,
) -> SeedPointResult:
    """Evaluate accuracy for exactly one (BER, seed) pair.

    Pure with respect to the sweep: the result depends only on the
    arguments (the injector owns its RNG, seeded here), so units may be
    executed in any order or on any process and recombined afterwards.
    ``golden`` optionally serves the evaluation from the golden-run cache
    (see the module docs); it is an execution strategy, never part of the
    result's identity — outputs are bit-identical with or without it.
    """
    config = config or CampaignConfig()
    ber = validate_ber(ber)
    if config.max_samples is not None:
        x, labels = x[: config.max_samples], labels[: config.max_samples]
    use_golden = _replay_usable(golden, config, ber, len(x))
    if ber == 0.0:
        if use_golden:
            accuracy = float((golden.preds == labels).mean())
            return SeedPointResult(ber=ber, seed=seed, accuracy=accuracy, events=0)
        accuracy = qmodel.evaluate(x, labels, batch_size=config.batch_size)
        return SeedPointResult(ber=ber, seed=seed, accuracy=float(accuracy), events=0)
    injector = _make_injector(config, ber, seed, protection)
    if use_golden:
        preds = replay_forward(qmodel, golden, injector, (0, len(x)))
        accuracy = float((preds == labels).mean())
    else:
        accuracy = qmodel.evaluate(
            x, labels, injector=injector, batch_size=config.batch_size
        )
    return SeedPointResult(
        ber=ber,
        seed=seed,
        accuracy=float(accuracy),
        events=int(sum(injector.event_counts.values())),
    )


def evaluate_sample_slice(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    ber: float,
    seed: int,
    sample_slice: tuple[int, int],
    config: CampaignConfig | None = None,
    protection: ProtectionPlan | None = None,
    golden: GoldenRun | None = None,
) -> SampleSliceResult:
    """Evaluate one (BER, seed) pair over one slice of the sample set.

    ``sample_slice`` is a ``[start, stop)`` window into the
    (``max_samples``-trimmed) evaluation set.  Pure like
    :func:`evaluate_seed_point`, and additionally *partition-invariant*:
    under the counter RNG scheme, the faults a sample receives depend only
    on its dataset-global index, never on which slice or batch carries it,
    so any disjoint cover of ``[0, N)`` recombines
    (:func:`combine_slice_results`) into exactly the unsliced result.
    ``golden`` optionally serves the slice from the golden-run cache
    (the cache spans the whole evaluation set; the slice gathers its
    window), bit-identically.

    Raises :class:`~repro.errors.ConfigurationError` when ``ber > 0`` under
    the legacy stream scheme, whose draws are not partition-invariant.
    """
    config = config or CampaignConfig()
    ber = validate_ber(ber)
    if config.max_samples is not None:
        x, labels = x[: config.max_samples], labels[: config.max_samples]
    start, stop = int(sample_slice[0]), int(sample_slice[1])
    if not 0 <= start < stop <= len(x):
        raise ConfigurationError(
            f"sample slice [{start}, {stop}) out of range for {len(x)} samples"
        )
    use_golden = _replay_usable(golden, config, ber, len(x))
    xs, ys = x[start:stop], labels[start:stop]
    if ber == 0.0:
        if use_golden:
            preds = golden.preds[start:stop]
        else:
            preds = qmodel.predict(xs, batch_size=config.batch_size)
        return SampleSliceResult(
            ber=ber, seed=seed, start=start, stop=stop,
            correct=int((preds == ys).sum()), total=stop - start, events=0,
        )
    if config.fault_config.rng_scheme != RNG_COUNTER:
        raise ConfigurationError(
            "sample-slice evaluation requires the partition-invariant "
            "counter RNG scheme; set FaultModelConfig(rng_scheme='counter') "
            f"(got '{config.fault_config.rng_scheme}')"
        )
    injector = _make_injector(config, ber, seed, protection, sample_base=start)
    if use_golden:
        preds = replay_forward(qmodel, golden, injector, (start, stop))
    else:
        preds = qmodel.predict(xs, injector=injector, batch_size=config.batch_size)
    return SampleSliceResult(
        ber=ber,
        seed=seed,
        start=start,
        stop=stop,
        correct=int((preds == ys).sum()),
        total=stop - start,
        events=int(sum(injector.event_counts.values())),
    )


def combine_slice_results(
    slices: list[SampleSliceResult],
    expected_total: int | None = None,
) -> SeedPointResult:
    """Fold a full partition of sample slices into one :class:`SeedPointResult`.

    ``slices`` must cover ``[0, N)`` contiguously (any order); all slices
    must belong to the same (BER, seed) point.  Pass ``expected_total``
    (the engine passes its sample count) to also reject a cover that
    stops short of the set's end — without it a truncated-but-contiguous
    cover is indistinguishable from a complete one.  The accuracy is
    computed as ``total correct / total samples`` — the same
    integer-valued float division ``QuantizedModel.evaluate`` performs —
    so the reduction is bit-identical to the unsliced evaluation.
    """
    if not slices:
        raise ConfigurationError("combine_slice_results needs at least one slice")
    ordered = sorted(slices, key=lambda s: s.start)
    first = ordered[0]
    cursor = 0
    for part in ordered:
        if (part.ber, part.seed) != (first.ber, first.seed):
            raise ConfigurationError(
                "slices mix (BER, seed) points: "
                f"({part.ber}, {part.seed}) vs ({first.ber}, {first.seed})"
            )
        if part.start != cursor:
            raise ConfigurationError(
                f"slice cover has a gap/overlap at sample {cursor} "
                f"(next slice starts at {part.start})"
            )
        cursor = part.stop
    if expected_total is not None and cursor != expected_total:
        raise ConfigurationError(
            f"slice cover stops at sample {cursor}, expected {expected_total}"
        )
    total = sum(part.total for part in ordered)
    correct = sum(part.correct for part in ordered)
    return SeedPointResult(
        ber=first.ber,
        seed=first.seed,
        accuracy=float(correct) / total if total else 0.0,
        events=int(sum(part.events for part in ordered)),
    )


def campaign_lambda(
    qmodel: QuantizedModel,
    ber: float,
    config: CampaignConfig,
    protection: ProtectionPlan | None = None,
) -> float:
    """Expected faults per inference for one BER under this campaign.

    Raises :class:`~repro.errors.FaultModelError` when the rate is not
    finite — the upstream symptom of a poisoned BER or an overflowing op
    census, caught here before it reaches a Poisson draw.
    """
    ber = validate_ber(ber)
    if config.injector == INJECTOR_OPERATION:
        lam = expected_faults_per_image(qmodel, ber, config.fault_config, protection)
    else:
        lam = ber * sum(
            np.prod(layer.out_shape) * layer.out_fmt.width
            for layer in qmodel.injectable_layers()
        )
    lam = float(lam)
    if not math.isfinite(lam):
        raise FaultModelError(
            f"expected fault rate is not finite ({lam!r}) at BER {ber!r}"
        )
    return lam


def combine_seed_results(
    qmodel: QuantizedModel,
    ber: float,
    seed_results: list[SeedPointResult],
    config: CampaignConfig,
    protection: ProtectionPlan | None = None,
) -> CampaignResult:
    """Fold per-seed results (in campaign seed order) into a CampaignResult.

    The statistics are computed exactly as the serial loop computes them, so
    engine-recombined sweeps are bit-identical to :func:`run_point`.
    """
    accuracies = [r.accuracy for r in seed_results]
    return CampaignResult(
        ber=ber,
        lam=campaign_lambda(qmodel, ber, config, protection),
        mean_accuracy=float(np.mean(accuracies)),
        std_accuracy=float(np.std(accuracies)),
        per_seed=[float(a) for a in accuracies],
        events_per_seed=[r.events for r in seed_results],
    )


def run_point(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    ber: float,
    config: CampaignConfig | None = None,
    protection: ProtectionPlan | None = None,
) -> CampaignResult:
    """Evaluate accuracy at one BER, averaged over the configured seeds."""
    config = config or CampaignConfig()
    seed_results = [
        evaluate_seed_point(
            qmodel, x, labels, ber, seed, config=config, protection=protection
        )
        for seed in config.seeds
    ]
    return combine_seed_results(qmodel, ber, seed_results, config, protection)


def run_sweep(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    bers: list[float],
    config: CampaignConfig | None = None,
    protection: ProtectionPlan | None = None,
) -> list[CampaignResult]:
    """Evaluate a list of BER points (Fig. 2-style accuracy curves)."""
    return [
        run_point(qmodel, x, labels, ber, config=config, protection=protection)
        for ber in bers
    ]
