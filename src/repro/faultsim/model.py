"""Fault-model configuration.

The model realizes the paper's operation-level fault abstraction: a soft
error flips one bit of a register involved in one primitive operation
(multiply or add) of the convolution/GEMM datapath.

Semantics
---------
``PAPER`` (default) flips *operation result registers*, with register
widths taken from the fixed-point datapath the paper assumes:

* **Multiplication faults** flip one bit of the product-result register,
  which is ``2 * width`` bits wide (a W x W multiplier produces a 2W-bit
  product).  High product bits reach the magnitude of whole-layer
  accumulations, so multiplication faults are the dominant error class —
  the paper's central observation, and the property Winograd exploits by
  executing 2.25x fewer multiplications.
* **Addition faults** flip one bit of the sum register.  Sum registers are
  ``width + acc_guard`` bits at the native LSB, capped to the stage's
  actual dynamic range, so addition faults inject bounded low-order noise.

``RESULT_ALL`` is an ablation that gives multiplications the same
register width as additions (no wide product register); the benchmark
``benchmarks/bench_ablation_semantics.py`` quantifies how the paper's
conclusions depend on this modeling choice.

Bit-error-rate convention
-------------------------
``PER_BIT`` (default): the BER is the per-bit flip probability, so a
category with ``n`` ops of exposure ``w`` bits each sees
``lambda = ber * n * w`` expected faults.  ``PER_OP`` treats the BER as a
per-operation probability (``lambda = ber * n``).  The paper's phrasing
("probability of a bit flip in an operation") is compatible with either;
PER_BIT additionally explains why int16 models degrade earlier than int8
ones at the same BER (twice the exposed bits), which Fig. 2 reports.

RNG schemes
-----------
``RNG_STREAM`` (default, legacy): both injectors pull every draw from one
sequential PCG64 stream, so a result depends on the *order* in which
sites are visited — the scheme the frozen PR 2/3 parity references were
recorded under.  ``RNG_COUNTER``: every draw is a pure function of
``(campaign seed, layer, site, sample chunk)`` via keyed Philox streams
(:func:`repro.utils.rng.site_rng`); event counts and coordinates are
sampled per fixed-size chunk of ``chunk_samples`` evaluation samples, so
any partition of the sample set — slice sizes, batch sizes, worker
counts — reproduces bit-identical faults.  The two schemes realize the
same statistical fault model (identical per-category lambda), but their
Monte-Carlo draws differ, so a campaign's scheme is part of its identity
(checkpoint keys and result caches never mix schemes).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import FaultModelError

__all__ = [
    "FaultSemantics",
    "BerConvention",
    "FaultModelConfig",
    "RNG_STREAM",
    "RNG_COUNTER",
]

#: Legacy sequential-stream sampling (order-dependent draws).
RNG_STREAM = "stream"
#: Counter-based, site-keyed sampling (partition-invariant draws).
RNG_COUNTER = "counter"


class FaultSemantics(Enum):
    """How a fault event perturbs an operation."""

    PAPER = "paper"
    RESULT_ALL = "result_all"


class BerConvention(Enum):
    """What probability the bit error rate denotes."""

    PER_BIT = "per_bit"
    PER_OP = "per_op"


@dataclass(frozen=True)
class FaultModelConfig:
    """Tunable parameters of the operation-level fault model.

    Attributes
    ----------
    semantics:
        Operand-amplified multiplies (``PAPER``) or pure result flips.
    convention:
        Per-bit or per-operation BER.
    max_events_per_category:
        Safety cap on sampled events per (layer, category, batch); BERs past
        the accuracy cliff can request millions of events whose effect
        saturates long before that.  The cap is high enough not to bias any
        reported operating point (campaigns warn when it binds).  Under the
        counter scheme the cap applies per (layer, site, chunk) — the unit
        a Poisson count is drawn for — which keeps capping itself
        partition-invariant.
    rng_scheme:
        ``RNG_STREAM`` (default) or ``RNG_COUNTER``; see the module docs.
        Only the counter scheme supports sample-level sharding
        (:func:`repro.faultsim.campaign.evaluate_sample_slice`).
    chunk_samples:
        Counter-scheme sampling granularity: Poisson event counts and
        fault coordinates are drawn per chunk of this many consecutive
        evaluation samples.  Part of a counter campaign's identity (a
        different chunking is a different Monte-Carlo draw); irrelevant
        under the stream scheme.
    """

    semantics: FaultSemantics = FaultSemantics.PAPER
    convention: BerConvention = BerConvention.PER_BIT
    max_events_per_category: int = 20_000
    #: When True, Winograd input-transform addition faults are propagated
    #: with full physical fidelity: the corrupted ``U`` element multiplies
    #: the transformed weights and fans out to every output channel of its
    #: tile.  The paper's model (and the default) treats every addition as a
    #: small perturbation of the additive chain it belongs to; the amplified
    #: variant is an ablation (``benchmarks/bench_ablation_semantics.py``)
    #: showing how strongly the Winograd advantage depends on this choice.
    amplify_input_transform_adds: bool = False
    rng_scheme: str = RNG_STREAM
    chunk_samples: int = 8

    def __post_init__(self) -> None:
        if self.max_events_per_category < 1:
            raise FaultModelError("max_events_per_category must be >= 1")
        if self.rng_scheme not in (RNG_STREAM, RNG_COUNTER):
            raise FaultModelError(
                f"rng_scheme must be '{RNG_STREAM}' or '{RNG_COUNTER}', "
                f"got {self.rng_scheme!r}"
            )
        if self.chunk_samples < 1:
            raise FaultModelError("chunk_samples must be >= 1")

    def rng_identity(self) -> dict:
        """RNG-scheme fields that belong in a campaign's content identity.

        Empty at the stream default — the scheme fields postdate the
        stream-era checkpoint keys and curve caches, so omitting them
        keeps every historical key valid; any other scheme contributes
        both the scheme and its chunking (a different chunking is a
        different Monte-Carlo draw).  The single source of truth for
        checkpoint hashing (:func:`repro.runtime.hashing.campaign_fingerprint`)
        and the figure curve cache.
        """
        if self.rng_scheme == RNG_STREAM:
            return {}
        return {"rng_scheme": self.rng_scheme, "chunk_samples": self.chunk_samples}

    def exposure_bits(self, is_mul: bool, data_width: int, acc_width: int) -> int:
        """Bits of state exposed per operation for lambda computation.

        A multiplier exposes its two operand latches (``2 * width`` bits);
        an adder exposes its sum register (``acc_width`` bits).  Under
        ``RESULT_ALL`` semantics multiplies expose a single result register
        of ``acc_width`` bits instead.
        """
        if self.convention is BerConvention.PER_OP:
            return 1
        if is_mul and self.semantics is FaultSemantics.PAPER:
            return 2 * data_width
        return acc_width
