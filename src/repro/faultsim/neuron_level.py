"""Neuron-level fault injector (TensorFI / PyTorchFI-style baseline).

Flips bits of *stored activation values* (layer outputs) rather than of
operation results.  Because standard and Winograd convolution compute
identical activations, this injector cannot distinguish the two execution
modes — the point the paper makes with Fig. 1, and the reason it builds the
operation-level platform.

Like the operation-level injector, it supports both RNG schemes: the
legacy sequential ``"stream"`` draws, and the ``"counter"`` scheme whose
draws are keyed per (seed, layer, chunk of samples) and therefore
invariant under any partition of the sample axis (see
:mod:`repro.faultsim.sampling`).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.fixedpoint.bits import flip_bit
from repro.faultsim.model import BerConvention, FaultModelConfig, RNG_COUNTER
from repro.faultsim.sampling import CounterSampler, ReplayHooks
from repro.quantized.interface import Injector
from repro.utils.rng import as_rng

__all__ = ["NeuronLevelInjector"]


class NeuronLevelInjector(ReplayHooks, Injector):
    """Flips bits in the quantized outputs of conv and linear layers.

    ``lambda = ber * n_neurons * width`` under the per-bit convention
    (``ber * n_neurons`` per-op), mirroring how neuron-level platforms
    parameterize their injections.

    ``sample_base`` (counter scheme only) anchors the injector's first
    evaluation sample on the global sample axis, so a sample slice injects
    exactly the faults the full-set run would inject into those samples.
    """

    def __init__(
        self,
        ber: float,
        seed: int | np.random.Generator = 0,
        config: FaultModelConfig | None = None,
        sample_base: int = 0,
    ):
        if ber < 0:
            raise ValueError(f"ber must be non-negative, got {ber}")
        self.ber = float(ber)
        self.config = config or FaultModelConfig()
        if self.config.rng_scheme == RNG_COUNTER:
            self._sampler: CounterSampler | None = CounterSampler(
                seed, self.ber, self.config, sample_base=sample_base
            )
            self.rng = None
        else:
            self._sampler = None
            self.rng = as_rng(seed)
        self.event_counts: dict[str, int] = defaultdict(int)

    def begin_inference(self, batch_size: int) -> None:
        """Track the forward batch's position on the global sample axis."""
        if self._sampler is not None:
            self._sampler.begin_batch(batch_size)

    def visit_output(self, layer, y_int: np.ndarray) -> np.ndarray:
        """Flip bits of requantized output neurons (post-accumulator)."""
        width = layer.out_fmt.width
        exposure = 1 if self.config.convention is BerConvention.PER_OP else width
        n = y_int.shape[0]
        per_sample = y_int.size // n if n else 0

        if self._sampler is not None:
            events = self._sampler.site_events(
                layer.name, "neuron", n, per_sample, exposure, 1.0, (per_sample,)
            )
            if events is None:
                return y_int
            self.event_counts["neuron"] += len(events)
            rows = y_int.reshape(n, -1)
            img = events.img
            (idx,) = events.coords
            bits = events.bits(width)
            rows[img, idx] = flip_bit(rows[img, idx], bits, width)
            return y_int

        lam = self.ber * y_int.size * exposure
        count = int(self.rng.poisson(lam))
        if count == 0:
            return y_int
        count = min(count, self.config.max_events_per_category)
        self.event_counts["neuron"] += count

        flat = y_int.reshape(-1)
        idx = self.rng.integers(0, flat.size, size=count)
        bits = self.rng.integers(0, width, size=count)
        flat[idx] = flip_bit(flat[idx], bits, width)
        return y_int
