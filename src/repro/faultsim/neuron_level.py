"""Neuron-level fault injector (TensorFI / PyTorchFI-style baseline).

Flips bits of *stored activation values* (layer outputs) rather than of
operation results.  Because standard and Winograd convolution compute
identical activations, this injector cannot distinguish the two execution
modes — the point the paper makes with Fig. 1, and the reason it builds the
operation-level platform.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.fixedpoint.bits import flip_bit
from repro.faultsim.model import BerConvention, FaultModelConfig
from repro.quantized.interface import Injector
from repro.utils.rng import as_rng

__all__ = ["NeuronLevelInjector"]


class NeuronLevelInjector(Injector):
    """Flips bits in the quantized outputs of conv and linear layers.

    ``lambda = ber * n_neurons * width`` under the per-bit convention
    (``ber * n_neurons`` per-op), mirroring how neuron-level platforms
    parameterize their injections.
    """

    def __init__(
        self,
        ber: float,
        seed: int | np.random.Generator = 0,
        config: FaultModelConfig | None = None,
    ):
        if ber < 0:
            raise ValueError(f"ber must be non-negative, got {ber}")
        self.ber = float(ber)
        self.rng = as_rng(seed)
        self.config = config or FaultModelConfig()
        self.event_counts: dict[str, int] = defaultdict(int)

    def visit_output(self, layer, y_int: np.ndarray) -> np.ndarray:
        width = layer.out_fmt.width
        exposure = 1 if self.config.convention is BerConvention.PER_OP else width
        lam = self.ber * y_int.size * exposure
        count = int(self.rng.poisson(lam))
        if count == 0:
            return y_int
        count = min(count, self.config.max_events_per_category)
        self.event_counts["neuron"] += count

        flat = y_int.reshape(-1)
        idx = self.rng.integers(0, flat.size, size=count)
        bits = self.rng.integers(0, width, size=count)
        flat[idx] = flip_bit(flat[idx], bits, width)
        return y_int
