"""Operation-level fault injector.

Implements the paper's core contribution: random soft errors injected into
the primitive operations (multiplications and additions) of convolution and
fully-connected layers, with *exact* propagation of every fault's effect to
the layer output accumulator.

Propagation identities (all linear, hence exact):

* direct conv / linear — a perturbed product or partial sum shifts the
  output accumulator by the perturbation delta;
* Winograd element-wise product / channel-reduction add at tile position
  ``(i, j)`` — the output tile shifts by ``delta * outer(AT[:, i], AT[:, j])``;
* Winograd input-transform add on channel ``c`` — the perturbation enters
  ``U`` before the Hadamard product, so it is *amplified by the transformed
  weights* and fans out to every output channel ``k``:
  ``dY_k = AT (dU ⊙ V[k, c]) AT^T``;
* Winograd output-transform add — a row (pass 1) or single-element (pass 2)
  update of the output tile.

Registers are modeled as described in :mod:`repro.faultsim.model`:
multiplier result registers are ``2 * width`` bits (the full product, at the
native product LSB) — the structural reason multiplication faults dominate;
sum registers are sized to their stage's dynamic range, capped at
``width + acc_guard`` bits.  Under the default (paper) semantics,
input-transform addition faults perturb the additive chain locally — the
fully physical weight-amplified fan-out propagation is available as the
``amplify_input_transform_adds`` ablation.

RNG schemes
-----------
Fault sites are sampled under one of two schemes
(``FaultModelConfig.rng_scheme``):

* ``"stream"`` (legacy): all draws come from one sequential PCG64 stream in
  visit order, and sum-register widths are sized to the *batch* dynamic
  range — the scheme the frozen parity references were recorded under.
* ``"counter"``: draws are pure functions of ``(campaign seed, layer, site,
  sample chunk)`` via :class:`repro.faultsim.sampling.CounterSampler`, and
  sum-register widths are sized per *sample*.  Results are then invariant
  under any partition of the sample axis (slice sizes, batch sizes, worker
  counts), which is what enables sample-level sharding
  (:func:`repro.faultsim.campaign.evaluate_sample_slice`).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.fixedpoint.bits import flip_delta, flip_delta_var  # noqa: F401  (flip_delta re-exported via register_flip_delta)
from repro.faultsim.model import (
    BerConvention,
    FaultModelConfig,
    FaultSemantics,
    RNG_COUNTER,
)
from repro.faultsim.protection import ProtectionPlan
from repro.faultsim.sampling import (
    CounterSampler,
    ReplayHooks,
    StreamEvents,
    bit_lengths,
)
from repro.quantized.interface import Injector
from repro.utils.rng import as_rng

__all__ = ["OperationLevelInjector", "register_scale_pow", "register_flip_delta"]


def _stage_register_width(max_abs: int, acc_width: int) -> int:
    """Register width of an addition stage holding values up to ``max_abs``.

    Hardware sizes each sum register to its stage's dynamic range, capped at
    the accumulator width: ``min(acc_width, bit_length(max_abs) + 1)``.
    Without the cap, guard bits far above a narrow stage's actual span would
    let bit flips inject deltas orders of magnitude beyond any physical
    signal of that stage.
    """
    if max_abs <= 0:
        return 2
    return max(2, min(acc_width, int(max_abs).bit_length() + 1))


def register_scale_pow(max_abs: int, width: int) -> int:
    """LSB exponent of a ``width``-bit register sized to hold ``max_abs``.

    Returns the smallest ``s >= 0`` such that every value with
    ``|v| <= max_abs`` fits a ``width``-bit two's-complement register whose
    LSB weighs ``2**s``.
    """
    if max_abs <= 0:
        return 0
    span_bits = int(max_abs).bit_length() + 1  # + sign bit
    return max(0, span_bits - width)


def register_flip_delta(
    values: np.ndarray, bits: np.ndarray, width: int, scale_pow: int
) -> np.ndarray:
    """Delta caused by flipping register bit ``bits`` of ``values``.

    The register holds ``values >> scale_pow``; the returned delta is in the
    native integer domain (scaled back up by ``2**scale_pow``).
    """
    held = np.asarray(values, dtype=np.int64) >> np.int64(scale_pow)
    return flip_delta(held, bits, width) << np.int64(scale_pow)


class OperationLevelInjector(ReplayHooks, Injector):
    """Injects operation-level faults during quantized inference.

    Parameters
    ----------
    ber:
        Bit error rate (interpretation set by ``config.convention``).
    seed:
        RNG seed or generator; a single injector instance is deterministic
        given its seed and the visit sequence.  The counter scheme requires
        an integer seed (streams are keyed by it).
    config:
        Fault-model parameters, including the RNG scheme.
    protection:
        Optional :class:`ProtectionPlan`; protected fractions thin the
        event rate of their (layer, category).
    sample_base:
        Global index of the first evaluation sample this injector will see
        (counter scheme only).  Sample-slice evaluation passes the slice
        start so every sample keeps its dataset-global identity; the
        default 0 covers whole-set evaluation.
    """

    def __init__(
        self,
        ber: float,
        seed: int | np.random.Generator = 0,
        config: FaultModelConfig | None = None,
        protection: ProtectionPlan | None = None,
        sample_base: int = 0,
    ):
        if ber < 0:
            raise ValueError(f"ber must be non-negative, got {ber}")
        self.ber = float(ber)
        self.config = config or FaultModelConfig()
        self.protection = protection
        if self.config.rng_scheme == RNG_COUNTER:
            self._sampler: CounterSampler | None = CounterSampler(
                seed, self.ber, self.config, sample_base=sample_base
            )
            self.rng = None
        else:
            self._sampler = None
            self.rng = as_rng(seed)
        #: Events actually injected, keyed by category (diagnostics).
        self.event_counts: dict[str, int] = defaultdict(int)
        #: True when the per-category event cap ever bound.
        self.capped = False

    def begin_inference(self, batch_size: int) -> None:
        """Track the forward batch's position on the global sample axis."""
        if self._sampler is not None:
            self._sampler.begin_batch(batch_size)

    # ------------------------------------------------------------------ sampling
    def _num_events(self, layer_name: str, category: str, n_ops: int, bits: int) -> int:
        """Draw the Poisson event count for a category, with thinning and cap."""
        if self.ber == 0.0 or n_ops <= 0:
            return 0
        rho = self._protected_fraction(layer_name, category)
        if rho >= 1.0:
            return 0
        exposure = 1 if self.config.convention is BerConvention.PER_OP else bits
        lam = self.ber * float(n_ops) * exposure * (1.0 - rho)
        count = int(self.rng.poisson(lam))
        if count > self.config.max_events_per_category:
            count = self.config.max_events_per_category
            self.capped = True
        if count:
            self.event_counts[category] += count
        return count

    def _protected_fraction(self, layer_name: str, category: str) -> float:
        return (
            self.protection.fraction(layer_name, category)
            if self.protection is not None
            else 0.0
        )

    def _site_events(
        self,
        layer_name: str,
        category: str,
        site: str,
        n_batch: int,
        ops_per_sample: int,
        exposure_bits: int,
        highs: tuple[int, ...],
        with_signs: bool = False,
    ):
        """Sample one site's events for the current batch, either scheme.

        ``category`` is the diagnostics/protection bucket; ``site``
        uniquely names this draw sequence within the layer (categories
        visited more than once per forward — Winograd passes and
        sub-convolutions — carry distinguishing suffixes so their keyed
        streams never collide).
        """
        if self._sampler is None:
            count = self._num_events(
                layer_name, category, ops_per_sample * n_batch, exposure_bits
            )
            if count == 0:
                return None
            rng = self.rng
            img = rng.integers(0, n_batch, size=count)
            coords = [rng.integers(0, high, size=count) for high in highs]
            return StreamEvents(rng, img, coords)
        events = self._sampler.site_events(
            layer_name,
            site,
            n_batch,
            ops_per_sample,
            exposure_bits,
            1.0 - self._protected_fraction(layer_name, category),
            highs,
            with_signs=with_signs,
        )
        if events is not None:
            self.event_counts[category] += len(events)
        self.capped = self.capped or self._sampler.capped
        return events

    def _stage_widths(self, ref: np.ndarray, acc_width: int, events):
        """Sum-register width(s) for ``events``, sized to ``ref``'s range.

        Stream scheme: one batch-wide scalar width (legacy semantics).
        Counter scheme: each event's register is sized to its *own
        sample's* maximum, so a fault's delta never depends on which other
        samples share the batch (partition invariance).
        """
        if self._sampler is None:
            return _stage_register_width(int(np.abs(ref).max(initial=1)), acc_width)
        axes = tuple(range(1, ref.ndim))
        per_sample = np.abs(ref).max(axis=axes, initial=1)
        widths = np.clip(bit_lengths(per_sample) + 1, 2, acc_width)
        return widths[events.img]

    @staticmethod
    def _register_deltas(values, widths, events):
        """Flip-bit deltas for ``events`` with scalar or per-event widths."""
        bits = events.bits(widths)
        if np.ndim(widths) == 0:
            return register_flip_delta(values, bits, int(widths), 0)
        return flip_delta_var(values, bits, widths)

    def _mul_exposure_bits(self, layer) -> int:
        return self.config.exposure_bits(True, layer.in_fmt.width, layer.acc_width)

    def _add_exposure_bits(self, layer) -> int:
        return self.config.exposure_bits(False, layer.in_fmt.width, layer.acc_width)

    def _mul_register_width(self, layer) -> int:
        """Product-result register width: 2W (full product) under PAPER
        semantics, the sum-register width under RESULT_ALL (ablation)."""
        if self.config.semantics is FaultSemantics.PAPER:
            return 2 * layer.in_fmt.width
        return layer.acc_width

    # ------------------------------------------------------------- direct conv
    def visit_direct(self, layer, x_int, cols, acc):
        """Inject multiplication and addition faults into a direct-conv GEMM."""
        n = acc.shape[0]
        k_out = acc.shape[1]
        spatial = acc.shape[2] * acc.shape[3] if acc.ndim == 4 else 1
        weight2d = layer.weight_int.reshape(k_out, -1)
        reduction = weight2d.shape[1]
        acc_flat = acc.reshape(n, k_out * spatial)

        self._inject_gemm_muls(
            layer, "st_mul", cols, weight2d, acc_flat, n, k_out, spatial, reduction
        )
        self._inject_result_adds(
            layer, "st_add", "st_add", layer.op_counts.st_add, acc_flat
        )

    def visit_linear(self, layer, x_int, acc):
        """Inject faults into a linear layer (a GEMM with one spatial site)."""
        n, k_out = acc.shape
        cols = x_int[:, :, None]  # (N, F_in, 1) -> GEMM layout with spatial=1
        weight2d = layer.weight_int
        acc_flat = acc.reshape(n, k_out)
        self._inject_gemm_muls(
            layer, "st_mul", cols, weight2d, acc_flat, n, k_out, 1, weight2d.shape[1]
        )
        self._inject_result_adds(
            layer, "st_add", "st_add", layer.op_counts.st_add, acc_flat
        )

    def _inject_gemm_muls(
        self, layer, category, cols, weight2d, acc_flat, n, k_out, spatial, reduction
    ):
        """Multiplication faults in a GEMM: product-result register flips."""
        events = self._site_events(
            layer.name,
            category,
            category,
            n,
            k_out * spatial * reduction,
            self._mul_exposure_bits(layer),
            (k_out * spatial, reduction),
        )
        if events is None:
            return
        img = events.img
        out_idx, red = events.coords
        pq = out_idx % spatial
        kk = out_idx // spatial

        x_vals = cols[img, red, pq]
        w_vals = weight2d[kk, red]
        products = x_vals * w_vals
        width = self._mul_register_width(layer)
        deltas = self._register_deltas(products, width, events)
        np.add.at(acc_flat, (img, out_idx), deltas)

    def _inject_result_adds(self, layer, category, site, ops_per_sample, acc_flat):
        """Addition faults: flips of sum registers, applied to final outputs."""
        n, flat = acc_flat.shape
        events = self._site_events(
            layer.name,
            category,
            site,
            n,
            ops_per_sample,
            self._add_exposure_bits(layer),
            (flat,),
        )
        if events is None:
            return
        img = events.img
        (idx,) = events.coords
        widths = self._stage_widths(acc_flat, layer.acc_width, events)
        # Sign from the final accumulator value's bit: exact for the last
        # addition of the chain, an unbiased approximation for earlier ones.
        deltas = self._register_deltas(acc_flat[img, idx], widths, events)
        np.add.at(acc_flat, (img, idx), deltas)

    # ------------------------------------------------------------- winograd conv
    def visit_winograd(self, layer, sub_contexts, y_scaled):
        """Inject faults into every stage of a Winograd convolution."""
        n, k_out, out_h, out_w = y_scaled.shape
        tf = layer.transform
        at = tf.at_int.astype(np.int64)  # (m, t)
        bt = tf.bt_int.astype(np.int64)  # (t, t)
        m = tf.m

        for sub_index, (spec, ctx) in enumerate(sub_contexts):
            u, v, m_arr = ctx.u_int, ctx.v_int, ctx.m_int
            grid = ctx.grid
            tiles = grid.num_tiles
            # Channel count from the (always-present) transformed filters:
            # u/m may be None for census-only passes (needs_intermediates).
            c_in = v.shape[1]
            t = tf.t
            prefix = f"sub{sub_index}:"

            pad = _TilePadAccumulator(y_scaled, grid)

            self._wg_muls_and_acc_adds(
                layer, prefix, u, v, m_arr, at, pad, n, k_out, c_in, tiles, t
            )
            self._wg_input_adds(
                layer, prefix, u, v, m_arr, bt, at, pad, n, k_out, c_in, tiles, t, m
            )
            self._wg_output_adds(layer, prefix, tf, y_scaled, pad, n, k_out, tiles, t, m)
            pad.flush()

        # Sub-conv recombination + bias additions act on the final summed output.
        ops_per_sample = (len(sub_contexts) - 1 + 1) * k_out * out_h * out_w
        self._inject_result_adds(
            layer,
            "wg_output_add",
            "wg_output_add:recombine",
            ops_per_sample,
            y_scaled.reshape(n, -1),
        )

    def _wg_muls_and_acc_adds(
        self, layer, prefix, u, v, m_arr, at, pad, n, k_out, c_in, tiles, t
    ):
        acc_width = layer.acc_width

        # --- element-wise multiplications ---------------------------------------
        events = self._site_events(
            layer.name,
            "wg_mul",
            prefix + "wg_mul",
            n,
            k_out * c_in * tiles * t * t,
            self._mul_exposure_bits(layer),
            (k_out, c_in, tiles, t, t),
        )
        if events is not None:
            img = events.img
            kk, cc, tl, ii, jj = events.coords
            products = u[img, cc, tl, ii, jj] * v[kk, cc, ii, jj]
            mul_width = self._mul_register_width(layer)
            deltas = self._register_deltas(products, mul_width, events)
            pad.add_rank1(img, kk, tl, deltas, at[:, ii], at[:, jj])

        # --- channel-reduction additions -----------------------------------------
        events = self._site_events(
            layer.name,
            "wg_acc_add",
            prefix + "wg_acc_add",
            n,
            k_out * max(c_in - 1, 0) * tiles * t * t,
            self._add_exposure_bits(layer),
            (k_out, tiles, t, t),
        )
        if events is not None:
            img = events.img
            kk, tl, ii, jj = events.coords
            m_vals = m_arr[img, kk, tl, ii, jj]
            widths = self._stage_widths(m_arr, acc_width, events)
            deltas = self._register_deltas(m_vals, widths, events)
            pad.add_rank1(img, kk, tl, deltas, at[:, ii], at[:, jj])

    def _wg_input_adds(
        self, layer, prefix, u, v, m_arr, bt, at, pad, n, k_out, c_in, tiles, t, m
    ):
        """Input-transform addition faults.

        Default model (paper semantics): the fault perturbs the additive
        chain it belongs to — a transformed-domain partial result — and its
        effect reaches one output channel's tile through the (constant)
        output transform, exactly like a channel-reduction add.

        With ``config.amplify_input_transform_adds`` the full physical
        propagation applies instead: the corrupted ``U`` element multiplies
        the transformed weights and fans out to *every* output channel of
        the tile (ablation; see FaultModelConfig).
        """
        per_vector = int(np.maximum((bt != 0).sum(axis=1) - 1, 0).sum())
        pass_ops = c_in * tiles * per_vector * t  # per sample, per pass
        acc_width = layer.acc_width

        if not self.config.amplify_input_transform_adds:
            # Additive-chain locality (paper semantics): the perturbation is a
            # transformed-domain sum-register flip whose effect reaches one
            # output channel's tile through the constant output transform —
            # same damage kernel as a channel-reduction add, with the
            # input-transform site census.  Base values come from the M
            # domain so the flip window matches the applied domain's units.
            events = self._site_events(
                layer.name,
                "wg_input_add",
                prefix + "wg_input_add",
                n,
                2 * pass_ops,
                self._add_exposure_bits(layer),
                (k_out, tiles, t, t),
            )
            if events is None:
                return
            img = events.img
            kk, tl, ii, jj = events.coords
            widths = self._stage_widths(m_arr, acc_width, events)
            base_vals = m_arr[img, kk, tl, ii, jj]
            deltas = self._register_deltas(base_vals, widths, events)
            pad.add_rank1(img, kk, tl, deltas, at[:, ii], at[:, jj])
            return

        for pass_idx in (1, 2):
            events = self._site_events(
                layer.name,
                "wg_input_add",
                f"{prefix}wg_input_add:p{pass_idx}",
                n,
                pass_ops,
                self._add_exposure_bits(layer),
                (c_in, tiles, t, t),
            )
            if events is None:
                continue
            img = events.img
            cc, tl, uu, vv = events.coords
            u_widths = self._stage_widths(u, acc_width, events)
            base_vals = u[img, cc, tl, uu, vv]
            deltas = self._register_deltas(base_vals, u_widths, events)

            for f in range(len(events)):
                delta = int(deltas[f])
                if delta == 0:
                    continue
                if pass_idx == 2:
                    # dU is a single element at (uu, vv).
                    du = np.zeros((t, t), dtype=np.int64)
                    du[uu[f], vv[f]] = delta
                else:
                    # dZ[u, v] = delta -> dU[u, j] = delta * B[v, j] = delta * bt[j, v].
                    du = np.zeros((t, t), dtype=np.int64)
                    du[uu[f], :] = delta * bt[:, vv[f]]
                dm = du[None, :, :] * v[:, cc[f]]  # (K, t, t), amplified by weights
                dy = np.einsum("ui,kij,vj->kuv", at, dm, at)
                pad.add_tile_all_k(int(img[f]), int(tl[f]), dy)

    def _wg_output_adds(self, layer, prefix, tf, y_scaled, pad, n, k_out, tiles, t, m):
        """Output-transform faults: row (pass 1) or element (pass 2) updates."""
        at = tf.at_int.astype(np.int64)
        per_vector = int(np.maximum((at != 0).sum(axis=1) - 1, 0).sum())
        y_flat = y_scaled.reshape(n, -1)

        # Pass 1: P = AT M, shape (m, t): per tile per k, t applications.
        events = self._site_events(
            layer.name,
            "wg_output_add",
            prefix + "wg_output_add:p1",
            n,
            k_out * tiles * per_vector * t,
            self._add_exposure_bits(layer),
            (k_out, tiles, m, t),
            with_signs=True,
        )
        if events is not None:
            img = events.img
            kk, tl, uu, vv = events.coords
            widths = self._stage_widths(y_flat, layer.acc_width, events)
            bits = events.bits(widths)
            deltas = events.signs() * (np.int64(1) << bits)
            # dY[u, w] = delta * A[v, w] = delta * at[w, v]
            rows = deltas[:, None] * at[:, vv].T  # (F, m)
            pad.add_row(img, kk, tl, uu, rows)

        # Pass 2: Y = P A, shape (m, m): per tile per k, m applications.
        events = self._site_events(
            layer.name,
            "wg_output_add",
            prefix + "wg_output_add:p2",
            n,
            k_out * tiles * per_vector * m,
            self._add_exposure_bits(layer),
            (k_out, tiles, m, m),
            with_signs=True,
        )
        if events is not None:
            img = events.img
            kk, tl, uu, ww = events.coords
            widths = self._stage_widths(y_flat, layer.acc_width, events)
            bits = events.bits(widths)
            deltas = events.signs() * (np.int64(1) << bits)
            pad.add_element(img, kk, tl, uu, ww, deltas)


class _TilePadAccumulator:
    """Accumulates tile-space fault deltas, then adds them to the output.

    Winograd fault effects live naturally in the padded tile grid (whose
    spatial extent is a multiple of ``m``); accumulating there and cropping
    once keeps every scatter fully vectorized.
    """

    def __init__(self, y_scaled: np.ndarray, grid):
        self.y = y_scaled
        self.grid = grid
        self.m = grid.m
        n, k = y_scaled.shape[0], y_scaled.shape[1]
        self._buf = None
        self._shape = (n, k, grid.tiles_h * grid.m, grid.tiles_w * grid.m)

    def _ensure(self) -> np.ndarray:
        if self._buf is None:
            self._buf = np.zeros(self._shape, dtype=np.int64)
        return self._buf

    def _origins(self, tiles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        th, tw = np.divmod(tiles, self.grid.tiles_w)
        return th * self.m, tw * self.m

    def add_rank1(self, img, kk, tiles, deltas, a_cols_i, a_cols_j):
        """``buf[img, kk, tile] += delta * outer(a_cols_i, a_cols_j)`` per fault.

        ``a_cols_i``/``a_cols_j`` have shape ``(m, F)``.
        """
        buf = self._ensure()
        m = self.m
        updates = deltas[None, None, :] * a_cols_i[:, None, :] * a_cols_j[None, :, :]
        oh, ow = self._origins(tiles)
        n, k, hh, ww = buf.shape
        flat = buf.reshape(-1)
        base = (img * k + kk) * hh
        uu, vv = np.meshgrid(np.arange(m), np.arange(m), indexing="ij")
        idx = (
            (base[None, None, :] + oh[None, None, :] + uu[:, :, None]) * ww
            + ow[None, None, :]
            + vv[:, :, None]
        )
        np.add.at(flat, idx.ravel(), updates.ravel())

    def add_row(self, img, kk, tiles, row_u, rows):
        """``buf[img, kk, tile][row_u, :] += rows`` per fault; rows: (F, m)."""
        buf = self._ensure()
        m = self.m
        oh, ow = self._origins(tiles)
        n, k, hh, ww = buf.shape
        flat = buf.reshape(-1)
        base = (img * k + kk) * hh
        vv = np.arange(m)
        idx = (base[:, None] + oh[:, None] + row_u[:, None]) * ww + ow[:, None] + vv[None, :]
        np.add.at(flat, idx.ravel(), rows.ravel())

    def add_element(self, img, kk, tiles, uu, ww_idx, deltas):
        """``buf[img, kk, tile][uu, ww] += delta`` per fault."""
        buf = self._ensure()
        oh, ow = self._origins(tiles)
        n, k, hh, ww = buf.shape
        flat = buf.reshape(-1)
        base = (img * k + kk) * hh
        idx = (base + oh + uu) * ww + ow + ww_idx
        np.add.at(flat, idx, deltas)

    def add_tile_all_k(self, img: int, tile: int, dy: np.ndarray):
        """Add a (K, m, m) update at one tile of one image (input-transform fan-out)."""
        buf = self._ensure()
        th, tw = divmod(tile, self.grid.tiles_w)
        oh, ow = th * self.m, tw * self.m
        buf[img, :, oh : oh + self.m, ow : ow + self.m] += dy

    def flush(self):
        """Crop the padded buffer into the real output accumulator."""
        if self._buf is None:
            return
        h, w = self.y.shape[2], self.y.shape[3]
        self.y += self._buf[:, :, :h, :w]
        self._buf = None
