"""Operation-level fault injector.

Implements the paper's core contribution: random soft errors injected into
the primitive operations (multiplications and additions) of convolution and
fully-connected layers, with *exact* propagation of every fault's effect to
the layer output accumulator.

Propagation identities (all linear, hence exact):

* direct conv / linear — a perturbed product or partial sum shifts the
  output accumulator by the perturbation delta;
* Winograd element-wise product / channel-reduction add at tile position
  ``(i, j)`` — the output tile shifts by ``delta * outer(AT[:, i], AT[:, j])``;
* Winograd input-transform add on channel ``c`` — the perturbation enters
  ``U`` before the Hadamard product, so it is *amplified by the transformed
  weights* and fans out to every output channel ``k``:
  ``dY_k = AT (dU ⊙ V[k, c]) AT^T``;
* Winograd output-transform add — a row (pass 1) or single-element (pass 2)
  update of the output tile.

Registers are modeled as described in :mod:`repro.faultsim.model`:
multiplier result registers are ``2 * width`` bits (the full product, at the
native product LSB) — the structural reason multiplication faults dominate;
sum registers are sized to their stage's dynamic range, capped at
``width + acc_guard`` bits.  Under the default (paper) semantics,
input-transform addition faults perturb the additive chain locally — the
fully physical weight-amplified fan-out propagation is available as the
``amplify_input_transform_adds`` ablation.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.fixedpoint.bits import flip_delta  # noqa: F401  (re-exported via register_flip_delta)
from repro.faultsim.model import BerConvention, FaultModelConfig, FaultSemantics
from repro.faultsim.protection import ProtectionPlan
from repro.quantized.interface import Injector
from repro.utils.rng import as_rng

__all__ = ["OperationLevelInjector", "register_scale_pow", "register_flip_delta"]


def _stage_register_width(max_abs: int, acc_width: int) -> int:
    """Register width of an addition stage holding values up to ``max_abs``.

    Hardware sizes each sum register to its stage's dynamic range, capped at
    the accumulator width: ``min(acc_width, bit_length(max_abs) + 1)``.
    Without the cap, guard bits far above a narrow stage's actual span would
    let bit flips inject deltas orders of magnitude beyond any physical
    signal of that stage.
    """
    if max_abs <= 0:
        return 2
    return max(2, min(acc_width, int(max_abs).bit_length() + 1))


def register_scale_pow(max_abs: int, width: int) -> int:
    """LSB exponent of a ``width``-bit register sized to hold ``max_abs``.

    Returns the smallest ``s >= 0`` such that every value with
    ``|v| <= max_abs`` fits a ``width``-bit two's-complement register whose
    LSB weighs ``2**s``.
    """
    if max_abs <= 0:
        return 0
    span_bits = int(max_abs).bit_length() + 1  # + sign bit
    return max(0, span_bits - width)


def register_flip_delta(
    values: np.ndarray, bits: np.ndarray, width: int, scale_pow: int
) -> np.ndarray:
    """Delta caused by flipping register bit ``bits`` of ``values``.

    The register holds ``values >> scale_pow``; the returned delta is in the
    native integer domain (scaled back up by ``2**scale_pow``).
    """
    held = np.asarray(values, dtype=np.int64) >> np.int64(scale_pow)
    return flip_delta(held, bits, width) << np.int64(scale_pow)


class OperationLevelInjector(Injector):
    """Injects operation-level faults during quantized inference.

    Parameters
    ----------
    ber:
        Bit error rate (interpretation set by ``config.convention``).
    seed:
        RNG seed or generator; a single injector instance is deterministic
        given its seed and the visit sequence.
    config:
        Fault-model parameters.
    protection:
        Optional :class:`ProtectionPlan`; protected fractions thin the
        event rate of their (layer, category).
    """

    def __init__(
        self,
        ber: float,
        seed: int | np.random.Generator = 0,
        config: FaultModelConfig | None = None,
        protection: ProtectionPlan | None = None,
    ):
        if ber < 0:
            raise ValueError(f"ber must be non-negative, got {ber}")
        self.ber = float(ber)
        self.rng = as_rng(seed)
        self.config = config or FaultModelConfig()
        self.protection = protection
        #: Events actually injected, keyed by category (diagnostics).
        self.event_counts: dict[str, int] = defaultdict(int)
        #: True when the per-category event cap ever bound.
        self.capped = False

    # ------------------------------------------------------------------ sampling
    def _num_events(self, layer_name: str, category: str, n_ops: int, bits: int) -> int:
        """Draw the Poisson event count for a category, with thinning and cap."""
        if self.ber == 0.0 or n_ops <= 0:
            return 0
        rho = (
            self.protection.fraction(layer_name, category)
            if self.protection is not None
            else 0.0
        )
        if rho >= 1.0:
            return 0
        exposure = 1 if self.config.convention is BerConvention.PER_OP else bits
        lam = self.ber * float(n_ops) * exposure * (1.0 - rho)
        count = int(self.rng.poisson(lam))
        if count > self.config.max_events_per_category:
            count = self.config.max_events_per_category
            self.capped = True
        if count:
            self.event_counts[category] += count
        return count

    def _mul_exposure_bits(self, layer) -> int:
        return self.config.exposure_bits(True, layer.in_fmt.width, layer.acc_width)

    def _add_exposure_bits(self, layer) -> int:
        return self.config.exposure_bits(False, layer.in_fmt.width, layer.acc_width)

    def _mul_register_width(self, layer) -> int:
        """Product-result register width: 2W (full product) under PAPER
        semantics, the sum-register width under RESULT_ALL (ablation)."""
        if self.config.semantics is FaultSemantics.PAPER:
            return 2 * layer.in_fmt.width
        return layer.acc_width

    # ------------------------------------------------------------- direct conv
    def visit_direct(self, layer, x_int, cols, acc):
        n = acc.shape[0]
        k_out = acc.shape[1]
        spatial = acc.shape[2] * acc.shape[3] if acc.ndim == 4 else 1
        weight2d = layer.weight_int.reshape(k_out, -1)
        reduction = weight2d.shape[1]
        acc_flat = acc.reshape(n, k_out * spatial)

        self._inject_gemm_muls(
            layer, "st_mul", cols, weight2d, acc_flat, n, k_out, spatial, reduction
        )
        self._inject_result_adds(layer, "st_add", layer.op_counts.st_add * n, acc_flat)

    def visit_linear(self, layer, x_int, acc):
        n, k_out = acc.shape
        cols = x_int[:, :, None]  # (N, F_in, 1) -> GEMM layout with spatial=1
        weight2d = layer.weight_int
        acc_flat = acc.reshape(n, k_out)
        self._inject_gemm_muls(
            layer, "st_mul", cols, weight2d, acc_flat, n, k_out, 1, weight2d.shape[1]
        )
        self._inject_result_adds(layer, "st_add", layer.op_counts.st_add * n, acc_flat)

    def _inject_gemm_muls(
        self, layer, category, cols, weight2d, acc_flat, n, k_out, spatial, reduction
    ):
        """Multiplication faults in a GEMM: product-result register flips."""
        n_ops = n * k_out * spatial * reduction
        count = self._num_events(layer.name, category, n_ops, self._mul_exposure_bits(layer))
        if count == 0:
            return
        rng = self.rng
        img = rng.integers(0, n, size=count)
        out_idx = rng.integers(0, k_out * spatial, size=count)
        red = rng.integers(0, reduction, size=count)
        pq = out_idx % spatial
        kk = out_idx // spatial

        x_vals = cols[img, red, pq]
        w_vals = weight2d[kk, red]
        products = x_vals * w_vals
        width = self._mul_register_width(layer)
        bits = rng.integers(0, width, size=count)
        deltas = register_flip_delta(products, bits, width, 0)
        np.add.at(acc_flat, (img, out_idx), deltas)

    def _inject_result_adds(self, layer, category, n_ops, acc_flat):
        """Addition faults: flips of sum registers, applied to final outputs."""
        count = self._num_events(layer.name, category, n_ops, self._add_exposure_bits(layer))
        if count == 0:
            return
        rng = self.rng
        n, flat = acc_flat.shape
        img = rng.integers(0, n, size=count)
        idx = rng.integers(0, flat, size=count)
        width = _stage_register_width(
            int(np.abs(acc_flat).max(initial=1)), layer.acc_width
        )
        bits = rng.integers(0, width, size=count)
        # Sign from the final accumulator value's bit: exact for the last
        # addition of the chain, an unbiased approximation for earlier ones.
        deltas = register_flip_delta(acc_flat[img, idx], bits, width, 0)
        np.add.at(acc_flat, (img, idx), deltas)

    # ------------------------------------------------------------- winograd conv
    def visit_winograd(self, layer, sub_contexts, y_scaled):
        n, k_out, out_h, out_w = y_scaled.shape
        tf = layer.transform
        at = tf.at_int.astype(np.int64)  # (m, t)
        bt = tf.bt_int.astype(np.int64)  # (t, t)
        m = tf.m

        for spec, ctx in sub_contexts:
            u, v, m_arr = ctx.u_int, ctx.v_int, ctx.m_int
            grid = ctx.grid
            tiles = grid.num_tiles
            c_in = u.shape[1]
            t = tf.t
            y_max = int(np.abs(y_scaled).max(initial=1))

            pad = _TilePadAccumulator(y_scaled, grid)

            self._wg_muls_and_acc_adds(layer, u, v, m_arr, at, pad, n, k_out, c_in, tiles, t)
            self._wg_input_adds(layer, u, v, m_arr, bt, at, pad, n, k_out, c_in, tiles, t, m)
            self._wg_output_adds(layer, tf, y_max, pad, n, k_out, tiles, t, m)
            pad.flush()

        # Sub-conv recombination + bias additions act on the final summed output.
        n_extra = (len(sub_contexts) - 1 + 1) * k_out * out_h * out_w * n
        self._inject_result_adds(
            layer, "wg_output_add", n_extra, y_scaled.reshape(n, -1)
        )

    def _wg_muls_and_acc_adds(self, layer, u, v, m_arr, at, pad, n, k_out, c_in, tiles, t):
        acc_width = layer.acc_width
        rng = self.rng

        # --- element-wise multiplications ---------------------------------------
        n_mul = n * k_out * c_in * tiles * t * t
        count = self._num_events(layer.name, "wg_mul", n_mul, self._mul_exposure_bits(layer))
        if count:
            img = rng.integers(0, n, size=count)
            kk = rng.integers(0, k_out, size=count)
            cc = rng.integers(0, c_in, size=count)
            tl = rng.integers(0, tiles, size=count)
            ii = rng.integers(0, t, size=count)
            jj = rng.integers(0, t, size=count)
            products = u[img, cc, tl, ii, jj] * v[kk, cc, ii, jj]
            mul_width = self._mul_register_width(layer)
            bits = rng.integers(0, mul_width, size=count)
            deltas = register_flip_delta(products, bits, mul_width, 0)
            pad.add_rank1(img, kk, tl, deltas, at[:, ii], at[:, jj])

        # --- channel-reduction additions -----------------------------------------
        n_add = n * k_out * max(c_in - 1, 0) * tiles * t * t
        count = self._num_events(layer.name, "wg_acc_add", n_add, self._add_exposure_bits(layer))
        if count:
            img = rng.integers(0, n, size=count)
            kk = rng.integers(0, k_out, size=count)
            tl = rng.integers(0, tiles, size=count)
            ii = rng.integers(0, t, size=count)
            jj = rng.integers(0, t, size=count)
            m_vals = m_arr[img, kk, tl, ii, jj]
            m_width = _stage_register_width(
                int(np.abs(m_arr).max(initial=1)), acc_width
            )
            bits = rng.integers(0, m_width, size=count)
            deltas = register_flip_delta(m_vals, bits, m_width, 0)
            pad.add_rank1(img, kk, tl, deltas, at[:, ii], at[:, jj])

    def _wg_input_adds(self, layer, u, v, m_arr, bt, at, pad, n, k_out, c_in, tiles, t, m):
        """Input-transform addition faults.

        Default model (paper semantics): the fault perturbs the additive
        chain it belongs to — a transformed-domain partial result — and its
        effect reaches one output channel's tile through the (constant)
        output transform, exactly like a channel-reduction add.

        With ``config.amplify_input_transform_adds`` the full physical
        propagation applies instead: the corrupted ``U`` element multiplies
        the transformed weights and fans out to *every* output channel of
        the tile (ablation; see FaultModelConfig).
        """
        per_vector = int(np.maximum((bt != 0).sum(axis=1) - 1, 0).sum())
        n_pass = n * c_in * tiles * per_vector * t  # per pass
        acc_width = layer.acc_width
        rng = self.rng
        u_width = _stage_register_width(int(np.abs(u).max(initial=1)), acc_width)

        if not self.config.amplify_input_transform_adds:
            # Additive-chain locality (paper semantics): the perturbation is a
            # transformed-domain sum-register flip whose effect reaches one
            # output channel's tile through the constant output transform —
            # same damage kernel as a channel-reduction add, with the
            # input-transform site census.  Base values come from the M
            # domain so the flip window matches the applied domain's units.
            count = self._num_events(
                layer.name, "wg_input_add", 2 * n_pass, self._add_exposure_bits(layer)
            )
            if count == 0:
                return
            img = rng.integers(0, n, size=count)
            kk = rng.integers(0, k_out, size=count)
            tl = rng.integers(0, tiles, size=count)
            ii = rng.integers(0, t, size=count)
            jj = rng.integers(0, t, size=count)
            m_width = _stage_register_width(
                int(np.abs(m_arr).max(initial=1)), acc_width
            )
            bits = rng.integers(0, m_width, size=count)
            base_vals = m_arr[img, kk, tl, ii, jj]
            deltas = register_flip_delta(base_vals, bits, m_width, 0)
            pad.add_rank1(img, kk, tl, deltas, at[:, ii], at[:, jj])
            return

        for pass_idx in (1, 2):
            count = self._num_events(
                layer.name, "wg_input_add", n_pass, self._add_exposure_bits(layer)
            )
            if count == 0:
                continue
            img = rng.integers(0, n, size=count)
            cc = rng.integers(0, c_in, size=count)
            tl = rng.integers(0, tiles, size=count)
            uu = rng.integers(0, t, size=count)
            vv = rng.integers(0, t, size=count)
            bits = rng.integers(0, u_width, size=count)
            base_vals = u[img, cc, tl, uu, vv]
            deltas = register_flip_delta(base_vals, bits, u_width, 0)

            for f in range(count):
                delta = int(deltas[f])
                if delta == 0:
                    continue
                if pass_idx == 2:
                    # dU is a single element at (uu, vv).
                    du = np.zeros((t, t), dtype=np.int64)
                    du[uu[f], vv[f]] = delta
                else:
                    # dZ[u, v] = delta -> dU[u, j] = delta * B[v, j] = delta * bt[j, v].
                    du = np.zeros((t, t), dtype=np.int64)
                    du[uu[f], :] = delta * bt[:, vv[f]]
                dm = du[None, :, :] * v[:, cc[f]]  # (K, t, t), amplified by weights
                dy = np.einsum("ui,kij,vj->kuv", at, dm, at)
                pad.add_tile_all_k(int(img[f]), int(tl[f]), dy)

    def _wg_output_adds(self, layer, tf, y_max, pad, n, k_out, tiles, t, m):
        """Output-transform faults: row (pass 1) or element (pass 2) updates."""
        at = tf.at_int.astype(np.int64)
        per_vector = int(np.maximum((at != 0).sum(axis=1) - 1, 0).sum())
        width = _stage_register_width(y_max, layer.acc_width)
        rng = self.rng

        # Pass 1: P = AT M, shape (m, t): per tile per k, t applications.
        count = self._num_events(
            layer.name, "wg_output_add", n * k_out * tiles * per_vector * t,
            self._add_exposure_bits(layer),
        )
        if count:
            img = rng.integers(0, n, size=count)
            kk = rng.integers(0, k_out, size=count)
            tl = rng.integers(0, tiles, size=count)
            uu = rng.integers(0, m, size=count)
            vv = rng.integers(0, t, size=count)
            bits = rng.integers(0, width, size=count)
            signs = rng.integers(0, 2, size=count).astype(np.int64) * 2 - 1
            deltas = signs * (np.int64(1) << bits)
            # dY[u, w] = delta * A[v, w] = delta * at[w, v]
            rows = deltas[:, None] * at[:, vv].T  # (F, m)
            pad.add_row(img, kk, tl, uu, rows)

        # Pass 2: Y = P A, shape (m, m): per tile per k, m applications.
        count = self._num_events(
            layer.name, "wg_output_add", n * k_out * tiles * per_vector * m,
            self._add_exposure_bits(layer),
        )
        if count:
            img = rng.integers(0, n, size=count)
            kk = rng.integers(0, k_out, size=count)
            tl = rng.integers(0, tiles, size=count)
            uu = rng.integers(0, m, size=count)
            ww = rng.integers(0, m, size=count)
            bits = rng.integers(0, width, size=count)
            signs = rng.integers(0, 2, size=count).astype(np.int64) * 2 - 1
            deltas = signs * (np.int64(1) << bits)
            pad.add_element(img, kk, tl, uu, ww, deltas)


class _TilePadAccumulator:
    """Accumulates tile-space fault deltas, then adds them to the output.

    Winograd fault effects live naturally in the padded tile grid (whose
    spatial extent is a multiple of ``m``); accumulating there and cropping
    once keeps every scatter fully vectorized.
    """

    def __init__(self, y_scaled: np.ndarray, grid):
        self.y = y_scaled
        self.grid = grid
        self.m = grid.m
        n, k = y_scaled.shape[0], y_scaled.shape[1]
        self._buf = None
        self._shape = (n, k, grid.tiles_h * grid.m, grid.tiles_w * grid.m)

    def _ensure(self) -> np.ndarray:
        if self._buf is None:
            self._buf = np.zeros(self._shape, dtype=np.int64)
        return self._buf

    def _origins(self, tiles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        th, tw = np.divmod(tiles, self.grid.tiles_w)
        return th * self.m, tw * self.m

    def add_rank1(self, img, kk, tiles, deltas, a_cols_i, a_cols_j):
        """``buf[img, kk, tile] += delta * outer(a_cols_i, a_cols_j)`` per fault.

        ``a_cols_i``/``a_cols_j`` have shape ``(m, F)``.
        """
        buf = self._ensure()
        m = self.m
        updates = deltas[None, None, :] * a_cols_i[:, None, :] * a_cols_j[None, :, :]
        oh, ow = self._origins(tiles)
        n, k, hh, ww = buf.shape
        flat = buf.reshape(-1)
        base = (img * k + kk) * hh
        uu, vv = np.meshgrid(np.arange(m), np.arange(m), indexing="ij")
        idx = (
            (base[None, None, :] + oh[None, None, :] + uu[:, :, None]) * ww
            + ow[None, None, :]
            + vv[:, :, None]
        )
        np.add.at(flat, idx.ravel(), updates.ravel())

    def add_row(self, img, kk, tiles, row_u, rows):
        """``buf[img, kk, tile][row_u, :] += rows`` per fault; rows: (F, m)."""
        buf = self._ensure()
        m = self.m
        oh, ow = self._origins(tiles)
        n, k, hh, ww = buf.shape
        flat = buf.reshape(-1)
        base = (img * k + kk) * hh
        vv = np.arange(m)
        idx = (base[:, None] + oh[:, None] + row_u[:, None]) * ww + ow[:, None] + vv[None, :]
        np.add.at(flat, idx.ravel(), rows.ravel())

    def add_element(self, img, kk, tiles, uu, ww_idx, deltas):
        """``buf[img, kk, tile][uu, ww] += delta`` per fault."""
        buf = self._ensure()
        oh, ow = self._origins(tiles)
        n, k, hh, ww = buf.shape
        flat = buf.reshape(-1)
        base = (img * k + kk) * hh
        idx = (base + oh + uu) * ww + ow + ww_idx
        np.add.at(flat, idx, deltas)

    def add_tile_all_k(self, img: int, tile: int, dy: np.ndarray):
        """Add a (K, m, m) update at one tile of one image (input-transform fan-out)."""
        buf = self._ensure()
        th, tw = divmod(tile, self.grid.tiles_w)
        oh, ow = th * self.m, tw * self.m
        buf[img, :, oh : oh + self.m, ow : ow + self.m] += dy

    def flush(self):
        """Crop the padded buffer into the real output accumulator."""
        if self._buf is None:
            return
        h, w = self.y.shape[2], self.y.shape[3]
        self.y += self._buf[:, :, :h, :w]
        self._buf = None
