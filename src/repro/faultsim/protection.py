"""Protection plans: which fraction of which operations is fault-free.

A protection plan abstracts every selective-hardening mechanism used in the
paper:

* Fig. 3 (layer-wise vulnerability): one layer fully protected at a time.
* Fig. 4 (operation-type sensitivity): all multiplications (or all
  additions) protected network-wide.
* Fig. 5 (fine-grained TMR): per-layer *fractions* of multiplications and
  additions protected, grown iteratively by the planner.

Because the injector samples fault sites uniformly at random within a
category, protecting a random fraction ``rho`` of the category is exactly
Poisson thinning: the effective event rate becomes ``lambda * (1 - rho)``.
This realizes the paper's "randomly chosen operations" TMR at zero
bookkeeping cost and is what makes the approach implementable "efficiently
on various computing engines".

The journal extension (arXiv 2308.08230) compares TMR against checksum
ABFT, so a plan additionally carries a per-layer *scheme*: ``"tmr"``
(fractional replication, realized by the Poisson thinning above),
``"abft"`` (the layer runs under an output-channel checksum that detects
and corrects accumulator faults — fractions stay 0, faults are injected
in full and then repaired), or ``"none"``.  Scheme-free plans are exactly
the legacy TMR-only plans and keep their canonical form — and therefore
their checkpoint keys — unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultModelError
from repro.winograd.opcount import ADD_CATEGORIES, ALL_CATEGORIES, MUL_CATEGORIES

__all__ = [
    "ProtectionPlan",
    "SCHEME_NONE",
    "SCHEME_ABFT",
    "SCHEME_TMR",
]

#: No per-layer protection scheme (the default for unlisted layers).
SCHEME_NONE = "none"
#: Output-channel checksum ABFT (detect + correct accumulator faults).
SCHEME_ABFT = "abft"
#: Fractional triple-modular redundancy (Poisson-thinned injection).
SCHEME_TMR = "tmr"

_SCHEMES = (SCHEME_NONE, SCHEME_ABFT, SCHEME_TMR)


@dataclass
class ProtectionPlan:
    """Per-(layer, category) protected fractions in ``[0, 1]``.

    Unlisted pairs default to 0 (unprotected).  The plan is mutable — the
    TMR planner grows it iteratively.

    ``schemes`` names the protection *mechanism* per layer (``"abft"`` /
    ``"tmr"``); unlisted layers default to ``"none"``.  The fractions and
    the scheme map are orthogonal: an ABFT layer keeps its fractions at 0
    (full injection, then checksum correction), while a TMR layer's
    fractions say how much of it is replicated.
    """

    fractions: dict[tuple[str, str], float] = field(default_factory=dict)
    schemes: dict[str, str] = field(default_factory=dict)

    # --- construction helpers ------------------------------------------------
    @staticmethod
    def fault_free_layer(layer_name: str, layer_names: list[str]) -> "ProtectionPlan":
        """Plan for Fig. 3: ``layer_name`` fully protected, rest untouched."""
        if layer_name not in layer_names:
            raise FaultModelError(f"unknown layer '{layer_name}'")
        plan = ProtectionPlan()
        for category in ALL_CATEGORIES:
            plan.set(layer_name, category, 1.0)
        return plan

    @staticmethod
    def fault_free_category(
        categories: tuple[str, ...], layer_names: list[str]
    ) -> "ProtectionPlan":
        """Plan protecting the given categories in every layer (Fig. 4)."""
        plan = ProtectionPlan()
        for layer in layer_names:
            for category in categories:
                plan.set(layer, category, 1.0)
        return plan

    @staticmethod
    def fault_free_muls(layer_names: list[str]) -> "ProtectionPlan":
        """All multiplication sites protected network-wide."""
        return ProtectionPlan.fault_free_category(MUL_CATEGORIES, layer_names)

    @staticmethod
    def fault_free_adds(layer_names: list[str]) -> "ProtectionPlan":
        """All addition sites protected network-wide."""
        return ProtectionPlan.fault_free_category(ADD_CATEGORIES, layer_names)

    # --- access ---------------------------------------------------------------
    def set(self, layer: str, category: str, fraction: float) -> None:
        """Set the protected fraction of one (layer, category) pair."""
        if category not in ALL_CATEGORIES:
            raise FaultModelError(f"unknown op category '{category}'")
        if not 0.0 <= fraction <= 1.0:
            raise FaultModelError(f"fraction must be in [0, 1], got {fraction}")
        self.fractions[(layer, category)] = fraction

    def fraction(self, layer: str, category: str) -> float:
        """Protected fraction for a (layer, category), default 0."""
        return self.fractions.get((layer, category), 0.0)

    def set_scheme(self, layer: str, scheme: str) -> None:
        """Assign a layer's protection scheme (``none``/``abft``/``tmr``).

        Setting ``"none"`` removes the entry, so a plan round-tripped
        through ``set_scheme(layer, "none")`` stays canonical (and keeps
        the legacy scheme-free :meth:`cache_key`).
        """
        if scheme not in _SCHEMES:
            raise FaultModelError(
                f"unknown protection scheme '{scheme}' (expected one of {_SCHEMES})"
            )
        if scheme == SCHEME_NONE:
            self.schemes.pop(layer, None)
        else:
            self.schemes[layer] = scheme

    def scheme(self, layer: str) -> str:
        """Protection scheme assigned to a layer, default ``"none"``."""
        return self.schemes.get(layer, SCHEME_NONE)

    @property
    def abft_layers(self) -> frozenset[str]:
        """Names of layers protected by the ABFT checksum scheme."""
        return frozenset(
            layer for layer, scheme in self.schemes.items() if scheme == SCHEME_ABFT
        )

    def copy(self) -> "ProtectionPlan":
        """Independent copy (the planner mutates candidates)."""
        return ProtectionPlan(dict(self.fractions), dict(self.schemes))

    def cache_key(self) -> tuple:
        """Hashable canonical form for memoized accuracy evaluations.

        Scheme-free plans produce exactly the pre-scheme tuple, so legacy
        TMR-only checkpoints stay valid; any non-``none`` scheme appends
        sorted ``("scheme", layer, name)`` entries, binding the scheme
        into task keys derived from this form.
        """
        base = tuple(
            sorted((k, round(v, 6)) for k, v in self.fractions.items() if v)
        )
        if not self.schemes:
            return base
        return base + tuple(
            sorted(
                ("scheme", layer, scheme)
                for layer, scheme in self.schemes.items()
                if scheme != SCHEME_NONE
            )
        )
