"""Golden-run activation cache + dirty-sample replay executor.

Every campaign subtask reruns the *entire* clean integer forward — tile
transforms, the channel-reduction GEMM, requantization — for every
(BER, seed, plan) point, even though the paper's fault model injects rare
Poisson events as additive accumulator deltas: at the operating points of
figs 2–7 most samples in most layers are bit-identical to the fault-free
pass.  This module exploits that sparsity:

1. :func:`build_golden_run` executes the fault-free forward **once** per
   (model, evaluation window) and caches, per node, the clean output —
   plus a *site census* (one :class:`SiteSpec` per injection site,
   recorded by a no-op injector riding the same pass) that tells the
   replay executor how many operations each site exposes per sample.
2. :func:`replay_forward` re-evaluates the model under a live injector by
   recomputing, per layer, only the **dirty set**: samples whose input
   already differs from the clean pass, plus samples the layer's own
   fault draws strike.  Which samples are struck is a pure function of
   (campaign seed, layer, site, sample chunk) under the counter RNG
   scheme — :meth:`CounterSampler.struck_samples` replays only the count
   and offset draws, no operand values needed — so the executor knows the
   recompute set *before* computing anything.  The dirty subset is
   gathered, pushed through the existing kernels with the existing
   injector (pinned to the subset's global rows), and scattered into a
   copy of the cached clean output.

Bit-identity with the full forward follows from two properties the
counter scheme already guarantees: draws are keyed by *what* is sampled
(never by batch shape), and register widths are sized per sample.  The
only value-dependent choices left — the float64-vs-int64 fast paths of
the exact GEMMs — are exact on both branches.  The parity suite
(``tests/test_replay_parity.py``) pins accuracy, total events and
per-category event counts against the non-replay path.

Replay requires the counter RNG scheme for any faulty evaluation (stream
draws depend on visit order and batch position).  BER = 0 evaluations
need no forward at all under either scheme: they are pure lookups of the
cached predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.faultsim.model import BerConvention, FaultModelConfig, RNG_STREAM
from repro.faultsim.neuron_level import NeuronLevelInjector
from repro.faultsim.operation_level import OperationLevelInjector
from repro.quantized.qmodel import QuantizedModel

__all__ = [
    "SiteSpec",
    "GoldenRun",
    "ReplayStats",
    "build_golden_run",
    "replay_forward",
]

_EMPTY_ROWS = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class SiteSpec:
    """Census entry for one injection site of one layer.

    ``category`` is the protection/diagnostics bucket, ``site`` the unique
    draw-stream name within the layer, ``ops_per_sample`` the site's
    per-sample operation count and ``exposure`` the already-resolved
    bits-per-op factor.  Everything the struck-sample probe needs; nothing
    value-dependent.
    """

    category: str
    site: str
    ops_per_sample: int
    exposure: int


@dataclass
class GoldenRun:
    """Cached fault-free forward of one model over one evaluation set.

    Attributes
    ----------
    outputs:
        Per-node clean activations over the full evaluation window, in
        topological order — the scatter targets of the replay executor.
    preds:
        Clean argmax predictions (BER = 0 evaluations are lookups here).
    census:
        Per-layer tuple of :class:`SiteSpec` for every injection site the
        configured injector kind visits.
    injector:
        Campaign injector kind the census was recorded for
        (``"operation"`` or ``"neuron"``).
    fault_config:
        Fault model the census was recorded under (its semantics /
        convention / ablation flags shape the census; RNG fields do not).
    n_samples:
        Evaluation-window length (post ``max_samples`` trim).
    key:
        Optional content key (:func:`repro.runtime.hashing.golden_key`)
        binding model + data + census identity; the engine uses it to
        share one golden run across protection plans and analyses.
    """

    outputs: dict[str, np.ndarray]
    preds: np.ndarray
    census: dict[str, tuple[SiteSpec, ...]]
    injector: str
    fault_config: FaultModelConfig
    n_samples: int
    key: str | None = None

    def check(self, injector_kind: str, fault_config: FaultModelConfig, n: int) -> None:
        """Validate that this cache matches an evaluation's identity.

        Model/data identity is the caller's contract (the engine binds it
        through :func:`~repro.runtime.hashing.golden_key`); this guards
        the structural parts a direct caller could plausibly get wrong.
        """
        if n != self.n_samples:
            raise ConfigurationError(
                f"golden run caches {self.n_samples} samples, evaluation "
                f"carries {n}"
            )
        if injector_kind != self.injector:
            raise ConfigurationError(
                f"golden run census was recorded for the '{self.injector}' "
                f"injector, evaluation uses '{injector_kind}'"
            )
        fc = self.fault_config
        same_census = (
            fault_config.semantics is fc.semantics
            and fault_config.convention is fc.convention
            and fault_config.amplify_input_transform_adds
            == fc.amplify_input_transform_adds
        )
        if not same_census:
            raise ConfigurationError(
                "golden run census was recorded under a different fault "
                "model (semantics/convention/ablation flags differ)"
            )


@dataclass
class ReplayStats:
    """Optional per-layer replay diagnostics (tests and benchmarks).

    ``recomputed[name]`` counts the samples gathered for a node's forward
    and ``dirty[name]`` the subset whose recomputed output actually
    differs from the clean cache (faults can vanish in requantization).
    """

    recomputed: dict[str, int] = field(default_factory=dict)
    dirty: dict[str, int] = field(default_factory=dict)

    def record(self, name: str, recomputed: int, dirty: int) -> None:
        """Log one node's replay footprint."""
        self.recomputed[name] = recomputed
        self.dirty[name] = dirty

    @property
    def total_recomputed(self) -> int:
        """Sample-forwards actually executed across all nodes."""
        return sum(self.recomputed.values())


class _OperationCensusRecorder(OperationLevelInjector):
    """No-op operation-level injector that records the site census.

    Rides the golden forward: every ``_site_events`` call is intercepted
    before any randomness or operand value is touched, its static
    parameters recorded, and ``None`` returned — so the pass stays
    fault-free and near zero-cost while visiting exactly the sites a real
    injection would visit (including ablation-dependent site layouts).
    """

    #: The census needs no Winograd intermediates (see ``qops``).
    needs_intermediates = False

    def __init__(self, config: FaultModelConfig):
        super().__init__(0.0, seed=0, config=config)
        self.census: dict[str, dict[str, SiteSpec]] = {}

    def _site_events(
        self, layer_name, category, site, n_batch, ops_per_sample,
        exposure_bits, highs, with_signs=False,
    ):
        self.census.setdefault(layer_name, {})[site] = SiteSpec(
            category=category,
            site=site,
            ops_per_sample=int(ops_per_sample),
            exposure=int(exposure_bits),
        )
        return None


class _NeuronCensusRecorder(NeuronLevelInjector):
    """No-op neuron-level injector that records the (single-site) census."""

    needs_intermediates = False

    def __init__(self, config: FaultModelConfig):
        super().__init__(0.0, seed=0, config=config)
        self.census: dict[str, dict[str, SiteSpec]] = {}

    def visit_output(self, layer, y_int):
        width = layer.out_fmt.width
        exposure = 1 if self.config.convention is BerConvention.PER_OP else width
        n = y_int.shape[0]
        self.census.setdefault(layer.name, {})["neuron"] = SiteSpec(
            category="neuron",
            site="neuron",
            ops_per_sample=int(y_int.size // n) if n else 0,
            exposure=int(exposure),
        )
        return y_int


def build_golden_run(
    qmodel: QuantizedModel,
    x: np.ndarray,
    injector_kind: str = "operation",
    fault_config: FaultModelConfig | None = None,
    batch_size: int = 128,
    key: str | None = None,
) -> GoldenRun:
    """Run the fault-free forward once and cache everything replay needs.

    One batched pass produces both artifacts: the per-node clean
    activations (concatenated over batches — clean outputs are
    batch-invariant) and the injection-site census, recorded by a no-op
    injector attached to the same pass.  ``x`` must already be trimmed to
    the evaluation window (the engine passes the post-``max_samples``
    view); ``fault_config`` shapes the census (ablation flags change the
    site layout) but no randomness is consumed.
    """
    fault_config = fault_config or FaultModelConfig()
    # The recorder never samples, so record the census under the stream
    # scheme: it accepts any config and skips the counter key plumbing.
    recorder_config = FaultModelConfig(
        semantics=fault_config.semantics,
        convention=fault_config.convention,
        max_events_per_category=fault_config.max_events_per_category,
        amplify_input_transform_adds=fault_config.amplify_input_transform_adds,
        rng_scheme=RNG_STREAM,
    )
    if injector_kind == "neuron":
        recorder = _NeuronCensusRecorder(recorder_config)
    elif injector_kind == "operation":
        recorder = _OperationCensusRecorder(recorder_config)
    else:
        raise ConfigurationError(f"unknown injector kind '{injector_kind}'")

    chunks: dict[str, list[np.ndarray]] = {node.name: [] for node in qmodel.nodes}
    for start in range(0, len(x), batch_size):
        values = qmodel.forward_trace(x[start : start + batch_size], recorder)
        for name, value in values.items():
            chunks[name].append(value)
    outputs = {name: np.concatenate(parts) for name, parts in chunks.items()}
    census = {
        name: tuple(sites.values()) for name, sites in recorder.census.items()
    }
    return GoldenRun(
        outputs=outputs,
        preds=np.argmax(outputs[qmodel.output_name], axis=1),
        census=census,
        injector=injector_kind,
        fault_config=fault_config,
        n_samples=len(x),
        key=key,
    )


def replay_forward(
    qmodel: QuantizedModel,
    golden: GoldenRun,
    injector,
    window: tuple[int, int],
    stats: ReplayStats | None = None,
) -> np.ndarray:
    """Faulty predictions for one sample window via dirty-set replay.

    Walks the graph in topological order maintaining, per node, the set
    of *dirty* global sample rows (rows whose value differs from the
    golden run) and their values.  At each layer carrying injection
    sites, the probe (:meth:`~OperationLevelInjector.replay_struck`)
    extends the recompute set with this layer's event-struck samples;
    the subset is gathered (cache values for clean rows, dirty values
    otherwise), pushed through the node's ordinary ``forward`` with the
    injector pinned to the subset's global rows, and diffed against the
    cache — rows whose output survives unchanged (faults can die in
    requantization or ReLU) drop back out of the dirty set.  Returns the
    window's predictions; the injector's ``event_counts`` accumulate
    exactly the events a full forward over the window would count.
    """
    start, stop = int(window[0]), int(window[1])
    if not 0 <= start < stop <= golden.n_samples:
        raise ConfigurationError(
            f"replay window [{start}, {stop}) out of range for "
            f"{golden.n_samples} cached samples"
        )
    if injector is not None and not injector.replay_ready:
        raise ConfigurationError(
            "replay requires the partition-invariant counter RNG scheme; "
            "set FaultModelConfig(rng_scheme='counter')"
        )

    dirty_rows: dict[str, np.ndarray] = {}
    dirty_vals: dict[str, np.ndarray] = {}

    def gather(name: str, rows: np.ndarray) -> np.ndarray:
        """Node values at ``rows``: cache, overlaid with dirty values."""
        base = golden.outputs[name][rows]
        src = dirty_rows[name]
        if src.size:
            base[np.searchsorted(rows, src)] = dirty_vals[name]
        return base

    for node in qmodel.nodes:
        name = node.name
        if node.op == "QInput":
            # Network input is never perturbed: always clean.
            dirty_rows[name] = _EMPTY_ROWS
            continue
        rows = _EMPTY_ROWS
        for src in node.inputs:
            upstream = dirty_rows[src]
            rows = upstream if rows.size == 0 else np.union1d(rows, upstream)
        sites = golden.census.get(name) if injector is not None else None
        if sites:
            struck = injector.replay_struck(name, sites, start, stop)
            if struck.size:
                rows = np.union1d(rows, struck)
        if rows.size == 0:
            dirty_rows[name] = _EMPTY_ROWS
            if stats is not None:
                stats.record(name, 0, 0)
            continue
        xs = [gather(src, rows) for src in node.inputs]
        if sites:
            injector.set_replay_rows(rows)
            out = node.forward(xs, injector)
        else:
            out = node.forward(xs)
        clean = golden.outputs[name][rows]
        changed = np.any(
            (out != clean).reshape(len(rows), -1), axis=1
        )
        dirty_rows[name] = rows[changed]
        dirty_vals[name] = out[changed]
        if stats is not None:
            stats.record(name, int(len(rows)), int(changed.sum()))

    preds = golden.preds[start:stop].copy()
    out_rows = dirty_rows[qmodel.output_name]
    if out_rows.size:
        preds[out_rows - start] = np.argmax(dirty_vals[qmodel.output_name], axis=1)
    return preds
