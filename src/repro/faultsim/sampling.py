"""Counter-based fault-event sampling: partition-invariant draws.

The legacy (``"stream"``) injectors pull every random number from one
sequential PCG64 stream, so a draw's value depends on its *position* —
visit order, batch boundaries and sample partitioning all shift the
stream.  This module implements the ``"counter"`` scheme: every draw is a
pure function of ``(campaign seed, layer, site, sample chunk)``, realized
as keyed Philox streams (:func:`repro.utils.rng.site_rng`).

Sampling protocol
-----------------
The sample axis is divided into fixed-size chunks of
``FaultModelConfig.chunk_samples`` consecutive evaluation samples (global
indices, not batch-relative).  For one injection *site* — a (layer,
category/pass) pair — and one chunk, the keyed stream
``site_rng(seed, layer, site, chunk)`` is consumed in a fixed order:

1. event count    ``~ Poisson(ber · ops_per_sample · exposure · thinning · chunk)``,
   capped at ``max_events_per_category``;
2. sample offset  ``~ U{0..chunk-1}`` per event;
3. coordinates    ``~ U{0..high_i-1}`` per event, one draw per axis;
4. bit fraction   ``~ U[0, 1)`` per event — mapped to a register bit only
   once the event's register width is known (widths may depend on the
   event's own sample's values, which other partitions cannot see, so the
   *raw randomness* must be value-independent);
5. sign           ``~ U{-1, +1}`` per event, for sites that need one.

Events whose global sample index falls outside the evaluated batch are
discarded *after* all draws.  Consequently any partition of the sample
axis — slice sizes, evaluation batch sizes, worker counts — sees exactly
the same faults for the samples it owns, and recombined results are
bit-identical to an unpartitioned run (``tests/test_rng_partition_invariance.py``).

The per-category expected fault count is identical to the stream scheme's
(``lambda = ber · n_ops · exposure · thinning``); only the Monte-Carlo
realization differs, which is why the scheme is part of a campaign's
content identity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FaultModelError
from repro.utils.rng import site_rng

__all__ = ["SiteEvents", "StreamEvents", "CounterSampler", "bit_lengths"]


def bit_lengths(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for non-negative int64 arrays.

    Implemented with integer shifts (no float log) so boundary powers of
    two are exact for the full int64 range.
    """
    x = np.asarray(values, dtype=np.int64).copy()
    if np.any(x < 0):
        raise FaultModelError("bit_lengths requires non-negative values")
    out = np.zeros(x.shape, dtype=np.int64)
    while np.any(x > 0):
        out[x > 0] += 1
        x >>= np.int64(1)
    return out


class SiteEvents:
    """Fault events drawn for one site over the current batch.

    ``img`` holds batch-local sample rows and ``coords`` one array per
    requested coordinate axis.  :meth:`bits` and :meth:`signs` complete
    the per-event draws; callers must invoke them in that order, at most
    once each (the stream implementation consumes a shared sequential
    generator, so the call order *is* the draw order).
    """

    __slots__ = ("img", "coords", "_bit_u", "_sign")

    def __init__(self, img, coords, bit_u, sign):
        self.img = img
        self.coords = coords
        self._bit_u = bit_u
        self._sign = sign

    def __len__(self) -> int:
        return len(self.img)

    def bits(self, width) -> np.ndarray:
        """Register bit per event, uniform over ``[0, width)``.

        ``width`` may be a scalar or a per-event array (sample-local
        register widths): the stored ``U[0, 1)`` draw is scaled by each
        event's own width, so the randomness consumed is identical no
        matter how widths turned out.
        """
        w = np.asarray(width, dtype=np.int64)
        picked = (self._bit_u * w).astype(np.int64)
        return np.minimum(picked, w - 1)

    def signs(self) -> np.ndarray:
        """±1 sign per event."""
        return self._sign


class StreamEvents(SiteEvents):
    """Legacy sequential-stream events: draws come from the shared RNG.

    Reproduces the pre-refactor injectors draw-for-draw: coordinates were
    taken first, then ``rng.integers(0, width)`` for bits, then (where
    used) the sign draw — so :meth:`bits`/:meth:`signs` pull from the
    shared generator lazily, in call order.
    """

    __slots__ = ("_rng", "_count")

    def __init__(self, rng, img, coords):
        super().__init__(img, coords, bit_u=None, sign=None)
        self._rng = rng
        self._count = len(img)

    def bits(self, width) -> np.ndarray:
        if np.ndim(width) != 0:
            raise FaultModelError(
                "per-event register widths require the counter RNG scheme"
            )
        return self._rng.integers(0, int(width), size=self._count)

    def signs(self) -> np.ndarray:
        return self._rng.integers(0, 2, size=self._count).astype(np.int64) * 2 - 1


class CounterSampler:
    """Draws counter-scheme fault events for batches of a larger sample set.

    One sampler serves one injector instance; it tracks only the rolling
    position of the current batch within the global sample axis
    (``sample_base`` + everything seen through :meth:`begin_batch`).
    """

    def __init__(self, seed: int, ber: float, config, sample_base: int = 0):
        if isinstance(seed, np.random.Generator):
            raise FaultModelError(
                "the counter RNG scheme keys streams by integer campaign "
                "seed; pass an int seed, not a Generator"
            )
        self.seed = int(seed)
        self.ber = float(ber)
        self.config = config
        self.capped = False
        self._batch_start = int(sample_base)
        self._next_start = int(sample_base)

    def begin_batch(self, batch_size: int) -> None:
        """Advance to the next forward batch of ``batch_size`` samples."""
        self._batch_start = self._next_start
        self._next_start += int(batch_size)

    @property
    def batch_start(self) -> int:
        """Global index of the current batch's first sample."""
        return self._batch_start

    def site_events(
        self,
        layer_name: str,
        site: str,
        n_batch: int,
        ops_per_sample: int,
        exposure: int,
        thinning: float,
        highs: tuple[int, ...],
        with_signs: bool = False,
    ) -> SiteEvents | None:
        """Events of one site that land inside the current batch.

        ``ops_per_sample`` is the site's op census for a *single* sample;
        ``exposure`` the already-resolved bits-per-op factor; ``thinning``
        the protection survival factor ``1 - rho``.  Returns ``None``
        when no event hits the batch.
        """
        if self.ber == 0.0 or ops_per_sample <= 0 or thinning <= 0.0 or n_batch <= 0:
            return None
        chunk = self.config.chunk_samples
        cap = self.config.max_events_per_category
        lam = self.ber * float(ops_per_sample) * exposure * thinning * chunk
        start = self._batch_start
        stop = start + n_batch

        imgs: list[np.ndarray] = []
        coord_cols: list[list[np.ndarray]] = [[] for _ in highs]
        bit_us: list[np.ndarray] = []
        sign_cols: list[np.ndarray] = []
        for index in range(start // chunk, (stop - 1) // chunk + 1):
            rng = site_rng(self.seed, layer_name, site, index)
            count = int(rng.poisson(lam))
            if count > cap:
                count = cap
                self.capped = True
            if count == 0:
                continue
            offsets = rng.integers(0, chunk, size=count)
            coords = [rng.integers(0, high, size=count) for high in highs]
            bit_u = rng.random(count)
            sign = (
                rng.integers(0, 2, size=count).astype(np.int64) * 2 - 1
                if with_signs
                else None
            )
            sample = index * chunk + offsets
            mask = (sample >= start) & (sample < stop)
            if not mask.any():
                continue
            imgs.append(sample[mask] - start)
            for column, axis in zip(coord_cols, coords):
                column.append(axis[mask])
            bit_us.append(bit_u[mask])
            if sign is not None:
                sign_cols.append(sign[mask])

        if not imgs:
            return None
        return SiteEvents(
            img=np.concatenate(imgs),
            coords=[np.concatenate(column) for column in coord_cols],
            bit_u=np.concatenate(bit_us),
            sign=np.concatenate(sign_cols) if with_signs else None,
        )
