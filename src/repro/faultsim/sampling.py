"""Counter-based fault-event sampling: partition-invariant draws.

The legacy (``"stream"``) injectors pull every random number from one
sequential PCG64 stream, so a draw's value depends on its *position* —
visit order, batch boundaries and sample partitioning all shift the
stream.  This module implements the ``"counter"`` scheme: every draw is a
pure function of ``(campaign seed, layer, site, sample chunk)``, realized
as keyed Philox streams (:func:`repro.utils.rng.site_rng`).

Sampling protocol
-----------------
The sample axis is divided into fixed-size chunks of
``FaultModelConfig.chunk_samples`` consecutive evaluation samples (global
indices, not batch-relative).  For one injection *site* — a (layer,
category/pass) pair — and one chunk, the keyed stream
``site_rng(seed, layer, site, chunk)`` is consumed in a fixed order:

1. event count    ``~ Poisson(ber · ops_per_sample · exposure · thinning · chunk)``,
   capped at ``max_events_per_category``;
2. sample offset  ``~ U{0..chunk-1}`` per event;
3. coordinates    ``~ U{0..high_i-1}`` per event, one draw per axis;
4. bit fraction   ``~ U[0, 1)`` per event — mapped to a register bit only
   once the event's register width is known (widths may depend on the
   event's own sample's values, which other partitions cannot see, so the
   *raw randomness* must be value-independent);
5. sign           ``~ U{-1, +1}`` per event, for sites that need one.

Events whose global sample index falls outside the evaluated batch are
discarded *after* all draws.  Consequently any partition of the sample
axis — slice sizes, evaluation batch sizes, worker counts — sees exactly
the same faults for the samples it owns, and recombined results are
bit-identical to an unpartitioned run (``tests/test_rng_partition_invariance.py``).

The same post-hoc filtering generalizes from contiguous windows to
*arbitrary* sample subsets: :meth:`CounterSampler.set_rows` pins the next
forward to an explicit set of global sample rows (the golden-run replay
executor's dirty set, :mod:`repro.faultsim.replay`), and
:meth:`CounterSampler.struck_samples` replays only draws 1–2 of the
protocol to report *which* samples of a window receive events at a site —
without needing any operand values, which is what lets the replay
executor decide what to recompute before computing anything.

The per-category expected fault count is identical to the stream scheme's
(``lambda = ber · n_ops · exposure · thinning``); only the Monte-Carlo
realization differs, which is why the scheme is part of a campaign's
content identity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FaultModelError
from repro.utils.rng import site_rng

__all__ = [
    "SiteEvents",
    "StreamEvents",
    "CounterSampler",
    "ReplayHooks",
    "bit_lengths",
]

#: Largest Poisson rate the chunk sampler accepts.  NumPy's int64
#: ``Generator.poisson`` raises an opaque ``ValueError: lam value too
#: large`` just above 9.22e18 (the int64 ceiling); we refuse a margin
#: below that with an error naming the offending site.  Any physical
#: campaign sits tens of orders of magnitude under this — reaching it
#: means a poisoned BER or op census, not a big experiment.
_POISSON_LAM_MAX = 9.0e18


def bit_lengths(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for non-negative int64 arrays.

    Implemented with integer shifts (no float log) so boundary powers of
    two are exact for the full int64 range.
    """
    x = np.asarray(values, dtype=np.int64).copy()
    if np.any(x < 0):
        raise FaultModelError("bit_lengths requires non-negative values")
    out = np.zeros(x.shape, dtype=np.int64)
    while np.any(x > 0):
        out[x > 0] += 1
        x >>= np.int64(1)
    return out


class SiteEvents:
    """Fault events drawn for one site over the current batch.

    ``img`` holds batch-local sample rows and ``coords`` one array per
    requested coordinate axis.  :meth:`bits` and :meth:`signs` complete
    the per-event draws; callers must invoke them in that order, at most
    once each (the stream implementation consumes a shared sequential
    generator, so the call order *is* the draw order).
    """

    __slots__ = ("img", "coords", "_bit_u", "_sign")

    def __init__(self, img, coords, bit_u, sign):
        self.img = img
        self.coords = coords
        self._bit_u = bit_u
        self._sign = sign

    def __len__(self) -> int:
        return len(self.img)

    def bits(self, width) -> np.ndarray:
        """Register bit per event, uniform over ``[0, width)``.

        ``width`` may be a scalar or a per-event array (sample-local
        register widths): the stored ``U[0, 1)`` draw is scaled by each
        event's own width, so the randomness consumed is identical no
        matter how widths turned out.
        """
        w = np.asarray(width, dtype=np.int64)
        picked = (self._bit_u * w).astype(np.int64)
        return np.minimum(picked, w - 1)

    def signs(self) -> np.ndarray:
        """±1 sign per event."""
        return self._sign


class StreamEvents(SiteEvents):
    """Legacy sequential-stream events: draws come from the shared RNG.

    Reproduces the pre-refactor injectors draw-for-draw: coordinates were
    taken first, then ``rng.integers(0, width)`` for bits, then (where
    used) the sign draw — so :meth:`bits`/:meth:`signs` pull from the
    shared generator lazily, in call order.
    """

    __slots__ = ("_rng", "_count")

    def __init__(self, rng, img, coords):
        super().__init__(img, coords, bit_u=None, sign=None)
        self._rng = rng
        self._count = len(img)

    def bits(self, width) -> np.ndarray:
        """Register bit per event, drawn sequentially from the stream RNG."""
        if np.ndim(width) != 0:
            raise FaultModelError(
                "per-event register widths require the counter RNG scheme"
            )
        return self._rng.integers(0, int(width), size=self._count)

    def signs(self) -> np.ndarray:
        """±1 sign per event, drawn sequentially from the stream RNG."""
        return self._rng.integers(0, 2, size=self._count).astype(np.int64) * 2 - 1


class ReplayHooks:
    """Golden-run replay hooks shared by the counter-scheme injectors.

    Mixed into both injectors (which own a ``self._sampler``:
    a :class:`CounterSampler` under the counter scheme, ``None``
    otherwise).  Protection-aware injectors override
    :meth:`_protected_fraction`; the default is unprotected.
    """

    _sampler: "CounterSampler | None" = None

    def _protected_fraction(self, layer_name: str, category: str) -> float:
        """Protected fraction rho of one (layer, category); 0 = unprotected."""
        return 0.0

    @property
    def replay_ready(self) -> bool:
        """True when draws are partition-invariant (counter scheme), which
        the golden-run replay executor requires."""
        return self._sampler is not None

    def set_replay_rows(self, rows: np.ndarray) -> None:
        """Pin the next layer forward to explicit global sample rows
        (:meth:`CounterSampler.set_rows`); counter scheme only."""
        if self._sampler is None:
            raise FaultModelError(
                "replay row pinning requires the counter RNG scheme"
            )
        self._sampler.set_rows(rows)

    def replay_struck(self, layer_name: str, sites, start: int, stop: int):
        """Global rows in ``[start, stop)`` struck by >= 1 event at a layer.

        ``sites`` is the layer's recorded census
        (:class:`repro.faultsim.replay.SiteSpec` entries); protection
        thinning is applied per category exactly as the real draw applies
        it, so the probe reports precisely the samples the full injection
        would touch.
        """
        if self._sampler is None:
            raise FaultModelError("replay probing requires the counter RNG scheme")
        hits = [
            self._sampler.struck_samples(
                layer_name,
                spec.site,
                spec.ops_per_sample,
                spec.exposure,
                1.0 - self._protected_fraction(layer_name, spec.category),
                start,
                stop,
            )
            for spec in sites
        ]
        hits = [h for h in hits if h.size]
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(hits))


class CounterSampler:
    """Draws counter-scheme fault events for batches of a larger sample set.

    One sampler serves one injector instance; it tracks only the rolling
    position of the current batch within the global sample axis
    (``sample_base`` + everything seen through :meth:`begin_batch`).
    """

    def __init__(self, seed: int, ber: float, config, sample_base: int = 0):
        if isinstance(seed, np.random.Generator):
            raise FaultModelError(
                "the counter RNG scheme keys streams by integer campaign "
                "seed; pass an int seed, not a Generator"
            )
        self.seed = int(seed)
        self.ber = float(ber)
        self.config = config
        self.capped = False
        self._batch_start = int(sample_base)
        self._next_start = int(sample_base)
        self._rows: np.ndarray | None = None

    def begin_batch(self, batch_size: int) -> None:
        """Advance to the next forward batch of ``batch_size`` samples."""
        self._batch_start = self._next_start
        self._next_start += int(batch_size)
        self._rows = None

    def set_rows(self, rows: np.ndarray) -> None:
        """Pin the next forward pass to an explicit set of global sample rows.

        ``rows`` (strictly increasing global sample indices) replaces the
        rolling contiguous window for the next :meth:`site_events` calls:
        events are filtered to exactly those samples, and ``img`` indexes
        the row *positions* (the order a replay gather packs them in).
        Because draws are keyed by (seed, layer, site, chunk) and filtered
        afterwards, the events a sample receives are identical whether it
        is evaluated through a window or through any row subset.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and np.any(np.diff(rows) <= 0):
            raise FaultModelError("set_rows requires strictly increasing rows")
        self._rows = rows

    @property
    def batch_start(self) -> int:
        """Global index of the current batch's first sample."""
        return self._batch_start

    def _chunk_head(self, layer_name: str, site: str, index: int, lam: float):
        """Draws 1–2 of one chunk's protocol: its stream, samples hit.

        Returns ``(rng, samples)`` where ``rng`` is the chunk's keyed
        stream positioned *after* the count and offset draws and
        ``samples`` the global sample index per event (``None`` when the
        chunk drew no events).  The single source of the count/cap/offset
        sequence: :meth:`site_events` continues drawing coordinates and
        bits from the returned stream, while :meth:`struck_samples` stops
        here — so the probe can never drift from the real draw.
        """
        chunk = self.config.chunk_samples
        cap = self.config.max_events_per_category
        if not np.isfinite(lam) or lam > _POISSON_LAM_MAX:
            raise FaultModelError(
                f"Poisson event rate {lam!r} for layer '{layer_name}' site "
                f"'{site}' at BER {self.ber!r} exceeds the sampler's limit "
                f"({_POISSON_LAM_MAX:.1e}); the BER or the site's op census "
                "is corrupt"
            )
        rng = site_rng(self.seed, layer_name, site, int(index))
        count = int(rng.poisson(lam))
        if count > cap:
            count = cap
            self.capped = True
        if count == 0:
            return rng, None
        offsets = rng.integers(0, chunk, size=count)
        return rng, index * chunk + offsets

    def site_events(
        self,
        layer_name: str,
        site: str,
        n_batch: int,
        ops_per_sample: int,
        exposure: int,
        thinning: float,
        highs: tuple[int, ...],
        with_signs: bool = False,
    ) -> SiteEvents | None:
        """Events of one site that land inside the current batch.

        ``ops_per_sample`` is the site's op census for a *single* sample;
        ``exposure`` the already-resolved bits-per-op factor; ``thinning``
        the protection survival factor ``1 - rho``.  Returns ``None``
        when no event hits the batch (or pinned row set; see
        :meth:`set_rows`).
        """
        if self.ber == 0.0 or ops_per_sample <= 0 or thinning <= 0.0 or n_batch <= 0:
            return None
        chunk = self.config.chunk_samples
        lam = self.ber * float(ops_per_sample) * exposure * thinning * chunk
        rows = self._rows
        if rows is not None:
            if len(rows) != n_batch:
                raise FaultModelError(
                    f"pinned row set has {len(rows)} rows but the forward "
                    f"batch carries {n_batch} samples"
                )
            chunk_indices = np.unique(rows // chunk)
        else:
            start = self._batch_start
            stop = start + n_batch
            chunk_indices = range(start // chunk, (stop - 1) // chunk + 1)

        imgs: list[np.ndarray] = []
        coord_cols: list[list[np.ndarray]] = [[] for _ in highs]
        bit_us: list[np.ndarray] = []
        sign_cols: list[np.ndarray] = []
        for index in chunk_indices:
            rng, sample = self._chunk_head(layer_name, site, index, lam)
            if sample is None:
                continue
            count = len(sample)
            coords = [rng.integers(0, high, size=count) for high in highs]
            bit_u = rng.random(count)
            sign = (
                rng.integers(0, 2, size=count).astype(np.int64) * 2 - 1
                if with_signs
                else None
            )
            if rows is not None:
                mask = np.isin(sample, rows)
            else:
                mask = (sample >= start) & (sample < stop)
            if not mask.any():
                continue
            if rows is not None:
                imgs.append(np.searchsorted(rows, sample[mask]))
            else:
                imgs.append(sample[mask] - start)
            for column, axis in zip(coord_cols, coords):
                column.append(axis[mask])
            bit_us.append(bit_u[mask])
            if sign is not None:
                sign_cols.append(sign[mask])

        if not imgs:
            return None
        return SiteEvents(
            img=np.concatenate(imgs),
            coords=[np.concatenate(column) for column in coord_cols],
            bit_u=np.concatenate(bit_us),
            sign=np.concatenate(sign_cols) if with_signs else None,
        )

    def struck_samples(
        self,
        layer_name: str,
        site: str,
        ops_per_sample: int,
        exposure: int,
        thinning: float,
        start: int,
        stop: int,
    ) -> np.ndarray:
        """Global indices in ``[start, stop)`` receiving >= 1 event at a site.

        Replays only draws 1–2 of the per-chunk protocol (the Poisson
        count and the sample offsets, via the shared :meth:`_chunk_head`
        primitive — the probe cannot drift from the real draw), so it
        needs *no operand values* and costs a negligible fraction of an
        actual injection — the primitive behind the replay executor's
        dirty-set discovery.  Because each chunk owns a fresh keyed
        stream, the later full draw over any subset containing these
        samples reproduces exactly the same events.  The event-count cap
        is applied identically to the real draw (capping is
        partition-invariant by construction), and ``self.capped`` is
        updated so diagnostics match a full run.
        """
        if self.ber == 0.0 or ops_per_sample <= 0 or thinning <= 0.0 or stop <= start:
            return np.empty(0, dtype=np.int64)
        chunk = self.config.chunk_samples
        lam = self.ber * float(ops_per_sample) * exposure * thinning * chunk
        hits: list[np.ndarray] = []
        for index in range(start // chunk, (stop - 1) // chunk + 1):
            _, sample = self._chunk_head(layer_name, site, index, lam)
            if sample is None:
                continue
            hits.append(sample[(sample >= start) & (sample < stop)])
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(hits))
