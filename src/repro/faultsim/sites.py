"""Fault-site census: how many bits of exposed state each layer carries.

The expected number of fault events in a category is::

    lambda = ber * n_ops * exposure_bits * (1 - protected_fraction)

``n_ops`` comes from the layer's :class:`~repro.winograd.opcount.OpCounts`
(exact, derived from geometry and transform structure) and
``exposure_bits`` from the fault-model configuration.  The census also
powers the "expected faults per inference" axis reported alongside raw BER
in every experiment (the quantity that transfers between our width-scaled
models and the paper's full-size ones — see DESIGN.md §2).
"""

from __future__ import annotations

from repro.faultsim.model import FaultModelConfig
from repro.faultsim.protection import ProtectionPlan
from repro.quantized.qmodel import QuantizedModel
from repro.winograd.opcount import ALL_CATEGORIES, MUL_CATEGORIES

__all__ = [
    "category_exposure_bits",
    "layer_exposure",
    "model_exposure",
    "expected_faults_per_image",
]


def category_exposure_bits(
    category: str, config: FaultModelConfig, data_width: int, acc_width: int
) -> int:
    """Exposed bits per operation of ``category`` under ``config``."""
    return config.exposure_bits(
        is_mul=category in MUL_CATEGORIES,
        data_width=data_width,
        acc_width=acc_width,
    )


def layer_exposure(layer, config: FaultModelConfig) -> dict[str, int]:
    """Per-category ``n_ops * exposure_bits`` for one layer (per image)."""
    width = layer.in_fmt.width
    acc_width = layer.acc_width
    ops = layer.op_counts.by_category()
    return {
        category: ops[category]
        * category_exposure_bits(category, config, width, acc_width)
        for category in ALL_CATEGORIES
        if ops[category]
    }


def model_exposure(
    qmodel: QuantizedModel, config: FaultModelConfig
) -> dict[str, dict[str, int]]:
    """Per-layer, per-category exposed bits for the whole model (per image)."""
    return {
        layer.name: layer_exposure(layer, config)
        for layer in qmodel.injectable_layers()
    }


def expected_faults_per_image(
    qmodel: QuantizedModel,
    ber: float,
    config: FaultModelConfig | None = None,
    protection: ProtectionPlan | None = None,
) -> float:
    """Expected fault events per inference at ``ber`` (the lambda axis)."""
    config = config or FaultModelConfig()
    total = 0.0
    for layer_name, categories in model_exposure(qmodel, config).items():
        for category, exposure in categories.items():
            rho = protection.fraction(layer_name, category) if protection else 0.0
            total += ber * exposure * (1.0 - rho)
    return total
