"""Fixed-point arithmetic substrate: formats, quantization, bit flips."""

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import (
    dequantize,
    quantize,
    requantize,
    rescale_round,
    saturate,
)
from repro.fixedpoint.bits import (
    flip_bit,
    flip_delta,
    from_twos_complement,
    to_twos_complement,
)
from repro.fixedpoint.calibrate import MinMaxObserver, PercentileObserver

__all__ = [
    "QFormat",
    "quantize",
    "dequantize",
    "saturate",
    "requantize",
    "rescale_round",
    "flip_bit",
    "flip_delta",
    "to_twos_complement",
    "from_twos_complement",
    "MinMaxObserver",
    "PercentileObserver",
]
