"""Bit-level operations on two's-complement fixed-point integers.

These primitives realize the fault model: a soft error flips one bit of the
``width``-bit two's-complement representation of an operation result.  The
stored values live in int64 arrays; :func:`flip_bit` reproduces exactly what
an XOR on the hardware register would do, including sign-bit flips.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FaultModelError

__all__ = [
    "to_twos_complement",
    "from_twos_complement",
    "flip_bit",
    "flip_delta",
    "flip_delta_var",
]


def to_twos_complement(values: np.ndarray, width: int) -> np.ndarray:
    """Encode signed integers as unsigned ``width``-bit two's-complement words.

    Values outside the representable range wrap modulo ``2**width``, exactly
    as a hardware register would store them.
    """
    _check_width(width)
    mask = np.int64((1 << width) - 1)
    return (np.asarray(values, dtype=np.int64) & mask).astype(np.int64)


def from_twos_complement(words: np.ndarray, width: int) -> np.ndarray:
    """Decode unsigned ``width``-bit words back to signed integers."""
    _check_width(width)
    words = np.asarray(words, dtype=np.int64)
    sign_bit = np.int64(1 << (width - 1))
    full = np.int64(1 << width)
    return np.where(words & sign_bit, words - full, words).astype(np.int64)


def flip_bit(values: np.ndarray, bits: np.ndarray | int, width: int) -> np.ndarray:
    """Flip bit ``bits`` of each value's ``width``-bit representation.

    Returns the signed integer value after the flip.  ``bits`` may be a
    scalar or an array broadcastable against ``values``.
    """
    _check_width(width)
    bits = np.asarray(bits, dtype=np.int64)
    if np.any(bits < 0) or np.any(bits >= width):
        raise FaultModelError(f"bit index out of range for width={width}")
    words = to_twos_complement(values, width)
    flipped = words ^ (np.int64(1) << bits)
    return from_twos_complement(flipped, width)


def flip_delta(values: np.ndarray, bits: np.ndarray | int, width: int) -> np.ndarray:
    """Signed change of a ``width``-bit register when bit ``bits`` flips.

    The register holds the ``width``-bit two's-complement *window* of each
    value; the delta is ``decode(window ^ bit) - decode(window)``: ``+2**b``
    when the bit was 0, ``-2**b`` when it was 1, and ``∓2**(width-1)`` for
    the sign bit.  Values wider than the window contribute only through
    their low ``width`` bits — the register never saw the high bits, so they
    cannot appear in the delta.  This bounded delta is what propagates
    linearly through the rest of the layer's computation.
    """
    _check_width(width)
    before = from_twos_complement(to_twos_complement(values, width), width)
    return flip_bit(values, bits, width) - before


def flip_delta_var(
    values: np.ndarray, bits: np.ndarray, widths: np.ndarray
) -> np.ndarray:
    """:func:`flip_delta` with a *per-element* register width.

    The counter-based fault sampler sizes each sum register to its own
    sample's dynamic range (batch-wide maxima would couple a fault's delta
    to which other samples share its batch, breaking partition
    invariance), so one vectorized injection carries a width per event.
    Semantics per element are exactly :func:`flip_delta`.
    """
    widths = np.asarray(widths, dtype=np.int64)
    if widths.size and (int(widths.min()) < 1 or int(widths.max()) > 62):
        raise FaultModelError("widths must be in [1, 62]")
    bits = np.asarray(bits, dtype=np.int64)
    if np.any(bits < 0) or np.any(bits >= widths):
        raise FaultModelError("bit index out of range for per-element width")
    values = np.asarray(values, dtype=np.int64)
    mask = (np.int64(1) << widths) - np.int64(1)
    sign_bit = np.int64(1) << (widths - np.int64(1))
    full_span = np.int64(1) << widths

    words = values & mask
    before = np.where(words & sign_bit, words - full_span, words)
    flipped = words ^ (np.int64(1) << bits)
    after = np.where(flipped & sign_bit, flipped - full_span, flipped)
    return (after - before).astype(np.int64)


def _check_width(width: int) -> None:
    if not 1 <= width <= 62:
        raise FaultModelError(f"width must be in [1, 62], got {width}")
