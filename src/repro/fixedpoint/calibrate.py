"""Calibration observers for post-training quantization.

Quantizing a float network requires choosing a :class:`QFormat` for every
activation and weight tensor.  The observers here record value statistics
during calibration forward passes and derive formats that cover the observed
dynamic range (min-max) or a robust percentile of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import QuantizationError
from repro.fixedpoint.qformat import QFormat

__all__ = ["MinMaxObserver", "PercentileObserver"]


@dataclass
class MinMaxObserver:
    """Track the maximum absolute value seen across ``observe`` calls."""

    width: int
    margin: float = 1.0
    max_abs: float = field(default=0.0, init=False)
    count: int = field(default=0, init=False)

    def observe(self, x: np.ndarray) -> None:
        """Fold a tensor's statistics into the running range."""
        if x.size == 0:
            return
        self.max_abs = max(self.max_abs, float(np.max(np.abs(x))))
        self.count += x.size

    def qformat(self) -> QFormat:
        """Derive the format covering ``margin * max_abs``."""
        if self.count == 0:
            raise QuantizationError("observer saw no data; run calibration first")
        return QFormat.for_max_abs(self.width, self.max_abs * self.margin)


@dataclass
class PercentileObserver:
    """Track a high percentile of |x| for outlier-robust range selection.

    Keeps a bounded reservoir of absolute values; suitable for calibration
    runs of a few thousand tensors.
    """

    width: int
    percentile: float = 99.9
    reservoir_size: int = 200_000
    _samples: list[np.ndarray] = field(default_factory=list, init=False)
    _stored: int = field(default=0, init=False)

    def observe(self, x: np.ndarray) -> None:
        """Fold a tensor's absolute values into the reservoir (subsampled)."""
        if x.size == 0:
            return
        flat = np.abs(np.asarray(x, dtype=np.float64)).ravel()
        budget = self.reservoir_size - self._stored
        if budget <= 0:
            return
        if flat.size > budget:
            idx = np.linspace(0, flat.size - 1, budget).astype(np.int64)
            flat = flat[idx]
        self._samples.append(flat)
        self._stored += flat.size

    def qformat(self) -> QFormat:
        """Derive the format covering the configured percentile of |x|."""
        if not self._samples:
            raise QuantizationError("observer saw no data; run calibration first")
        values = np.concatenate(self._samples)
        max_abs = float(np.percentile(values, self.percentile))
        if max_abs == 0.0:
            max_abs = float(values.max())
        return QFormat.for_max_abs(self.width, max_abs)
