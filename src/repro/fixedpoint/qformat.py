"""Fixed-point format descriptors (Q-format).

A :class:`QFormat` describes a signed two's-complement fixed-point number
with ``width`` total bits of which ``frac`` are fractional, i.e. a stored
integer ``q`` represents the real value ``q * 2**-frac``.  The paper
quantizes every benchmark network to 8-bit and 16-bit fixed point; the fault
injector flips bits of values held in these formats.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuantizationError

__all__ = ["QFormat"]


@dataclass(frozen=True)
class QFormat:
    """Signed two's-complement fixed-point format ``Q(width-frac-1).frac``.

    Parameters
    ----------
    width:
        Total number of bits, including the sign bit.  Must be >= 2.
    frac:
        Number of fractional bits.  May be negative (coarser-than-integer
        resolution) or exceed ``width`` (pure sub-unit range); both appear in
        practice when formats are derived from tensor statistics.
    """

    width: int
    frac: int

    def __post_init__(self) -> None:
        if self.width < 2:
            raise QuantizationError(
                f"QFormat width must be >= 2 (one sign bit plus data), got {self.width}"
            )
        if self.width > 63:
            raise QuantizationError(
                f"QFormat width must fit an int64 including sign, got {self.width}"
            )

    # --- integer-domain limits ------------------------------------------------
    @property
    def qmin(self) -> int:
        """Smallest representable stored integer."""
        return -(1 << (self.width - 1))

    @property
    def qmax(self) -> int:
        """Largest representable stored integer."""
        return (1 << (self.width - 1)) - 1

    # --- real-domain properties -----------------------------------------------
    @property
    def scale(self) -> float:
        """Real value of one LSB: ``2**-frac``."""
        return 2.0 ** (-self.frac)

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.qmin * self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.qmax * self.scale

    def with_width(self, width: int) -> "QFormat":
        """Return a copy of this format with a different bit width."""
        return QFormat(width=width, frac=self.frac)

    def with_frac(self, frac: int) -> "QFormat":
        """Return a copy of this format with a different fractional-bit count."""
        return QFormat(width=self.width, frac=frac)

    @staticmethod
    def for_max_abs(width: int, max_abs: float) -> "QFormat":
        """Choose the fractional-bit count that covers ``[-max_abs, max_abs]``.

        Picks the largest ``frac`` such that ``max_abs <= qmax * 2**-frac``,
        maximizing resolution subject to no saturation of the calibration
        range.  ``max_abs == 0`` maps to an all-fractional format.
        """
        if max_abs < 0:
            raise QuantizationError(f"max_abs must be non-negative, got {max_abs}")
        if max_abs == 0.0:
            return QFormat(width=width, frac=width - 1)
        qmax = (1 << (width - 1)) - 1
        # frac = floor(log2(qmax / max_abs)); do it robustly via frexp-style search.
        import math

        frac = math.floor(math.log2(qmax / max_abs))
        # Guard against floating-point edge cases at the boundary.
        while max_abs > qmax * 2.0 ** (-frac):
            frac -= 1
        while max_abs <= qmax * 2.0 ** (-(frac + 1)):
            frac += 1
        return QFormat(width=width, frac=frac)

    def __str__(self) -> str:
        return f"Q{self.width}.{self.frac}"
