"""Quantize / dequantize / requantize primitives.

All quantized tensors in this library are ``int64`` NumPy arrays holding
two's-complement values of some :class:`~repro.fixedpoint.qformat.QFormat`.
Using a single wide dtype keeps the arithmetic exact (the Winograd integer
path relies on exactness) while the *format* tracks the nominal hardware
width used for saturation and bit flipping.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.errors import QuantizationError
from repro.fixedpoint.qformat import QFormat

__all__ = [
    "quantize",
    "dequantize",
    "saturate",
    "requantize",
    "rescale_round",
]


def quantize(x: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Round a real-valued array into the stored-integer domain of ``fmt``.

    Uses round-half-away-from-zero (the common DSP convention) and saturates
    to the representable range.
    """
    x = np.asarray(x, dtype=np.float64)
    q = np.sign(x) * np.floor(np.abs(x) / fmt.scale + 0.5)
    return np.clip(q, fmt.qmin, fmt.qmax).astype(np.int64)


def dequantize(q: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Map stored integers back to real values (``q * 2**-frac``)."""
    return np.asarray(q, dtype=np.float64) * fmt.scale


def saturate(q: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Clamp stored integers into the representable range of ``fmt``."""
    return np.clip(np.asarray(q, dtype=np.int64), fmt.qmin, fmt.qmax)


def rescale_round(q: np.ndarray, ratio: Fraction) -> np.ndarray:
    """Multiply stored integers by an exact rational ``ratio`` and round.

    This is the requantization kernel: the ratio collects every scale factor
    between two fixed-point domains (fractional-bit shifts and Winograd
    transform scalings).  Rounding is half-away-from-zero, computed exactly
    in integer arithmetic so results do not depend on float precision.
    """
    if ratio <= 0:
        raise QuantizationError(f"rescale ratio must be positive, got {ratio}")
    q = np.asarray(q, dtype=np.int64)
    num, den = ratio.numerator, ratio.denominator

    if q.size == 0:
        return q.copy()
    max_abs = int(np.max(np.abs(q)))
    if max_abs * num + den // 2 < 2**62:
        # Fast exact path entirely in int64.
        scaled = q * np.int64(num)
        abs_scaled = np.abs(scaled)
        rounded = (abs_scaled + np.int64(den // 2)) // np.int64(den)
        return np.where(scaled < 0, -rounded, rounded).astype(np.int64)

    # Exact fallback through Python integers for extreme scales.
    scaled = q.astype(object) * num
    abs_scaled = np.abs(scaled)
    rounded = (abs_scaled + den // 2) // den
    out = np.where(scaled < 0, -rounded, rounded)
    return out.astype(np.int64)


def requantize(
    acc: np.ndarray,
    acc_frac: int,
    out_fmt: QFormat,
    extra_ratio: Fraction = Fraction(1),
) -> np.ndarray:
    """Convert accumulator integers to the output format, with saturation.

    Parameters
    ----------
    acc:
        Accumulator values (int64) with ``acc_frac`` fractional bits.
    acc_frac:
        Fractional bits of the accumulator domain (typically the sum of the
        input and weight fractional bits).
    out_fmt:
        Target activation format.
    extra_ratio:
        Additional exact rational factor to fold in (used by the Winograd
        path to divide out transform scalings).

    Returns
    -------
    int64 array in the stored-integer domain of ``out_fmt``.
    """
    shift = out_fmt.frac - acc_frac
    ratio = extra_ratio * (Fraction(2) ** shift)
    return saturate(rescale_round(acc, ratio), out_fmt)
