"""Model zoo: width-scaled, topology-faithful paper benchmark networks."""

from repro.models.densenet import build_densenet169
from repro.models.googlenet import build_googlenet
from repro.models.registry import (
    BENCHMARKS,
    Benchmark,
    build_benchmark_model,
    list_benchmarks,
)
from repro.models.resnet import build_resnet50
from repro.models.vgg import build_vgg19

__all__ = [
    "build_vgg19",
    "build_resnet50",
    "build_densenet169",
    "build_googlenet",
    "Benchmark",
    "BENCHMARKS",
    "build_benchmark_model",
    "list_benchmarks",
]
