"""Growth-rate-scaled DenseNet-169 (Huang et al., 2017).

Preserves the four dense blocks with the canonical [6, 12, 32, 32] layer
counts (2 x 82 + 3 transitions + stem + classifier = the 169-layer
configuration), bottleneck layers (BN-ReLU-1x1 -> BN-ReLU-3x3), dense
concatenation and compression-0.5 transitions.  The pre-activation order
means BatchNorm cannot be folded into a preceding convolution; the
quantizer lowers those BNs to integer affine nodes instead, exercising that
code path.
"""

from __future__ import annotations

from repro.nn.graph import Graph, GraphBuilder

__all__ = ["build_densenet169"]

_BLOCK_LAYERS = (6, 12, 32, 32)
_BOTTLENECK_MULT = 4
_COMPRESSION = 0.5


def _dense_layer(b: GraphBuilder, x: str, growth: int, tag: str) -> str:
    """BN-ReLU-Conv1x1(4g) -> BN-ReLU-Conv3x3(g); returns the new features."""
    y = b.batchnorm2d(x, name=f"{tag}_bn1")
    y = b.relu(y, name=f"{tag}_relu1")
    y = b.conv2d(y, growth * _BOTTLENECK_MULT, kernel=1, bias=False, name=f"{tag}_conv1")
    y = b.batchnorm2d(y, name=f"{tag}_bn2")
    y = b.relu(y, name=f"{tag}_relu2")
    y = b.conv2d(y, growth, kernel=3, padding=1, bias=False, name=f"{tag}_conv2")
    return y


def _transition(b: GraphBuilder, x: str, out_channels: int, tag: str) -> str:
    """BN-ReLU-Conv1x1(compress) -> AvgPool2."""
    y = b.batchnorm2d(x, name=f"{tag}_bn")
    y = b.relu(y, name=f"{tag}_relu")
    y = b.conv2d(y, out_channels, kernel=1, bias=False, name=f"{tag}_conv")
    return b.avgpool2d(y, kernel=2, stride=2, name=f"{tag}_pool")


def build_densenet169(
    classes: int,
    input_shape: tuple[int, int, int] = (3, 32, 32),
    growth: int = 8,
) -> Graph:
    """Build the DenseNet-169 graph.

    ``growth`` is the scaled growth rate (canonical value 32); stem width is
    ``2 * growth`` as in the original.
    """
    b = GraphBuilder("densenet169", input_shape)
    channels = 2 * growth
    x = b.conv2d(b.input_node, channels, kernel=3, padding=1, bias=False, name="stem_conv")

    for block_idx, layers in enumerate(_BLOCK_LAYERS):
        features = [x]
        for layer_idx in range(layers):
            tag = f"d{block_idx + 1}l{layer_idx + 1}"
            src = features[0] if len(features) == 1 else b.concat(
                list(features), name=f"{tag}_concat"
            )
            new = _dense_layer(b, src, growth, tag)
            features.append(new)
            channels += growth
        x = b.concat(list(features), name=f"block{block_idx + 1}_out")
        if block_idx < len(_BLOCK_LAYERS) - 1:
            channels = int(channels * _COMPRESSION)
            x = _transition(b, x, channels, f"t{block_idx + 1}")

    x = b.batchnorm2d(x, name="final_bn")
    x = b.relu(x, name="final_relu")
    x = b.globalavgpool(x)
    x = b.flatten(x)
    logits = b.linear(x, classes, name="fc")
    return b.output(logits)
