"""Width-scaled GoogLeNet / Inception-v1 (Szegedy et al., 2015).

Keeps all nine inception modules with their four parallel branches — the
5x5 branch is retained (rather than the later 3x3-factorized form) because
it exercises the DWM kernel decomposition in Winograd mode.  Auxiliary
classifiers are omitted (they are a training aid, irrelevant to fault
analysis).  Channel configurations are the originals scaled by
``width_mult``.
"""

from __future__ import annotations

from repro.nn.graph import Graph, GraphBuilder

__all__ = ["build_googlenet"]

#: (#1x1, #3x3 reduce, #3x3, #5x5 reduce, #5x5, pool proj) per module.
_INCEPTION_CFG = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def _conv_bn_relu(
    b: GraphBuilder, x: str, channels: int, kernel: int, padding: int, tag: str
) -> str:
    y = b.conv2d(x, channels, kernel=kernel, padding=padding, bias=False, name=f"{tag}_conv")
    y = b.batchnorm2d(y, name=f"{tag}_bn")
    return b.relu(y, name=f"{tag}_relu")


def _inception(b: GraphBuilder, x: str, cfg: tuple, scale, tag: str) -> str:
    c1, c3r, c3, c5r, c5, pp = (scale(v) for v in cfg)
    branch1 = _conv_bn_relu(b, x, c1, 1, 0, f"{tag}_b1")
    branch2 = _conv_bn_relu(b, x, c3r, 1, 0, f"{tag}_b2r")
    branch2 = _conv_bn_relu(b, branch2, c3, 3, 1, f"{tag}_b2")
    branch3 = _conv_bn_relu(b, x, c5r, 1, 0, f"{tag}_b3r")
    branch3 = _conv_bn_relu(b, branch3, c5, 5, 2, f"{tag}_b3")
    branch4 = b.maxpool2d(x, kernel=3, stride=1, padding=1, name=f"{tag}_pool")
    branch4 = _conv_bn_relu(b, branch4, pp, 1, 0, f"{tag}_b4")
    return b.concat([branch1, branch2, branch3, branch4], name=f"{tag}_out")


def build_googlenet(
    classes: int,
    input_shape: tuple[int, int, int] = (3, 32, 32),
    width_mult: float = 0.125,
) -> Graph:
    """Build the GoogLeNet graph (CIFAR-style 3x3 stem for small inputs)."""

    def scale(v: int) -> int:
        return max(4, int(v * width_mult))

    b = GraphBuilder("googlenet", input_shape)
    x = _conv_bn_relu(b, b.input_node, scale(192), 3, 1, "stem")

    x = _inception(b, x, _INCEPTION_CFG["3a"], scale, "i3a")
    x = _inception(b, x, _INCEPTION_CFG["3b"], scale, "i3b")
    x = b.maxpool2d(x, kernel=2, stride=2, name="pool3")

    for tag in ("4a", "4b", "4c", "4d", "4e"):
        x = _inception(b, x, _INCEPTION_CFG[tag], scale, f"i{tag}")
    x = b.maxpool2d(x, kernel=2, stride=2, name="pool4")

    for tag in ("5a", "5b"):
        x = _inception(b, x, _INCEPTION_CFG[tag], scale, f"i{tag}")

    x = b.globalavgpool(x)
    x = b.flatten(x)
    logits = b.linear(x, classes, name="fc")
    return b.output(logits)
