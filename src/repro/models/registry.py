"""Benchmark registry pairing models with datasets as in the paper.

The paper's benchmark suite (§3.2.1): DenseNet169 on ImageNet, ResNet50 on
ImageNet, VGG19 on CIFAR-100 and GoogLeNet on CIFAR-10, each quantized to
int8 and int16.  The registry exposes those pairings over the synthetic
dataset presets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.datasets.synthetic import DATASET_PRESETS
from repro.models.densenet import build_densenet169
from repro.models.googlenet import build_googlenet
from repro.models.resnet import build_resnet50
from repro.models.vgg import build_vgg19
from repro.nn.graph import Graph

__all__ = ["Benchmark", "BENCHMARKS", "build_benchmark_model", "list_benchmarks"]


@dataclass(frozen=True)
class Benchmark:
    """One (model, dataset) pairing from the paper's evaluation."""

    name: str
    model: str
    dataset: str
    #: The pairing as printed in the paper, for reports.
    paper_label: str
    builder: Callable[..., Graph]


BENCHMARKS: dict[str, Benchmark] = {
    "densenet169": Benchmark(
        name="densenet169",
        model="densenet169",
        dataset="imagenet-syn",
        paper_label="DenseNet169@ImageNet",
        builder=build_densenet169,
    ),
    "resnet50": Benchmark(
        name="resnet50",
        model="resnet50",
        dataset="imagenet-syn",
        paper_label="ResNet50@ImageNet",
        builder=build_resnet50,
    ),
    "vgg19": Benchmark(
        name="vgg19",
        model="vgg19",
        dataset="cifar100-syn",
        paper_label="VGG19@CIFAR-100",
        builder=build_vgg19,
    ),
    "googlenet": Benchmark(
        name="googlenet",
        model="googlenet",
        dataset="cifar10-syn",
        paper_label="GoogLeNet@CIFAR-10",
        builder=build_googlenet,
    ),
}


def list_benchmarks() -> list[str]:
    """Names of all registered benchmarks."""
    return sorted(BENCHMARKS)


def build_benchmark_model(name: str, **builder_kwargs) -> Graph:
    """Instantiate the (untrained) model graph for a benchmark.

    The class count and input shape come from the paired dataset preset
    unless overridden via ``builder_kwargs``.
    """
    try:
        bench = BENCHMARKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark '{name}'; available: {list_benchmarks()}"
        ) from None
    spec = DATASET_PRESETS[bench.dataset]
    kwargs = {
        "classes": spec.classes,
        "input_shape": (spec.channels, spec.image_size, spec.image_size),
    }
    kwargs.update(builder_kwargs)
    return bench.builder(**kwargs)
