"""Width-scaled ResNet-50 (He et al., 2016).

Preserves every architectural element the fault analysis cares about: the
7x7 stride-2 stem (exercises the DWM decomposition under Winograd mode),
bottleneck blocks (1x1 -> 3x3 -> 1x1 with expansion 4), stride-2 stage
transitions with projection shortcuts, and the [3, 4, 6, 3] stage depths.
"""

from __future__ import annotations

from repro.nn.graph import Graph, GraphBuilder

__all__ = ["build_resnet50"]

_STAGE_BLOCKS = (3, 4, 6, 3)
_EXPANSION = 4


def _bottleneck(
    b: GraphBuilder,
    x: str,
    width: int,
    stride: int,
    project: bool,
    tag: str,
) -> str:
    """One bottleneck residual block; returns the output node name."""
    out_channels = width * _EXPANSION

    y = b.conv2d(x, width, kernel=1, bias=False, name=f"{tag}_conv1")
    y = b.batchnorm2d(y, name=f"{tag}_bn1")
    y = b.relu(y, name=f"{tag}_relu1")

    y = b.conv2d(y, width, kernel=3, stride=stride, padding=1, bias=False, name=f"{tag}_conv2")
    y = b.batchnorm2d(y, name=f"{tag}_bn2")
    y = b.relu(y, name=f"{tag}_relu2")

    y = b.conv2d(y, out_channels, kernel=1, bias=False, name=f"{tag}_conv3")
    y = b.batchnorm2d(y, name=f"{tag}_bn3")

    if project:
        shortcut = b.conv2d(
            x, out_channels, kernel=1, stride=stride, bias=False, name=f"{tag}_proj"
        )
        shortcut = b.batchnorm2d(shortcut, name=f"{tag}_proj_bn")
    else:
        shortcut = x
    merged = b.add(y, shortcut, name=f"{tag}_add")
    return b.relu(merged, name=f"{tag}_out")


def build_resnet50(
    classes: int,
    input_shape: tuple[int, int, int] = (3, 32, 32),
    width_mult: float = 0.125,
) -> Graph:
    """Build the ResNet-50 graph.

    ``width_mult`` scales the base stage width of 64; the canonical network
    is recovered with ``width_mult=1.0`` (and a 224x224 input).
    """
    b = GraphBuilder("resnet50", input_shape)
    base = max(4, int(64 * width_mult))

    x = b.conv2d(b.input_node, base, kernel=7, stride=2, padding=3, bias=False, name="stem_conv")
    x = b.batchnorm2d(x, name="stem_bn")
    x = b.relu(x, name="stem_relu")
    x = b.maxpool2d(x, kernel=3, stride=2, padding=1, name="stem_pool")

    width = base
    for stage, blocks in enumerate(_STAGE_BLOCKS):
        stride = 1 if stage == 0 else 2
        for block in range(blocks):
            tag = f"s{stage + 1}b{block + 1}"
            x = _bottleneck(
                b,
                x,
                width,
                stride=stride if block == 0 else 1,
                project=block == 0,
                tag=tag,
            )
        width *= 2

    x = b.globalavgpool(x)
    x = b.flatten(x)
    logits = b.linear(x, classes, name="fc")
    return b.output(logits)
