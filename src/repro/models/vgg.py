"""Width-scaled VGG19 (Simonyan & Zisserman, 2015).

Keeps the full 16-convolution topology of configuration E — the layer count
is what the paper's Fig. 3 layer-wise vulnerability analysis depends on —
with channel widths scaled by ``width_mult`` so the NumPy substrate trains
in minutes.  BatchNorm follows every convolution (the VGG-BN variant),
which both stabilizes training and exercises BN folding in the quantizer.
"""

from __future__ import annotations

from repro.nn.graph import Graph, GraphBuilder

__all__ = ["build_vgg19"]

#: Configuration E of the VGG paper: conv widths with 'M' = 2x2 max-pool.
_VGG19_CFG = (
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, 256, "M",
    512, 512, 512, 512, "M",
    512, 512, 512, 512, "M",
)


def build_vgg19(
    classes: int,
    input_shape: tuple[int, int, int] = (3, 32, 32),
    width_mult: float = 0.25,
    hidden: int = 128,
) -> Graph:
    """Build the VGG19 graph.

    Parameters
    ----------
    classes:
        Output class count.
    input_shape:
        Per-image ``(C, H, W)``.
    width_mult:
        Channel-width multiplier applied to every conv layer (1.0 restores
        the original widths).
    hidden:
        Width of the two fully-connected hidden layers (scaled stand-ins
        for the original 4096-wide classifier).
    """
    b = GraphBuilder("vgg19", input_shape)
    x = b.input_node
    conv_index = 0
    for item in _VGG19_CFG:
        if item == "M":
            x = b.maxpool2d(x, kernel=2, stride=2)
            continue
        conv_index += 1
        width = max(4, int(item * width_mult))
        x = b.conv2d(x, width, kernel=3, padding=1, name=f"conv{conv_index}")
        x = b.batchnorm2d(x, name=f"bn{conv_index}")
        x = b.relu(x, name=f"relu{conv_index}")
    x = b.flatten(x)
    x = b.relu(b.linear(x, hidden, name="fc1"), name="fc1_relu")
    x = b.relu(b.linear(x, hidden, name="fc2"), name="fc2_relu")
    logits = b.linear(x, classes, name="fc3")
    return b.output(logits)
