"""Minimal NumPy DNN framework over a static graph IR (train + inference)."""

from repro.nn.graph import Graph, GraphBuilder, Node
from repro.nn.shapes import infer_shapes
from repro.nn.executor import forward, forward_backward, initialize, predict
from repro.nn.loss import cross_entropy_with_logits, make_cross_entropy_grad_fn, softmax
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.trainer import TrainConfig, TrainResult, evaluate_accuracy, train

__all__ = [
    "Graph",
    "GraphBuilder",
    "Node",
    "infer_shapes",
    "initialize",
    "forward",
    "forward_backward",
    "predict",
    "softmax",
    "cross_entropy_with_logits",
    "make_cross_entropy_grad_fn",
    "Optimizer",
    "SGD",
    "Adam",
    "TrainConfig",
    "TrainResult",
    "train",
    "evaluate_accuracy",
]
