"""Float execution engine over the graph IR: forward, backward, init.

The executor walks the topologically ordered node list, dispatching to
:mod:`repro.nn.ops`.  Backward propagates gradients in reverse order,
summing contributions when a node output feeds multiple consumers (residual
and dense connectivity).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.graph import Graph
from repro.nn.ops import backward_op, forward_op, init_node_params
from repro.nn.shapes import infer_shapes
from repro.utils.rng import as_rng

__all__ = ["initialize", "forward", "forward_backward", "predict"]


def initialize(graph: Graph, seed: int | np.random.Generator = 0) -> Graph:
    """Allocate and initialize all parameters and buffers of ``graph``."""
    rng = as_rng(seed)
    shapes = infer_shapes(graph)
    for node in graph:
        if node.op == "input":
            continue
        in_shape = shapes[node.inputs[0]]
        init_node_params(node, graph, in_shape, rng)
    return graph


def forward(
    graph: Graph,
    x: np.ndarray,
    train: bool = False,
    keep_caches: bool = False,
):
    """Run the network on a batch.

    Returns ``(logits, activations, caches)``; ``activations`` maps node
    names to outputs, ``caches`` holds per-node backward state (empty unless
    ``keep_caches``).
    """
    if graph.output_name is None:
        raise ConfigurationError("graph has no declared output node")
    activations: dict[str, np.ndarray] = {}
    caches: dict[str, dict] = {}
    for node in graph:
        if node.op == "input":
            activations[node.name] = np.asarray(x, dtype=np.float32)
            continue
        xs = [activations[src] for src in node.inputs]
        y, cache = forward_op(node, graph, xs, train or keep_caches)
        activations[node.name] = y
        if keep_caches:
            caches[node.name] = cache
    return activations[graph.output_name], activations, caches


def forward_backward(
    graph: Graph,
    x: np.ndarray,
    grad_fn,
):
    """Forward pass plus full backpropagation.

    Parameters
    ----------
    grad_fn:
        Callable mapping the logits to ``(loss, grad_logits)``; typically a
        closure over the batch labels from :mod:`repro.nn.loss`.

    Returns
    -------
    ``(loss, grads)`` where ``grads[node][param]`` aligns with
    ``graph.params``.
    """
    logits, activations, caches = forward(graph, x, train=True, keep_caches=True)
    loss, grad_logits = grad_fn(logits)

    grad_of: dict[str, np.ndarray] = {graph.output_name: grad_logits}
    param_grads: dict[str, dict[str, np.ndarray]] = {}

    for node in reversed(graph.nodes):
        if node.op == "input" or node.name not in grad_of:
            continue
        grad_y = grad_of.pop(node.name)
        p_grads, in_grads = backward_op(node, graph, caches[node.name], grad_y)
        if p_grads:
            param_grads[node.name] = p_grads
        for src, g in zip(node.inputs, in_grads):
            if src in grad_of:
                grad_of[src] = grad_of[src] + g
            else:
                grad_of[src] = g
    return loss, param_grads


def predict(graph: Graph, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Class predictions (argmax over logits) in evaluation mode, batched."""
    outputs = []
    for start in range(0, len(x), batch_size):
        logits, _, _ = forward(graph, x[start : start + batch_size], train=False)
        outputs.append(np.argmax(logits, axis=1))
    return np.concatenate(outputs)
