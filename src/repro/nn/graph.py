"""Static graph IR for neural networks.

Models are expressed as a topologically ordered list of :class:`Node`
objects in SSA form: each node names its inputs and produces exactly one
output tensor under its own name.  A single IR serves four consumers —

* the float training executor (:mod:`repro.nn.executor`),
* the post-training quantizer (:mod:`repro.quantized`),
* the operation-level fault injector (:mod:`repro.faultsim`), and
* the accelerator timing model (:mod:`repro.accel`),

which is what lets the library analyze *the same network* under standard and
Winograd convolution without per-model special cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Node", "Graph", "GraphBuilder"]

#: Operators understood by the executors.
SUPPORTED_OPS = frozenset(
    {
        "input",
        "conv2d",
        "linear",
        "batchnorm2d",
        "relu",
        "maxpool2d",
        "avgpool2d",
        "globalavgpool",
        "flatten",
        "add",
        "concat",
    }
)


@dataclass(frozen=True)
class Node:
    """One operation in the graph.

    Attributes
    ----------
    name:
        Unique SSA name; also names the node's output tensor.
    op:
        Operator identifier from :data:`SUPPORTED_OPS`.
    inputs:
        Names of the nodes whose outputs feed this node.
    attrs:
        Operator attributes (kernel size, stride, channel counts, ...).
    """

    name: str
    op: str
    inputs: tuple[str, ...]
    attrs: dict = field(default_factory=dict)

    def attr(self, key: str, default=None):
        """Fetch an attribute with an optional default."""
        return self.attrs.get(key, default)


class Graph:
    """A validated, topologically ordered network graph with parameters."""

    def __init__(self, name: str, input_shape: tuple[int, int, int]):
        self.name = name
        #: Per-image input shape ``(C, H, W)``.
        self.input_shape = input_shape
        self.nodes: list[Node] = []
        self._by_name: dict[str, Node] = {}
        #: Trainable parameters: ``node name -> {param name -> ndarray}``.
        self.params: dict[str, dict[str, np.ndarray]] = {}
        #: Non-trainable state (BatchNorm running stats).
        self.buffers: dict[str, dict[str, np.ndarray]] = {}
        self.output_name: str | None = None

    # --- construction -----------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Append a node, validating op name, uniqueness and input existence."""
        if node.op not in SUPPORTED_OPS:
            raise ConfigurationError(f"unsupported op '{node.op}' in node '{node.name}'")
        if node.name in self._by_name:
            raise ConfigurationError(f"duplicate node name '{node.name}'")
        for src in node.inputs:
            if src not in self._by_name:
                raise ConfigurationError(
                    f"node '{node.name}' references unknown input '{src}'"
                )
        self.nodes.append(node)
        self._by_name[node.name] = node
        return node

    def set_output(self, name: str) -> None:
        """Declare which node's output is the network output (logits)."""
        if name not in self._by_name:
            raise ConfigurationError(f"unknown output node '{name}'")
        self.output_name = name

    # --- queries -----------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Look a node up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(f"unknown node '{name}'") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def conv_and_linear_nodes(self) -> list[Node]:
        """All compute layers that carry weights, in topological order."""
        return [n for n in self.nodes if n.op in ("conv2d", "linear")]

    def consumers(self, name: str) -> list[Node]:
        """Nodes that read the output of ``name``."""
        return [n for n in self.nodes if name in n.inputs]

    def parameter_items(self) -> list[tuple[str, str, np.ndarray]]:
        """Flat list of ``(node, param, array)`` for the optimizer."""
        out = []
        for node_name in sorted(self.params):
            for param_name in sorted(self.params[node_name]):
                out.append((node_name, param_name, self.params[node_name][param_name]))
        return out

    def num_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(arr.size for _, _, arr in self.parameter_items())

    # --- persistence ------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flatten params and buffers into ``{'node/param': array}``."""
        state: dict[str, np.ndarray] = {}
        for node_name, group in self.params.items():
            for param_name, arr in group.items():
                state[f"param/{node_name}/{param_name}"] = arr
        for node_name, group in self.buffers.items():
            for buf_name, arr in group.items():
                state[f"buffer/{node_name}/{buf_name}"] = arr
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (shape-checked)."""
        for key, arr in state.items():
            kind, node_name, leaf = key.split("/", 2)
            target = self.params if kind == "param" else self.buffers
            if node_name not in target or leaf not in target[node_name]:
                raise ConfigurationError(f"state key '{key}' not present in graph")
            if target[node_name][leaf].shape != arr.shape:
                raise ConfigurationError(
                    f"shape mismatch for '{key}': "
                    f"{target[node_name][leaf].shape} vs {arr.shape}"
                )
            target[node_name][leaf] = arr.astype(np.float32)


class GraphBuilder:
    """Fluent helper for constructing :class:`Graph` objects.

    Each method appends a node and returns its name so calls chain
    naturally::

        b = GraphBuilder("net", input_shape=(3, 32, 32))
        x = b.conv2d(b.input_node, 16, kernel=3, padding=1)
        x = b.batchnorm2d(x)
        x = b.relu(x)
        b.output(b.linear(b.flatten(x), 10))
    """

    def __init__(self, name: str, input_shape: tuple[int, int, int]):
        self.graph = Graph(name, input_shape)
        self._counter: dict[str, int] = {}
        self.input_node = self._add("input", (), {})

    def _fresh_name(self, op: str) -> str:
        self._counter[op] = self._counter.get(op, 0) + 1
        return f"{op}{self._counter[op]}"

    def _add(self, op: str, inputs: tuple[str, ...], attrs: dict, name: str | None = None) -> str:
        node = Node(name or self._fresh_name(op), op, inputs, attrs)
        self.graph.add_node(node)
        return node.name

    # --- layer helpers -----------------------------------------------------------
    def conv2d(
        self,
        src: str,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        name: str | None = None,
    ) -> str:
        """2-D convolution (square kernel)."""
        attrs = {
            "out_channels": out_channels,
            "kernel": kernel,
            "stride": stride,
            "padding": padding,
            "bias": bias,
        }
        return self._add("conv2d", (src,), attrs, name)

    def linear(self, src: str, out_features: int, bias: bool = True, name: str | None = None) -> str:
        """Fully-connected layer."""
        return self._add(
            "linear", (src,), {"out_features": out_features, "bias": bias}, name
        )

    def batchnorm2d(self, src: str, name: str | None = None) -> str:
        """Per-channel batch normalization."""
        return self._add("batchnorm2d", (src,), {"eps": 1e-5, "momentum": 0.1}, name)

    def relu(self, src: str, name: str | None = None) -> str:
        """Rectified linear activation."""
        return self._add("relu", (src,), {}, name)

    def maxpool2d(self, src: str, kernel: int, stride: int | None = None, padding: int = 0, name: str | None = None) -> str:
        """Max pooling."""
        return self._add(
            "maxpool2d",
            (src,),
            {"kernel": kernel, "stride": stride or kernel, "padding": padding},
            name,
        )

    def avgpool2d(self, src: str, kernel: int, stride: int | None = None, padding: int = 0, name: str | None = None) -> str:
        """Average pooling."""
        return self._add(
            "avgpool2d",
            (src,),
            {"kernel": kernel, "stride": stride or kernel, "padding": padding},
            name,
        )

    def globalavgpool(self, src: str, name: str | None = None) -> str:
        """Global average pooling over the spatial dims."""
        return self._add("globalavgpool", (src,), {}, name)

    def flatten(self, src: str, name: str | None = None) -> str:
        """Flatten to (N, features)."""
        return self._add("flatten", (src,), {}, name)

    def add(self, a: str, b: str, name: str | None = None) -> str:
        """Element-wise residual addition."""
        return self._add("add", (a, b), {}, name)

    def concat(self, sources: list[str], name: str | None = None) -> str:
        """Channel-axis concatenation."""
        return self._add("concat", tuple(sources), {}, name)

    def output(self, name: str) -> Graph:
        """Declare the output node and return the finished graph."""
        self.graph.set_output(name)
        return self.graph
