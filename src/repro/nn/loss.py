"""Loss functions with analytic gradients."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "cross_entropy_with_logits", "make_cross_entropy_grad_fn"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy_with_logits(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    Parameters
    ----------
    logits:
        Shape ``(N, classes)``.
    labels:
        Integer class indices, shape ``(N,)``.
    """
    n = logits.shape[0]
    probs = softmax(logits.astype(np.float64))
    eps = 1e-12
    loss = float(-np.log(probs[np.arange(n), labels] + eps).mean())
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    return loss, (grad / n).astype(np.float32)


def make_cross_entropy_grad_fn(labels: np.ndarray):
    """Closure adapting :func:`cross_entropy_with_logits` to the executor API."""

    def grad_fn(logits: np.ndarray) -> tuple[float, np.ndarray]:
        return cross_entropy_with_logits(logits, labels)

    return grad_fn
