"""Forward and backward implementations of every graph operator.

Each operator implements::

    forward(node, graph, xs, train) -> (y, cache)
    backward(node, graph, cache, grad_y) -> (param_grads, input_grads)

where ``xs``/``input_grads`` are lists aligned with ``node.inputs`` and
``param_grads`` maps parameter names to gradients.  All math is float32
NumPy with float64 accumulation where it matters (batch statistics).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.graph import Graph, Node
from repro.utils.im2col import col2im, conv_output_size, im2col

__all__ = ["forward_op", "backward_op", "init_node_params"]


# --------------------------------------------------------------------------- conv2d
def _conv2d_forward(node: Node, graph: Graph, xs, train):
    (x,) = xs
    weight = graph.params[node.name]["weight"]
    k = node.attrs["kernel"]
    stride, padding = node.attrs["stride"], node.attrs["padding"]
    n, c, h, w = x.shape
    out_c = weight.shape[0]
    p = conv_output_size(h, k, stride, padding)
    q = conv_output_size(w, k, stride, padding)

    cols = im2col(x, (k, k), stride, padding)  # (N, C*k*k, P*Q)
    w2 = weight.reshape(out_c, -1)
    y = np.einsum("kr,nrp->nkp", w2, cols, optimize=True).reshape(n, out_c, p, q)
    if node.attrs.get("bias", True):
        y = y + graph.params[node.name]["bias"].reshape(1, out_c, 1, 1)
    cache = {"cols": cols if train else None, "x_shape": x.shape}
    return y.astype(np.float32), cache


def _conv2d_backward(node: Node, graph: Graph, cache, grad_y):
    weight = graph.params[node.name]["weight"]
    k = node.attrs["kernel"]
    stride, padding = node.attrs["stride"], node.attrs["padding"]
    n, out_c, p, q = grad_y.shape
    cols = cache["cols"]
    g2 = grad_y.reshape(n, out_c, p * q)

    grad_w = np.einsum("nkp,nrp->kr", g2, cols, optimize=True).reshape(weight.shape)
    param_grads = {"weight": grad_w.astype(np.float32)}
    if node.attrs.get("bias", True):
        param_grads["bias"] = grad_y.sum(axis=(0, 2, 3)).astype(np.float32)

    w2 = weight.reshape(out_c, -1)
    grad_cols = np.einsum("kr,nkp->nrp", w2, g2, optimize=True)
    grad_x = col2im(grad_cols, cache["x_shape"], (k, k), stride, padding)
    return param_grads, [grad_x.astype(np.float32)]


# --------------------------------------------------------------------------- linear
def _linear_forward(node: Node, graph: Graph, xs, train):
    (x,) = xs
    weight = graph.params[node.name]["weight"]  # (out, in)
    y = x @ weight.T
    if node.attrs.get("bias", True):
        y = y + graph.params[node.name]["bias"]
    return y.astype(np.float32), {"x": x if train else None}


def _linear_backward(node: Node, graph: Graph, cache, grad_y):
    weight = graph.params[node.name]["weight"]
    x = cache["x"]
    param_grads = {"weight": (grad_y.T @ x).astype(np.float32)}
    if node.attrs.get("bias", True):
        param_grads["bias"] = grad_y.sum(axis=0).astype(np.float32)
    return param_grads, [(grad_y @ weight).astype(np.float32)]


# --------------------------------------------------------------------------- batchnorm
def _batchnorm_forward(node: Node, graph: Graph, xs, train):
    (x,) = xs
    gamma = graph.params[node.name]["gamma"]
    beta = graph.params[node.name]["beta"]
    buffers = graph.buffers[node.name]
    eps = node.attrs["eps"]

    if train:
        mean = x.mean(axis=(0, 2, 3), dtype=np.float64)
        var = x.var(axis=(0, 2, 3), dtype=np.float64)
        momentum = node.attrs["momentum"]
        buffers["running_mean"] = (
            (1 - momentum) * buffers["running_mean"] + momentum * mean
        ).astype(np.float32)
        buffers["running_var"] = (
            (1 - momentum) * buffers["running_var"] + momentum * var
        ).astype(np.float32)
    else:
        mean = buffers["running_mean"].astype(np.float64)
        var = buffers["running_var"].astype(np.float64)

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mean.reshape(1, -1, 1, 1)) * inv_std.reshape(1, -1, 1, 1)
    y = gamma.reshape(1, -1, 1, 1) * x_hat + beta.reshape(1, -1, 1, 1)
    cache = {"x_hat": x_hat if train else None, "inv_std": inv_std, "gamma": gamma}
    return y.astype(np.float32), cache


def _batchnorm_backward(node: Node, graph: Graph, cache, grad_y):
    x_hat = cache["x_hat"]
    inv_std = cache["inv_std"].reshape(1, -1, 1, 1)
    gamma = cache["gamma"].reshape(1, -1, 1, 1)
    n, c, h, w = grad_y.shape
    count = n * h * w

    grad_gamma = (grad_y * x_hat).sum(axis=(0, 2, 3))
    grad_beta = grad_y.sum(axis=(0, 2, 3))

    # Standard batchnorm backward (training-mode batch statistics).
    g = grad_y * gamma
    grad_x = (
        inv_std
        / count
        * (
            count * g
            - g.sum(axis=(0, 2, 3), keepdims=True)
            - x_hat * (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        )
    )
    param_grads = {
        "gamma": grad_gamma.astype(np.float32),
        "beta": grad_beta.astype(np.float32),
    }
    return param_grads, [grad_x.astype(np.float32)]


# --------------------------------------------------------------------------- relu
def _relu_forward(node: Node, graph: Graph, xs, train):
    (x,) = xs
    y = np.maximum(x, 0.0)
    return y, {"mask": (x > 0) if train else None}


def _relu_backward(node: Node, graph: Graph, cache, grad_y):
    return {}, [grad_y * cache["mask"]]


# --------------------------------------------------------------------------- pooling
def _pool_cols(x, k, stride, padding):
    n, c, h, w = x.shape
    cols = im2col(x.reshape(n * c, 1, h, w), (k, k), stride, padding)
    p = conv_output_size(h, k, stride, padding)
    q = conv_output_size(w, k, stride, padding)
    return cols.reshape(n, c, k * k, p * q), (p, q)


def _maxpool_forward(node: Node, graph: Graph, xs, train):
    (x,) = xs
    k, stride, padding = node.attrs["kernel"], node.attrs["stride"], node.attrs["padding"]
    cols, (p, q) = _pool_cols(x, k, stride, padding)
    arg = cols.argmax(axis=2)
    y = np.take_along_axis(cols, arg[:, :, None, :], axis=2)[:, :, 0, :]
    n, c = x.shape[0], x.shape[1]
    cache = {
        "arg": arg if train else None,
        "x_shape": x.shape,
        "out_hw": (p, q),
    }
    return y.reshape(n, c, p, q), cache


def _maxpool_backward(node: Node, graph: Graph, cache, grad_y):
    k = node.attrs["kernel"]
    stride, padding = node.attrs["stride"], node.attrs["padding"]
    n, c, h, w = cache["x_shape"]
    p, q = cache["out_hw"]
    arg = cache["arg"]  # (N, C, P*Q)
    grad_cols = np.zeros((n, c, k * k, p * q), dtype=np.float32)
    np.put_along_axis(
        grad_cols, arg[:, :, None, :], grad_y.reshape(n, c, 1, p * q), axis=2
    )
    grad_x = col2im(
        grad_cols.reshape(n * c, k * k, p * q),
        (n * c, 1, h, w),
        (k, k),
        stride,
        padding,
    ).reshape(n, c, h, w)
    return {}, [grad_x]


def _avgpool_forward(node: Node, graph: Graph, xs, train):
    (x,) = xs
    k, stride, padding = node.attrs["kernel"], node.attrs["stride"], node.attrs["padding"]
    cols, (p, q) = _pool_cols(x, k, stride, padding)
    y = cols.mean(axis=2)
    n, c = x.shape[0], x.shape[1]
    return y.reshape(n, c, p, q), {"x_shape": x.shape, "out_hw": (p, q)}


def _avgpool_backward(node: Node, graph: Graph, cache, grad_y):
    k = node.attrs["kernel"]
    stride, padding = node.attrs["stride"], node.attrs["padding"]
    n, c, h, w = cache["x_shape"]
    p, q = cache["out_hw"]
    grad_cols = np.broadcast_to(
        grad_y.reshape(n * c, 1, p * q) / (k * k), (n * c, k * k, p * q)
    ).astype(np.float32)
    grad_x = col2im(grad_cols, (n * c, 1, h, w), (k, k), stride, padding)
    return {}, [grad_x.reshape(n, c, h, w)]


def _gap_forward(node: Node, graph: Graph, xs, train):
    (x,) = xs
    y = x.mean(axis=(2, 3), keepdims=True)
    return y.astype(np.float32), {"x_shape": x.shape}


def _gap_backward(node: Node, graph: Graph, cache, grad_y):
    n, c, h, w = cache["x_shape"]
    grad_x = np.broadcast_to(grad_y / (h * w), (n, c, h, w)).astype(np.float32)
    return {}, [grad_x]


# --------------------------------------------------------------------------- shape ops
def _flatten_forward(node: Node, graph: Graph, xs, train):
    (x,) = xs
    return x.reshape(x.shape[0], -1), {"x_shape": x.shape}


def _flatten_backward(node: Node, graph: Graph, cache, grad_y):
    return {}, [grad_y.reshape(cache["x_shape"])]


def _add_forward(node: Node, graph: Graph, xs, train):
    a, b = xs
    if a.shape != b.shape:
        raise ShapeError(f"add '{node.name}': shapes {a.shape} vs {b.shape}")
    return a + b, {}


def _add_backward(node: Node, graph: Graph, cache, grad_y):
    return {}, [grad_y, grad_y]


def _concat_forward(node: Node, graph: Graph, xs, train):
    return np.concatenate(xs, axis=1), {"splits": [x.shape[1] for x in xs]}


def _concat_backward(node: Node, graph: Graph, cache, grad_y):
    grads = []
    offset = 0
    for width in cache["splits"]:
        grads.append(grad_y[:, offset : offset + width])
        offset += width
    return {}, grads


_FORWARD = {
    "conv2d": _conv2d_forward,
    "linear": _linear_forward,
    "batchnorm2d": _batchnorm_forward,
    "relu": _relu_forward,
    "maxpool2d": _maxpool_forward,
    "avgpool2d": _avgpool_forward,
    "globalavgpool": _gap_forward,
    "flatten": _flatten_forward,
    "add": _add_forward,
    "concat": _concat_forward,
}

_BACKWARD = {
    "conv2d": _conv2d_backward,
    "linear": _linear_backward,
    "batchnorm2d": _batchnorm_backward,
    "relu": _relu_backward,
    "maxpool2d": _maxpool_backward,
    "avgpool2d": _avgpool_backward,
    "globalavgpool": _gap_backward,
    "flatten": _flatten_backward,
    "add": _add_backward,
    "concat": _concat_backward,
}


def forward_op(node: Node, graph: Graph, xs: list[np.ndarray], train: bool):
    """Run one node forward; returns ``(output, cache)``."""
    return _FORWARD[node.op](node, graph, xs, train)


def backward_op(node: Node, graph: Graph, cache, grad_y: np.ndarray):
    """Run one node backward; returns ``(param_grads, input_grads)``."""
    return _BACKWARD[node.op](node, graph, cache, grad_y)


def init_node_params(
    node: Node,
    graph: Graph,
    in_shape: tuple,
    rng: np.random.Generator,
) -> None:
    """Allocate and initialize parameters/buffers for a node.

    Convolutions and linear layers use Kaiming-normal fan-in initialization
    (appropriate for ReLU networks); BatchNorm starts at identity.
    """
    if node.op == "conv2d":
        c = in_shape[0]
        k = node.attrs["kernel"]
        out_c = node.attrs["out_channels"]
        fan_in = c * k * k
        std = float(np.sqrt(2.0 / fan_in))
        params = {
            "weight": rng.normal(0.0, std, size=(out_c, c, k, k)).astype(np.float32)
        }
        if node.attrs.get("bias", True):
            params["bias"] = np.zeros(out_c, dtype=np.float32)
        graph.params[node.name] = params
    elif node.op == "linear":
        fan_in = in_shape[0]
        out_f = node.attrs["out_features"]
        std = float(np.sqrt(2.0 / fan_in))
        params = {
            "weight": rng.normal(0.0, std, size=(out_f, fan_in)).astype(np.float32)
        }
        if node.attrs.get("bias", True):
            params["bias"] = np.zeros(out_f, dtype=np.float32)
        graph.params[node.name] = params
    elif node.op == "batchnorm2d":
        c = in_shape[0]
        graph.params[node.name] = {
            "gamma": np.ones(c, dtype=np.float32),
            "beta": np.zeros(c, dtype=np.float32),
        }
        graph.buffers[node.name] = {
            "running_mean": np.zeros(c, dtype=np.float32),
            "running_var": np.ones(c, dtype=np.float32),
        }
