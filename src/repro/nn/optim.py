"""Optimizers operating on graph parameters.

Both optimizers update ``graph.params`` in place from the gradient pytrees
returned by :func:`repro.nn.executor.forward_backward`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.graph import Graph

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class holding the target graph and a learning rate."""

    def __init__(self, graph: Graph, lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.graph = graph
        self.lr = lr

    def step(self, grads: dict[str, dict[str, np.ndarray]]) -> None:
        """Apply one update from ``grads[node][param]``."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        graph: Graph,
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        super().__init__(graph, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[tuple[str, str], np.ndarray] = {}

    def step(self, grads: dict[str, dict[str, np.ndarray]]) -> None:
        for node_name, group in grads.items():
            for param_name, grad in group.items():
                key = (node_name, param_name)
                param = self.graph.params[node_name][param_name]
                if self.weight_decay and param_name == "weight":
                    grad = grad + self.weight_decay * param
                vel = self._velocity.get(key)
                vel = grad if vel is None else self.momentum * vel + grad
                self._velocity[key] = vel
                param -= self.lr * vel


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        graph: Graph,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(graph, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[tuple[str, str], np.ndarray] = {}
        self._v: dict[tuple[str, str], np.ndarray] = {}
        self._t = 0

    def step(self, grads: dict[str, dict[str, np.ndarray]]) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for node_name, group in grads.items():
            for param_name, grad in group.items():
                key = (node_name, param_name)
                param = self.graph.params[node_name][param_name]
                if self.weight_decay and param_name == "weight":
                    grad = grad + self.weight_decay * param
                m = self._m.get(key, np.zeros_like(grad))
                v = self._v.get(key, np.zeros_like(grad))
                m = self.beta1 * m + (1 - self.beta1) * grad
                v = self.beta2 * v + (1 - self.beta2) * grad * grad
                self._m[key], self._v[key] = m, v
                update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
                param -= self.lr * update
