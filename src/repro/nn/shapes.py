"""Static shape inference over the graph IR.

Returns per-node output shapes without running any data, which the
quantizer, fault-site counter and accelerator mapper all rely on.
Shapes are per-image (no batch dimension): ``(C, H, W)`` for feature maps
and ``(F,)`` for flattened vectors.
"""

from __future__ import annotations

from repro.errors import ShapeError
from repro.nn.graph import Graph, Node
from repro.utils.im2col import conv_output_size

__all__ = ["infer_shapes"]


def _spatial(shape: tuple) -> tuple[int, int, int]:
    if len(shape) != 3:
        raise ShapeError(f"expected (C, H, W) feature map, got {shape}")
    return shape


def _infer_node(node: Node, in_shapes: list[tuple]) -> tuple:
    op = node.op
    if op == "conv2d":
        c, h, w = _spatial(in_shapes[0])
        k = node.attrs["kernel"]
        stride, padding = node.attrs["stride"], node.attrs["padding"]
        return (
            node.attrs["out_channels"],
            conv_output_size(h, k, stride, padding),
            conv_output_size(w, k, stride, padding),
        )
    if op == "linear":
        (features,) = in_shapes[0] if len(in_shapes[0]) == 1 else (None,)
        if features is None:
            raise ShapeError(
                f"linear node '{node.name}' needs a flattened input, got {in_shapes[0]}"
            )
        return (node.attrs["out_features"],)
    if op in ("batchnorm2d", "relu"):
        return in_shapes[0]
    if op in ("maxpool2d", "avgpool2d"):
        c, h, w = _spatial(in_shapes[0])
        k = node.attrs["kernel"]
        stride, padding = node.attrs["stride"], node.attrs["padding"]
        return (
            c,
            conv_output_size(h, k, stride, padding),
            conv_output_size(w, k, stride, padding),
        )
    if op == "globalavgpool":
        c, _, _ = _spatial(in_shapes[0])
        return (c, 1, 1)
    if op == "flatten":
        size = 1
        for dim in in_shapes[0]:
            size *= dim
        return (size,)
    if op == "add":
        if in_shapes[0] != in_shapes[1]:
            raise ShapeError(
                f"add node '{node.name}' input shapes differ: "
                f"{in_shapes[0]} vs {in_shapes[1]}"
            )
        return in_shapes[0]
    if op == "concat":
        base = _spatial(in_shapes[0])
        channels = 0
        for shape in in_shapes:
            c, h, w = _spatial(shape)
            if (h, w) != base[1:]:
                raise ShapeError(
                    f"concat node '{node.name}' spatial mismatch: {shape} vs {base}"
                )
            channels += c
        return (channels, base[1], base[2])
    raise ShapeError(f"cannot infer shape for op '{op}'")


def infer_shapes(graph: Graph) -> dict[str, tuple]:
    """Compute the output shape of every node.

    ReLU-style ops propagate their input shape; conv/pool use the standard
    output-size formula.  Raises :class:`ShapeError` on inconsistency, which
    doubles as a whole-graph validity check at model-construction time.
    """
    shapes: dict[str, tuple] = {}
    for node in graph:
        if node.op == "input":
            shapes[node.name] = graph.input_shape
            continue
        in_shapes = [shapes[src] for src in node.inputs]
        shapes[node.name] = _infer_node(node, in_shapes)
    return shapes
