"""Mini-batch training loop with accuracy tracking and early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.nn.executor import forward_backward, predict
from repro.nn.graph import Graph
from repro.nn.loss import make_cross_entropy_grad_fn
from repro.nn.optim import Optimizer
from repro.utils.rng import as_rng

__all__ = ["TrainConfig", "TrainResult", "evaluate_accuracy", "train"]


@dataclass
class TrainConfig:
    """Hyper-parameters for :func:`train`."""

    epochs: int = 10
    batch_size: int = 64
    #: Stop as soon as held-out accuracy reaches this level (1.0 disables).
    target_accuracy: float = 0.995
    #: Multiply the learning rate by this factor each epoch.
    lr_decay: float = 0.85
    shuffle_seed: int = 0
    verbose: bool = False


@dataclass
class TrainResult:
    """Outcome of a training run."""

    epochs_run: int
    final_train_loss: float
    final_eval_accuracy: float
    history: list[dict] = field(default_factory=list)


def evaluate_accuracy(graph: Graph, x: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of ``graph`` on ``(x, labels)``."""
    preds = predict(graph, x)
    return float((preds == labels).mean())


def train(
    graph: Graph,
    optimizer: Optimizer,
    train_x: np.ndarray,
    train_y: np.ndarray,
    eval_x: np.ndarray,
    eval_y: np.ndarray,
    config: TrainConfig | None = None,
) -> TrainResult:
    """Train ``graph`` in place until the accuracy target or epoch budget.

    Raises :class:`TrainingError` if the loss becomes non-finite, which in
    this library almost always indicates an unstable learning rate.
    """
    config = config or TrainConfig()
    if len(train_x) != len(train_y):
        raise TrainingError("train_x and train_y length mismatch")
    rng = as_rng(config.shuffle_seed)
    history: list[dict] = []
    last_loss = float("nan")
    accuracy = 0.0

    for epoch in range(config.epochs):
        order = rng.permutation(len(train_x))
        losses = []
        for start in range(0, len(order), config.batch_size):
            idx = order[start : start + config.batch_size]
            batch_x, batch_y = train_x[idx], train_y[idx]
            loss, grads = forward_backward(
                graph, batch_x, make_cross_entropy_grad_fn(batch_y)
            )
            if not np.isfinite(loss):
                raise TrainingError(
                    f"non-finite loss at epoch {epoch}: lower the learning rate"
                )
            optimizer.step(grads)
            losses.append(loss)
        last_loss = float(np.mean(losses))
        accuracy = evaluate_accuracy(graph, eval_x, eval_y)
        history.append({"epoch": epoch, "loss": last_loss, "accuracy": accuracy})
        if config.verbose:
            print(f"[{graph.name}] epoch {epoch}: loss={last_loss:.4f} acc={accuracy:.3f}")
        optimizer.lr *= config.lr_decay
        if accuracy >= config.target_accuracy:
            break

    return TrainResult(
        epochs_run=len(history),
        final_train_loss=last_loss,
        final_eval_accuracy=accuracy,
        history=history,
    )
