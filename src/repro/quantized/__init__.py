"""Quantized integer inference: BN folding, PTQ, direct & Winograd executors."""

from repro.quantized.qconfig import (
    CONV_MODE_STANDARD,
    CONV_MODE_WINOGRAD,
    QuantConfig,
)
from repro.quantized.interface import Injector
from repro.quantized.fold import bn_affine_coefficients, fold_batchnorm
from repro.quantized.qops import (
    QAdd,
    QAffine,
    QAvgPool,
    QConcat,
    QConvDirect,
    QConvWinograd,
    QFlatten,
    QGlobalAvgPool,
    QInput,
    QLinear,
    QMaxPool,
    QNode,
    QReLU,
)
from repro.quantized.qmodel import QuantizedModel
from repro.quantized.quantizer import folded_float_forward, quantize_model

__all__ = [
    "QuantConfig",
    "CONV_MODE_STANDARD",
    "CONV_MODE_WINOGRAD",
    "Injector",
    "fold_batchnorm",
    "bn_affine_coefficients",
    "QNode",
    "QInput",
    "QConvDirect",
    "QConvWinograd",
    "QLinear",
    "QAffine",
    "QReLU",
    "QMaxPool",
    "QAvgPool",
    "QGlobalAvgPool",
    "QFlatten",
    "QAdd",
    "QConcat",
    "QuantizedModel",
    "quantize_model",
    "folded_float_forward",
]
