"""BatchNorm folding pass over the float graph.

Inference-time BatchNorm is an affine map per channel.  When a BN node
directly follows a convolution (Conv-BN-ReLU networks: VGG/ResNet/
GoogLeNet), it folds into the convolution's weights and bias exactly.
Pre-activation networks (DenseNet's BN-ReLU-Conv) leave BN nodes that the
quantizer later lowers to integer affine operations.

The pass returns a *new* graph (the original is untouched) whose remaining
``batchnorm2d`` nodes carry their inference-time affine coefficients in
``params[name]['scale'|'shift']``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.graph import Graph, Node

__all__ = ["fold_batchnorm", "bn_affine_coefficients"]


def bn_affine_coefficients(
    graph: Graph, bn_name: str
) -> tuple[np.ndarray, np.ndarray]:
    """Inference-time ``y = scale * x + shift`` coefficients of a BN node."""
    node = graph.node(bn_name)
    gamma = graph.params[bn_name]["gamma"].astype(np.float64)
    beta = graph.params[bn_name]["beta"].astype(np.float64)
    mean = graph.buffers[bn_name]["running_mean"].astype(np.float64)
    var = graph.buffers[bn_name]["running_var"].astype(np.float64)
    inv_std = 1.0 / np.sqrt(var + node.attrs["eps"])
    scale = gamma * inv_std
    shift = beta - mean * scale
    return scale, shift


def fold_batchnorm(graph: Graph) -> Graph:
    """Fold conv->bn pairs; lower remaining BNs to explicit affine params.

    A BN folds into its producer conv only when the conv feeds *only* that
    BN (otherwise other consumers would observe pre-BN activations).
    """
    folded = Graph(graph.name, graph.input_shape)
    #: Maps original node name -> name to use when referenced as an input.
    alias: dict[str, str] = {}

    def resolve(name: str) -> str:
        return alias.get(name, name)

    for node in graph:
        if node.op == "batchnorm2d":
            src = graph.node(node.inputs[0])
            foldable = (
                src.op == "conv2d"
                and len(graph.consumers(src.name)) == 1
                and src.name in folded
            )
            scale, shift = bn_affine_coefficients(graph, node.name)
            if foldable:
                conv_params = folded.params[src.name]
                weight = conv_params["weight"].astype(np.float64)
                bias = conv_params.get(
                    "bias", np.zeros(weight.shape[0], dtype=np.float64)
                ).astype(np.float64)
                conv_params["weight"] = (
                    weight * scale.reshape(-1, 1, 1, 1)
                ).astype(np.float32)
                conv_params["bias"] = (bias * scale + shift).astype(np.float32)
                # The folded conv now has a bias even if it did not before.
                folded_node = folded.node(src.name)
                folded_node.attrs["bias"] = True
                alias[node.name] = resolve(src.name)
                continue
            # Keep as an affine node (frozen inference-time coefficients).
            new_node = Node(
                node.name,
                "batchnorm2d",
                tuple(resolve(s) for s in node.inputs),
                dict(node.attrs),
            )
            folded.add_node(new_node)
            folded.params[node.name] = {
                "scale": scale.astype(np.float32),
                "shift": shift.astype(np.float32),
            }
            continue

        new_node = Node(
            node.name,
            node.op,
            tuple(resolve(s) for s in node.inputs),
            dict(node.attrs),
        )
        folded.add_node(new_node)
        if node.name in graph.params:
            folded.params[node.name] = {
                key: arr.copy() for key, arr in graph.params[node.name].items()
            }

    folded.set_output(resolve(graph.output_name))
    return folded
