"""Injection interface between quantized execution and the fault simulator.

Quantized layers call these hooks at well-defined points of their integer
pipelines.  The base class is a no-op, so quantized inference has zero
fault-simulation overhead unless an injector is supplied; the concrete
implementations live in :mod:`repro.faultsim`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Injector"]


class Injector:
    """No-op injector; subclass and override the hooks you need.

    All hooks mutate the passed accumulator arrays in place (they are
    integer working buffers owned by the layer's forward pass).
    """

    #: Whether Winograd layers must retain their transformed intermediates
    #: (``u_int``/``m_int``) for this injector.  Operation-level injection
    #: reads them; census-only passes (the golden-run recorder) set this
    #: False so the clean forward keeps no extra memory.
    needs_intermediates: bool = True

    def begin_inference(self, batch_size: int) -> None:
        """Called once per quantized forward pass before any layer runs."""

    def visit_direct(self, layer, x_int: np.ndarray, cols: np.ndarray, acc: np.ndarray) -> None:
        """Direct conv/GEMM: ``acc`` is the (N, K, P, Q) integer accumulator."""

    def visit_linear(self, layer, x_int: np.ndarray, acc: np.ndarray) -> None:
        """Fully-connected: ``acc`` is the (N, F) integer accumulator."""

    def visit_winograd(self, layer, sub_contexts: list, y_scaled: np.ndarray) -> None:
        """Winograd conv: ``sub_contexts`` pairs ``(SubConvSpec, WinogradConvContext)``
        and ``y_scaled`` is the summed, scaled integer output accumulator."""

    def visit_output(self, layer, y_int: np.ndarray) -> np.ndarray:
        """Requantized layer output; return the (possibly modified) array.

        Used by the neuron-level injector, which flips bits in stored
        activation values rather than in operation results.
        """
        return y_int
