"""Quantization configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["QuantConfig", "CONV_MODE_STANDARD", "CONV_MODE_WINOGRAD"]

CONV_MODE_STANDARD = "standard"
CONV_MODE_WINOGRAD = "winograd"


@dataclass(frozen=True)
class QuantConfig:
    """Post-training quantization settings.

    Attributes
    ----------
    width:
        Activation/weight data width in bits; the paper evaluates 8 and 16.
    acc_guard:
        Extra bits on addition-result registers beyond ``width`` for
        fault-injection purposes (arithmetic itself is exact int64).  The
        default of 4 models the guard bits real accumulation datapaths
        carry between requantization points; raising it widens the
        bit-flip window of sum registers (ablation knob).
    calibration:
        ``"minmax"`` or ``"percentile"`` range selection.
    percentile:
        Percentile used when ``calibration == "percentile"``.
    wg_tile:
        Winograd output-tile size ``m`` of ``F(m, 3)``.
    """

    width: int = 16
    acc_guard: int = 4
    calibration: str = "minmax"
    percentile: float = 99.9
    wg_tile: int = 2

    def __post_init__(self) -> None:
        if self.width not in (8, 16):
            raise ConfigurationError(
                f"width must be 8 or 16 to match the paper, got {self.width}"
            )
        if self.calibration not in ("minmax", "percentile"):
            raise ConfigurationError(
                f"calibration must be 'minmax' or 'percentile', got {self.calibration!r}"
            )
        if self.wg_tile not in (2, 4, 6):
            raise ConfigurationError(f"wg_tile must be one of 2/4/6, got {self.wg_tile}")

    @property
    def acc_width(self) -> int:
        """Accumulator register width used by the fault model."""
        return self.width + self.acc_guard
