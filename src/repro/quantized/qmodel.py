"""Quantized model container and integer inference executor."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.fixedpoint import QFormat
from repro.quantized.interface import Injector
from repro.quantized.qconfig import QuantConfig
from repro.quantized.qops import QConvDirect, QConvWinograd, QLinear, QNode
from repro.winograd.opcount import OpCounts

__all__ = ["QuantizedModel"]


@dataclass
class QuantizedModel:
    """A fully quantized network ready for integer inference.

    Built by :func:`repro.quantized.quantizer.quantize_model`; holds the
    topologically ordered quantized nodes, the conv execution mode and the
    quantization config.  The fault injector receives per-layer visits
    during :meth:`forward`.
    """

    name: str
    conv_mode: str
    config: QuantConfig
    nodes: list[QNode]
    output_name: str
    input_shape: tuple[int, int, int]
    #: Fault-free float-graph accuracy reference, set by experiment drivers.
    metadata: dict = field(default_factory=dict)
    #: Kernel backend serving the per-layer hot paths (see
    #: :mod:`repro.backends`).  Execution strategy only: every backend is
    #: bit-identical by contract, so this field is deliberately excluded
    #: from model fingerprints and checkpoint keys.
    kernel_backend: str = "reference"

    def __post_init__(self) -> None:
        self._by_name = {node.name: node for node in self.nodes}
        if self.output_name not in self._by_name:
            raise ConfigurationError(f"unknown output node '{self.output_name}'")
        if self.kernel_backend != "reference":
            self.set_kernel_backend(self.kernel_backend)

    def set_kernel_backend(self, name: str) -> "QuantizedModel":
        """Select the kernel backend for this model and all its nodes.

        Validates the name against the backend registry (raising
        :class:`~repro.errors.ConfigurationError` for unknown names and
        :class:`~repro.errors.BackendUnavailableError` when e.g. torch is
        missing), then propagates it to every backend-aware node.  Node
        state stays a plain string — instances resolve lazily per
        process, so models remain picklable and fork-safe.  Returns
        ``self`` for chaining.
        """
        from repro.backends import get_backend

        get_backend(name)  # validate eagerly, before any worker forks
        self.kernel_backend = name
        for node in self.nodes:
            if hasattr(node, "kernel_backend"):
                node.kernel_backend = name
        return self

    # --- structure queries -------------------------------------------------------
    def node(self, name: str) -> QNode:
        """Look up a quantized node by name."""
        return self._by_name[name]

    def injectable_layers(self) -> list[QNode]:
        """Weight-bearing layers (conv + linear) in topological order."""
        return [
            n
            for n in self.nodes
            if isinstance(n, (QConvDirect, QConvWinograd, QLinear))
        ]

    def layer_op_counts(self) -> dict[str, OpCounts]:
        """Per-layer primitive-op census (per image)."""
        return {n.name: n.op_counts for n in self.injectable_layers()}

    def total_op_counts(self) -> OpCounts:
        """Whole-network primitive-op census (per image)."""
        total = OpCounts()
        for layer in self.injectable_layers():
            total = total + layer.op_counts
        return total

    @property
    def output_fmt(self) -> QFormat:
        """Format of the logits."""
        return self._by_name[self.output_name].out_fmt

    # --- inference ---------------------------------------------------------------
    def forward(
        self, x: np.ndarray, injector: Injector | None = None
    ) -> np.ndarray:
        """Integer forward pass; returns stored-integer logits.

        ``x`` is float input data (quantized by the input node) of shape
        ``(N, C, H, W)``.
        """
        return self.forward_trace(x, injector)[self.output_name]

    def forward_trace(
        self, x: np.ndarray, injector: Injector | None = None
    ) -> dict[str, np.ndarray]:
        """Integer forward pass returning *every* node's output by name.

        Same execution as :meth:`forward`; used by the golden-run cache
        (:func:`repro.faultsim.replay.build_golden_run`) to capture the
        fault-free activations the replay executor scatters into.
        """
        if injector is not None:
            injector.begin_inference(x.shape[0])
        values: dict[str, np.ndarray] = {}
        for node in self.nodes:
            xs = [x] if node.op == "QInput" else [values[src] for src in node.inputs]
            values[node.name] = node.forward(xs, injector)
        return values

    def logits(self, x: np.ndarray, injector: Injector | None = None) -> np.ndarray:
        """Dequantized (real-valued) logits."""
        out = self.forward(x, injector)
        return out.astype(np.float64) * self.output_fmt.scale

    def predict(
        self,
        x: np.ndarray,
        injector: Injector | None = None,
        batch_size: int = 128,
    ) -> np.ndarray:
        """Class predictions under optional fault injection."""
        preds = []
        for start in range(0, len(x), batch_size):
            out = self.forward(x[start : start + batch_size], injector)
            preds.append(np.argmax(out, axis=1))
        return np.concatenate(preds)

    def evaluate(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        injector: Injector | None = None,
        batch_size: int = 128,
    ) -> float:
        """Top-1 accuracy under optional fault injection."""
        preds = self.predict(x, injector, batch_size=batch_size)
        return float((preds == labels).mean())
