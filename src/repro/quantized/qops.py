"""Quantized (integer) node implementations.

Every class mirrors one graph op.  All activations are int64 arrays holding
stored integers of the node's :class:`~repro.fixedpoint.qformat.QFormat`;
weight-bearing layers carry everything the fault injector needs (formats,
geometry, operation census, raw operand arrays during the pass).

The two convolution implementations — :class:`QConvDirect` and
:class:`QConvWinograd` — compute *bit-identical* outputs in the fault-free
case (see ``tests/test_quantized_equivalence.py``), which pins the paper's
premise that Winograd is a lossless rewrite of the convolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from repro.backends import format_bound, get_backend
# Compatibility alias: the exact GEMM kernel now lives in the backend layer.
from repro.backends.reference import exact_int_gemm as _exact_int_gemm  # noqa: F401
from repro.errors import ShapeError
from repro.fixedpoint import QFormat, rescale_round, saturate
from repro.quantized.interface import Injector
from repro.utils.im2col import conv_output_size, im2col, im2col_patches, pad_nchw
from repro.winograd.conv2d import winograd_conv2d_int
from repro.winograd.decompose import (
    SubConvSpec,
    decompose_conv,
    extract_sub_input,
    extract_sub_kernel,
)
from repro.winograd.opcount import (
    OpCounts,
    linear_counts,
    standard_conv_counts,
    winograd_conv_counts,
)
from repro.winograd.transforms import get_transform

__all__ = [
    "QNode",
    "QInput",
    "QConvDirect",
    "QConvWinograd",
    "QLinear",
    "QAffine",
    "QReLU",
    "QMaxPool",
    "QAvgPool",
    "QGlobalAvgPool",
    "QFlatten",
    "QAdd",
    "QConcat",
]


@dataclass
class QNode:
    """Base quantized node: name, inputs and output format."""

    name: str
    inputs: tuple[str, ...]
    out_fmt: QFormat

    #: Per-image output shape, filled in by the quantizer.
    out_shape: tuple = ()

    def forward(self, xs: list[np.ndarray], injector: Injector | None = None) -> np.ndarray:
        raise NotImplementedError

    @property
    def op(self) -> str:
        return type(self).__name__


@dataclass
class QInput(QNode):
    """Quantizes the float network input into the input format."""

    def forward(self, xs, injector=None):
        from repro.fixedpoint import quantize

        return quantize(xs[0], self.out_fmt)


def _lazy_weight_bound(node) -> int:
    """Cached actual magnitude bound of a node's integer weights.

    Weights are static after quantization, so the scan runs once per
    layer per process and the exactness probes reuse the bound on every
    forward (satisfying the no-per-call-scan contract of the backends).
    """
    bound = getattr(node, "_weight_bound", None)
    if bound is None:
        bound = int(np.abs(node.weight_int).max(initial=0))
        node._weight_bound = bound
    return bound


@dataclass
class QConvDirect(QNode):
    """Direct (im2col/GEMM) integer convolution."""

    weight_int: np.ndarray = None  # (K, C, R, S)
    bias_acc: np.ndarray = None  # (K,) in accumulator units
    in_fmt: QFormat = None
    w_fmt: QFormat = None
    kernel: int = 3
    stride: int = 1
    padding: int = 0
    acc_width: int = 32
    in_shape: tuple = ()
    op_counts: OpCounts = field(default_factory=OpCounts)
    #: Kernel backend name (resolved lazily per process; bit-identical
    #: across backends, so never part of model fingerprints).
    kernel_backend: str = "reference"

    @property
    def acc_frac(self) -> int:
        """Fractional bits of the accumulator domain."""
        return self.in_fmt.frac + self.w_fmt.frac

    def forward(self, xs, injector=None):
        (x,) = xs
        n, c, h, w = x.shape
        k = self.weight_int.shape[0]
        p = conv_output_size(h, self.kernel, self.stride, self.padding)
        q = conv_output_size(w, self.kernel, self.stride, self.padding)

        backend = get_backend(self.kernel_backend)
        patches = im2col_patches(x, (self.kernel, self.kernel), self.stride, self.padding)
        cols = None
        gemm_cols = patches
        if injector is not None:
            # The injector reads individual column entries by fancy
            # indexing, so it needs the materialized matrix; without an
            # injector the backend may consume the strided view directly.
            cols = np.ascontiguousarray(patches).reshape(n, c * self.kernel * self.kernel, p * q)
            gemm_cols = cols
        acc = backend.im2col_gemm(
            self.weight_int.reshape(k, -1),
            gemm_cols,
            w_bound=_lazy_weight_bound(self),
            x_bound=format_bound(self.in_fmt.width),
        )
        acc = acc.reshape(n, k, p, q)
        acc += self.bias_acc.reshape(1, k, 1, 1)
        if injector is not None:
            injector.visit_direct(self, x, cols, acc)
        y = backend.requantize(acc, self.acc_frac, self.out_fmt)
        if injector is not None:
            y = injector.visit_output(self, y)
        return y


@dataclass
class QConvWinograd(QNode):
    """Integer-exact Winograd convolution (DWM-decomposed when needed)."""

    weight_int: np.ndarray = None  # original (K, C, R, S) integer weights
    bias_acc: np.ndarray = None
    in_fmt: QFormat = None
    w_fmt: QFormat = None
    kernel: int = 3
    stride: int = 1
    padding: int = 0
    acc_width: int = 32
    m: int = 2
    in_shape: tuple = ()
    op_counts: OpCounts = field(default_factory=OpCounts)
    #: Filled by ``prepare()``: DWM pieces and their transformed filters.
    sub_specs: list[SubConvSpec] = field(default_factory=list)
    sub_filters: list[np.ndarray] = field(default_factory=list)
    #: Per-sub-filter magnitude bounds, filled by ``prepare()``; lets the
    #: backend exactness probes skip their per-call magnitude scans.
    sub_filter_bounds: list[int] = field(default_factory=list)
    #: Kernel backend name (resolved lazily per process; bit-identical
    #: across backends, so never part of model fingerprints).
    kernel_backend: str = "reference"

    @property
    def acc_frac(self) -> int:
        return self.in_fmt.frac + self.w_fmt.frac

    @property
    def transform(self):
        """The ``F(m, 3)`` transform bundle shared by every sub-conv."""
        return get_transform(self.m, 3)

    def prepare(self) -> None:
        """Decompose the kernel and pre-transform the integer filters."""
        tf = self.transform
        backend = get_backend(self.kernel_backend)
        self.sub_specs = decompose_conv((self.kernel, self.kernel), self.stride)
        self.sub_filters = [
            backend.filter_transform(
                tf, extract_sub_kernel(self.weight_int, spec, self.stride)
            )
            for spec in self.sub_specs
        ]
        # The transformed filters are static, so their magnitude bounds
        # are computed once here and reused by every forward's probes.
        self.sub_filter_bounds = [
            int(np.abs(v).max(initial=0)) for v in self.sub_filters
        ]

    def forward(self, xs, injector=None):
        (x,) = xs
        if not self.sub_specs:
            raise ShapeError(f"QConvWinograd '{self.name}' not prepared")
        n, c, h, w = x.shape
        k = self.weight_int.shape[0]
        out_h = conv_output_size(h, self.kernel, self.stride, self.padding)
        out_w = conv_output_size(w, self.kernel, self.stride, self.padding)

        backend = get_backend(self.kernel_backend)
        x_bound = format_bound(self.in_fmt.width)
        v_bounds = self.sub_filter_bounds or [None] * len(self.sub_specs)
        xp = pad_nchw(np.asarray(x, dtype=np.int64), self.padding)
        keep = injector is not None and injector.needs_intermediates
        scale = self.transform.output_scale_2d

        y_scaled = None
        sub_contexts = []
        for spec, v_int, v_bound in zip(self.sub_specs, self.sub_filters, v_bounds):
            view = extract_sub_input(xp, spec, self.stride, out_h, out_w)
            ctx = winograd_conv2d_int(
                view, v_int, padding=0, m=self.m, r=3, keep_intermediates=keep,
                backend=backend, x_bound=x_bound, v_bound=v_bound,
            )
            sub_contexts.append((spec, ctx))
            y_scaled = ctx.y_int if y_scaled is None else y_scaled + ctx.y_int

        # Contiguity matters: the injector mutates reshape-views of this
        # array in place, which only aliases when the array is contiguous.
        y_scaled = np.ascontiguousarray(y_scaled[:, :, :out_h, :out_w])
        y_scaled += self.bias_acc.reshape(1, k, 1, 1) * scale
        if injector is not None:
            injector.visit_winograd(self, sub_contexts, y_scaled)
        y = backend.requantize(
            y_scaled, self.acc_frac, self.out_fmt, extra_ratio=Fraction(1, scale)
        )
        if injector is not None:
            y = injector.visit_output(self, y)
        return y


@dataclass
class QLinear(QNode):
    """Integer fully-connected layer."""

    weight_int: np.ndarray = None  # (F_out, F_in)
    bias_acc: np.ndarray = None
    in_fmt: QFormat = None
    w_fmt: QFormat = None
    acc_width: int = 32
    in_shape: tuple = ()
    op_counts: OpCounts = field(default_factory=OpCounts)
    #: Kernel backend name (resolved lazily per process; bit-identical
    #: across backends, so never part of model fingerprints).
    kernel_backend: str = "reference"

    @property
    def acc_frac(self) -> int:
        return self.in_fmt.frac + self.w_fmt.frac

    def forward(self, xs, injector=None):
        (x,) = xs
        backend = get_backend(self.kernel_backend)
        acc = backend.linear_gemm(
            x,
            self.weight_int,
            w_bound=_lazy_weight_bound(self),
            x_bound=format_bound(self.in_fmt.width),
        )
        acc += self.bias_acc
        if injector is not None:
            injector.visit_linear(self, x, acc)
        y = backend.requantize(acc, self.acc_frac, self.out_fmt)
        if injector is not None:
            y = injector.visit_output(self, y)
        return y


@dataclass
class QAffine(QNode):
    """Per-channel integer affine (unfolded inference-time BatchNorm).

    ``y = (x * mult) >> SHIFT + shift`` with per-channel 2^SHIFT-scaled
    multipliers, the standard integer lowering of a frozen BN.
    """

    SHIFT = 24

    mult_int: np.ndarray = None  # (C,) multiplier, scaled by 2**SHIFT
    shift_int: np.ndarray = None  # (C,) additive term in output units
    in_fmt: QFormat = None

    def forward(self, xs, injector=None):
        (x,) = xs
        scaled = x * self.mult_int.reshape(1, -1, 1, 1)
        y = rescale_round(scaled, Fraction(1, 1 << self.SHIFT))
        y = y + self.shift_int.reshape(1, -1, 1, 1)
        return saturate(y, self.out_fmt)


@dataclass
class QReLU(QNode):
    """Integer ReLU (format-preserving)."""

    def forward(self, xs, injector=None):
        return np.maximum(xs[0], 0)


@dataclass
class QMaxPool(QNode):
    """Integer max pooling."""

    kernel: int = 2
    stride: int = 2
    padding: int = 0

    def forward(self, xs, injector=None):
        (x,) = xs
        n, c, h, w = x.shape
        if self.padding:
            # Pad with the format minimum so padding never wins the max.
            pad_val = self.out_fmt.qmin
            x = np.pad(
                x,
                ((0, 0), (0, 0), (self.padding,) * 2, (self.padding,) * 2),
                mode="constant",
                constant_values=pad_val,
            )
        cols = im2col(
            x.reshape(n * c, 1, *x.shape[2:]), (self.kernel,) * 2, self.stride, 0
        )
        p = conv_output_size(h, self.kernel, self.stride, self.padding)
        q = conv_output_size(w, self.kernel, self.stride, self.padding)
        return cols.max(axis=1).reshape(n, c, p, q)


@dataclass
class QAvgPool(QNode):
    """Integer average pooling with exact rounding."""

    kernel: int = 2
    stride: int = 2
    padding: int = 0

    def forward(self, xs, injector=None):
        (x,) = xs
        n, c, h, w = x.shape
        cols = im2col(
            x.reshape(n * c, 1, h, w), (self.kernel,) * 2, self.stride, self.padding
        )
        p = conv_output_size(h, self.kernel, self.stride, self.padding)
        q = conv_output_size(w, self.kernel, self.stride, self.padding)
        sums = cols.sum(axis=1)
        mean = rescale_round(sums, Fraction(1, self.kernel * self.kernel))
        return saturate(mean.reshape(n, c, p, q), self.out_fmt)


@dataclass
class QGlobalAvgPool(QNode):
    """Integer global average pooling."""

    def forward(self, xs, injector=None):
        (x,) = xs
        n, c, h, w = x.shape
        sums = x.sum(axis=(2, 3), dtype=np.int64)
        mean = rescale_round(sums, Fraction(1, h * w))
        return saturate(mean, self.out_fmt).reshape(n, c, 1, 1)


@dataclass
class QFlatten(QNode):
    """Flatten to (N, features)."""

    def forward(self, xs, injector=None):
        return xs[0].reshape(xs[0].shape[0], -1)


@dataclass
class QAdd(QNode):
    """Residual addition with format harmonization."""

    in_fmts: tuple[QFormat, QFormat] = None

    def forward(self, xs, injector=None):
        a, b = xs
        fa, fb = self.in_fmts
        a = rescale_round(a, Fraction(2) ** (self.out_fmt.frac - fa.frac))
        b = rescale_round(b, Fraction(2) ** (self.out_fmt.frac - fb.frac))
        return saturate(a + b, self.out_fmt)


@dataclass
class QConcat(QNode):
    """Channel concatenation with format harmonization."""

    in_fmts: tuple = ()

    def forward(self, xs, injector=None):
        parts = []
        for x, fmt in zip(xs, self.in_fmts):
            if fmt.frac != self.out_fmt.frac:
                x = saturate(
                    rescale_round(x, Fraction(2) ** (self.out_fmt.frac - fmt.frac)),
                    self.out_fmt,
                )
            parts.append(x)
        return np.concatenate(parts, axis=1)


def conv_op_counts(
    mode: str,
    in_channels: int,
    out_channels: int,
    kernel: int,
    stride: int,
    out_size: tuple[int, int],
    m: int,
    bias: bool = True,
) -> OpCounts:
    """Op census for one conv layer under the given execution mode."""
    if mode == "winograd":
        return winograd_conv_counts(
            in_channels, out_channels, (kernel, kernel), stride, out_size, m=m, bias=bias
        )
    return standard_conv_counts(
        in_channels, out_channels, (kernel, kernel), out_size, bias=bias
    )


def linear_op_counts(in_features: int, out_features: int) -> OpCounts:
    """Op census for a fully-connected layer."""
    return linear_counts(in_features, out_features)
