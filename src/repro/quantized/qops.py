"""Quantized (integer) node implementations.

Every class mirrors one graph op.  All activations are int64 arrays holding
stored integers of the node's :class:`~repro.fixedpoint.qformat.QFormat`;
weight-bearing layers carry everything the fault injector needs (formats,
geometry, operation census, raw operand arrays during the pass).

The two convolution implementations — :class:`QConvDirect` and
:class:`QConvWinograd` — compute *bit-identical* outputs in the fault-free
case (see ``tests/test_quantized_equivalence.py``), which pins the paper's
premise that Winograd is a lossless rewrite of the convolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from repro.errors import ShapeError
from repro.fixedpoint import QFormat, requantize, rescale_round, saturate
from repro.quantized.interface import Injector
from repro.utils.im2col import conv_output_size, im2col, pad_nchw
from repro.winograd.conv2d import transform_filter_int, winograd_conv2d_int
from repro.winograd.decompose import (
    SubConvSpec,
    decompose_conv,
    extract_sub_input,
    extract_sub_kernel,
)
from repro.winograd.opcount import (
    OpCounts,
    linear_counts,
    standard_conv_counts,
    winograd_conv_counts,
)
from repro.winograd.transforms import get_transform

__all__ = [
    "QNode",
    "QInput",
    "QConvDirect",
    "QConvWinograd",
    "QLinear",
    "QAffine",
    "QReLU",
    "QMaxPool",
    "QAvgPool",
    "QGlobalAvgPool",
    "QFlatten",
    "QAdd",
    "QConcat",
]


@dataclass
class QNode:
    """Base quantized node: name, inputs and output format."""

    name: str
    inputs: tuple[str, ...]
    out_fmt: QFormat

    #: Per-image output shape, filled in by the quantizer.
    out_shape: tuple = ()

    def forward(self, xs: list[np.ndarray], injector: Injector | None = None) -> np.ndarray:
        raise NotImplementedError

    @property
    def op(self) -> str:
        return type(self).__name__


@dataclass
class QInput(QNode):
    """Quantizes the float network input into the input format."""

    def forward(self, xs, injector=None):
        from repro.fixedpoint import quantize

        return quantize(xs[0], self.out_fmt)


def _exact_int_gemm(weight: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """``acc[n, k, p] = sum_r weight[k, r] * cols[n, r, p]`` exactly.

    Uses BLAS float64 when every partial sum provably fits the mantissa
    (checked from actual magnitudes), int64 otherwise.
    """
    w_max = int(np.abs(weight).max(initial=0))
    x_max = int(np.abs(cols).max(initial=0))
    reduction = weight.shape[1]
    if w_max * x_max * reduction < 2**52:
        acc = np.matmul(
            weight.astype(np.float64), cols.astype(np.float64)
        )
        return np.rint(acc).astype(np.int64)
    return np.matmul(weight[None], cols)  # int64 matmul (exact, slower)


@dataclass
class QConvDirect(QNode):
    """Direct (im2col/GEMM) integer convolution."""

    weight_int: np.ndarray = None  # (K, C, R, S)
    bias_acc: np.ndarray = None  # (K,) in accumulator units
    in_fmt: QFormat = None
    w_fmt: QFormat = None
    kernel: int = 3
    stride: int = 1
    padding: int = 0
    acc_width: int = 32
    in_shape: tuple = ()
    op_counts: OpCounts = field(default_factory=OpCounts)

    @property
    def acc_frac(self) -> int:
        """Fractional bits of the accumulator domain."""
        return self.in_fmt.frac + self.w_fmt.frac

    def forward(self, xs, injector=None):
        (x,) = xs
        n, c, h, w = x.shape
        k = self.weight_int.shape[0]
        p = conv_output_size(h, self.kernel, self.stride, self.padding)
        q = conv_output_size(w, self.kernel, self.stride, self.padding)

        cols = im2col(x, (self.kernel, self.kernel), self.stride, self.padding)
        acc = _exact_int_gemm(self.weight_int.reshape(k, -1), cols)
        acc = acc.reshape(n, k, p, q)
        acc += self.bias_acc.reshape(1, k, 1, 1)
        if injector is not None:
            injector.visit_direct(self, x, cols, acc)
        y = requantize(acc, self.acc_frac, self.out_fmt)
        if injector is not None:
            y = injector.visit_output(self, y)
        return y


@dataclass
class QConvWinograd(QNode):
    """Integer-exact Winograd convolution (DWM-decomposed when needed)."""

    weight_int: np.ndarray = None  # original (K, C, R, S) integer weights
    bias_acc: np.ndarray = None
    in_fmt: QFormat = None
    w_fmt: QFormat = None
    kernel: int = 3
    stride: int = 1
    padding: int = 0
    acc_width: int = 32
    m: int = 2
    in_shape: tuple = ()
    op_counts: OpCounts = field(default_factory=OpCounts)
    #: Filled by ``prepare()``: DWM pieces and their transformed filters.
    sub_specs: list[SubConvSpec] = field(default_factory=list)
    sub_filters: list[np.ndarray] = field(default_factory=list)

    @property
    def acc_frac(self) -> int:
        return self.in_fmt.frac + self.w_fmt.frac

    @property
    def transform(self):
        """The ``F(m, 3)`` transform bundle shared by every sub-conv."""
        return get_transform(self.m, 3)

    def prepare(self) -> None:
        """Decompose the kernel and pre-transform the integer filters."""
        tf = self.transform
        self.sub_specs = decompose_conv((self.kernel, self.kernel), self.stride)
        self.sub_filters = [
            transform_filter_int(
                extract_sub_kernel(self.weight_int, spec, self.stride), tf
            )
            for spec in self.sub_specs
        ]

    def forward(self, xs, injector=None):
        (x,) = xs
        if not self.sub_specs:
            raise ShapeError(f"QConvWinograd '{self.name}' not prepared")
        n, c, h, w = x.shape
        k = self.weight_int.shape[0]
        out_h = conv_output_size(h, self.kernel, self.stride, self.padding)
        out_w = conv_output_size(w, self.kernel, self.stride, self.padding)

        xp = pad_nchw(np.asarray(x, dtype=np.int64), self.padding)
        keep = injector is not None and injector.needs_intermediates
        scale = self.transform.output_scale_2d

        y_scaled = None
        sub_contexts = []
        for spec, v_int in zip(self.sub_specs, self.sub_filters):
            view = extract_sub_input(xp, spec, self.stride, out_h, out_w)
            ctx = winograd_conv2d_int(
                view, v_int, padding=0, m=self.m, r=3, keep_intermediates=keep
            )
            sub_contexts.append((spec, ctx))
            y_scaled = ctx.y_int if y_scaled is None else y_scaled + ctx.y_int

        # Contiguity matters: the injector mutates reshape-views of this
        # array in place, which only aliases when the array is contiguous.
        y_scaled = np.ascontiguousarray(y_scaled[:, :, :out_h, :out_w])
        y_scaled += self.bias_acc.reshape(1, k, 1, 1) * scale
        if injector is not None:
            injector.visit_winograd(self, sub_contexts, y_scaled)
        y = requantize(
            y_scaled, self.acc_frac, self.out_fmt, extra_ratio=Fraction(1, scale)
        )
        if injector is not None:
            y = injector.visit_output(self, y)
        return y


@dataclass
class QLinear(QNode):
    """Integer fully-connected layer."""

    weight_int: np.ndarray = None  # (F_out, F_in)
    bias_acc: np.ndarray = None
    in_fmt: QFormat = None
    w_fmt: QFormat = None
    acc_width: int = 32
    in_shape: tuple = ()
    op_counts: OpCounts = field(default_factory=OpCounts)

    @property
    def acc_frac(self) -> int:
        return self.in_fmt.frac + self.w_fmt.frac

    def forward(self, xs, injector=None):
        (x,) = xs
        w_max = int(np.abs(self.weight_int).max(initial=0))
        x_max = int(np.abs(x).max(initial=0))
        if w_max * x_max * self.weight_int.shape[1] < 2**52:
            acc = np.rint(
                x.astype(np.float64) @ self.weight_int.T.astype(np.float64)
            ).astype(np.int64)
        else:
            acc = x @ self.weight_int.T
        acc += self.bias_acc
        if injector is not None:
            injector.visit_linear(self, x, acc)
        y = requantize(acc, self.acc_frac, self.out_fmt)
        if injector is not None:
            y = injector.visit_output(self, y)
        return y


@dataclass
class QAffine(QNode):
    """Per-channel integer affine (unfolded inference-time BatchNorm).

    ``y = (x * mult) >> SHIFT + shift`` with per-channel 2^SHIFT-scaled
    multipliers, the standard integer lowering of a frozen BN.
    """

    SHIFT = 24

    mult_int: np.ndarray = None  # (C,) multiplier, scaled by 2**SHIFT
    shift_int: np.ndarray = None  # (C,) additive term in output units
    in_fmt: QFormat = None

    def forward(self, xs, injector=None):
        (x,) = xs
        scaled = x * self.mult_int.reshape(1, -1, 1, 1)
        y = rescale_round(scaled, Fraction(1, 1 << self.SHIFT))
        y = y + self.shift_int.reshape(1, -1, 1, 1)
        return saturate(y, self.out_fmt)


@dataclass
class QReLU(QNode):
    """Integer ReLU (format-preserving)."""

    def forward(self, xs, injector=None):
        return np.maximum(xs[0], 0)


@dataclass
class QMaxPool(QNode):
    """Integer max pooling."""

    kernel: int = 2
    stride: int = 2
    padding: int = 0

    def forward(self, xs, injector=None):
        (x,) = xs
        n, c, h, w = x.shape
        if self.padding:
            # Pad with the format minimum so padding never wins the max.
            pad_val = self.out_fmt.qmin
            x = np.pad(
                x,
                ((0, 0), (0, 0), (self.padding,) * 2, (self.padding,) * 2),
                mode="constant",
                constant_values=pad_val,
            )
        cols = im2col(
            x.reshape(n * c, 1, *x.shape[2:]), (self.kernel,) * 2, self.stride, 0
        )
        p = conv_output_size(h, self.kernel, self.stride, self.padding)
        q = conv_output_size(w, self.kernel, self.stride, self.padding)
        return cols.max(axis=1).reshape(n, c, p, q)


@dataclass
class QAvgPool(QNode):
    """Integer average pooling with exact rounding."""

    kernel: int = 2
    stride: int = 2
    padding: int = 0

    def forward(self, xs, injector=None):
        (x,) = xs
        n, c, h, w = x.shape
        cols = im2col(
            x.reshape(n * c, 1, h, w), (self.kernel,) * 2, self.stride, self.padding
        )
        p = conv_output_size(h, self.kernel, self.stride, self.padding)
        q = conv_output_size(w, self.kernel, self.stride, self.padding)
        sums = cols.sum(axis=1)
        mean = rescale_round(sums, Fraction(1, self.kernel * self.kernel))
        return saturate(mean.reshape(n, c, p, q), self.out_fmt)


@dataclass
class QGlobalAvgPool(QNode):
    """Integer global average pooling."""

    def forward(self, xs, injector=None):
        (x,) = xs
        n, c, h, w = x.shape
        sums = x.sum(axis=(2, 3), dtype=np.int64)
        mean = rescale_round(sums, Fraction(1, h * w))
        return saturate(mean, self.out_fmt).reshape(n, c, 1, 1)


@dataclass
class QFlatten(QNode):
    """Flatten to (N, features)."""

    def forward(self, xs, injector=None):
        return xs[0].reshape(xs[0].shape[0], -1)


@dataclass
class QAdd(QNode):
    """Residual addition with format harmonization."""

    in_fmts: tuple[QFormat, QFormat] = None

    def forward(self, xs, injector=None):
        a, b = xs
        fa, fb = self.in_fmts
        a = rescale_round(a, Fraction(2) ** (self.out_fmt.frac - fa.frac))
        b = rescale_round(b, Fraction(2) ** (self.out_fmt.frac - fb.frac))
        return saturate(a + b, self.out_fmt)


@dataclass
class QConcat(QNode):
    """Channel concatenation with format harmonization."""

    in_fmts: tuple = ()

    def forward(self, xs, injector=None):
        parts = []
        for x, fmt in zip(xs, self.in_fmts):
            if fmt.frac != self.out_fmt.frac:
                x = saturate(
                    rescale_round(x, Fraction(2) ** (self.out_fmt.frac - fmt.frac)),
                    self.out_fmt,
                )
            parts.append(x)
        return np.concatenate(parts, axis=1)


def conv_op_counts(
    mode: str,
    in_channels: int,
    out_channels: int,
    kernel: int,
    stride: int,
    out_size: tuple[int, int],
    m: int,
    bias: bool = True,
) -> OpCounts:
    """Op census for one conv layer under the given execution mode."""
    if mode == "winograd":
        return winograd_conv_counts(
            in_channels, out_channels, (kernel, kernel), stride, out_size, m=m, bias=bias
        )
    return standard_conv_counts(
        in_channels, out_channels, (kernel, kernel), out_size, bias=bias
    )


def linear_op_counts(in_features: int, out_features: int) -> OpCounts:
    """Op census for a fully-connected layer."""
    return linear_counts(in_features, out_features)
