"""Post-training quantization: float graph -> :class:`QuantizedModel`.

Pipeline:

1. Fold BatchNorm (:mod:`repro.quantized.fold`).
2. Run the folded float graph over a calibration batch, recording per-node
   output ranges.
3. Assign a :class:`QFormat` to every tensor (activations per-tensor from
   calibration; weights per-tensor from their extrema).
4. Lower each node to its quantized counterpart; convolutions become either
   the direct integer GEMM or the integer-exact Winograd kernel depending
   on ``conv_mode`` (1x1 convolutions always run direct — Winograd is
   meaningless for pointwise kernels, matching real deployments).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, QuantizationError
from repro.fixedpoint import MinMaxObserver, PercentileObserver, QFormat, quantize
from repro.nn.graph import Graph, Node
from repro.nn.ops import forward_op
from repro.nn.shapes import infer_shapes
from repro.quantized.fold import fold_batchnorm
from repro.quantized.qconfig import (
    CONV_MODE_STANDARD,
    CONV_MODE_WINOGRAD,
    QuantConfig,
)
from repro.quantized.qmodel import QuantizedModel
from repro.quantized.qops import (
    QAdd,
    QAffine,
    QAvgPool,
    QConcat,
    QConvDirect,
    QConvWinograd,
    QFlatten,
    QGlobalAvgPool,
    QInput,
    QLinear,
    QMaxPool,
    QReLU,
    conv_op_counts,
    linear_op_counts,
)

__all__ = ["quantize_model", "folded_float_forward"]


def folded_float_forward(folded: Graph, x: np.ndarray) -> dict[str, np.ndarray]:
    """Float forward over a BN-folded graph, returning all activations.

    Remaining ``batchnorm2d`` nodes hold frozen ``scale``/``shift`` params
    (produced by the folding pass) and are applied as affine maps.
    """
    activations: dict[str, np.ndarray] = {}
    for node in folded:
        if node.op == "input":
            activations[node.name] = np.asarray(x, dtype=np.float32)
            continue
        xs = [activations[src] for src in node.inputs]
        if node.op == "batchnorm2d":
            scale = folded.params[node.name]["scale"].reshape(1, -1, 1, 1)
            shift = folded.params[node.name]["shift"].reshape(1, -1, 1, 1)
            activations[node.name] = xs[0] * scale + shift
        else:
            activations[node.name], _ = forward_op(node, folded, xs, train=False)
    return activations


def _make_observer(config: QuantConfig):
    if config.calibration == "percentile":
        return PercentileObserver(width=config.width, percentile=config.percentile)
    return MinMaxObserver(width=config.width)


def _activation_formats(
    folded: Graph, calib_x: np.ndarray, config: QuantConfig, batch_size: int = 64
) -> dict[str, QFormat]:
    """Observe every node output over the calibration set and derive formats."""
    observers = {node.name: _make_observer(config) for node in folded}
    for start in range(0, len(calib_x), batch_size):
        acts = folded_float_forward(folded, calib_x[start : start + batch_size])
        for name, arr in acts.items():
            observers[name].observe(arr)
    return {name: obs.qformat() for name, obs in observers.items()}


def _weight_format(weight: np.ndarray, width: int) -> QFormat:
    max_abs = float(np.max(np.abs(weight)))
    if max_abs == 0.0:
        raise QuantizationError("all-zero weight tensor cannot be quantized")
    return QFormat.for_max_abs(width, max_abs)


def _quantize_bias(
    bias: np.ndarray | None, out_channels: int, acc_frac: int
) -> np.ndarray:
    if bias is None:
        return np.zeros(out_channels, dtype=np.int64)
    return np.asarray(
        np.sign(bias) * np.floor(np.abs(bias) * 2.0**acc_frac + 0.5), dtype=np.int64
    )


def quantize_model(
    graph: Graph,
    calib_x: np.ndarray,
    config: QuantConfig | None = None,
    conv_mode: str = CONV_MODE_STANDARD,
) -> QuantizedModel:
    """Quantize a trained float graph for integer inference.

    Parameters
    ----------
    graph:
        Trained float graph (BN still unfolded).
    calib_x:
        Calibration inputs, shape ``(N, C, H, W)``; a few hundred samples
        suffice for min-max calibration.
    config:
        Quantization settings (defaults to int16 min-max).
    conv_mode:
        ``"standard"`` or ``"winograd"``.
    """
    config = config or QuantConfig()
    if conv_mode not in (CONV_MODE_STANDARD, CONV_MODE_WINOGRAD):
        raise ConfigurationError(f"unknown conv_mode '{conv_mode}'")

    folded = fold_batchnorm(graph)
    shapes = infer_shapes(folded)
    fmts = _activation_formats(folded, calib_x, config)

    qnodes = []
    for node in folded:
        qnode = _lower_node(node, folded, shapes, fmts, config, conv_mode)
        qnode.out_shape = shapes[node.name]
        qnodes.append(qnode)

    return QuantizedModel(
        name=graph.name,
        conv_mode=conv_mode,
        config=config,
        nodes=qnodes,
        output_name=folded.output_name,
        input_shape=folded.input_shape,
    )


def _lower_node(
    node: Node,
    folded: Graph,
    shapes: dict,
    fmts: dict[str, QFormat],
    config: QuantConfig,
    conv_mode: str,
):
    """Lower one folded float node to its quantized counterpart."""
    name, inputs = node.name, node.inputs
    if node.op == "input":
        return QInput(name, (), fmts[name])

    in_fmt = None
    if inputs:
        in_fmt = _resolved_fmt(folded, fmts, inputs[0], config)

    if node.op == "conv2d":
        weight = folded.params[name]["weight"]
        w_fmt = _weight_format(weight, config.width)
        w_int = quantize(weight, w_fmt)
        out_fmt = fmts[name]
        acc_frac = in_fmt.frac + w_fmt.frac
        bias = folded.params[name].get("bias") if node.attrs.get("bias", True) else None
        bias_acc = _quantize_bias(bias, weight.shape[0], acc_frac)
        kernel, stride = node.attrs["kernel"], node.attrs["stride"]
        out_shape = shapes[name]
        counts_mode = (
            "winograd" if conv_mode == CONV_MODE_WINOGRAD and kernel >= 3 else "standard"
        )
        counts = conv_op_counts(
            counts_mode,
            in_channels=weight.shape[1],
            out_channels=weight.shape[0],
            kernel=kernel,
            stride=stride,
            out_size=(out_shape[1], out_shape[2]),
            m=config.wg_tile,
            bias=True,
        )
        common = dict(
            name=name,
            inputs=inputs,
            out_fmt=out_fmt,
            weight_int=w_int,
            bias_acc=bias_acc,
            in_fmt=in_fmt,
            w_fmt=w_fmt,
            kernel=kernel,
            stride=stride,
            padding=node.attrs["padding"],
            acc_width=config.acc_width,
            in_shape=shapes[inputs[0]],
            op_counts=counts,
        )
        if counts_mode == "winograd":
            qconv = QConvWinograd(m=config.wg_tile, **common)
            qconv.prepare()
            return qconv
        return QConvDirect(**common)

    if node.op == "linear":
        weight = folded.params[name]["weight"]
        w_fmt = _weight_format(weight, config.width)
        w_int = quantize(weight, w_fmt)
        acc_frac = in_fmt.frac + w_fmt.frac
        bias = folded.params[name].get("bias") if node.attrs.get("bias", True) else None
        bias_acc = _quantize_bias(bias, weight.shape[0], acc_frac)
        return QLinear(
            name=name,
            inputs=inputs,
            out_fmt=fmts[name],
            weight_int=w_int,
            bias_acc=bias_acc,
            in_fmt=in_fmt,
            w_fmt=w_fmt,
            acc_width=config.acc_width,
            in_shape=shapes[inputs[0]],
            op_counts=linear_op_counts(weight.shape[1], weight.shape[0]),
        )

    if node.op == "batchnorm2d":
        scale = folded.params[name]["scale"].astype(np.float64)
        shift = folded.params[name]["shift"].astype(np.float64)
        out_fmt = fmts[name]
        mult = scale * 2.0 ** (out_fmt.frac - in_fmt.frac)
        mult_int = np.asarray(
            np.sign(mult) * np.floor(np.abs(mult) * 2.0**QAffine.SHIFT + 0.5),
            dtype=np.int64,
        )
        shift_int = np.asarray(
            np.sign(shift) * np.floor(np.abs(shift) * 2.0**out_fmt.frac + 0.5),
            dtype=np.int64,
        )
        return QAffine(
            name=name,
            inputs=inputs,
            out_fmt=out_fmt,
            mult_int=mult_int,
            shift_int=shift_int,
            in_fmt=in_fmt,
        )

    if node.op == "relu":
        return QReLU(name, inputs, in_fmt)
    if node.op == "maxpool2d":
        return QMaxPool(
            name,
            inputs,
            in_fmt,
            kernel=node.attrs["kernel"],
            stride=node.attrs["stride"],
            padding=node.attrs["padding"],
        )
    if node.op == "avgpool2d":
        return QAvgPool(
            name,
            inputs,
            in_fmt,
            kernel=node.attrs["kernel"],
            stride=node.attrs["stride"],
            padding=node.attrs["padding"],
        )
    if node.op == "globalavgpool":
        return QGlobalAvgPool(name, inputs, in_fmt)
    if node.op == "flatten":
        return QFlatten(name, inputs, in_fmt)
    if node.op == "add":
        fa = _resolved_fmt(folded, fmts, inputs[0], config)
        fb = _resolved_fmt(folded, fmts, inputs[1], config)
        return QAdd(name, inputs, fmts[name], in_fmts=(fa, fb))
    if node.op == "concat":
        in_fmts = tuple(
            _resolved_fmt(folded, fmts, src, config) for src in inputs
        )
        # The coarsest (smallest-frac) input format covers every branch.
        out_fmt = min(in_fmts, key=lambda f: f.frac)
        return QConcat(name, inputs, out_fmt, in_fmts=in_fmts)

    raise ConfigurationError(f"cannot lower op '{node.op}'")


def _resolved_fmt(
    folded: Graph, fmts: dict[str, QFormat], name: str, config: QuantConfig
) -> QFormat:
    """Effective output format of node ``name`` after lowering.

    Pass-through ops (ReLU, pooling, flatten) emit their input's format, and
    concat emits the coarsest input format, so the *calibrated* format of
    those nodes is not what their quantized counterpart produces.  Walk the
    chain down to the defining node.
    """
    node = folded.node(name)
    if node.op in ("relu", "maxpool2d", "avgpool2d", "globalavgpool", "flatten"):
        return _resolved_fmt(folded, fmts, node.inputs[0], config)
    if node.op == "concat":
        branch_fmts = [
            _resolved_fmt(folded, fmts, src, config) for src in node.inputs
        ]
        return min(branch_fmts, key=lambda f: f.frac)
    return fmts[name]
