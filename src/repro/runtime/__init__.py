"""Campaign execution runtime: sharded workers, checkpointing, resume.

This package turns the serial Monte-Carlo loops of :mod:`repro.faultsim`
and the protected-evaluation analyses built on them into an interruptible,
parallel service.  :class:`CampaignEngine` dispatches independent
:class:`TaskSpec` units — a (BER, seed) point under an optional protection
plan — across a process pool via :meth:`CampaignEngine.evaluate_tasks`,
records every completed task in a content-addressed JSON-lines checkpoint
and resumes from it, while guaranteeing results bit-identical to serial
execution.  Accuracy sweeps (:meth:`CampaignEngine.run_sweep`, figs
1–2/6–7), layer vulnerability (Fig. 3), operation-type sensitivity
(Fig. 4) and the TMR planner (Fig. 5) all route through the same engine.
"""

from repro.runtime.checkpoint import CampaignCheckpoint
from repro.runtime.engine import CampaignEngine, SweepStats, resolve_workers
from repro.runtime.hashing import (
    campaign_fingerprint,
    data_fingerprint,
    model_fingerprint,
    point_key,
    task_key,
)
from repro.runtime.progress import (
    ProgressEvent,
    ProgressReporter,
    ThroughputMeter,
    null_reporter,
    stream_reporter,
)
from repro.runtime.tasks import TaskSpec

__all__ = [
    "CampaignEngine",
    "CampaignCheckpoint",
    "SweepStats",
    "TaskSpec",
    "resolve_workers",
    "model_fingerprint",
    "campaign_fingerprint",
    "data_fingerprint",
    "point_key",
    "task_key",
    "ProgressEvent",
    "ProgressReporter",
    "ThroughputMeter",
    "null_reporter",
    "stream_reporter",
]
