"""Campaign execution runtime: sharded workers, checkpointing, resume.

This package turns the serial Monte-Carlo sweeps of :mod:`repro.faultsim`
into an interruptible, parallel service: :class:`CampaignEngine` dispatches
independent (BER, seed) units across a process pool, records every
completed unit in a content-addressed JSON checkpoint and resumes from it,
while guaranteeing results bit-identical to serial execution.
"""

from repro.runtime.checkpoint import CampaignCheckpoint
from repro.runtime.engine import CampaignEngine, SweepStats, resolve_workers
from repro.runtime.hashing import (
    campaign_fingerprint,
    data_fingerprint,
    model_fingerprint,
    point_key,
)
from repro.runtime.progress import (
    ProgressEvent,
    ProgressReporter,
    ThroughputMeter,
    null_reporter,
    stream_reporter,
)

__all__ = [
    "CampaignEngine",
    "CampaignCheckpoint",
    "SweepStats",
    "resolve_workers",
    "model_fingerprint",
    "campaign_fingerprint",
    "data_fingerprint",
    "point_key",
    "ProgressEvent",
    "ProgressReporter",
    "ThroughputMeter",
    "null_reporter",
    "stream_reporter",
]
