"""Campaign execution runtime: sharded workers, checkpointing, resume.

This package turns the serial Monte-Carlo loops of :mod:`repro.faultsim`
and the protected-evaluation analyses built on them into an interruptible,
parallel service.  :class:`CampaignEngine` dispatches independent
:class:`TaskSpec` units — a (BER, seed) point, or a whole seed batch,
under an optional protection plan — across a process pool via
:meth:`CampaignEngine.evaluate_tasks`.  Scheduling and checkpointing
happen at *subtask* granularity (one entry per (BER, seed, plan)
evaluation in a content-addressed JSON-lines file), so a single seed-batch
task shards across the whole pool and an interrupted batch resumes with
only its missing seeds recomputed, while results stay bit-identical to
serial execution.  Accuracy sweeps (:meth:`CampaignEngine.run_sweep`,
figs 1–2/6–7), layer vulnerability (Fig. 3), operation-type sensitivity
(Fig. 4) and the TMR planner (Fig. 5, including its speculative mode) all
route through the same engine.  Two executors sit behind the same API:
the forked pool (default) and the distributed work-queue backend
(``CampaignEngine(backend="distributed")`` — :mod:`repro.runtime.queue` +
:mod:`repro.runtime.distributed`: SQLite task leases, heartbeats,
stale-lease reclaim, retry/quarantine, per-worker checkpoint shards
merged by content key), bit-identical to each other.  Resilience is a
first-class surface: a unified :class:`RetryPolicy` (bounded attempts,
seeded exponential backoff, transient-vs-permanent classification,
optional per-unit deadline) governs both executors, the deterministic
chaos framework (:class:`ChaosSpec`, :mod:`repro.runtime.chaos`) injects
reproducible faults for drills, and checkpoint stores carry per-record
CRCs with an offline :func:`fsck` checker/repairer.  See
``docs/RUNTIME.md`` for the full contract and ``docs/ARCHITECTURE.md``
for the data flow.
"""

from repro.runtime.chaos import CHAOS_KINDS, ChaosSpec, chaos_from_env
from repro.runtime.checkpoint import (
    CampaignCheckpoint,
    FsckFileReport,
    FsckReport,
    fsck,
)
from repro.runtime.engine import (
    BACKEND_DISTRIBUTED,
    BACKEND_POOL,
    CampaignEngine,
    SAMPLE_SHARD_AUTO,
    SweepStats,
    auto_sample_shard,
    resolve_workers,
)
from repro.runtime.queue import Lease, QueueStats, WorkQueue
from repro.runtime.hashing import (
    adaptive_fingerprint,
    batch_task_keys,
    campaign_fingerprint,
    data_fingerprint,
    golden_key,
    model_fingerprint,
    point_key,
    task_key,
)
from repro.runtime.progress import (
    ProgressEvent,
    ProgressReporter,
    ThroughputMeter,
    null_reporter,
    stream_reporter,
)
from repro.runtime.retry import RetryPolicy, unit_deadline
from repro.runtime.tasks import TaskSpec

__all__ = [
    "CampaignEngine",
    "CampaignCheckpoint",
    "ChaosSpec",
    "CHAOS_KINDS",
    "FsckFileReport",
    "FsckReport",
    "RetryPolicy",
    "SweepStats",
    "chaos_from_env",
    "fsck",
    "unit_deadline",
    "BACKEND_DISTRIBUTED",
    "BACKEND_POOL",
    "SAMPLE_SHARD_AUTO",
    "TaskSpec",
    "WorkQueue",
    "Lease",
    "QueueStats",
    "auto_sample_shard",
    "resolve_workers",
    "model_fingerprint",
    "campaign_fingerprint",
    "data_fingerprint",
    "golden_key",
    "point_key",
    "task_key",
    "batch_task_keys",
    "adaptive_fingerprint",
    "ProgressEvent",
    "ProgressReporter",
    "ThroughputMeter",
    "null_reporter",
    "stream_reporter",
]
