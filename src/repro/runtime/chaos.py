"""Deterministic chaos framework for the campaign runtime.

Chaos testing asks: *does the runtime's detect/contain/recover machinery
actually recover?*  The previous answer hung off two undocumented
environment variables (``REPRO_WORKER_TASK_DELAY`` and
``REPRO_WORKER_FAIL_TAGS``, now deprecated aliases); this module replaces
them with a first-class, serializable :class:`ChaosSpec` whose every
injection decision is a **pure function of (chaos seed, task key,
attempt)** — the same keyed-Philox philosophy
(:func:`repro.utils.rng.site_rng`) that makes the fault injectors
partition-invariant.  Consequences:

* a chaos run is **reproducible**: rerunning the same spec against the
  same batch injects the same faults at the same units, whatever the
  worker count or scheduling;
* a chaos run is **convergent**: a fault keyed by ``(key, attempt)``
  draws fresh on the retried attempt, so bounded retry drains the
  injected faults exactly as it would drain real transient ones, and
  the campaign completes **bit-identically** to the undisturbed run
  (enforced by ``tests/test_chaos_matrix.py`` and the CI chaos-matrix
  step);
* chaos decisions need no shared state, so the spec pickles into the
  distributed batch payload and every worker process reaches identical
  verdicts.

Fault kinds
-----------
=================  ==================================================
``unit_error``     the unit raises :class:`~repro.errors.ChaosError`
                   (a transient exception; retry re-runs it)
``slow_unit``      the unit sleeps ``slow_unit_seconds`` first (pairs
                   with the retry policy's per-unit deadline watchdog)
``worker_crash``   the executing worker dies mid-unit: a real
                   ``os._exit`` in distributed workers (lease expiry
                   recovers), an in-band
                   :class:`~repro.errors.WorkerCrashError` in pool
                   workers (whose queue would die with the process —
                   the retry path re-runs the unit exactly as a lease
                   reclaim would)
``torn_write``     a checkpoint/shard append persists only a prefix of
                   the record (a crash mid-write); CRC/salvage drops
                   the torn line and the record is re-flushed or
                   recomputed
``enospc``         the checkpoint flush fails with ``ENOSPC``; records
                   stay in memory and the flush is retried with
                   backoff (the engine degrades checkpoint-less when
                   the budget is spent)
``lost_heartbeat`` a distributed worker's heartbeat thread goes silent
                   for one lease; the lease expires and the unit is
                   (harmlessly, content-addressed) double-executed
=================  ==================================================

``fail_tags`` is the legacy poison-task hook: units whose *tag* matches
raise on **every** attempt, so the retry budget exhausts and the unit is
quarantined — the one chaos kind meant to *not* converge.

Threading
---------
``CampaignEngine(chaos=spec)`` / CLI ``--chaos SPEC`` threads one spec
through both backends; ``ChaosSpec.parse`` accepts either a JSON object
or compact ``key=value`` pairs (``"seed=7,unit_error=0.2,
worker_crash=0.1,torn_write=0.2"``).  Production runs simply leave
``chaos=None`` — every hook is a no-op.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field, fields, replace

from repro.errors import ChaosError, ConfigurationError, WorkerCrashError
from repro.utils.rng import site_rng

__all__ = [
    "CHAOS_KINDS",
    "ChaosSpec",
    "apply_unit_chaos",
    "chaos_from_env",
]

#: Recognized fault kinds, in documentation order.
CHAOS_KINDS = (
    "unit_error",
    "slow_unit",
    "worker_crash",
    "torn_write",
    "enospc",
    "lost_heartbeat",
)

#: Exit status used by chaos-crashed distributed workers (mirrors the
#: shell convention for SIGKILLed processes).
CRASH_EXIT_STATUS = 137

#: Deprecated environment hooks (aliases onto ChaosSpec since PR 10).
ENV_TASK_DELAY = "REPRO_WORKER_TASK_DELAY"
ENV_FAIL_TAGS = "REPRO_WORKER_FAIL_TAGS"

#: Short CLI names for the rate fields of :class:`ChaosSpec`.
_RATE_FIELDS = {
    "unit_error": "unit_error_rate",
    "slow_unit": "slow_unit_rate",
    "worker_crash": "worker_crash_rate",
    "torn_write": "torn_write_rate",
    "enospc": "enospc_rate",
    "lost_heartbeat": "lost_heartbeat_rate",
}


@dataclass(frozen=True)
class ChaosSpec:
    """Serializable description of the faults to inject, and how often.

    Every rate is a per-decision probability in ``[0, 1]``; a decision
    point (one unit attempt, one flush attempt) consults
    :meth:`decide` with its fault kind, its content key and its attempt
    number, and the verdict is a pure function of those plus ``seed`` —
    no global RNG, no ordering effects, no cross-process divergence.

    Parameters
    ----------
    seed:
        Chaos campaign seed.  Two specs differing only in seed inject
        statistically alike but site-wise different fault patterns.
    unit_error_rate:
        Probability a unit attempt raises a transient
        :class:`~repro.errors.ChaosError` before evaluating.
    slow_unit_rate / slow_unit_seconds:
        Probability a unit attempt first sleeps ``slow_unit_seconds``.
    worker_crash_rate:
        Probability the worker executing a unit attempt dies mid-unit
        (see the module docs for the per-backend realization).
    torn_write_rate:
        Probability a checkpoint/shard append persists only a prefix of
        its record.
    enospc_rate:
        Probability a checkpoint flush attempt fails as if the disk
        were full.
    lost_heartbeat_rate:
        Probability a distributed worker's heartbeat goes silent for
        one claimed lease.
    fail_tags:
        Task tags that raise on **every** attempt (poison tasks; the
        deprecated ``REPRO_WORKER_FAIL_TAGS`` alias feeds this).
    """

    seed: int = 0
    unit_error_rate: float = 0.0
    slow_unit_rate: float = 0.0
    slow_unit_seconds: float = 0.05
    worker_crash_rate: float = 0.0
    torn_write_rate: float = 0.0
    enospc_rate: float = 0.0
    lost_heartbeat_rate: float = 0.0
    fail_tags: tuple[str, ...] = field(default=())

    def __post_init__(self):
        """Validate rates, durations and tag list at construction."""
        for short, name in _RATE_FIELDS.items():
            rate = getattr(self, name)
            if not 0.0 <= float(rate) <= 1.0:
                raise ConfigurationError(
                    f"chaos rate {short} must be in [0, 1], got {rate!r}"
                )
            object.__setattr__(self, name, float(rate))
        if self.slow_unit_seconds < 0:
            raise ConfigurationError(
                f"slow_unit_seconds must be >= 0, got {self.slow_unit_seconds}"
            )
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(
            self, "fail_tags", tuple(str(tag) for tag in self.fail_tags)
        )

    @property
    def active(self) -> bool:
        """True when any fault kind can fire (rate > 0 or poison tags)."""
        return bool(self.fail_tags) or any(
            getattr(self, name) > 0.0 for name in _RATE_FIELDS.values()
        )

    def rate(self, kind: str) -> float:
        """The configured probability for one fault ``kind``."""
        try:
            return getattr(self, _RATE_FIELDS[kind])
        except KeyError:
            raise ConfigurationError(
                f"unknown chaos kind {kind!r}; expected one of "
                f"{', '.join(CHAOS_KINDS)}"
            ) from None

    def decide(self, kind: str, key: str, attempt: int) -> bool:
        """Does fault ``kind`` fire at ``(key, attempt)``?  Pure function.

        The verdict compares one keyed-Philox uniform draw —
        ``site_rng(seed, "chaos", kind, key, attempt)`` — against the
        kind's rate, so any process (pool worker, distributed worker,
        coordinator, a rerun next week) reaches the same answer, and a
        *retried* attempt of the same unit draws independently: bounded
        retry drains injected faults deterministically.
        """
        rate = self.rate(kind)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        draw = site_rng(self.seed, "chaos", kind, key, int(attempt)).random()
        return bool(draw < rate)

    def to_dict(self) -> dict:
        """JSON-serializable form (CLI round-trip, payload transport)."""
        doc = {f.name: getattr(self, f.name) for f in fields(self)}
        doc["fail_tags"] = list(self.fail_tags)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "ChaosSpec":
        """Inverse of :meth:`to_dict`; unknown fields are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ConfigurationError(
                f"unknown ChaosSpec field(s) {sorted(unknown)}; expected a "
                f"subset of {sorted(known)}"
            )
        return cls(**doc)

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Parse a CLI ``--chaos`` spec string.

        Accepts either a JSON object (``'{"seed": 7, "unit_error_rate":
        0.2}'``) or compact comma-separated ``key=value`` pairs using
        the short kind names (``"seed=7,unit_error=0.2,torn_write=0.1,
        fail_tags=poison|bad"``, tags ``|``-separated).  Raises
        :class:`~repro.errors.ConfigurationError` on anything else, so
        the CLI surfaces a typed configuration failure (exit code
        contract) rather than a stack trace.
        """
        text = text.strip()
        if not text:
            raise ConfigurationError("--chaos spec must not be empty")
        if text.startswith("{"):
            try:
                doc = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"--chaos JSON spec is invalid: {exc}"
                ) from exc
            if not isinstance(doc, dict):
                raise ConfigurationError(
                    f"--chaos JSON spec must be an object, got {type(doc).__name__}"
                )
            return cls.from_dict(doc)
        doc = {}
        for pair in text.split(","):
            pair = pair.strip()
            if not pair:
                continue
            if "=" not in pair:
                raise ConfigurationError(
                    f"--chaos pair {pair!r} is not key=value (spec: "
                    f"{text!r})"
                )
            name, value = (part.strip() for part in pair.split("=", 1))
            if name in _RATE_FIELDS:
                doc[_RATE_FIELDS[name]] = _parse_float(name, value)
            elif name in ("slow_unit_seconds",):
                doc[name] = _parse_float(name, value)
            elif name == "seed":
                try:
                    doc["seed"] = int(value)
                except ValueError:
                    raise ConfigurationError(
                        f"--chaos seed must be an integer, got {value!r}"
                    ) from None
            elif name == "fail_tags":
                doc["fail_tags"] = tuple(
                    tag for tag in value.split("|") if tag
                )
            else:
                raise ConfigurationError(
                    f"unknown --chaos key {name!r}; expected seed, "
                    f"slow_unit_seconds, fail_tags or a rate among "
                    f"{', '.join(_RATE_FIELDS)}"
                )
        return cls(**doc)

    def describe(self) -> str:
        """Compact human-readable summary (logs, CI reports)."""
        parts = [f"seed={self.seed}"]
        for short, name in _RATE_FIELDS.items():
            rate = getattr(self, name)
            if rate > 0.0:
                parts.append(f"{short}={rate:g}")
        if self.slow_unit_rate > 0.0:
            parts.append(f"slow_unit_seconds={self.slow_unit_seconds:g}")
        if self.fail_tags:
            parts.append("fail_tags=" + "|".join(self.fail_tags))
        return ",".join(parts)


def _parse_float(name: str, value: str) -> float:
    """Parse one ``--chaos`` numeric value with a typed error."""
    try:
        return float(value)
    except ValueError:
        raise ConfigurationError(
            f"--chaos {name} must be a number, got {value!r}"
        ) from None


def apply_unit_chaos(
    chaos: "ChaosSpec | None",
    key: str,
    tag: str,
    attempt: int,
    allow_exit: bool = False,
) -> None:
    """Run the pre-evaluation chaos hooks for one unit attempt.

    Called by every executor immediately before evaluating a unit —
    the pool worker, the serial path and the distributed worker all
    share this one function, so a given ``(key, attempt)`` suffers the
    same injected fate wherever it is scheduled.  Order: slow-unit sleep
    first (so a slow *and* doomed unit exercises the deadline watchdog
    before dying), then poison tags, then the transient unit error, then
    the worker crash.

    ``allow_exit=True`` (distributed workers) realizes ``worker_crash``
    as a real ``os._exit(137)`` — the lease protocol's recovery path is
    the thing under test.  Pool and serial executors pass ``False`` and
    get an in-band :class:`~repro.errors.WorkerCrashError` instead (a
    ``multiprocessing.Pool`` cannot lose a process without losing the
    result queue it shares), which the engine's retry path re-runs
    exactly as a lease reclaim would.
    """
    if chaos is None or not chaos.active:
        return
    if chaos.decide("slow_unit", key, attempt):
        time.sleep(chaos.slow_unit_seconds)
    if tag and tag in chaos.fail_tags:
        raise ChaosError(
            f"chaos: poison tag {tag!r} (task {key}, attempt {attempt}) — "
            "fails every attempt by design"
        )
    if chaos.decide("unit_error", key, attempt):
        raise ChaosError(
            f"chaos: injected transient unit error (task {key}, attempt "
            f"{attempt})"
        )
    if chaos.decide("worker_crash", key, attempt):
        if allow_exit:
            # A real mid-unit death: no cleanup, no shard row, no
            # heartbeat — precisely what lease expiry must recover from.
            os._exit(CRASH_EXIT_STATUS)
        raise WorkerCrashError(
            f"chaos: simulated worker crash (task {key}, attempt {attempt})"
        )


def chaos_from_env(environ=None) -> "ChaosSpec | None":
    """Deprecated env-var chaos hooks, expressed as a :class:`ChaosSpec`.

    ``REPRO_WORKER_TASK_DELAY=S`` (every unit sleeps ``S`` seconds) maps
    to ``slow_unit_rate=1.0, slow_unit_seconds=S``;
    ``REPRO_WORKER_FAIL_TAGS=a,b`` maps to ``fail_tags=("a", "b")``.
    Returns ``None`` when neither variable is set.  Emits a
    :class:`DeprecationWarning` — pass ``CampaignEngine(chaos=...)`` or
    the CLI's ``--chaos`` instead — but keeps the variables working so
    existing harnesses (and mid-flight fleets) survive the migration.
    """
    environ = os.environ if environ is None else environ
    delay = float(environ.get(ENV_TASK_DELAY, "0") or 0.0)
    tags = tuple(
        tag for tag in environ.get(ENV_FAIL_TAGS, "").split(",") if tag
    )
    if delay <= 0.0 and not tags:
        return None
    warnings.warn(
        f"{ENV_TASK_DELAY}/{ENV_FAIL_TAGS} are deprecated chaos hooks; "
        "use CampaignEngine(chaos=ChaosSpec(...)) or the CLI --chaos "
        "flag instead",
        DeprecationWarning,
        stacklevel=2,
    )
    spec = ChaosSpec(fail_tags=tags)
    if delay > 0.0:
        spec = replace(spec, slow_unit_rate=1.0, slow_unit_seconds=delay)
    return spec
