"""JSON-lines checkpoint store for interruptible campaign batches.

The engine records every completed *subtask* — one (BER, seed) evaluation
under one protection plan — under its content-hash key
(:mod:`repro.runtime.hashing`).  Because entries live at subtask
granularity, a seed-batch task interrupted mid-way leaves its finished
seeds on disk and a resumed engine recomputes only the missing ones; a
seed-batch task and the equivalent per-seed point tasks share the same
entries.  The store is line-oriented so damage is *localized*: completed
subtasks append one self-contained JSON line each, a crash mid-write can
truncate at most the final line, and loading salvages every intact line
while reporting the damaged ones (see
:class:`repro.errors.CheckpointError`).  A resumed engine replays the
salvaged subtasks from disk and recomputes only the damaged entries.

File format (version 3)::

    {"version": 3}
    {"ber": 1e-06, "crc": 4023233417, "key": "<task-key>", "seed": 0, "accuracy": 0.81, "events": 42}
    {"ber": 1e-06, "crc": 2768625435, "key": "<task-key>", "seed": 0, "start": 0, "stop": 8, "correct": 7, "total": 8, "events": 3}
    ...

The second row shape is a **sample-slice** record
(:class:`~repro.faultsim.campaign.SampleSliceResult`, written by
sample-sharded engines): it carries correct/total counts for one window
of the evaluation set, distinguished by its ``correct`` field.  Slice
keys bind their window, so point and slice records never collide.

Record integrity (version 3)
----------------------------
Every record carries a ``crc`` field: the CRC32 of the row's canonical
JSON serialization *without* the ``crc`` key.  A line that parses as JSON
but fails its CRC — a bit flip on disk, a torn write whose prefix happens
to be valid JSON — is treated exactly like an unparseable line: dropped
at load with a warning, recomputed on resume, and reported by
:func:`fsck`.  Version-2 files (no CRC) still load; when a v2 row *does*
carry a ``crc`` it is verified.  Loaded v1/v2 stores are compacted to a
clean version-3 file on the first flush.

Durability
----------
Flushes append every pending record in **one** ``os.write`` on an
``O_APPEND`` descriptor followed by ``fsync``: a ``KeyboardInterrupt`` or
SIGTERM lands either before the syscall (nothing written) or after it
(whole lines written) — the same process can never append after its own
half-written line.  A short write or an ``OSError`` (``ENOSPC``) rolls
the file back to its pre-write size and raises
:class:`~repro.errors.CheckpointWriteError` with every pending record
retained in memory, so the flush can be retried with backoff; the engine
degrades to checkpoint-less completion (with a loud warning) when the
retry budget is spent.

A key appearing on several lines (e.g. a ``resume=False`` recompute) is
resolved last-line-wins.  Keys already encode model + campaign +
protection + point content, so one checkpoint file safely accumulates
tasks from many figures and models without collisions.

``fsck`` / :meth:`CampaignCheckpoint.merge_shards` are the offline
integrity tools: fsck verifies (and with ``repair=True`` rewrites) a
store or a whole shard directory, quarantining damaged raw lines into a
``*.quarantined`` sidecar and naming every dropped key; merge_shards
folds per-worker shards into one store by content key.
"""

from __future__ import annotations

import json
import os
import re
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CheckpointError, CheckpointWriteError
from repro.faultsim.campaign import SampleSliceResult, SeedPointResult

__all__ = [
    "CampaignCheckpoint",
    "FsckFileReport",
    "FsckReport",
    "encode_record",
    "fsck",
    "record_crc",
]

_VERSION = 3
_V2_VERSION = 2
_LEGACY_VERSION = 1

#: Either stored record shape.
_Result = SeedPointResult | SampleSliceResult

#: Damage classifications reported per line by the scanner / fsck.
DAMAGE_JSON = "json"          # not parseable as a JSON object
DAMAGE_FIELDS = "fields"      # JSON but not a well-formed record row
DAMAGE_CRC = "crc"            # CRC32 mismatch (bit flip / torn-but-valid)
DAMAGE_MISSING_CRC = "missing-crc"  # v3 row without its required crc

#: Fallback key extraction from a damaged (unparseable) line, so fsck can
#: still *name* the record a torn write destroyed.
_KEY_RE = re.compile(r'"key":\s*"([^"\\]+)"')


def _canonical(row: dict) -> str:
    """The canonical serialization CRCs are computed over."""
    return json.dumps(row, sort_keys=True, separators=(",", ": "))


def record_crc(row: dict) -> int:
    """CRC32 of a record row's canonical JSON, excluding its ``crc`` field.

    Pure function of the row's content: Python's ``repr``-based float
    serialization round-trips exactly, so a row parsed back from disk
    re-serializes to the same bytes and verification needs no copy of the
    original line.
    """
    body = {k: v for k, v in row.items() if k != "crc"}
    return zlib.crc32(_canonical(body).encode("utf-8")) & 0xFFFFFFFF


def encode_record(key: str, result: _Result) -> str:
    """One version-3 checkpoint line (CRC included, newline-terminated)."""
    row = {"key": key, **result.to_dict()}
    row["crc"] = record_crc(row)
    return _canonical(row) + "\n"


def _row_result(row: dict) -> _Result:
    """Decode one checkpoint row into its result type."""
    if "correct" in row:
        return SampleSliceResult.from_dict(row)
    return SeedPointResult.from_dict(row)


def _scan_line(line: str, require_crc: bool):
    """Classify one data line: ``(key_or_None, result_or_None, damage)``.

    ``damage`` is ``None`` for an intact record, else one of the
    ``DAMAGE_*`` reasons; the key is still reported for damaged lines
    whenever it can be extracted (JSON parse, or the regex fallback for
    torn lines), so integrity reports can *name* what was lost.
    """
    try:
        row = json.loads(line)
    except json.JSONDecodeError:
        match = _KEY_RE.search(line)
        return (match.group(1) if match else None), None, DAMAGE_JSON
    if not isinstance(row, dict) or "key" not in row:
        return None, None, DAMAGE_FIELDS
    key = row["key"]
    if not isinstance(key, str):
        return None, None, DAMAGE_FIELDS
    if "crc" in row:
        try:
            stored = int(row["crc"])
        except (TypeError, ValueError):
            return key, None, DAMAGE_CRC
        if stored != record_crc(row):
            return key, None, DAMAGE_CRC
    elif require_crc:
        return key, None, DAMAGE_MISSING_CRC
    try:
        return key, _row_result(row), None
    except (KeyError, TypeError, ValueError):
        return key, None, DAMAGE_FIELDS


def _parse_file(
    path: Path, text: str
) -> tuple[dict[str, _Result], list[int], bool]:
    """Parse checkpoint ``text`` into (points, damaged line numbers, legacy).

    Raises :class:`CheckpointError` when the file is unrecoverable (no
    readable header and not a legacy document); individual damaged point
    lines — unparseable, malformed, or failing their CRC — are tolerated
    and reported by number.  ``legacy`` is True when the file needs a
    compacting rewrite on the next flush: the version-1 single-document
    format, a version-2 (pre-CRC) file, or an empty file without a
    header.
    """
    if not text.strip():
        # A zero-byte (or whitespace-only) file — e.g. `touch`-created, or
        # a crash before the header write — is a fresh store, not a broken
        # one.  The legacy flag forces the next flush to compact and write
        # a clean v3 header (appending to a headerless file would corrupt
        # it).
        return {}, [], True
    lines = text.splitlines()
    header = None
    if lines:
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = None
    if isinstance(header, dict) and "version" in header:
        version = header["version"]
        if version not in (_VERSION, _V2_VERSION):
            raise CheckpointError(
                f"checkpoint {path} has unsupported version {version!r}"
            )
        points: dict[str, _Result] = {}
        damaged: list[int] = []
        require_crc = version == _VERSION
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            key, result, damage = _scan_line(line, require_crc)
            if damage is None:
                points[key] = result
            else:
                damaged.append(lineno)
        return points, damaged, version != _VERSION
    # No versioned header: either a legacy version-1 document or garbage.
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} has no readable header and is not valid JSON "
            f"({exc}); repair it or delete it to start fresh"
        ) from exc
    if not isinstance(doc, dict) or doc.get("version") != _LEGACY_VERSION:
        version = doc.get("version") if isinstance(doc, dict) else None
        raise CheckpointError(
            f"checkpoint {path} has unsupported version {version!r}"
        )
    points = {
        key: _row_result(row) for key, row in doc.get("points", {}).items()
    }
    return points, [], True


class CampaignCheckpoint:
    """Append-mostly map of task-key -> completed result on disk.

    Values are :class:`SeedPointResult` (point subtasks) or
    :class:`SampleSliceResult` (sample-slice subtasks); keys distinguish
    the shapes, so one file safely holds both.

    An existing file is always loaded and merged into, never truncated:
    whether cached tasks are *served* back to a batch is the engine's
    ``resume`` policy, but completed work is never discarded (recomputed
    tasks simply overwrite their own keys).

    Parameters
    ----------
    path:
        Checkpoint file location.
    flush_every:
        Puts between flushes (1 = flush every completed task).
    strict:
        When True, damaged point lines raise :class:`CheckpointError` at
        load instead of being salvaged around.  The default (False) warns,
        records the damaged line numbers in :attr:`damaged_lines`, and
        lets a resumed engine recompute exactly those entries.
    chaos:
        Optional :class:`repro.runtime.ChaosSpec` whose ``enospc`` and
        ``torn_write`` rates inject *recoverable* flush failures (a
        simulated full disk, a simulated short write — both rolled back
        and surfaced as :class:`~repro.errors.CheckpointWriteError` with
        the pending records retained), exercising the engine's flush
        retry/degrade path.  ``None`` (production) injects nothing.
    """

    def __init__(
        self,
        path: str | Path,
        flush_every: int = 1,
        strict: bool = False,
        chaos=None,
    ):
        self.path = Path(path)
        self.flush_every = max(1, int(flush_every))
        self.strict = strict
        self.chaos = chaos if chaos is not None and chaos.active else None
        self._points: dict[str, _Result] = {}
        #: Keys put since the last flush, in completion order.
        self._pending: list[str] = []
        #: Keys whose current result this process knows to be on disk.
        self._persisted: set[str] = set()
        self._dirty = 0
        #: Full rewrite needed (legacy format or damaged lines on disk).
        self._rewrite = False
        #: Chaos keying: failed flush attempts since the last success.
        self._flush_attempt = 1
        #: Line numbers dropped during load (empty for a healthy file).
        self.damaged_lines: list[int] = []
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        text = self.path.read_text(encoding="utf-8")
        points, damaged, legacy = _parse_file(self.path, text)
        if damaged:
            if self.strict:
                raise CheckpointError(
                    f"checkpoint {self.path} has {len(damaged)} damaged "
                    f"line(s) {damaged}; load with strict=False to salvage "
                    "the intact entries and recompute the damaged ones"
                )
            warnings.warn(
                f"checkpoint {self.path}: salvaged {len(points)} entries, "
                f"dropped {len(damaged)} damaged line(s) {damaged}; the "
                "dropped entries will be recomputed",
                RuntimeWarning,
                stacklevel=3,
            )
        self._points = points
        self._persisted = set(points)
        self.damaged_lines = damaged
        # Legacy documents (v1/v2) and damaged files are compacted to
        # clean version-3 on the next flush rather than appended to.
        self._rewrite = bool(damaged) or legacy

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, key: str) -> bool:
        return key in self._points

    def get(self, key: str) -> _Result | None:
        """Completed result for ``key``, or None if not checkpointed."""
        return self._points.get(key)

    def items(self):
        """Iterate ``(key, result)`` over every loaded entry (last-wins)."""
        return self._points.items()

    @property
    def pending_records(self) -> int:
        """Records put but not yet persisted (nonzero after a failed flush)."""
        return len(self._pending)

    @classmethod
    def merge_shards(
        cls,
        target: str | Path,
        shards,
        strict: bool = False,
    ) -> "CampaignCheckpoint":
        """Fold per-worker checkpoint shards into one store at ``target``.

        Every shard is an ordinary checkpoint file (the distributed
        backend's workers each append to their own), so merging is pure
        content-key dedupe: rows duplicated across shards — a reclaimed
        lease recomputed bit-identically by a second worker — collapse to
        one entry, and any partition of rows into shards, read in any
        order, loads identically to the single-file checkpoint the pool
        backend would have written.  Corrupt-line salvage applies per
        shard exactly as for a single file, CRC verification included —
        a torn trailing line left by a worker killed mid-append is
        dropped here and the intact recomputed copy from the reclaiming
        worker's shard wins (``strict=True`` raises instead); shard paths
        that do not exist are skipped — a spawned worker that never
        claimed a task writes no shard.  An existing ``target`` is merged
        into, never truncated.  The merged store is flushed and returned.
        """
        merged = cls(target, flush_every=1_000_000_000, strict=strict)
        for path in shards:
            path = Path(path)
            if not path.exists():
                continue
            shard = cls(path, strict=strict)
            for key, result in shard.items():
                merged.put(key, result)
        merged.flush()
        return merged

    def put(self, key: str, result: _Result) -> None:
        """Record a completed task; flushes every ``flush_every`` puts.

        Re-putting a key whose identical result is already persisted (or
        already queued for the next flush) is a no-op: kill/resume loops
        and adaptive re-submission would otherwise append a duplicate
        line per pass and grow the store without bound.  A *different*
        result for an existing key (a ``resume=False`` recompute) is
        still appended and resolves last-line-wins.

        May raise :class:`~repro.errors.CheckpointWriteError` when the
        triggered flush fails; the record itself is never lost — it
        stays pending in memory and rides the next flush attempt.
        """
        if self._points.get(key) == result and (
            key in self._persisted or key in self._pending
        ):
            return
        self._points[key] = result
        self._pending.append(key)
        self._dirty += 1
        if self._dirty >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Persist the state: append new lines, or compact when needed.

        The fast path appends one line per task completed since the last
        flush — all of them in a single ``os.write`` + ``fsync`` on an
        ``O_APPEND`` descriptor, so an interrupt can never leave this
        process's own half-written line behind, and appends from
        concurrent writers merge trivially, every line being
        self-contained.  A failed append (``ENOSPC``, short write, or an
        injected chaos fault) rolls the file back to its pre-write size
        and raises :class:`~repro.errors.CheckpointWriteError` with every
        pending record retained for a later retry.  A full rewrite (temp
        file + atomic rename) happens only when the on-disk file needs
        compaction (legacy format or damaged lines); the disk file is
        re-read and merged under our points immediately before the
        rename, so compaction keeps all work persisted up to that point,
        but a concurrent append landing inside the re-read/rename window
        of a compaction can still be lost.  Healthy version-3 files never
        compact, so steady-state concurrent use is append-only and safe.
        """
        if self._dirty == 0:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists() and not self._rewrite:
            self._append_atomic()
        else:
            self._write_full()

    def compact(self) -> None:
        """Rewrite the file keeping exactly one (last-wins) row per key.

        Opt-in maintenance for stores grown by long kill/resume loops or
        pre-dedupe writers: the append-only fast path never rewrites, so
        historical duplicate rows survive until someone asks.  Uses the
        same merge + temp-file + atomic-rename path as damage compaction
        (on-disk entries unknown to this process are preserved), and
        clears :attr:`damaged_lines` — a damaged line has no row to keep.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._write_full()
        self.damaged_lines = []

    def _append_atomic(self) -> None:
        """Append all pending lines in one write; roll back on any failure."""
        decision_key = self._pending[0] if self._pending else ""
        if self.chaos is not None and self.chaos.decide(
            "enospc", decision_key, self._flush_attempt
        ):
            self._flush_attempt += 1
            raise CheckpointWriteError(
                f"checkpoint {self.path}: chaos-injected ENOSPC on flush; "
                f"{len(self._pending)} pending record(s) retained in memory"
            )
        data = "".join(self._line(key) for key in self._pending).encode("utf-8")
        torn = self.chaos is not None and self.chaos.decide(
            "torn_write", decision_key, self._flush_attempt
        )
        fd = os.open(str(self.path), os.O_WRONLY | os.O_APPEND)
        try:
            offset = os.fstat(fd).st_size
            try:
                if torn:
                    # Simulated torn write: persist only a prefix, then
                    # take the short-write recovery path below.
                    written = os.write(fd, data[: max(1, len(data) // 2)])
                else:
                    written = os.write(fd, data)
            except OSError as exc:
                self._rollback(fd, offset)
                self._flush_attempt += 1
                raise CheckpointWriteError(
                    f"checkpoint {self.path}: append failed ({exc}); "
                    f"{len(self._pending)} pending record(s) retained in "
                    "memory for a retried flush"
                ) from exc
            if torn or written != len(data):
                self._rollback(fd, offset)
                self._flush_attempt += 1
                raise CheckpointWriteError(
                    f"checkpoint {self.path}: short write ({written} of "
                    f"{len(data)} bytes — disk full?); rolled back, "
                    f"{len(self._pending)} pending record(s) retained in "
                    "memory for a retried flush"
                )
            os.fsync(fd)
        finally:
            os.close(fd)
        self._persisted.update(self._pending)
        self._pending.clear()
        self._dirty = 0
        self._flush_attempt = 1

    def _rollback(self, fd: int, offset: int) -> None:
        """Truncate a failed append back to the pre-write size.

        When even the truncate fails (a genuinely sick filesystem) the
        store falls back to demanding a compacting rewrite — the atomic
        temp-file + rename path — which eliminates any torn bytes the
        append left behind.
        """
        try:
            os.ftruncate(fd, offset)
        except OSError:
            self._rewrite = True

    def _write_full(self) -> None:
        """Merge-under, then atomically rewrite one sorted row per key."""
        if self.path.exists():
            try:
                disk, _, _ = _parse_file(
                    self.path, self.path.read_text(encoding="utf-8")
                )
            except CheckpointError:
                disk = {}
            for key, result in disk.items():
                self._points.setdefault(key, result)
        tmp = self.path.with_suffix(f"{self.path.suffix}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"version": _VERSION}) + "\n")
            for key in sorted(self._points):
                handle.write(self._line(key))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._rewrite = False
        self._persisted = set(self._points)
        self._pending.clear()
        self._dirty = 0
        self._flush_attempt = 1

    def _line(self, key: str) -> str:
        return encode_record(key, self._points[key])


@dataclass
class FsckFileReport:
    """Integrity findings for one checkpoint file.

    ``version`` is ``None`` when the file is not recognizably a
    checkpoint (no readable header, not a legacy document) — such files
    are reported but never repaired, so pointing fsck at the wrong
    directory cannot destroy anything.  ``damaged`` holds one entry per
    bad line: ``{"line": n, "key": key-or-None, "reason": DAMAGE_*}``.
    ``duplicates`` counts extra same-key lines collapsed last-line-wins.
    """

    path: str
    version: int | None
    records: int = 0
    lines: int = 0
    damaged: list[dict] = field(default_factory=list)
    duplicates: int = 0
    repaired: bool = False

    def to_dict(self) -> dict:
        """JSON-serializable form (the CLI's ``--json`` / CI artifact)."""
        return {
            "path": self.path,
            "version": self.version,
            "records": self.records,
            "lines": self.lines,
            "damaged": list(self.damaged),
            "duplicates": self.duplicates,
            "repaired": self.repaired,
        }


@dataclass
class FsckReport:
    """Aggregate integrity findings for a store or shard set.

    ``dropped_keys`` names every key that appeared *only* on damaged
    lines — the records actually lost (an engine resume recomputes
    exactly these); a damaged line whose key also has an intact copy
    anywhere in the set (a duplicated shard row) loses nothing.
    ``unrecoverable`` additionally counts damaged lines whose key could
    not even be extracted.  A verified-clean (or freshly repaired) store
    reports ``unrecoverable == 0``.
    """

    files: list[FsckFileReport] = field(default_factory=list)
    intact_records: int = 0
    damaged_lines: int = 0
    dropped_keys: list[str] = field(default_factory=list)
    unrecoverable: int = 0
    repaired: bool = False

    def to_dict(self) -> dict:
        """JSON-serializable form (the CLI's ``--json`` / CI artifact)."""
        return {
            "files": [f.to_dict() for f in self.files],
            "intact_records": self.intact_records,
            "damaged_lines": self.damaged_lines,
            "dropped_keys": list(self.dropped_keys),
            "unrecoverable": self.unrecoverable,
            "repaired": self.repaired,
        }

    @property
    def clean(self) -> bool:
        """True when every scanned line verified intact (nothing dropped)."""
        return self.damaged_lines == 0


def _fsck_scan(path: Path) -> tuple[FsckFileReport, dict[str, _Result], list[str]]:
    """Scan one file: its report, intact records, and damaged raw lines."""
    text = path.read_text(encoding="utf-8")
    report = FsckFileReport(path=str(path), version=None)
    intact: dict[str, _Result] = {}
    bad_lines: list[str] = []
    if not text.strip():
        report.version = _VERSION
        return report, intact, bad_lines
    lines = text.splitlines()
    header = None
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        header = None
    if isinstance(header, dict) and header.get("version") in (
        _VERSION,
        _V2_VERSION,
    ):
        version = header["version"]
        report.version = version
        require_crc = version == _VERSION
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            report.lines += 1
            key, result, damage = _scan_line(line, require_crc)
            if damage is None:
                if key in intact:
                    report.duplicates += 1
                intact[key] = result
            else:
                report.damaged.append(
                    {"line": lineno, "key": key, "reason": damage}
                )
                bad_lines.append(line)
        report.records = len(intact)
        return report, intact, bad_lines
    # Legacy v1 document, or not a checkpoint at all.
    try:
        points, _, _ = _parse_file(path, text)
    except CheckpointError:
        return report, intact, bad_lines  # version=None: not a checkpoint
    report.version = _LEGACY_VERSION
    report.lines = len(points)
    report.records = len(points)
    intact.update(points)
    return report, intact, bad_lines


def _fsck_repair(path: Path, intact: dict[str, _Result], bad_lines) -> None:
    """Rewrite one file as clean v3; quarantine damaged raw lines aside.

    The damaged lines are appended to ``<path>.quarantined`` before the
    rewrite so repair never silently destroys bytes — a human (or a
    smarter future salvager) can still inspect what was dropped.  The
    rewrite itself is the standard temp-file + fsync + atomic-rename.
    """
    if bad_lines:
        quarantine = path.with_name(path.name + ".quarantined")
        with open(quarantine, "a", encoding="utf-8") as handle:
            for line in bad_lines:
                handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
    tmp = path.with_suffix(f"{path.suffix}.{os.getpid()}.fsck.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"version": _VERSION}) + "\n")
        for key in sorted(intact):
            handle.write(encode_record(key, intact[key]))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _fsck_targets(path: Path) -> list[Path]:
    """The checkpoint files one fsck invocation covers.

    A file is checked alone; a directory is walked for ``*.jsonl`` shard
    files and ``*.json`` stores (the engine's default checkpoint and the
    distributed backend's ``merged.json`` both use ``.json``) — anything
    that turns out not to be a checkpoint is reported unreadable and left
    untouched.
    """
    if path.is_file():
        return [path]
    if path.is_dir():
        found = sorted(
            p
            for pattern in ("*.jsonl", "*.json")
            for p in path.rglob(pattern)
            if p.is_file() and not p.name.endswith(".quarantined")
        )
        return found
    raise CheckpointError(f"fsck target {path} does not exist")


def fsck(path: str | Path, repair: bool = False) -> FsckReport:
    """Verify — and optionally repair — a checkpoint store or shard set.

    Scans every record line of ``path`` (a single store, or a directory
    of shards/stores): JSON validity, record shape, and the version-3
    CRC32 (required for v3 rows, verified-when-present for v2).  With
    ``repair=True`` every damaged or legacy file is compacted to a clean
    version-3 store — damaged raw lines are quarantined into a
    ``*.quarantined`` sidecar first, never silently destroyed — so a
    subsequent fsck reports the store clean.  The returned
    :class:`FsckReport` carries per-file findings plus the aggregate
    salvage statistics: intact records, damaged lines, and the *names*
    of every dropped key (damaged lines whose record survives intact
    elsewhere in the set drop nothing).
    """
    path = Path(path)
    report = FsckReport()
    all_intact: set[str] = set()
    damaged_keys: list[tuple[str | None, str]] = []  # (key or None, file)
    for target in _fsck_targets(path):
        file_report, intact, bad_lines = _fsck_scan(target)
        report.files.append(file_report)
        report.intact_records += file_report.records
        report.damaged_lines += len(file_report.damaged)
        all_intact.update(intact)
        for entry in file_report.damaged:
            damaged_keys.append((entry["key"], str(target)))
        needs_repair = file_report.version is not None and (
            file_report.damaged
            or file_report.duplicates
            or file_report.version != _VERSION
        )
        if repair and needs_repair:
            _fsck_repair(target, intact, bad_lines)
            file_report.repaired = True
            report.repaired = True
    dropped = sorted(
        {key for key, _ in damaged_keys if key is not None and key not in all_intact}
    )
    report.dropped_keys = dropped
    report.unrecoverable = len(dropped) + sum(
        1 for key, _ in damaged_keys if key is None
    )
    return report
