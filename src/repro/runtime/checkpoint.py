"""JSON checkpoint store for interruptible campaign sweeps.

The engine records every completed (BER, seed) unit under its content-hash
key (:mod:`repro.runtime.hashing`).  A sweep that dies mid-flight leaves a
valid checkpoint behind — writes go to a temp file and are atomically
renamed into place — and a resumed engine replays the completed units from
disk instead of recomputing them.

File format (version 1)::

    {
      "version": 1,
      "points": {
        "<point-key>": {"ber": 1e-6, "seed": 0, "accuracy": 0.81, "events": 42},
        ...
      }
    }

Keys already encode model + campaign + point content, so one checkpoint
file can safely accumulate points from many sweeps (e.g. standard and
Winograd curves of several figures) without collisions.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ConfigurationError
from repro.faultsim.campaign import SeedPointResult

__all__ = ["CampaignCheckpoint"]

_VERSION = 1


class CampaignCheckpoint:
    """Append-mostly map of point-key -> :class:`SeedPointResult` on disk.

    An existing file is always loaded and merged into, never truncated:
    whether cached points are *served* back to a sweep is the engine's
    ``resume`` policy, but completed work is never discarded (recomputed
    units simply overwrite their own keys).
    """

    def __init__(self, path: str | Path, flush_every: int = 1):
        self.path = Path(path)
        self.flush_every = max(1, int(flush_every))
        self._points: dict[str, SeedPointResult] = {}
        self._dirty = 0
        if self.path.exists():
            self._points = self._load()

    def _load(self) -> dict[str, SeedPointResult]:
        with open(self.path, encoding="utf-8") as handle:
            try:
                doc = json.load(handle)
            except json.JSONDecodeError as exc:
                # Atomic writes mean this only happens to hand-edited files;
                # refuse loudly rather than silently discarding the points.
                raise ConfigurationError(
                    f"checkpoint {self.path} is not valid JSON ({exc}); "
                    "repair it or delete it to start fresh"
                ) from exc
        if doc.get("version") != _VERSION:
            raise ConfigurationError(
                f"checkpoint {self.path} has unsupported version {doc.get('version')!r}"
            )
        return {
            key: SeedPointResult.from_dict(row)
            for key, row in doc.get("points", {}).items()
        }

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, key: str) -> bool:
        return key in self._points

    def get(self, key: str) -> SeedPointResult | None:
        """Completed result for ``key``, or None if not checkpointed."""
        return self._points.get(key)

    def put(self, key: str, result: SeedPointResult) -> None:
        """Record a completed unit; flushes every ``flush_every`` puts."""
        self._points[key] = result
        self._dirty += 1
        if self._dirty >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Atomically persist the current state (temp file + rename).

        A no-op when nothing changed since the last flush.  Before writing,
        the on-disk file is re-read and merged under our points, so two
        processes sharing one checkpoint cannot erase each other's work
        (per-key last-writer-wins remains, but keys are content hashes of
        deterministic computations — both writers hold the same value).
        """
        if self._dirty == 0:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            for key, result in self._load().items():
                self._points.setdefault(key, result)
        doc = {
            "version": _VERSION,
            "points": {key: r.to_dict() for key, r in sorted(self._points.items())},
        }
        tmp = self.path.with_suffix(f"{self.path.suffix}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)
        self._dirty = 0
