"""JSON-lines checkpoint store for interruptible campaign batches.

The engine records every completed *subtask* — one (BER, seed) evaluation
under one protection plan — under its content-hash key
(:mod:`repro.runtime.hashing`).  Because entries live at subtask
granularity, a seed-batch task interrupted mid-way leaves its finished
seeds on disk and a resumed engine recomputes only the missing ones; a
seed-batch task and the equivalent per-seed point tasks share the same
entries.  The store is line-oriented so damage is *localized*: completed
subtasks append one self-contained JSON line each, a crash mid-write can
truncate at most the final line, and loading salvages every intact line
while reporting the damaged ones (see
:class:`repro.errors.CheckpointError`).  A resumed engine replays the
salvaged subtasks from disk and recomputes only the damaged entries.

File format (version 2)::

    {"version": 2}
    {"key": "<task-key>", "ber": 1e-06, "seed": 0, "accuracy": 0.81, "events": 42}
    {"key": "<task-key>", "ber": 1e-06, "seed": 0, "start": 0, "stop": 8, "correct": 7, "total": 8, "events": 3}
    ...

The second row shape is a **sample-slice** record
(:class:`~repro.faultsim.campaign.SampleSliceResult`, written by
sample-sharded engines): it carries correct/total counts for one window
of the evaluation set, distinguished by its ``correct`` field.  Slice
keys bind their window, so point and slice records never collide.

A key appearing on several lines (e.g. a ``resume=False`` recompute) is
resolved last-line-wins.  Version-1 files (a single JSON document, written
by earlier releases) are still loaded and are upgraded to version 2 on the
first flush.  Keys already encode model + campaign + protection + point
content, so one checkpoint file safely accumulates tasks from many figures
and models without collisions.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

from repro.errors import CheckpointError
from repro.faultsim.campaign import SampleSliceResult, SeedPointResult

__all__ = ["CampaignCheckpoint"]

_VERSION = 2
_LEGACY_VERSION = 1

#: Either stored record shape.
_Result = SeedPointResult | SampleSliceResult


def _row_result(row: dict) -> _Result:
    """Decode one checkpoint row into its result type."""
    if "correct" in row:
        return SampleSliceResult.from_dict(row)
    return SeedPointResult.from_dict(row)


def _parse_file(
    path: Path, text: str
) -> tuple[dict[str, _Result], list[int], bool]:
    """Parse checkpoint ``text`` into (points, damaged line numbers, legacy).

    Raises :class:`CheckpointError` when the file is unrecoverable (no
    readable header and not a legacy document); individual damaged point
    lines are tolerated and reported by number.  ``legacy`` is True when
    the file used the version-1 single-document format — or was empty, so
    the next flush rewrites it with a proper v2 header.
    """
    if not text.strip():
        # A zero-byte (or whitespace-only) file — e.g. `touch`-created, or
        # a crash before the header write — is a fresh store, not a broken
        # one.  The legacy flag forces the next flush to compact and write
        # a clean v2 header (appending to a headerless file would corrupt
        # it).
        return {}, [], True
    lines = text.splitlines()
    header = None
    if lines:
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = None
    if isinstance(header, dict) and "version" in header:
        version = header["version"]
        if version != _VERSION:
            raise CheckpointError(
                f"checkpoint {path} has unsupported version {version!r}"
            )
        points: dict[str, _Result] = {}
        damaged: list[int] = []
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
                points[row["key"]] = _row_result(row)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                damaged.append(lineno)
        return points, damaged, False
    # No version-2 header: either a legacy version-1 document or garbage.
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} has no readable header and is not valid JSON "
            f"({exc}); repair it or delete it to start fresh"
        ) from exc
    if not isinstance(doc, dict) or doc.get("version") != _LEGACY_VERSION:
        version = doc.get("version") if isinstance(doc, dict) else None
        raise CheckpointError(
            f"checkpoint {path} has unsupported version {version!r}"
        )
    points = {
        key: _row_result(row) for key, row in doc.get("points", {}).items()
    }
    return points, [], True


class CampaignCheckpoint:
    """Append-mostly map of task-key -> completed result on disk.

    Values are :class:`SeedPointResult` (point subtasks) or
    :class:`SampleSliceResult` (sample-slice subtasks); keys distinguish
    the shapes, so one file safely holds both.

    An existing file is always loaded and merged into, never truncated:
    whether cached tasks are *served* back to a batch is the engine's
    ``resume`` policy, but completed work is never discarded (recomputed
    tasks simply overwrite their own keys).

    Parameters
    ----------
    path:
        Checkpoint file location.
    flush_every:
        Puts between flushes (1 = flush every completed task).
    strict:
        When True, damaged point lines raise :class:`CheckpointError` at
        load instead of being salvaged around.  The default (False) warns,
        records the damaged line numbers in :attr:`damaged_lines`, and
        lets a resumed engine recompute exactly those entries.
    """

    def __init__(self, path: str | Path, flush_every: int = 1, strict: bool = False):
        self.path = Path(path)
        self.flush_every = max(1, int(flush_every))
        self.strict = strict
        self._points: dict[str, _Result] = {}
        #: Keys put since the last flush, in completion order.
        self._pending: list[str] = []
        #: Keys whose current result this process knows to be on disk.
        self._persisted: set[str] = set()
        self._dirty = 0
        #: Full rewrite needed (legacy format or damaged lines on disk).
        self._rewrite = False
        #: Line numbers dropped during load (empty for a healthy file).
        self.damaged_lines: list[int] = []
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        text = self.path.read_text(encoding="utf-8")
        points, damaged, legacy = _parse_file(self.path, text)
        if damaged:
            if self.strict:
                raise CheckpointError(
                    f"checkpoint {self.path} has {len(damaged)} damaged "
                    f"line(s) {damaged}; load with strict=False to salvage "
                    "the intact entries and recompute the damaged ones"
                )
            warnings.warn(
                f"checkpoint {self.path}: salvaged {len(points)} entries, "
                f"dropped {len(damaged)} damaged line(s) {damaged}; the "
                "dropped entries will be recomputed",
                RuntimeWarning,
                stacklevel=3,
            )
        self._points = points
        self._persisted = set(points)
        self.damaged_lines = damaged
        # Legacy documents and damaged files are compacted to clean
        # version-2 on the next flush rather than appended to.
        self._rewrite = bool(damaged) or legacy

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, key: str) -> bool:
        return key in self._points

    def get(self, key: str) -> _Result | None:
        """Completed result for ``key``, or None if not checkpointed."""
        return self._points.get(key)

    def items(self):
        """Iterate ``(key, result)`` over every loaded entry (last-wins)."""
        return self._points.items()

    @classmethod
    def merge_shards(
        cls,
        target: str | Path,
        shards,
        strict: bool = False,
    ) -> "CampaignCheckpoint":
        """Fold per-worker checkpoint shards into one store at ``target``.

        Every shard is an ordinary checkpoint file (the distributed
        backend's workers each append to their own), so merging is pure
        content-key dedupe: rows duplicated across shards — a reclaimed
        lease recomputed bit-identically by a second worker — collapse to
        one entry, and any partition of rows into shards, read in any
        order, loads identically to the single-file checkpoint the pool
        backend would have written.  Corrupt-line salvage applies per
        shard exactly as for a single file (``strict=True`` raises
        instead); shard paths that do not exist are skipped — a spawned
        worker that never claimed a task writes no shard.  An existing
        ``target`` is merged into, never truncated.  The merged store is
        flushed and returned.
        """
        merged = cls(target, flush_every=1_000_000_000, strict=strict)
        for path in shards:
            path = Path(path)
            if not path.exists():
                continue
            shard = cls(path, strict=strict)
            for key, result in shard.items():
                merged.put(key, result)
        merged.flush()
        return merged

    def put(self, key: str, result: _Result) -> None:
        """Record a completed task; flushes every ``flush_every`` puts.

        Re-putting a key whose identical result is already persisted (or
        already queued for the next flush) is a no-op: kill/resume loops
        and adaptive re-submission would otherwise append a duplicate
        line per pass and grow the store without bound.  A *different*
        result for an existing key (a ``resume=False`` recompute) is
        still appended and resolves last-line-wins.
        """
        if self._points.get(key) == result and (
            key in self._persisted or key in self._pending
        ):
            return
        self._points[key] = result
        self._pending.append(key)
        self._dirty += 1
        if self._dirty >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Persist the state: append new lines, or compact when needed.

        The fast path appends one line per task completed since the last
        flush — O(new work), not O(file) — and appends from concurrent
        writers merge trivially, every line being self-contained.  A full
        rewrite (temp file + atomic rename) happens only when the on-disk
        file needs compaction (legacy format or damaged lines); the disk
        file is re-read and merged under our points immediately before the
        rename, so compaction keeps all work persisted up to that point,
        but a concurrent append landing inside the re-read/rename window
        of a compaction can still be lost.  Healthy version-2 files never
        compact, so steady-state concurrent use is append-only and safe.
        """
        if self._dirty == 0:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists() and not self._rewrite:
            with open(self.path, "a", encoding="utf-8") as handle:
                for key in self._pending:
                    handle.write(self._line(key))
            self._persisted.update(self._pending)
            self._pending.clear()
            self._dirty = 0
        else:
            self._write_full()

    def compact(self) -> None:
        """Rewrite the file keeping exactly one (last-wins) row per key.

        Opt-in maintenance for stores grown by long kill/resume loops or
        pre-dedupe writers: the append-only fast path never rewrites, so
        historical duplicate rows survive until someone asks.  Uses the
        same merge + temp-file + atomic-rename path as damage compaction
        (on-disk entries unknown to this process are preserved), and
        clears :attr:`damaged_lines` — a damaged line has no row to keep.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._write_full()
        self.damaged_lines = []

    def _write_full(self) -> None:
        """Merge-under, then atomically rewrite one sorted row per key."""
        if self.path.exists():
            try:
                disk, _, _ = _parse_file(
                    self.path, self.path.read_text(encoding="utf-8")
                )
            except CheckpointError:
                disk = {}
            for key, result in disk.items():
                self._points.setdefault(key, result)
        tmp = self.path.with_suffix(f"{self.path.suffix}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"version": _VERSION}) + "\n")
            for key in sorted(self._points):
                handle.write(self._line(key))
        os.replace(tmp, self.path)
        self._rewrite = False
        self._persisted = set(self._points)
        self._pending.clear()
        self._dirty = 0

    def _line(self, key: str) -> str:
        row = {"key": key, **self._points[key].to_dict()}
        return json.dumps(row, sort_keys=True, separators=(",", ": ")) + "\n"
