"""Distributed campaign backend: queue coordinator + pull-based workers.

This module is the second executor behind
:meth:`repro.runtime.CampaignEngine.evaluate_tasks` (selected with
``CampaignEngine(backend="distributed")`` / the CLI's ``--backend
distributed``).  Where the pool backend forks workers that inherit the
evaluation payload copy-on-write, the distributed backend materializes
one **batch directory** that any process able to see the filesystem can
serve::

    <queue_dir>/batch-*/
        payload.pkl     # pickled (model, data, config, unit table, replay flag)
        queue.sqlite    # WorkQueue: lease / heartbeat / retry / quarantine
        shards/<id>.jsonl   # per-worker checkpoint shards (append-only)
        merged.json     # shard merge (content-key dedupe), written at drain
        logs/worker-N.log

The division of labor is deliberate: the *queue* carries only task
identities (content-hash checkpoint keys) and tiny specs (an index into
the payload's unit table), the *payload* carries the megabytes exactly
once, and *results* flow back through per-worker checkpoint shards in the
ordinary JSON-lines checkpoint format — concatenation-mergeable because
every row is self-contained and content-keyed
(:meth:`repro.runtime.checkpoint.CampaignCheckpoint.merge_shards`).

Workers (:func:`run_worker`, CLI ``python -m repro.experiments.cli worker
--queue DIR``) are thin pull loops: claim a lease, heartbeat it from a
background thread, evaluate the unit with the unchanged campaign/replay
code (:func:`repro.runtime.engine._evaluate_unit` — the same function the
pool backend dispatches), append the result to the worker's own shard,
complete the lease.  A worker that dies mid-lease simply stops
heartbeating; the lease expires and another worker reclaims the task.
Because every unit is a pure function of its spec (counter-scheme RNG),
a reclaimed task recomputes to byte-identical results — double execution
is wasteful, never wrong.

The coordinator (:func:`run_distributed_batch`) spawns the requested
number of worker processes, streams results back by tailing the shards,
respawns dead workers while work remains (bounded by the retry budget),
fails fast with :class:`repro.errors.TaskExecutionError` when a task is
quarantined, and finishes by merging the shards into the batch's
``merged.json`` — the content-addressed result store the engine's own
checkpoint then absorbs.

Chaos testing routes through the deterministic chaos framework
(:mod:`repro.runtime.chaos`): the coordinator pickles the engine's
:class:`~repro.runtime.chaos.ChaosSpec` into the batch payload, and every
worker applies the same keyed decisions — slow units and injected unit
errors via :func:`~repro.runtime.chaos.apply_unit_chaos`, **real**
mid-lease ``os._exit`` worker crashes (lease expiry is the recovery path
under test), torn shard appends (a prefix of the record hits disk, then
the worker dies; CRC salvage drops the torn line and the reclaiming
worker's intact row wins), and silent lost heartbeats (the lease expires
under a live worker; content-addressed completion keeps double execution
harmless).  The legacy env hooks ``REPRO_WORKER_TASK_DELAY`` /
``REPRO_WORKER_FAIL_TAGS`` remain as deprecated aliases
(:func:`~repro.runtime.chaos.chaos_from_env`) consulted only when the
payload carries no spec.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.errors import (
    CheckpointError,
    ConfigurationError,
    TaskExecutionError,
    TaskQuarantinedError,
)
from repro.faultsim.model import RNG_COUNTER
from repro.faultsim.replay import build_golden_run
from repro.runtime.chaos import (
    CRASH_EXIT_STATUS,
    apply_unit_chaos,
    chaos_from_env,
)
from repro.runtime.checkpoint import (
    CampaignCheckpoint,
    _VERSION as _CHECKPOINT_VERSION,
    _row_result,
    encode_record,
)
from repro.runtime.queue import WorkQueue
from repro.runtime.retry import RetryPolicy

__all__ = [
    "load_payload",
    "prepare_batch",
    "run_distributed_batch",
    "run_worker",
    "shard_paths",
    "write_payload",
]

PAYLOAD_NAME = "payload.pkl"
SHARD_DIR = "shards"
MERGED_NAME = "merged.json"
_PAYLOAD_VERSION = 2


def write_payload(
    root, qmodel, x, labels, config, units, replay=False, chaos=None
) -> Path:
    """Write one batch's evaluation payload (atomic tmp + rename).

    The payload is everything a worker needs beyond the queue itself:
    the quantized model, the (untrimmed) evaluation arrays, the campaign
    config, the subtask-granularity unit table, whether to serve units
    through a locally built golden-run cache, and the coordinator's
    chaos spec (``None`` in production) — shipped in-band so every
    worker reaches identical keyed injection decisions.  Queue specs
    index into the unit table, mirroring the pool backend's
    dispatch-by-index.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    path = root / PAYLOAD_NAME
    blob = pickle.dumps(
        (
            _PAYLOAD_VERSION, qmodel, x, labels, config, list(units),
            bool(replay), chaos,
        ),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    tmp.write_bytes(blob)
    os.replace(tmp, path)
    return path


def load_payload(root, timeout: float = 30.0, poll: float = 0.1):
    """Load a batch payload, waiting briefly for the coordinator to write it.

    Returns ``(qmodel, x, labels, config, units, replay, chaos)``.
    Version-1 payloads (pre-chaos coordinators) still load, with
    ``chaos=None``.  The wait tolerates a worker started against a
    directory the coordinator is still preparing; after ``timeout``
    seconds a missing payload raises
    :class:`~repro.errors.ConfigurationError`.
    """
    path = Path(root) / PAYLOAD_NAME
    deadline = time.monotonic() + timeout
    while not path.exists():
        if time.monotonic() >= deadline:
            raise ConfigurationError(
                f"no batch payload at {path}; start workers against a "
                "queue directory prepared by the distributed backend"
            )
        time.sleep(poll)
    with open(path, "rb") as handle:
        blob = pickle.load(handle)
    version = blob[0]
    if version == 1:
        _, qmodel, x, labels, config, units, replay = blob
        chaos = None
    elif version == _PAYLOAD_VERSION:
        _, qmodel, x, labels, config, units, replay, chaos = blob
    else:
        raise ConfigurationError(
            f"batch payload {path} has unsupported version {version!r}"
        )
    return qmodel, x, labels, config, units, replay, chaos


def shard_paths(root) -> list[Path]:
    """The batch's per-worker checkpoint shard files, sorted by name."""
    shard_dir = Path(root) / SHARD_DIR
    if not shard_dir.exists():
        return []
    return sorted(shard_dir.glob("*.jsonl"))


def prepare_batch(
    root,
    qmodel,
    x,
    labels,
    config,
    units,
    keys,
    pending,
    replay=False,
    lease_timeout: float = 30.0,
    max_attempts: int = 3,
    chaos=None,
) -> WorkQueue:
    """Materialize one batch directory: payload + enqueued work.

    ``keys`` are the content-hash checkpoint keys of *all* units;
    ``pending`` the unit indices that actually need computing (the engine
    already served the rest from its checkpoint).  Duplicate keys within
    a batch — or keys left over from a previous batch in the same
    directory — enqueue once: work is deduped by content exactly like
    checkpoint rows.  ``chaos`` rides in the payload so workers inject
    deterministically (see :func:`write_payload`).
    """
    root = Path(root)
    write_payload(
        root, qmodel, x, labels, config, units, replay=replay, chaos=chaos
    )
    queue = WorkQueue(root, lease_timeout=lease_timeout, max_attempts=max_attempts)
    seen: dict[str, int] = {}
    for index in pending:
        seen.setdefault(keys[index], index)
    queue.enqueue(
        (key, {"index": index, "tag": units[index].tag})
        for key, index in seen.items()
    )
    return queue


def _golden_for_worker(qmodel, x, labels, config, units, replay):
    """Build this worker's golden-run cache when replay can serve the batch.

    Mirrors the engine's pool-side decision: replay helps when the
    counter RNG scheme makes faulty units cache-servable, or when the
    batch carries BER-0 units (pure lookups).  Each worker pays one
    clean forward — the price of not sharing the coordinator's address
    space — and every unit it claims is then served through the cache,
    bit-identically to a full forward.
    """
    if not replay or not units:
        return None
    usable = config.fault_config.rng_scheme == RNG_COUNTER or any(
        u.ber == 0.0 for u in units
    )
    if not usable:
        return None
    trim_x = x if config.max_samples is None else x[: config.max_samples]
    return build_golden_run(
        qmodel,
        trim_x,
        injector_kind=config.injector,
        fault_config=config.fault_config,
        batch_size=config.batch_size,
    )


class _Heartbeat:
    """Background lease extender for one claimed task.

    Beats every third of the lease timeout so a healthy worker's lease
    never expires mid-computation; a SIGKILLed worker stops beating and
    its lease lapses on schedule.  ``stop()`` is idempotent.
    """

    def __init__(self, queue: WorkQueue, key: str, owner: str):
        self._queue = queue
        self._key = key
        self._owner = owner
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        """Thread body: extend the lease until stopped or lost."""
        interval = self._queue.lease_timeout / 3.0
        while not self._stop.wait(interval):
            if not self._queue.heartbeat(self._key, self._owner):
                return  # lease lost (reclaimed); nothing left to extend
        return None

    def stop(self):
        """Stop beating and join the thread."""
        self._stop.set()
        self._thread.join()


def run_worker(
    root,
    worker_id: str | None = None,
    poll: float = 0.1,
    max_tasks: int | None = None,
) -> int:
    """Pull-based worker loop over one batch directory; returns tasks done.

    Claims leases from the batch queue until it is *settled* (every task
    done or quarantined), evaluating each unit with the unchanged
    campaign/replay code and appending the result to this worker's own
    checkpoint shard before completing the lease (result first, then
    completion: a crash between the two re-runs the task, it never loses
    a completed one).  A worker that finds nothing claimable while
    leases are still outstanding polls — it may yet inherit an expired
    lease; one that finds the queue settled exits.  Failures are
    reported to the queue (bounded retry, then quarantine) and never
    kill the worker loop.

    ``max_tasks`` bounds how many tasks this worker completes (tests);
    the module docstring describes the chaos-injection path.
    """
    root = Path(root)
    worker_id = worker_id or f"worker-{os.uname().nodename}-{os.getpid()}"
    qmodel, x, labels, config, units, replay, chaos = load_payload(root)
    if chaos is None:
        chaos = chaos_from_env()
    queue = WorkQueue(root)
    retry = RetryPolicy(max_attempts=queue.max_attempts)
    shard = CampaignCheckpoint(
        root / SHARD_DIR / f"{worker_id}.jsonl", flush_every=1
    )
    golden = _golden_for_worker(qmodel, x, labels, config, units, replay)

    from repro.runtime.engine import _evaluate_unit

    completed = 0
    while max_tasks is None or completed < max_tasks:
        lease = queue.claim(worker_id)
        if lease is None:
            if not queue.has_work():
                break
            time.sleep(poll)
            continue
        heartbeat = None
        if chaos is None or not chaos.decide(
            "lost_heartbeat", lease.key, lease.attempt
        ):
            heartbeat = _Heartbeat(queue, lease.key, worker_id)
        try:
            unit = units[lease.spec["index"]]
            if chaos is not None:
                apply_unit_chaos(
                    chaos, lease.key, unit.tag, lease.attempt, allow_exit=True
                )
            result = _evaluate_unit(qmodel, x, labels, config, unit, golden)
        except Exception as exc:  # report to the queue, keep serving
            if heartbeat is not None:
                heartbeat.stop()
            queue.fail(lease.key, worker_id, f"{type(exc).__name__}: {exc}")
            time.sleep(min(retry.backoff(lease.attempt, lease.key), poll * 10))
            continue
        if heartbeat is not None:
            heartbeat.stop()
        if chaos is not None and chaos.decide(
            "torn_write", lease.key, lease.attempt
        ):
            _tear_shard_and_die(shard.path, lease.key, result)
        shard.put(lease.key, result)
        shard.flush()
        queue.complete(lease.key, worker_id)
        completed += 1
    return completed


def _tear_shard_and_die(shard_path, key: str, result) -> None:
    """Chaos realization of a torn shard append: half a record, then death.

    Writes the shard's v3 header first when the file does not exist yet
    (real stores always receive their header atomically before any
    record), appends only a prefix of the encoded record, fsyncs so the
    torn line truly reaches disk, and kills the process with the
    standard crash status.  Recovery is the production path under test:
    the lease expires, another worker recomputes the unit, and the merge
    step's CRC salvage drops the torn line in favor of the intact row.
    """
    shard_path = Path(shard_path)
    shard_path.parent.mkdir(parents=True, exist_ok=True)
    data = encode_record(key, result).encode("utf-8")
    fd = os.open(
        str(shard_path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
    )
    try:
        if os.fstat(fd).st_size == 0:
            header = json.dumps({"version": _CHECKPOINT_VERSION}) + "\n"
            os.write(fd, header.encode("utf-8"))
        os.write(fd, data[: max(1, len(data) // 2)])
        os.fsync(fd)
    finally:
        os.close(fd)
    os._exit(CRASH_EXIT_STATUS)


class _ShardScanner:
    """Incremental tail over a batch's checkpoint shards.

    Tracks a byte offset per shard file and only parses complete lines
    (up to the last newline), so a row being appended concurrently is
    picked up whole on a later poll.  Damaged or foreign lines are
    skipped — the merge step at drain time is the authoritative read.
    """

    def __init__(self, shard_dir: Path):
        self.shard_dir = Path(shard_dir)
        self._offsets: dict[Path, int] = {}

    def poll(self) -> dict:
        """Newly completed ``key -> result`` rows since the last poll."""
        fresh = {}
        if not self.shard_dir.exists():
            return fresh
        for path in sorted(self.shard_dir.glob("*.jsonl")):
            offset = self._offsets.get(path, 0)
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if size <= offset:
                continue
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
            complete = chunk.rfind(b"\n") + 1
            if complete == 0:
                continue
            self._offsets[path] = offset + complete
            for line in chunk[:complete].splitlines():
                try:
                    row = json.loads(line)
                    key = row["key"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue  # header or damaged line; merge re-checks
                try:
                    fresh[key] = _row_result(row)
                except (KeyError, TypeError, ValueError):
                    continue
        return fresh


def _spawn_worker(root: Path, index: int, python: str | None = None):
    """Start one worker subprocess against ``root``; logs under ``logs/``.

    The child runs ``python -m repro.experiments.cli worker --queue ...``
    with the parent's environment plus the :mod:`repro` source tree
    prepended to ``PYTHONPATH`` (so spawning works from checkouts that
    were never installed).
    """
    import repro

    log_dir = root / "logs"
    log_dir.mkdir(parents=True, exist_ok=True)
    src_root = str(Path(repro.__file__).parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            f"{src_root}{os.pathsep}{existing}" if existing else src_root
        )
    cmd = [
        python or sys.executable,
        "-m",
        "repro.experiments.cli",
        "worker",
        "--queue",
        str(root),
    ]
    with open(log_dir / f"worker-{index}.log", "ab") as log:
        return subprocess.Popen(cmd, stdout=log, stderr=subprocess.STDOUT, env=env)


def _raise_quarantined(quarantined, key_tags: dict) -> None:
    """Surface quarantined tasks as a :class:`TaskQuarantinedError`.

    The error names the first failing task key and tag — the same
    identity the pool backend attaches — and carries every quarantined
    key in ``quarantined_keys``, so campaign drivers report retry
    exhaustion uniformly across backends.
    """
    key, attempts, error = quarantined[0]
    tag = key_tags.get(key, "")
    more = f" (+{len(quarantined) - 1} more)" if len(quarantined) > 1 else ""
    raise TaskQuarantinedError(
        f"distributed task {key} (tag {tag!r}) quarantined after "
        f"{attempts} attempt(s){more}: {error}",
        task_key=key,
        tag=tag,
        quarantined_keys=tuple(k for k, _, _ in quarantined),
    )


def run_distributed_batch(
    root,
    qmodel,
    x,
    labels,
    config,
    units,
    keys,
    pending,
    workers: int = 2,
    replay: bool = False,
    lease_timeout: float = 30.0,
    max_attempts: int = 3,
    poll: float = 0.1,
    spawn: bool = True,
    chaos=None,
):
    """Coordinate one distributed batch; yields ``(index, result, 0.0)``.

    Prepares the batch directory (:func:`prepare_batch`), spawns
    ``workers`` worker processes (``spawn=False`` leaves spawning to an
    external fleet — workers started by hand against the same
    directory), then streams results back by tailing the shard files.
    Dead workers are respawned while claimable work remains, bounded by
    the retry budget; a quarantined task raises
    :class:`~repro.errors.TaskExecutionError` naming its key and tag.
    When the queue settles, the shards are merged into the batch's
    ``merged.json`` (content-key dedupe) and any rows the tail missed
    are served from the merge — the merge is the authoritative read, the
    tail an optimization for live progress.

    Duplicate keys among ``pending`` (identical units submitted twice)
    are computed once and served to every requesting slot.

    ``chaos`` (a :class:`~repro.runtime.chaos.ChaosSpec` or ``None``)
    ships to workers in the payload; specs that can kill workers
    (``worker_crash_rate`` / ``torn_write_rate``) widen the respawn
    budget so deliberate crashes don't exhaust it before retried
    attempts draw clean.
    """
    root = Path(root)
    queue = prepare_batch(
        root, qmodel, x, labels, config, units, keys, pending,
        replay=replay, lease_timeout=lease_timeout, max_attempts=max_attempts,
        chaos=chaos,
    )
    key_slots: dict[str, list[int]] = {}
    for index in pending:
        key_slots.setdefault(keys[index], []).append(index)
    key_tags = {key: units[slots[0]].tag for key, slots in key_slots.items()}
    unserved = set(key_slots)
    scanner = _ShardScanner(root / SHARD_DIR)
    n_procs = max(1, min(int(workers), len(unserved))) if unserved else 0
    respawn_budget = n_procs * max(1, max_attempts - 1)
    if chaos is not None and (
        chaos.worker_crash_rate > 0.0 or chaos.torn_write_rate > 0.0
    ):
        respawn_budget = max(
            respawn_budget, len(unserved) * max_attempts + n_procs
        )
    procs: list = []
    try:
        if spawn:
            procs = [_spawn_worker(root, i) for i in range(n_procs)]
        while unserved:
            for key, result in scanner.poll().items():
                for index in key_slots.get(key, ()):
                    if key in unserved:
                        yield index, result, 0.0
                unserved.discard(key)
            if not unserved:
                break
            quarantined = queue.quarantined()
            if quarantined:
                _raise_quarantined(quarantined, key_tags)
            if not queue.has_work():
                break  # settled; serve the stragglers from the merge
            if spawn:
                alive = 0
                for i, proc in enumerate(procs):
                    if proc.poll() is None:
                        alive += 1
                    elif respawn_budget > 0:
                        respawn_budget -= 1
                        procs[i] = _spawn_worker(root, len(procs) + i)
                        alive += 1
                if alive == 0:
                    raise TaskExecutionError(
                        f"distributed batch {root} stalled: every worker "
                        f"exited with work remaining and the respawn budget "
                        f"is spent (see {root / 'logs'})"
                    )
            time.sleep(poll)
        merged = CampaignCheckpoint.merge_shards(
            root / MERGED_NAME, shard_paths(root)
        )
        for key in sorted(unserved):
            result = merged.get(key)
            if result is None:
                quarantined = queue.quarantined()
                if quarantined:
                    _raise_quarantined(quarantined, key_tags)
                raise CheckpointError(
                    f"distributed batch {root} settled without a result for "
                    f"task {key} (tag {key_tags.get(key, '')!r}); the shard "
                    "merge is missing the row"
                )
            for index in key_slots[key]:
                yield index, result, 0.0
        if spawn:
            # Workers exit on their own once the queue settles.  A shard
            # row becomes visible (and servable above) the instant its
            # os.write lands, slightly before the writer fsyncs and
            # completes its lease — so give the last completer a grace
            # period rather than terminating it mid-handshake and
            # leaving a spuriously open lease behind.
            grace = time.monotonic() + max(2.0, lease_timeout + 1.0)
            for proc in procs:
                while proc.poll() is None and time.monotonic() < grace:
                    time.sleep(poll)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=max(0.1, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
