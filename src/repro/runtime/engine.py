"""Parallel campaign execution engine.

:class:`CampaignEngine` runs the same Monte-Carlo sweeps as
:func:`repro.faultsim.run_sweep`, but shards the sweep's (BER, seed) units
across a ``multiprocessing`` worker pool, checkpoints every completed unit
to disk, and resumes interrupted sweeps from that checkpoint.

Determinism contract
--------------------
Each unit (:func:`repro.faultsim.evaluate_seed_point`) owns its RNG seed
and touches no shared mutable state, so scheduling cannot change any
result: an engine sweep with any worker count — or any mix of live and
checkpointed units — is **bit-identical** to the serial
:func:`repro.faultsim.run_sweep`.  ``workers=1`` runs the units in-process
without a pool and is the serial path itself.

Worker-pool mechanics
---------------------
Workers are forked (POSIX) *after* the parent publishes the evaluation
payload (model, data, config) in a module global, so the payload crosses
into children via copy-on-write page sharing rather than per-task
pickling — the model and evaluation batch are megabytes, the unit
descriptor a few bytes.  On platforms without ``fork`` the engine degrades
to the serial path rather than failing.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.faultsim.campaign import (
    CampaignConfig,
    CampaignResult,
    SeedPointResult,
    combine_seed_results,
    evaluate_seed_point,
)
from repro.faultsim.protection import ProtectionPlan
from repro.quantized.qmodel import QuantizedModel
from repro.runtime.checkpoint import CampaignCheckpoint
from repro.runtime.hashing import (
    campaign_fingerprint,
    data_fingerprint,
    model_fingerprint,
    point_key,
)
from repro.runtime.progress import (
    ProgressEvent,
    ProgressReporter,
    ThroughputMeter,
    null_reporter,
)

__all__ = ["CampaignEngine", "SweepStats", "resolve_workers"]


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request (None/0 = all visible cores)."""
    if workers is None or workers <= 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:
            return os.cpu_count() or 1
    return int(workers)


@dataclass
class SweepStats:
    """Bookkeeping for the engine's most recent sweep."""

    total_units: int = 0
    computed_units: int = 0
    cached_units: int = 0
    workers: int = 1
    elapsed_seconds: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "total_units": self.total_units,
            "computed_units": self.computed_units,
            "cached_units": self.cached_units,
            "workers": self.workers,
            "elapsed_seconds": self.elapsed_seconds,
        }


#: Payload published to forked workers (set only while a pool is alive).
_WORKER_PAYLOAD: tuple | None = None


def _run_unit(unit: tuple[int, float, int]) -> tuple[int, float, int, float]:
    """Evaluate one (BER, seed) unit inside a worker process."""
    index, ber, seed = unit
    qmodel, x, labels, config, protection = _WORKER_PAYLOAD
    start = time.perf_counter()
    result = evaluate_seed_point(
        qmodel, x, labels, ber, seed, config=config, protection=protection
    )
    return index, result.accuracy, result.events, time.perf_counter() - start


class CampaignEngine:
    """Sharded, checkpointed executor for fault-injection sweeps.

    Parameters
    ----------
    workers:
        Worker processes.  ``1`` (default) runs serially in-process;
        ``None``/``0`` uses every visible core.
    checkpoint_path:
        Optional JSON checkpoint file.  When set, every completed unit is
        recorded there; content-hash keys make the file safe to share
        across models, campaigns and sweeps.
    resume:
        When True and the checkpoint file exists, previously completed
        units are served from it instead of recomputed.  When False every
        unit is recomputed, but the checkpoint still *merges*: existing
        points are preserved (recomputed units overwrite their own keys).
    flush_every:
        Checkpoint flush cadence in completed units (1 = every unit).
    progress:
        Optional callable receiving a :class:`ProgressEvent` per completed
        unit (see :func:`repro.runtime.progress.stream_reporter`).
    """

    def __init__(
        self,
        workers: int | None = 1,
        checkpoint_path: str | Path | None = None,
        resume: bool = False,
        flush_every: int = 1,
        progress: ProgressReporter | None = None,
    ):
        self.workers = resolve_workers(workers)
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.resume = resume
        self.flush_every = flush_every
        self.progress = progress or null_reporter
        self.last_stats = SweepStats()

    # --- public API --------------------------------------------------------------
    def run_point(
        self,
        qmodel: QuantizedModel,
        x: np.ndarray,
        labels: np.ndarray,
        ber: float,
        config: CampaignConfig | None = None,
        protection: ProtectionPlan | None = None,
    ) -> CampaignResult:
        """Engine-executed equivalent of :func:`repro.faultsim.run_point`."""
        return self.run_sweep(qmodel, x, labels, [ber], config, protection)[0]

    def run_sweep(
        self,
        qmodel: QuantizedModel,
        x: np.ndarray,
        labels: np.ndarray,
        bers: list[float],
        config: CampaignConfig | None = None,
        protection: ProtectionPlan | None = None,
    ) -> list[CampaignResult]:
        """Engine-executed equivalent of :func:`repro.faultsim.run_sweep`.

        Returns one :class:`CampaignResult` per BER, in input order,
        bit-identical to serial execution.
        """
        config = config or CampaignConfig()
        meter = ThroughputMeter()

        # Unit table: index -> (ber, seed), ordered ber-major then seed so
        # recombination reads contiguous slices.
        units = [
            (ber, seed) for ber in bers for seed in config.seeds
        ]
        keys = self._point_keys(qmodel, x, labels, units, config, protection)
        checkpoint = self._open_checkpoint()

        # Cached points are only *served* under the resume policy; the
        # checkpoint itself always merges (completed work is never wiped).
        serve_cache = checkpoint is not None and self.resume
        slots: list[SeedPointResult | None] = [None] * len(units)
        pending: list[tuple[int, float, int]] = []
        for index, (ber, seed) in enumerate(units):
            cached = checkpoint.get(keys[index]) if serve_cache else None
            if cached is not None:
                slots[index] = cached
            else:
                pending.append((index, ber, seed))

        done = 0
        for result in slots:
            if result is not None:
                done += 1
                self._report(meter, done, len(units), result, cached=True, elapsed=0.0)

        payload = (qmodel, x, labels, config, protection)
        if pending:
            executor = (
                self._run_parallel
                if self.workers > 1 and len(pending) > 1 and _fork_context() is not None
                else self._run_serial
            )
            for index, result, elapsed in executor(payload, pending):
                slots[index] = result
                done += 1
                if checkpoint is not None:
                    checkpoint.put(keys[index], result)
                self._report(meter, done, len(units), result, cached=False, elapsed=elapsed)
        if checkpoint is not None:
            checkpoint.flush()

        self.last_stats = SweepStats(
            total_units=len(units),
            computed_units=len(pending),
            cached_units=len(units) - len(pending),
            workers=self.workers,
            elapsed_seconds=meter.elapsed,
        )

        n_seeds = len(config.seeds)
        return [
            combine_seed_results(
                qmodel,
                ber,
                slots[i * n_seeds : (i + 1) * n_seeds],
                config,
                protection,
            )
            for i, ber in enumerate(bers)
        ]

    # --- internals ---------------------------------------------------------------
    def _open_checkpoint(self) -> CampaignCheckpoint | None:
        if self.checkpoint_path is None:
            return None
        return CampaignCheckpoint(self.checkpoint_path, flush_every=self.flush_every)

    def _point_keys(
        self,
        qmodel: QuantizedModel,
        x: np.ndarray,
        labels: np.ndarray,
        units: list[tuple[float, int]],
        config: CampaignConfig,
        protection: ProtectionPlan | None,
    ) -> list[str]:
        if self.checkpoint_path is None:
            return [""] * len(units)
        if config.max_samples is not None:
            # Hash what the unit actually evaluates (post-trim).
            x, labels = x[: config.max_samples], labels[: config.max_samples]
        model_fp = model_fingerprint(qmodel)
        campaign_fp = campaign_fingerprint(config, protection)
        data_fp = data_fingerprint(x, labels)
        return [
            point_key(model_fp, campaign_fp, data_fp, ber, seed)
            for ber, seed in units
        ]

    def _report(
        self,
        meter: ThroughputMeter,
        done: int,
        total: int,
        result: SeedPointResult,
        cached: bool,
        elapsed: float,
    ) -> None:
        meter.tick()
        self.progress(
            ProgressEvent(
                done=done,
                total=total,
                ber=result.ber,
                seed=result.seed,
                accuracy=result.accuracy,
                cached=cached,
                elapsed=elapsed,
            )
        )

    def _run_serial(self, payload: tuple, pending: list[tuple[int, float, int]]):
        qmodel, x, labels, config, protection = payload
        for index, ber, seed in pending:
            start = time.perf_counter()
            result = evaluate_seed_point(
                qmodel, x, labels, ber, seed, config=config, protection=protection
            )
            yield index, result, time.perf_counter() - start

    def _run_parallel(self, payload: tuple, pending: list[tuple[int, float, int]]):
        global _WORKER_PAYLOAD
        ctx = _fork_context()
        processes = min(self.workers, len(pending))
        unit_by_index = {index: (ber, seed) for index, ber, seed in pending}
        # Publish before fork so children inherit by copy-on-write.
        _WORKER_PAYLOAD = payload
        try:
            with ctx.Pool(processes=processes) as pool:
                for index, accuracy, events, elapsed in pool.imap_unordered(
                    _run_unit, pending, chunksize=1
                ):
                    ber, seed = unit_by_index[index]
                    yield index, SeedPointResult(
                        ber=ber, seed=seed, accuracy=accuracy, events=events
                    ), elapsed
        finally:
            _WORKER_PAYLOAD = None


def _fork_context():
    """The fork multiprocessing context, or None when unsupported."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None
