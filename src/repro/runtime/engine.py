"""Parallel campaign execution engine.

:class:`CampaignEngine` executes batches of *protected-evaluation tasks*
(:class:`repro.runtime.tasks.TaskSpec` — a (BER, seed) point, or a whole
seed batch, under an optional protection plan) across a
``multiprocessing`` worker pool, checkpoints every completed subtask to
disk, and resumes interrupted batches from that checkpoint.

:meth:`CampaignEngine.evaluate_tasks` is the primitive; everything else is
a wrapper over it: :meth:`run_sweep` expands a BER grid into unprotected
seed-batch tasks (figs 1–2/6–7), while the layer-vulnerability analysis
(:func:`repro.analysis.layer_vulnerability`, Fig. 3), operation-type
sensitivity (:func:`repro.analysis.operation_type_sensitivity`, Fig. 4)
and the fine-grained TMR planner (:func:`repro.tmr.plan_tmr`, Fig. 5)
submit per-plan task batches directly.

Subtask sharding
----------------
The engine's unit of *scheduling and checkpointing* is the **subtask** —
one (BER, seed, plan) evaluation (:meth:`TaskSpec.subtasks`).  Every task
in a batch is expanded to its subtasks first, so a single seed-batch task
(e.g. one TMR-planner candidate over all campaign seeds) still fans out
across the whole pool instead of occupying one worker, and the checkpoint
records per-seed entries: resuming an interrupted batch recomputes only
the missing seeds.  Seed-batch tasks are reduced back (in seed order,
with :func:`repro.faultsim.combine_seed_results` — the exact serial
statistics code) into one :class:`CampaignResult` per task.

Sample sharding
---------------
``CampaignEngine(sample_shard=S)`` splits every (BER, seed) subtask once
more, into **sample-slice subtasks** of ``S`` evaluation samples each
(:meth:`TaskSpec.sample_subtasks`), which fills the pool even for a
single (BER, seed) point — the dominant wall-clock case for the TMR
planner on big models.  Slice subtasks are scheduled and checkpointed
exactly like seed subtasks (an interrupted point resumes with only its
missing slices recomputed) and reduced back with
:func:`repro.faultsim.combine_slice_results`.  Because fault draws must
not depend on how the sample axis is partitioned, sample sharding
requires the counter RNG scheme
(``FaultModelConfig(rng_scheme="counter")``) whenever faults are
injected; results are then **bit-identical for any slice size and any
worker count**, including the unsharded serial run.
``sample_shard="auto"`` picks the slice size per batch with
:func:`auto_sample_shard`: just enough slices that every worker owns at
least one subtask, no finer (over-splitting pays per-slice dispatch and
checkpoint overhead for nothing).  Under the stream RNG scheme auto
sharding quietly declines to split rather than erroring.

Golden-run replay
-----------------
``CampaignEngine(replay=True)`` builds the fault-free **golden run**
(:func:`repro.faultsim.replay.build_golden_run`) once per (model, data,
census identity) — keyed by :func:`repro.runtime.hashing.golden_key` and
memoized across ``evaluate_tasks`` calls, so the TMR planner's many
candidate batches and the figs 3–5 analyses share a single clean
forward; protection plans never enter the key (protection only thins
event rates — the clean pass is invariant).  The cache is built in the
parent *before* the pool forks, so workers inherit it by copy-on-write
like the rest of the payload.  BER = 0 subtasks become pure lookups of
the cached predictions; faulty counter-scheme subtasks recompute only
their fault-touched samples (:func:`repro.faultsim.replay.replay_forward`);
faulty stream-scheme subtasks bypass the cache.  Replay is an execution
strategy, not an identity: checkpoint keys and results are unchanged.

Determinism contract
--------------------
Each subtask (:func:`repro.faultsim.evaluate_seed_point`) owns its RNG
seed and touches no shared mutable state, so scheduling cannot change any
result: an engine batch with any worker count — or any mix of live and
checkpointed subtasks — is **bit-identical** to the serial loops it
replaces.  ``workers=1`` runs the subtasks in-process without a pool and
is the serial path itself.  The ``on_result`` hook of
:meth:`CampaignEngine.evaluate_tasks` extends the contract to incremental
consumers: it observes every completed subtask as it lands (arrival
order) but cannot cancel in-flight work, so the set of evaluated units —
and with it every result and checkpoint entry — stays a pure function of
the submitted batch.  Early-stop decisions (:mod:`repro.stats`) therefore
happen *between* batches, on canonically ordered results.

Worker-pool mechanics
---------------------
Workers are forked (POSIX) *after* the parent publishes the evaluation
payload (model, data, config, task table) in a module global, so the
payload crosses into children via copy-on-write page sharing rather than
per-task pickling — the model and evaluation batch are megabytes, the
dispatched unit a single integer index into the task table.  On platforms
without ``fork`` the engine degrades to the serial path rather than
failing.

Distributed backend
-------------------
``CampaignEngine(backend="distributed", queue_dir=...)`` swaps the forked
pool for the work-queue executor (:mod:`repro.runtime.distributed`): each
batch becomes a directory holding a pickled payload, a SQLite queue of
content-keyed task leases, and per-worker checkpoint shards; pull-based
worker *subprocesses* claim leases, heartbeat them, evaluate units with
this module's own :func:`_evaluate_unit`, and the shards merge back by
content key.  Lease expiry reclaims work from dead workers and a bounded
retry budget quarantines poison tasks
(:class:`~repro.errors.TaskExecutionError` names the failing task's key
and tag, for either backend).  The determinism contract is unchanged:
every unit is a pure function of its spec, so accuracies, event counts
and checkpoint keys are bit-identical across backends.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.backends import get_backend as get_kernel_backend
from repro.errors import (
    CheckpointWriteError,
    ConfigurationError,
    TaskExecutionError,
    TaskQuarantinedError,
)
from repro.faultsim.campaign import (
    CampaignConfig,
    CampaignResult,
    SampleSliceResult,
    SeedPointResult,
    combine_seed_results,
    combine_slice_results,
    evaluate_sample_slice,
    evaluate_seed_point,
)
from repro.faultsim.model import RNG_COUNTER
from repro.faultsim.protection import ProtectionPlan
from repro.faultsim.replay import GoldenRun, build_golden_run
from repro.quantized.qmodel import QuantizedModel
from repro.runtime.chaos import ChaosSpec, apply_unit_chaos
from repro.runtime.checkpoint import CampaignCheckpoint
from repro.runtime.retry import RetryPolicy, unit_deadline
from repro.runtime.hashing import (
    batch_task_keys,
    data_fingerprint,
    golden_key,
    model_fingerprint,
)
from repro.runtime.progress import (
    ProgressEvent,
    ProgressReporter,
    ThroughputMeter,
    null_reporter,
)
from repro.runtime.tasks import TaskSpec

__all__ = [
    "CampaignEngine",
    "SweepStats",
    "BACKEND_DISTRIBUTED",
    "BACKEND_POOL",
    "SAMPLE_SHARD_AUTO",
    "auto_sample_shard",
    "resolve_workers",
]

#: Sentinel accepted by ``CampaignEngine(sample_shard=...)`` / the CLI's
#: ``--shard-samples auto``: pick the slice size per batch.
SAMPLE_SHARD_AUTO = "auto"

#: The default executor: a forked ``multiprocessing`` pool (or the serial
#: in-process path for one worker / platforms without ``fork``).
BACKEND_POOL = "pool"

#: The work-queue executor: worker *subprocesses* pull leases from a
#: SQLite-backed queue and report through checkpoint shards
#: (:mod:`repro.runtime.distributed`).  Bit-identical results.
BACKEND_DISTRIBUTED = "distributed"


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request (None/0 = all visible cores)."""
    if workers is None or workers <= 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:
            return os.cpu_count() or 1
    return int(workers)


def auto_sample_shard(n_samples: int, workers: int, n_units: int) -> int | None:
    """Slice size giving every worker >= 1 subtask without over-splitting.

    ``n_units`` is the batch's seed-subtask count before slicing.  When
    the batch already carries at least one subtask per worker — or there
    is only one worker, nothing to evaluate, or a single sample — no
    slicing is needed and ``None`` is returned.  Otherwise each seed
    subtask is split into (at least) ``ceil(workers / n_units)`` slices —
    the smallest split that fills the pool, since finer slicing only adds
    per-slice dispatch and checkpoint overhead.  Not every slice count is
    realizable by a uniform slice size (``ceil(N / shard)`` skips values),
    so the chooser takes the smallest *achievable* count at or above the
    target, then re-balances to the largest slice size realizing it (the
    slices come out equal-sized up to the final remainder).
    """
    if workers <= 1 or n_units <= 0 or n_samples <= 1:
        return None
    slices_per_unit = -(-workers // n_units)
    if slices_per_unit <= 1:
        return None
    # Largest slice size still yielding >= slices_per_unit slices; its
    # count is the smallest achievable count >= the target (slice counts
    # are non-increasing in the slice size).
    shard = max(1, -(-n_samples // (slices_per_unit - 1)) - 1)
    count = -(-n_samples // shard)
    # Re-balance: the largest slice size realizing exactly that count.
    return max(1, -(-n_samples // count))


@dataclass
class SweepStats:
    """Bookkeeping for the engine's most recent task batch.

    Units are counted at *subtask* granularity — one per (BER, seed,
    plan) evaluation — so a seed-batch task contributes ``len(seeds)``
    units and a partially checkpointed batch reports exactly how many
    seeds were served from cache versus recomputed.
    """

    total_units: int = 0
    computed_units: int = 0
    cached_units: int = 0
    workers: int = 1
    elapsed_seconds: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "total_units": self.total_units,
            "computed_units": self.computed_units,
            "cached_units": self.cached_units,
            "workers": self.workers,
            "elapsed_seconds": self.elapsed_seconds,
        }


#: Payload published to forked workers (set only while a pool is alive).
_WORKER_PAYLOAD: tuple | None = None


@dataclass
class _UnitFailure:
    """A unit's exception, carried back through the executor in-band.

    Raw exceptions crossing ``imap_unordered`` lose the failing task's
    index (the pool re-raises them bare at the consumer), so workers
    return this sentinel *as the result* instead: the consumer still
    knows which unit failed and raises a
    :class:`~repro.errors.TaskExecutionError` naming its checkpoint key
    and tag — the same identity the distributed backend's quarantine
    reports.  ``transient`` carries the worker-side
    :meth:`RetryPolicy.is_transient` classification across the process
    boundary (the exception object itself does not cross), so the
    consumer can re-dispatch retryable units and quarantine exhausted
    ones instead of failing the batch on the first error.
    """

    message: str
    details: str
    transient: bool = False


def _evaluate_unit(qmodel, x, labels, config, task: TaskSpec, golden=None):
    """Evaluate one subtask unit: a (BER, seed) point or a sample slice."""
    if task.sample_slice is None:
        return evaluate_seed_point(
            qmodel, x, labels, task.ber, task.seed,
            config=config, protection=task.protection, golden=golden,
        )
    return evaluate_sample_slice(
        qmodel, x, labels, task.ber, task.seed, task.sample_slice,
        config=config, protection=task.protection, golden=golden,
    )


def _attempt_unit(payload: tuple, index: int, attempt: int):
    """One guarded unit attempt: chaos hooks, deadline watchdog, evaluate.

    The shared execution core of the serial path and the pool worker:
    applies the pre-evaluation chaos hooks (slow unit, poison tag,
    injected error, simulated crash — all pure functions of the unit's
    key and this attempt number), arms the per-unit deadline watchdog
    when the retry policy carries one, and classifies any exception
    transient/permanent for the consumer's retry decision.
    """
    qmodel, x, labels, config, tasks, golden, keys, chaos, retry = payload
    start = time.perf_counter()
    try:
        apply_unit_chaos(
            chaos, keys[index], tasks[index].tag, attempt, allow_exit=False
        )
        deadline = retry.deadline if retry is not None else None
        with unit_deadline(deadline, what=f"unit {keys[index] or index}"):
            result = _evaluate_unit(
                qmodel, x, labels, config, tasks[index], golden
            )
    except Exception as exc:
        result = _UnitFailure(
            message=f"{type(exc).__name__}: {exc}",
            details=traceback.format_exc(),
            transient=RetryPolicy.is_transient(exc),
        )
    return index, result, time.perf_counter() - start


def _run_task(item: tuple[int, int]):
    """Evaluate one ``(table index, attempt)`` inside a pool worker.

    Exceptions come back as :class:`_UnitFailure` results so the parent
    can attach the failing unit's key and tag (see the sentinel's docs).
    """
    index, attempt = item
    return _attempt_unit(_WORKER_PAYLOAD, index, attempt)


class CampaignEngine:
    """Sharded, checkpointed executor for protected-evaluation tasks.

    Parameters
    ----------
    workers:
        Worker processes.  ``1`` (default) runs serially in-process;
        ``None``/``0`` uses every visible core.
    checkpoint_path:
        Optional JSON-lines checkpoint file.  When set, every completed
        task is recorded there; content-hash keys make the file safe to
        share across models, campaigns, figures and protection plans.
    resume:
        When True and the checkpoint file exists, previously completed
        tasks are served from it instead of recomputed.  When False every
        task is recomputed, but the checkpoint still *merges*: existing
        entries are preserved (recomputed tasks overwrite their own keys).
    flush_every:
        Checkpoint flush cadence in completed tasks (1 = every task).
    progress:
        Optional callable receiving a :class:`ProgressEvent` per completed
        task (see :func:`repro.runtime.progress.stream_reporter`).
    sample_shard:
        When set, every (BER, seed) subtask is split into sample slices of
        this many evaluation samples (see *Sample sharding* in the module
        docs).  Requires the counter RNG scheme for any faulty point.
        ``"auto"`` picks the slice size per batch
        (:func:`auto_sample_shard`, declining to split under the stream
        scheme); ``None`` (default) disables sample sharding.
    replay:
        When True, every ``evaluate_tasks`` batch is served through the
        golden-run cache (see *Golden-run replay* in the module docs):
        one clean forward per (model, data, census identity), shared
        copy-on-write with all workers; BER = 0 units become lookups and
        faulty counter-scheme units recompute only fault-touched samples.
        Results and checkpoint keys are bit-identical to ``replay=False``.
    backend:
        ``"pool"`` (default) executes pending units on the forked
        ``multiprocessing`` pool; ``"distributed"`` hands each batch to
        the work-queue backend (:mod:`repro.runtime.distributed`):
        ``workers`` worker *subprocesses* pull leases from a SQLite
        queue under ``queue_dir``, append results to per-worker
        checkpoint shards, and the shards merge back by content key.
        Results, event counts and checkpoint keys are bit-identical
        across backends for every engine feature (sample sharding,
        replay, resume, planners).
    queue_dir:
        Directory holding the distributed backend's batch directories
        (queue database, payload, shards, logs).  Required when
        ``backend="distributed"``; ignored for the pool backend.
    lease_timeout:
        Distributed only: seconds a claimed task's lease lasts without a
        heartbeat before another worker may reclaim it.
    max_attempts:
        Execution/claim budget per unit — shared by both backends since
        the unified retry policy: the pool re-runs transiently failed
        units this many times before quarantining them, the distributed
        queue uses the same number as its lease claim budget.
        Quarantine surfaces as
        :class:`~repro.errors.TaskQuarantinedError` naming every
        quarantined key, uniformly across backends.  Ignored when an
        explicit ``retry`` policy is passed.
    retry:
        Optional :class:`repro.runtime.RetryPolicy` governing attempt
        budgets, backoff and the per-unit deadline for both backends
        (see :mod:`repro.runtime.retry`).  ``None`` builds one from
        ``max_attempts`` with default backoff and no deadline.
    chaos:
        Optional :class:`repro.runtime.ChaosSpec` injecting
        deterministic faults — unit errors, slow units, worker crashes,
        torn checkpoint writes, ENOSPC flushes, lost heartbeats — whose
        decisions are pure functions of (chaos seed, task key, attempt),
        so a chaos run completes bit-identically to the undisturbed run
        once the runtime's recovery machinery drains the injected
        faults.  ``None`` (default) injects nothing.
    kernel_backend:
        Optional kernel backend name (``"reference"``, ``"optimized"``
        or ``"torch"``; see :mod:`repro.backends`) applied to every
        model evaluated through this engine.  Kernel backends are
        bit-identical by contract, so results, event counts and
        checkpoint keys are unchanged — the selection never enters task
        keys or ``campaign_fingerprint``, keeping checkpoints shareable
        across backends.  ``None`` (default) leaves each model's own
        setting untouched.
    """

    def __init__(
        self,
        workers: int | None = 1,
        checkpoint_path: str | Path | None = None,
        resume: bool = False,
        flush_every: int = 1,
        progress: ProgressReporter | None = None,
        sample_shard: int | str | None = None,
        replay: bool = False,
        backend: str = BACKEND_POOL,
        queue_dir: str | Path | None = None,
        lease_timeout: float = 30.0,
        max_attempts: int = 3,
        kernel_backend: str | None = None,
        retry: RetryPolicy | None = None,
        chaos: ChaosSpec | None = None,
    ):
        self.workers = resolve_workers(workers)
        if kernel_backend is not None:
            # Validate eagerly (unknown name / missing torch) so a bad
            # selection fails at construction, not mid-campaign.
            get_kernel_backend(kernel_backend)
        self.kernel_backend = kernel_backend
        if backend not in (BACKEND_POOL, BACKEND_DISTRIBUTED):
            raise ConfigurationError(
                f"backend must be '{BACKEND_POOL}' or '{BACKEND_DISTRIBUTED}', "
                f"got {backend!r}"
            )
        if backend == BACKEND_DISTRIBUTED and queue_dir is None:
            raise ConfigurationError(
                "the distributed backend needs a queue_dir to hold its "
                "batch directories (queue database, payload, shards)"
            )
        self.backend = backend
        self.queue_dir = Path(queue_dir) if queue_dir is not None else None
        self.lease_timeout = float(lease_timeout)
        #: Unified retry policy (attempt budget, backoff, deadline) for
        #: both backends; an explicit policy overrides ``max_attempts``.
        self.retry = (
            retry
            if retry is not None
            else RetryPolicy(max_attempts=int(max_attempts))
        )
        self.max_attempts = self.retry.max_attempts
        if chaos is not None and not isinstance(chaos, ChaosSpec):
            raise ConfigurationError(
                f"chaos must be a ChaosSpec (or None), got {type(chaos).__name__}"
            )
        #: Deterministic fault-injection spec (None = inject nothing).
        self.chaos = chaos if chaos is not None and chaos.active else None
        #: Batches dispatched so far (names distributed batch directories).
        self._batch_count = 0
        if isinstance(sample_shard, str):
            if sample_shard != SAMPLE_SHARD_AUTO:
                raise ConfigurationError(
                    f"sample_shard accepts an int >= 1, 'auto' or None, "
                    f"got {sample_shard!r}"
                )
        elif sample_shard is not None and sample_shard < 1:
            raise ConfigurationError(
                f"sample_shard must be >= 1 (or None), got {sample_shard}"
            )
        self.sample_shard = sample_shard
        self.replay = bool(replay)
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.resume = resume
        self.flush_every = flush_every
        self.progress = progress or null_reporter
        self.last_stats = SweepStats()
        # Opened once and reused: the TMR planner calls the engine every
        # iteration, and re-reading a growing checkpoint (plus re-hashing
        # an unchanged model and evaluation set) per call would make the
        # planner quadratic in I/O.  Assumes the model/data objects are
        # not mutated while this engine is in use — the same purity the
        # determinism contract already requires.
        self._checkpoint: CampaignCheckpoint | None = None
        #: (id(model), id(x), id(labels), max_samples) -> (model_fp,
        #: data_fp, pinned object refs).
        self._fingerprints: dict[tuple, tuple] = {}
        #: golden_key -> GoldenRun, shared across evaluate_tasks calls
        #: (the planner's candidate batches reuse one clean forward).
        #: Holds the *most recent* key only: a GoldenRun pins every
        #: node's activations over the whole evaluation set, and figure
        #: drivers work through models sequentially, so keeping older
        #: entries would only accumulate memory.
        self._golden: dict[str, GoldenRun] = {}

    # --- public API --------------------------------------------------------------
    def evaluate_tasks(
        self,
        qmodel: QuantizedModel,
        x: np.ndarray,
        labels: np.ndarray,
        tasks: list[TaskSpec],
        config: CampaignConfig | None = None,
        on_result=None,
    ) -> list[SeedPointResult | CampaignResult]:
        """Evaluate a batch of tasks against one model; results in task order.

        Every task is first expanded to its per-seed subtasks
        (:meth:`TaskSpec.subtasks`), and the *subtask* is the engine's
        unit of scheduling: all pending subtasks — whatever mix of (BER,
        seed) points and protection plans they carry — shard across one
        worker pool, and every completed subtask is checkpointed under
        its content hash, so ``resume`` recomputes only the missing seeds
        of an interrupted batch.

        Each result slot matches its task's shape: a point task yields
        its :class:`SeedPointResult`, a seed-batch task the
        :class:`CampaignResult` reduced from its per-seed results in seed
        order (an engine with ``sample_shard`` additionally splits every
        seed subtask into sample-slice subtasks and folds each group back
        first).  All of it is bit-identical to evaluating the tasks
        serially in order, for any worker count and any slice size.

        ``on_result`` is an optional **observation** hook called once per
        completed subtask unit as ``on_result(index, unit, result,
        cached)`` — cache-served units first (in unit-table index order),
        then live units as the pool delivers them (arrival order, which
        is scheduling-dependent).  It enables incremental reductions —
        the adaptive drivers (:mod:`repro.stats.adaptive`) watch their
        counts accumulate — but deliberately cannot cancel in-flight
        work: the set of evaluated units is fixed when the batch is
        submitted, so observation order can never change what gets
        computed, keeping batches deterministic and checkpoints
        partition-invariant.  Stop decisions belong *between* batches, at
        round barriers, where they depend only on canonically ordered
        results.
        """
        config = config or CampaignConfig()
        if (
            self.kernel_backend is not None
            and qmodel.kernel_backend != self.kernel_backend
        ):
            # Execution strategy only: bit-identical results and
            # unchanged fingerprints, so this never invalidates the
            # engine's memoized hashes or existing checkpoint rows.
            qmodel.set_kernel_backend(self.kernel_backend)
        meter = ThroughputMeter()

        # Expand to subtask granularity.  Two levels: tasks fan out into
        # per-seed subtasks, and (with sample_shard) each seed subtask
        # fans out into sample-slice subtasks.  groups[i] holds task i's
        # per-seed spans into the flat unit table.
        n_samples = (
            len(x) if config.max_samples is None else min(len(x), config.max_samples)
        )
        per_task_subtasks = [task.subtasks() for task in tasks]
        shard = self._effective_shard(
            n_samples, sum(len(s) for s in per_task_subtasks), config
        )
        units: list[TaskSpec] = []
        groups: list[list[tuple[int, int]]] = []
        for subtasks in per_task_subtasks:
            group: list[tuple[int, int]] = []
            for seed_unit in subtasks:
                expanded = (
                    seed_unit.sample_subtasks(n_samples, shard)
                    if shard is not None
                    else (seed_unit,)
                )
                start = len(units)
                units.extend(expanded)
                group.append((start, len(units)))
            groups.append(group)
        self._check_slice_scheme(units, config)

        keys = self._unit_keys(qmodel, x, labels, units, config)
        checkpoint = self._open_checkpoint()

        # Cached subtasks are only *served* under the resume policy; the
        # checkpoint itself always merges (completed work is never wiped).
        serve_cache = checkpoint is not None and self.resume
        slots: list[SeedPointResult | SampleSliceResult | None] = [None] * len(units)
        pending: list[int] = []
        for index in range(len(units)):
            cached = checkpoint.get(keys[index]) if serve_cache else None
            if cached is not None:
                slots[index] = cached
            else:
                pending.append(index)

        done = 0
        for index, result in enumerate(slots):
            if result is not None:
                done += 1
                self._report(
                    meter, done, len(units), result, units[index].tag,
                    cached=True, elapsed=0.0,
                )
                if on_result is not None:
                    on_result(index, units[index], result, True)

        # Golden run built only when live work remains that can actually
        # use it (faulty stream-scheme units bypass replay, so a stream
        # batch without BER-0 units would pay the clean forward for
        # nothing), in the parent, so a forked pool inherits it
        # copy-on-write with the payload.
        replay_usable = config.fault_config.rng_scheme == RNG_COUNTER or any(
            units[i].ber == 0.0 for i in pending
        )
        golden = (
            self._golden_run(qmodel, x, labels, config)
            if self.replay and pending and replay_usable
            and self.backend != BACKEND_DISTRIBUTED
            else None
        )
        payload = (
            qmodel, x, labels, config, units, golden,
            keys, self.chaos, self.retry,
        )

        def absorb(index: int, result, elapsed: float) -> None:
            """Fold one completed live unit into slots/checkpoint/progress."""
            nonlocal done
            slots[index] = result
            done += 1
            if checkpoint is not None:
                try:
                    checkpoint.put(keys[index], result)
                except CheckpointWriteError:
                    # The record is retained in the store's pending set;
                    # the final flush retries with backoff and degrades
                    # loudly if the disk never recovers.
                    pass
            self._report(
                meter, done, len(units), result, units[index].tag,
                cached=False, elapsed=elapsed,
            )
            if on_result is not None:
                on_result(index, units[index], result, False)

        # Completed work is persisted even when the batch ultimately
        # raises (a permanent failure or a quarantine): the flush sits in
        # a finally, retried with backoff and degrading to
        # checkpoint-less completion — with a loud warning — when the
        # disk never recovers.
        try:
            if pending and self.backend == BACKEND_DISTRIBUTED:
                for index, result, elapsed in self._run_distributed(
                    payload, pending, keys
                ):
                    if isinstance(result, _UnitFailure):
                        self._raise_unit_failure(
                            qmodel, x, labels, config, units, keys, index,
                            result,
                        )
                    absorb(index, result, elapsed)
            elif pending:
                self._run_pool_waves(
                    payload, pending, absorb,
                    qmodel, x, labels, config, units, keys,
                )
        finally:
            self._flush_with_retry(checkpoint)

        self.last_stats = SweepStats(
            total_units=len(units),
            computed_units=len(pending),
            cached_units=len(units) - len(pending),
            workers=self.workers,
            elapsed_seconds=meter.elapsed,
        )
        results = []
        for task, group in zip(tasks, groups):
            # A span longer than 1 is always an engine-made slice
            # expansion (sample_subtasks returns the unit unchanged when
            # it does not split); fold it back into its SeedPointResult.
            per_seed = [
                slots[start]
                if end - start == 1
                else combine_slice_results(
                    slots[start:end], expected_total=n_samples
                )
                for start, end in group
            ]
            results.append(self._reduce(qmodel, task, per_seed, config))
        return results

    def run_point(
        self,
        qmodel: QuantizedModel,
        x: np.ndarray,
        labels: np.ndarray,
        ber: float,
        config: CampaignConfig | None = None,
        protection: ProtectionPlan | None = None,
    ) -> CampaignResult:
        """Engine-executed equivalent of :func:`repro.faultsim.run_point`."""
        return self.run_sweep(qmodel, x, labels, [ber], config, protection)[0]

    def run_sweep(
        self,
        qmodel: QuantizedModel,
        x: np.ndarray,
        labels: np.ndarray,
        bers: list[float],
        config: CampaignConfig | None = None,
        protection: ProtectionPlan | None = None,
    ) -> list[CampaignResult]:
        """Engine-executed equivalent of :func:`repro.faultsim.run_sweep`.

        A thin wrapper over :meth:`evaluate_tasks`: the BER grid expands
        into one seed-batch task per BER sharing ``protection``; the
        engine shards the per-seed subtasks (ber-major, seed-minor) and
        reduces each batch back.  Returns one :class:`CampaignResult` per
        BER, in input order, bit-identical to serial execution.
        """
        config = config or CampaignConfig()
        tasks = [
            TaskSpec(ber=ber, seeds=tuple(config.seeds), protection=protection)
            for ber in bers
        ]
        return self.evaluate_tasks(qmodel, x, labels, tasks, config=config)

    # --- internals ---------------------------------------------------------------
    def _effective_shard(
        self, n_samples: int, n_seed_units: int, config: CampaignConfig
    ) -> int | None:
        """Resolve the sample-shard setting for one batch.

        An explicit integer is used as-is (invalid scheme combinations
        fail loudly in :meth:`_check_slice_scheme`); ``"auto"`` consults
        :func:`auto_sample_shard`, and declines to split under the stream
        RNG scheme, whose faulty points cannot be sliced.
        """
        if self.sample_shard is None:
            return None
        if self.sample_shard == SAMPLE_SHARD_AUTO:
            if config.fault_config.rng_scheme != RNG_COUNTER:
                return None
            return auto_sample_shard(n_samples, self.workers, n_seed_units)
        return self.sample_shard

    @staticmethod
    def _check_slice_scheme(units: list[TaskSpec], config: CampaignConfig) -> None:
        """Reject sample-sliced faulty units under the stream RNG scheme.

        Stream draws depend on batch position, so slicing would silently
        change results; only the counter scheme is partition-invariant.
        Fault-free (BER 0) units slice fine under either scheme.
        """
        if config.fault_config.rng_scheme == RNG_COUNTER:
            return
        if any(u.sample_slice is not None and u.ber > 0.0 for u in units):
            raise ConfigurationError(
                "sample sharding with fault injection requires the "
                "partition-invariant counter RNG scheme; set "
                "FaultModelConfig(rng_scheme='counter') on the campaign"
            )

    def _open_checkpoint(self) -> CampaignCheckpoint | None:
        if self.checkpoint_path is None:
            return None
        if self._checkpoint is None:
            self._checkpoint = CampaignCheckpoint(
                self.checkpoint_path,
                flush_every=self.flush_every,
                chaos=self.chaos,
            )
        return self._checkpoint

    def _flush_with_retry(self, checkpoint: CampaignCheckpoint | None) -> None:
        """Flush the checkpoint, retrying transient write failures.

        A failed flush (``ENOSPC``, torn write — real or chaos-injected)
        leaves every pending record in the store's memory, so each retry
        re-attempts the full append after a policy backoff.  When the
        budget is spent the engine *degrades to checkpoint-less
        completion* with a loud warning instead of crashing a campaign
        whose results are already computed: the batch returns normally,
        and the unpersisted records are recomputed on the next resume.
        """
        if checkpoint is None:
            return
        attempt = 1
        while True:
            try:
                checkpoint.flush()
                return
            except CheckpointWriteError as exc:
                if attempt >= self.retry.max_attempts:
                    warnings.warn(
                        f"checkpoint {checkpoint.path}: flush failed "
                        f"{attempt} time(s) ({exc}); DEGRADING to "
                        "checkpoint-less completion — "
                        f"{checkpoint.pending_records} completed record(s) "
                        "exist only in memory and will be recomputed on "
                        "the next resume",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    return
                time.sleep(self.retry.backoff(attempt, "checkpoint-flush"))
                attempt += 1

    def _run_pool_waves(
        self, payload, pending, absorb, qmodel, x, labels, config, units, keys
    ) -> None:
        """Pool/serial execution in retry waves under the unified policy.

        Every unit in the wave is attempted once; transient failures
        (chaos injections, deadline aborts, lost workers — per
        :meth:`RetryPolicy.is_transient`) with budget remaining are
        collected and re-dispatched as the next wave after a
        deterministic backoff, exactly mirroring the distributed queue's
        fail-requeue-reclaim cycle.  Permanent failures raise
        immediately (the unit would fail identically forever); units
        whose budget is spent are *quarantined* — the rest of the batch
        still completes and persists, then one
        :class:`~repro.errors.TaskQuarantinedError` names every
        quarantined key, the same shape the distributed backend raises.
        """
        attempts = {index: 1 for index in pending}
        quarantined: list[tuple[int, _UnitFailure]] = []
        wave = list(pending)
        while wave:
            items = [(index, attempts[index]) for index in wave]
            runner = (
                self._run_parallel
                if self.workers > 1
                and len(items) > 1
                and _fork_context() is not None
                else self._run_serial
            )
            retry_next: list[int] = []
            for index, result, elapsed in runner(payload, items):
                if isinstance(result, _UnitFailure):
                    if not result.transient:
                        self._raise_unit_failure(
                            qmodel, x, labels, config, units, keys, index,
                            result,
                        )
                    if attempts[index] < self.retry.max_attempts:
                        retry_next.append(index)
                    else:
                        quarantined.append((index, result))
                    continue
                absorb(index, result, elapsed)
            if retry_next:
                delay = max(
                    self.retry.backoff(attempts[index], keys[index])
                    for index in retry_next
                )
                if delay > 0:
                    time.sleep(delay)
                for index in retry_next:
                    attempts[index] += 1
            wave = retry_next
        if quarantined:
            self._raise_quarantined(
                qmodel, x, labels, config, units, keys, quarantined
            )

    def _raise_quarantined(
        self, qmodel, x, labels, config, units, keys, quarantined
    ) -> None:
        """Raise exhausted-budget units as one :class:`TaskQuarantinedError`.

        Mirrors the distributed backend's quarantine report: the error
        names the first quarantined unit's key and tag plus *every*
        quarantined key, so campaign scripts see one uniform failure
        shape whichever backend ran the batch.
        """
        resolved = []
        for index, failure in quarantined:
            key = keys[index]
            if not key:
                model_fp, data_fp = self._fingerprint(qmodel, x, labels, config)
                key = units[index].key(model_fp, data_fp, config)
            resolved.append((index, key, failure))
        first_index, first_key, first_failure = resolved[0]
        more = f" (+{len(resolved) - 1} more)" if len(resolved) > 1 else ""
        raise TaskQuarantinedError(
            f"task {first_key} (tag {units[first_index].tag!r}) quarantined "
            f"after {self.retry.max_attempts} attempt(s) in the "
            f"{self.backend} backend{more}: {first_failure.message}\n"
            f"{first_failure.details}",
            task_key=first_key,
            tag=units[first_index].tag,
            quarantined_keys=tuple(key for _, key, _ in resolved),
        )

    def _reduce(
        self,
        qmodel: QuantizedModel,
        task: TaskSpec,
        per_seed: list[SeedPointResult],
        config: CampaignConfig,
    ):
        """Fold a task's per-seed subtask results into its result shape."""
        if not task.is_batch:
            return per_seed[0]
        return combine_seed_results(
            qmodel, task.ber, per_seed, config, task.protection
        )

    def _fingerprint(
        self,
        qmodel: QuantizedModel,
        x: np.ndarray,
        labels: np.ndarray,
        config: CampaignConfig,
    ) -> tuple[str, str]:
        """Memoized (model, data) fingerprints for one evaluation payload."""
        memo = (id(qmodel), id(x), id(labels), config.max_samples)
        cached = self._fingerprints.get(memo)
        if cached is None:
            trim_x, trim_labels = x, labels
            if config.max_samples is not None:
                # Hash what the task actually evaluates (post-trim).
                trim_x = x[: config.max_samples]
                trim_labels = labels[: config.max_samples]
            # The keyed objects ride along in the entry so their ids
            # cannot be recycled onto new objects while the cache lives.
            cached = (
                model_fingerprint(qmodel),
                data_fingerprint(trim_x, trim_labels),
                (qmodel, x, labels),
            )
            self._fingerprints[memo] = cached
        return cached[0], cached[1]

    def _unit_keys(
        self,
        qmodel: QuantizedModel,
        x: np.ndarray,
        labels: np.ndarray,
        units: list[TaskSpec],
        config: CampaignConfig,
    ) -> list[str]:
        """Checkpoint keys for a subtask-granularity unit table.

        Without a checkpoint the pool backend never consults the keys,
        so they are skipped (hashing the model costs a pass over its
        weights); the distributed backend always needs them — they are
        the queue's task identities and the shard rows' content keys —
        and so does an active chaos spec, whose injection decisions are
        keyed by the unit's content hash.
        """
        if (
            self.checkpoint_path is None
            and self.backend != BACKEND_DISTRIBUTED
            and self.chaos is None
        ):
            return [""] * len(units)
        model_fp, data_fp = self._fingerprint(qmodel, x, labels, config)
        return batch_task_keys(model_fp, data_fp, config, units)

    def _raise_unit_failure(
        self,
        qmodel: QuantizedModel,
        x: np.ndarray,
        labels: np.ndarray,
        config: CampaignConfig,
        units: list[TaskSpec],
        keys: list[str],
        index: int,
        failure: _UnitFailure,
    ) -> None:
        """Raise a failed unit as :class:`TaskExecutionError` with identity.

        Attaches the failing unit's content-hash key and tag — computing
        the key on demand when the batch ran keyless (pool backend
        without a checkpoint) — so pool and distributed failures read
        the same.
        """
        unit = units[index]
        key = keys[index]
        if not key:
            model_fp, data_fp = self._fingerprint(qmodel, x, labels, config)
            key = unit.key(model_fp, data_fp, config)
        raise TaskExecutionError(
            f"task {key} (tag {unit.tag!r}) failed in a {self.backend} "
            f"worker: {failure.message}\n{failure.details}",
            task_key=key,
            tag=unit.tag,
        )

    def _golden_run(
        self,
        qmodel: QuantizedModel,
        x: np.ndarray,
        labels: np.ndarray,
        config: CampaignConfig,
    ) -> GoldenRun:
        """Build (or reuse) the golden run for one evaluation payload.

        Keyed by :func:`repro.runtime.hashing.golden_key`, which is
        invariant across protection plans, BERs, seeds and RNG schemes —
        one clean forward serves a whole planner run.
        """
        model_fp, data_fp = self._fingerprint(qmodel, x, labels, config)
        key = golden_key(model_fp, data_fp, config)
        cached = self._golden.get(key)
        if cached is None:
            trim_x = x if config.max_samples is None else x[: config.max_samples]
            cached = build_golden_run(
                qmodel,
                trim_x,
                injector_kind=config.injector,
                fault_config=config.fault_config,
                batch_size=config.batch_size,
                key=key,
            )
            self._golden.clear()  # bound memory: most recent (model, data) only
            self._golden[key] = cached
        return cached

    def _report(
        self,
        meter: ThroughputMeter,
        done: int,
        total: int,
        result: SeedPointResult | SampleSliceResult,
        tag: str,
        cached: bool,
        elapsed: float,
    ) -> None:
        meter.tick()
        self.progress(
            ProgressEvent(
                done=done,
                total=total,
                ber=result.ber,
                seed=result.seed,
                accuracy=result.accuracy,
                cached=cached,
                elapsed=elapsed,
                tag=tag,
            )
        )

    def _run_serial(self, payload: tuple, items: list[tuple[int, int]]):
        """In-process executor; failures come back as :class:`_UnitFailure`.

        Wrapping the serial path too keeps failure reporting identical
        across ``workers=1``, the pool and the distributed backend: the
        consumer always sees the failing unit's index and raises with
        its key and tag attached.  ``items`` are ``(table index,
        attempt)`` pairs, exactly what the pool dispatches.
        """
        for index, attempt in items:
            yield _attempt_unit(payload, index, attempt)

    def _run_distributed(self, payload: tuple, pending: list[int], keys):
        """Work-queue executor: one batch directory under ``queue_dir``.

        Delegates to :func:`repro.runtime.distributed.run_distributed_batch`
        (imported lazily — the distributed module imports back into this
        one for ``_evaluate_unit``).  Each batch gets its own directory,
        named by PID and a per-engine counter; because queue entries and
        shard rows are content-keyed, even a recycled directory only ever
        deduplicates work, never corrupts it.  The coordinator does not
        build a golden run — each worker process builds its own, being in
        another address space — so the payload's golden slot is ignored.
        """
        from repro.runtime.distributed import run_distributed_batch

        qmodel, x, labels, config, units = payload[:5]
        root = self.queue_dir / f"batch-{os.getpid()}-{self._batch_count:04d}"
        self._batch_count += 1
        yield from run_distributed_batch(
            root,
            qmodel,
            x,
            labels,
            config,
            units,
            keys,
            pending,
            workers=self.workers,
            replay=self.replay,
            lease_timeout=self.lease_timeout,
            max_attempts=self.max_attempts,
            chaos=self.chaos,
        )

    def _run_parallel(self, payload: tuple, items: list[tuple[int, int]]):
        global _WORKER_PAYLOAD
        ctx = _fork_context()
        processes = min(self.workers, len(items))
        # Publish before fork so children inherit by copy-on-write.
        _WORKER_PAYLOAD = payload
        try:
            with ctx.Pool(processes=processes) as pool:
                yield from pool.imap_unordered(_run_task, items, chunksize=1)
        finally:
            _WORKER_PAYLOAD = None


def _fork_context():
    """The fork multiprocessing context, or None when unsupported."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None
