"""Content hashing for campaign checkpoints.

A checkpoint entry is only reusable when the *entire* computation that
produced it is unchanged: the quantized model (structure and weights), the
campaign configuration (injector, fault model, protection, sample budget),
the evaluation data and the (BER, seed) point itself.  Each of those
contributes to the point key; any drift produces a different key and the
point is recomputed rather than silently served stale.

Keys exist only at *subtask* granularity — one per (model, campaign, data,
BER, seed, plan) evaluation.  A seed-batch task (one
:class:`~repro.runtime.tasks.TaskSpec` carrying ``seeds=``) is keyed as
its per-seed subtasks, which is what lets ``--resume`` recompute exactly
the missing seeds of an interrupted batch; :func:`batch_task_keys` is the
engine's bulk entry point and memoizes the per-plan campaign fingerprint
across a batch (a Fig. 3 batch reuses each plan across all its seeds).
"""

from __future__ import annotations

import hashlib
import json

from repro.faultsim.campaign import CampaignConfig
from repro.faultsim.protection import ProtectionPlan
from repro.quantized.qmodel import QuantizedModel

__all__ = [
    "model_fingerprint",
    "campaign_fingerprint",
    "data_fingerprint",
    "golden_key",
    "point_key",
    "task_key",
    "batch_task_keys",
    "adaptive_fingerprint",
]


def _digest(payload: dict) -> str:
    """SHA-256 hex digest of a payload's canonical JSON form."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def model_fingerprint(qmodel: QuantizedModel) -> str:
    """Stable digest of a quantized model's structure, weights and formats.

    Hashing the integer weights *and* every node's activation format (not
    just the config) means a retrained or re-calibrated model invalidates
    old checkpoints automatically: recalibration can leave ``weight_int``
    unchanged while shifting the per-node fixed-point exponents.
    """
    weights = hashlib.sha256()
    for node in qmodel.injectable_layers():
        weights.update(node.name.encode())
        weights.update(node.weight_int.tobytes())
        # Biases are independent parameters: retraining can change
        # bias_acc while leaving weight_int untouched.
        if getattr(node, "bias_acc", None) is not None:
            weights.update(node.bias_acc.tobytes())
    formats = [
        (n.name, n.op)
        + tuple(
            (fmt.width, fmt.frac)
            for fmt in (
                getattr(n, fname, None) for fname in ("in_fmt", "w_fmt", "out_fmt")
            )
            if fmt is not None
        )
        for n in qmodel.nodes
        if getattr(n, "out_fmt", None) is not None
    ]
    payload = {
        "name": qmodel.name,
        "benchmark": qmodel.metadata.get("benchmark", qmodel.name),
        "conv_mode": qmodel.conv_mode,
        "input_shape": list(qmodel.input_shape),
        "width": qmodel.config.width,
        "acc_guard": qmodel.config.acc_guard,
        "calibration": qmodel.config.calibration,
        "percentile": qmodel.config.percentile,
        "wg_tile": qmodel.config.wg_tile,
        "nodes": [(n.name, n.op) for n in qmodel.nodes],
        "formats": formats,
        "weights": weights.hexdigest(),
    }
    return _digest(payload)


def campaign_fingerprint(
    config: CampaignConfig, protection: ProtectionPlan | None = None
) -> str:
    """Stable digest of everything in a campaign except the swept point.

    ``seeds`` is deliberately excluded: the seed is part of the point, so a
    sweep re-run with extra seeds still reuses the points it already has.
    """
    fc = config.fault_config
    payload = {
        "batch_size": config.batch_size,
        "injector": config.injector,
        "max_samples": config.max_samples,
        "semantics": fc.semantics.value,
        "convention": fc.convention.value,
        "max_events": fc.max_events_per_category,
        "amplify": fc.amplify_input_transform_adds,
        "protection": list(protection.cache_key()) if protection is not None else None,
    }
    payload.update(fc.rng_identity())
    return _digest(payload)


def data_fingerprint(x, labels) -> str:
    """Stable digest of the evaluation batch a point is scored on.

    The engine hashes the arrays *after* ``max_samples`` trimming, i.e. the
    exact inputs of the unit of work, so a different evaluation set can
    never be served another set's cached accuracies.
    """
    digest = hashlib.sha256()
    for arr in (x, labels):
        digest.update(str(arr.shape).encode())
        digest.update(str(arr.dtype).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def golden_key(model_fp: str, data_fp: str, config: CampaignConfig) -> str:
    """Identity of a golden run: model, data window, and census shape.

    Deliberately *coarser* than a campaign fingerprint: the golden run is
    the fault-free forward plus the injection-site census, so protection
    plans, BER points, seeds, RNG scheme and chunking all share one cache
    entry (protection only thins event rates — the clean pass is
    invariant).  Only fields that change the clean outputs or the census
    layout contribute: the model, the trimmed evaluation data, the
    injector kind and the fault model's structural flags.  Batch size is
    excluded — clean activations are batch-invariant.
    """
    fc = config.fault_config
    payload = {
        "model": model_fp,
        "data": data_fp,
        "injector": config.injector,
        "max_samples": config.max_samples,
        "semantics": fc.semantics.value,
        "convention": fc.convention.value,
        "amplify": fc.amplify_input_transform_adds,
    }
    return _digest(payload)[:32]


def point_key(
    model_fp: str,
    campaign_fp: str,
    data_fp: str,
    ber: float,
    seed: int,
    sample_slice: tuple[int, int] | None = None,
) -> str:
    """Checkpoint key for one (model, campaign, data, BER, seed) unit.

    ``sample_slice`` extends the identity to one sample window of the
    point; ``None`` (the whole set) reproduces the historical key, so
    pre-sharding checkpoints stay valid.
    """
    payload = {
        "model": model_fp,
        "campaign": campaign_fp,
        "data": data_fp,
        "ber": float(ber),
        "seed": int(seed),
    }
    if sample_slice is not None:
        payload["slice"] = [int(sample_slice[0]), int(sample_slice[1])]
    return _digest(payload)[:32]


def task_key(
    model_fp: str,
    data_fp: str,
    config: CampaignConfig,
    ber: float,
    seed: int,
    protection: ProtectionPlan | None = None,
    sample_slice: tuple[int, int] | None = None,
) -> str:
    """Checkpoint key for one :class:`~repro.runtime.tasks.TaskSpec`.

    The per-task protection plan enters through the campaign fingerprint
    via :meth:`ProtectionPlan.cache_key`, whose canonical (sorted,
    zero-free) form makes the key independent of fraction-map insertion
    order while any fraction *value* change produces a new key.  Per-layer
    protection *schemes* (``abft``/``tmr``) are part of that canonical
    form, so an ABFT-protected point never shares a key with the same
    point unprotected — while legacy scheme-free plans keep their
    pre-scheme keys bit-for-bit.  A task evaluated through
    :func:`run_sweep`'s shared-plan path and the same evaluation reached
    as an explicit task therefore share one key.
    """
    return point_key(
        model_fp,
        campaign_fingerprint(config, protection),
        data_fp,
        ber,
        seed,
        sample_slice=sample_slice,
    )


def adaptive_fingerprint(
    rule_identity: dict,
    knee_identity: dict | None = None,
    grid: list[float] | None = None,
) -> str:
    """Digest of an adaptive run's *driving* parameters (figure caches).

    Adaptive rounds never enter per-unit task keys — a (BER, seed) unit
    is the same pure computation whichever round scheduled it, so
    adaptive and fixed-grid runs deliberately share checkpoint entries.
    What *does* need an identity is the figure-level curve cache: which
    points a run evaluated (and with how many seeds) depends on the stop
    rule and on the knee-search window or explicit grid.  Pass the
    canonical ``identity()`` dicts (plain dicts, so this module never
    imports :mod:`repro.stats`); the digest suffixes the curve cache
    filename, keeping legacy fixed-grid cache keys untouched.
    """
    payload = {
        "rule": rule_identity,
        "knee": knee_identity,
        "grid": [float(b) for b in grid] if grid is not None else None,
    }
    return _digest(payload)[:16]


def batch_task_keys(
    model_fp: str,
    data_fp: str,
    config: CampaignConfig,
    tasks: list,
) -> list[str]:
    """Checkpoint keys for a batch of *point* tasks, one per task.

    Equivalent to ``[t.key(model_fp, data_fp, config) for t in tasks]``
    but computes each distinct protection plan's campaign fingerprint only
    once per batch: a Fig. 3 batch reuses each plan across all its seeds,
    and the TMR planner's speculative batches reuse each candidate plan
    the same way.  ``tasks`` must already be expanded to subtask
    granularity (no seed-batch tasks).
    """
    campaign_fps: dict[tuple | None, str] = {}
    keys = []
    for task in tasks:
        plan_id = task.protection.cache_key() if task.protection else None
        campaign_fp = campaign_fps.get(plan_id)
        if campaign_fp is None:
            campaign_fp = campaign_fingerprint(config, task.protection)
            campaign_fps[plan_id] = campaign_fp
        keys.append(
            point_key(
                model_fp, campaign_fp, data_fp, task.ber, task.seed,
                sample_slice=task.sample_slice,
            )
        )
    return keys
