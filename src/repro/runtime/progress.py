"""Streaming progress reporting for campaign sweeps.

The engine emits one event per completed unit; the reporter turns them
into human-readable lines on an arbitrary sink (stderr by default when
enabled, silent otherwise).  Kept deliberately free of terminal-control
sequences so output composes with logs and CI transcripts.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, TextIO

__all__ = [
    "ProgressEvent",
    "ProgressReporter",
    "ThroughputMeter",
    "stream_reporter",
    "null_reporter",
]


@dataclass(frozen=True)
class ProgressEvent:
    """One completed evaluation task within a batch.

    ``tag`` carries the task's label (e.g. ``"fault-free:c2"`` for a
    Fig. 3 layer task); sweep units leave it empty.
    """

    done: int
    total: int
    ber: float
    seed: int
    accuracy: float
    cached: bool
    elapsed: float
    tag: str = ""


#: A reporter is any callable consuming ProgressEvents.
ProgressReporter = Callable[[ProgressEvent], None]


def null_reporter(event: ProgressEvent) -> None:
    """Discard progress events (the default)."""


def stream_reporter(stream: TextIO | None = None) -> ProgressReporter:
    """Reporter writing one line per completed unit to ``stream``."""
    out = stream or sys.stderr

    def report(event: ProgressEvent) -> None:
        source = "cache" if event.cached else f"{event.elapsed:5.1f}s"
        label = f" [{event.tag}]" if event.tag else ""
        out.write(
            f"[campaign {event.done:>3}/{event.total}] "
            f"ber={event.ber:.2e} seed={event.seed} "
            f"acc={event.accuracy:.4f} ({source}){label}\n"
        )
        out.flush()

    return report


class ThroughputMeter:
    """Tracks wall-clock throughput of a sweep (units/second)."""

    def __init__(self) -> None:
        self.start = time.perf_counter()
        self.completed = 0

    def tick(self) -> None:
        """Record one completed unit."""
        self.completed += 1

    @property
    def elapsed(self) -> float:
        """Seconds since the meter was created."""
        return time.perf_counter() - self.start

    @property
    def rate(self) -> float:
        """Completed units per second (0.0 before the first completion)."""
        elapsed = self.elapsed
        return self.completed / elapsed if elapsed > 0 else 0.0
