"""SQLite-backed work queue: task lease, heartbeat, retry, quarantine.

:class:`WorkQueue` is the coordination substrate of the distributed
campaign backend (:mod:`repro.runtime.distributed`): a single SQLite file
inside the queue directory that any number of worker *processes* — on one
host over a shared filesystem — claim tasks from.  The queue stores only
task *identities* (the content-hash checkpoint key) plus a small opaque
JSON spec; the heavy evaluation payload (model, data, unit table) travels
out-of-band in the batch's payload file, and results travel back through
per-worker checkpoint shards.  Identical keys enqueue once — the queue
dedupes work exactly like the checkpoint dedupes results.

Protocol
--------
A task moves through four states::

    pending ──claim──▶ leased ──complete──▶ done
       ▲                 │ │
       │     fail (attempts < budget)
       └─────────────────┘ └──fail / stale reclaim (budget spent)──▶ quarantined

* **claim** atomically leases the oldest ``pending`` task — or a
  ``leased`` task whose lease has *expired* (its worker stopped
  heartbeating: crashed, was SIGKILLed, or lost the host) — to one owner
  for ``lease_timeout`` seconds, incrementing its attempt counter.
  Claims are serialized by an ``BEGIN IMMEDIATE`` transaction, so two
  concurrent claimants can never hold the same task while a lease is
  valid.
* **heartbeat** extends a held lease; workers beat a few times per
  timeout from a background thread so long evaluations are never
  reclaimed from a *live* worker.
* **complete** marks a task done.  Completion is accepted even from an
  owner whose lease has been reclaimed: results are content-addressed,
  so a double-computed task yields byte-identical rows and completing
  either copy is correct.
* **fail / quarantine** — a failed task returns to ``pending`` until its
  attempt budget (``max_attempts`` claims) is spent, then it is
  quarantined with the failing task key and last error recorded; a stale
  lease whose budget is already spent quarantines at reclaim time.
  Quarantined tasks are never claimed again — one poison task cannot
  wedge the queue.

Queue policy (``lease_timeout``, ``max_attempts``) is written to the
database by whoever creates it (the coordinator) and inherited by every
later opener (the workers), so policy lives in exactly one place.

Every mutating operation opens a short-lived connection: the queue object
is therefore safe to share across threads (the worker's heartbeat thread)
and trivially safe across ``fork``.  Timestamps use the wall clock
(``time.time``) because leases must be comparable *across processes*; an
injectable ``clock`` keeps the expiry logic unit-testable without
sleeping.
"""

from __future__ import annotations

import contextlib
import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, QueueContentionError
from repro.runtime.retry import RetryPolicy

__all__ = ["Lease", "QueueStats", "WorkQueue"]

#: Default bounded-retry policy for lock-contended SQLite operations:
#: quick, tightly capped backoffs *on top of* SQLite's own busy_timeout.
_IO_RETRY = RetryPolicy(max_attempts=5, base_delay=0.02, max_delay=0.5)

#: Task lifecycle states (``state`` column values).
STATE_PENDING = "pending"
STATE_LEASED = "leased"
STATE_DONE = "done"
STATE_QUARANTINED = "quarantined"

_DB_NAME = "queue.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tasks (
    rowid INTEGER PRIMARY KEY AUTOINCREMENT,
    key TEXT NOT NULL UNIQUE,
    spec TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    owner TEXT,
    lease_expiry REAL,
    error TEXT
);
CREATE TABLE IF NOT EXISTS meta (
    k TEXT PRIMARY KEY,
    v TEXT NOT NULL
);
"""


@dataclass(frozen=True)
class Lease:
    """One claimed task: what to compute and under which lease terms.

    ``attempt`` counts this claim (1 = first execution); ``expires`` is
    the wall-clock deadline after which the lease is reclaimable unless
    extended by :meth:`WorkQueue.heartbeat`.
    """

    key: str
    spec: dict
    attempt: int
    owner: str
    expires: float


@dataclass(frozen=True)
class QueueStats:
    """State counts of a queue at one point in time."""

    pending: int = 0
    leased: int = 0
    done: int = 0
    quarantined: int = 0

    @property
    def total(self) -> int:
        """All tasks ever enqueued (in any state)."""
        return self.pending + self.leased + self.done + self.quarantined

    @property
    def settled(self) -> bool:
        """True when no task can make further progress (done/quarantined)."""
        return self.pending == 0 and self.leased == 0


class WorkQueue:
    """Multi-process task queue with leases, bounded retry and quarantine.

    Parameters
    ----------
    root:
        Queue directory; the SQLite database lives at
        ``<root>/queue.sqlite`` and is created on first use.
    lease_timeout:
        Seconds a claim stays exclusive without a heartbeat.  Recorded in
        the database by the queue's *creator*; later openers inherit the
        recorded value (their argument is ignored), so coordinator policy
        governs every worker.
    max_attempts:
        Claim budget per task.  A task failed (or lease-reclaimed) with
        its budget spent is quarantined instead of retried.  Inherited
        from the creator like ``lease_timeout``.
    clock:
        Time source returning seconds (default ``time.time``).  Leases
        are compared across processes, so any replacement must be a wall
        clock; tests inject a fake to exercise expiry without sleeping.
    busy_timeout:
        Seconds SQLite itself blocks on a locked database before raising
        ``sqlite3.OperationalError`` (default 30).  Every queue operation
        additionally retries that error under a bounded backoff policy
        (``io_retry``), so transient lock storms are absorbed and only
        *pathological* contention surfaces — as a typed
        :class:`~repro.errors.QueueContentionError` rather than a raw
        SQLite exception.  Tests shrink this to exercise the contention
        path without waiting.
    io_retry:
        Optional :class:`repro.runtime.RetryPolicy` for the per-operation
        contention retry (default: 5 attempts, 20 ms base backoff).
        Distinct from ``max_attempts``, which budgets *task* retries.
    """

    def __init__(
        self,
        root: str | Path,
        lease_timeout: float = 30.0,
        max_attempts: int = 3,
        clock=time.time,
        busy_timeout: float = 30.0,
        io_retry: RetryPolicy | None = None,
    ):
        if lease_timeout <= 0:
            raise ConfigurationError(
                f"lease_timeout must be > 0 seconds, got {lease_timeout}"
            )
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if busy_timeout <= 0:
            raise ConfigurationError(
                f"busy_timeout must be > 0 seconds, got {busy_timeout}"
            )
        self.root = Path(root)
        self.db_path = self.root / _DB_NAME
        self.clock = clock
        self.busy_timeout = float(busy_timeout)
        self._io_retry = io_retry if io_retry is not None else _IO_RETRY
        self.root.mkdir(parents=True, exist_ok=True)

        def _setup():
            """Create the schema and record first-creator policy."""
            with self._connect() as conn:
                conn.executescript(_SCHEMA)
                # First creator wins: policy is stored once and shared.
                with self._transaction(conn):
                    conn.execute(
                        "INSERT OR IGNORE INTO meta (k, v) VALUES (?, ?)",
                        ("lease_timeout", repr(float(lease_timeout))),
                    )
                    conn.execute(
                        "INSERT OR IGNORE INTO meta (k, v) VALUES (?, ?)",
                        ("max_attempts", str(int(max_attempts))),
                    )
                return dict(conn.execute("SELECT k, v FROM meta"))

        rows = self._guarded("open", _setup)
        self.lease_timeout = float(rows["lease_timeout"])
        self.max_attempts = int(rows["max_attempts"])

    def _connect(self):
        """Short-lived autocommit connection, closed on context exit.

        One connection per operation keeps the queue object safe to use
        from the worker's heartbeat thread and across ``fork`` — SQLite
        connections are bound to a thread/process, the database file is
        not.
        """
        conn = sqlite3.connect(
            str(self.db_path),
            timeout=self.busy_timeout,
            isolation_level=None,
        )
        conn.execute(f"PRAGMA busy_timeout = {int(self.busy_timeout * 1000)}")
        return contextlib.closing(conn)

    def _guarded(self, what: str, op):
        """Run one queue operation under the bounded contention retry.

        ``database is locked`` / ``database is busy`` errors — another
        process holding the write lock past SQLite's own
        ``busy_timeout`` — are retried with deterministic backoff up to
        the I/O policy's attempt budget; every operation here is safe to
        re-run (transactions roll back on error, the statements are
        idempotent).  Exhaustion surfaces as a typed
        :class:`~repro.errors.QueueContentionError` naming the operation
        and database, so callers can branch on contention as a failure
        class; any *other* ``OperationalError`` (corruption, bad schema)
        propagates untouched on the first occurrence.
        """
        attempt = 1
        while True:
            try:
                return op()
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                if attempt >= self._io_retry.max_attempts:
                    raise QueueContentionError(
                        f"work queue {self.db_path}: {what!r} still lock-"
                        f"contended after {attempt} attempt(s) with backoff "
                        f"({exc}); another process is holding the database "
                        "write lock pathologically long"
                    ) from exc
                time.sleep(self._io_retry.backoff(attempt, what))
                attempt += 1

    @staticmethod
    @contextlib.contextmanager
    def _transaction(conn: sqlite3.Connection):
        """``BEGIN IMMEDIATE`` write transaction; rolls back on error.

        ``BEGIN IMMEDIATE`` takes the write lock up front, serializing
        concurrent claimants: the read-decide-update sequence inside a
        claim is atomic with respect to every other queue writer.
        """
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    # --- producer side ------------------------------------------------------------
    def enqueue(self, items) -> int:
        """Add ``(key, spec_dict)`` tasks; returns how many were *new*.

        Keys are content hashes, so re-enqueueing an existing key — from
        a retried batch, or a second campaign sharing units with a first
        — is a no-op: the queue holds one row per distinct computation,
        whatever state it is already in.
        """
        rows = [(key, json.dumps(spec, sort_keys=True)) for key, spec in items]

        def op():
            """Insert-or-ignore the rows; count how many were new."""
            with self._connect() as conn:
                with self._transaction(conn):
                    before = conn.execute(
                        "SELECT COUNT(*) FROM tasks"
                    ).fetchone()[0]
                    conn.executemany(
                        "INSERT OR IGNORE INTO tasks (key, spec) VALUES (?, ?)",
                        rows,
                    )
                    after = conn.execute(
                        "SELECT COUNT(*) FROM tasks"
                    ).fetchone()[0]
            return after - before

        return self._guarded("enqueue", op)

    # --- worker side --------------------------------------------------------------
    def claim(self, owner: str, now: float | None = None) -> Lease | None:
        """Atomically lease the oldest claimable task, or return ``None``.

        Claimable = ``pending``, or ``leased`` with an expired lease
        (stale-lease reclaim).  A reclaimed task whose attempt budget is
        already spent is quarantined instead — its worker died (or
        stalled past its lease) ``max_attempts`` times, which is as
        poisonous as failing that many times — and the scan continues to
        the next claimable task.  ``None`` means nothing is claimable
        *right now*; the queue may still hold valid leases
        (:meth:`stats` distinguishes drained from busy).
        """
        now = self.clock() if now is None else now

        def op():
            """Scan-and-lease inside one BEGIN IMMEDIATE transaction."""
            with self._connect() as conn:
                with self._transaction(conn):
                    while True:
                        row = conn.execute(
                            "SELECT key, spec, attempts, owner FROM tasks "
                            "WHERE state = ? OR (state = ? AND lease_expiry <= ?) "
                            "ORDER BY rowid LIMIT 1",
                            (STATE_PENDING, STATE_LEASED, now),
                        ).fetchone()
                        if row is None:
                            return None
                        key, spec, attempts, prev_owner = row
                        if attempts >= self.max_attempts:
                            conn.execute(
                                "UPDATE tasks SET state = ?, owner = NULL, "
                                "lease_expiry = NULL, error = ? WHERE key = ?",
                                (
                                    STATE_QUARANTINED,
                                    f"task {key} quarantined: lease expired after "
                                    f"{attempts} attempt(s) (last owner "
                                    f"{prev_owner!r}) and the retry budget of "
                                    f"{self.max_attempts} is spent",
                                    key,
                                ),
                            )
                            continue
                        conn.execute(
                            "UPDATE tasks SET state = ?, owner = ?, "
                            "lease_expiry = ?, attempts = attempts + 1 "
                            "WHERE key = ?",
                            (STATE_LEASED, owner, now + self.lease_timeout, key),
                        )
                        return Lease(
                            key=key,
                            spec=json.loads(spec),
                            attempt=attempts + 1,
                            owner=owner,
                            expires=now + self.lease_timeout,
                        )

        return self._guarded("claim", op)

    def heartbeat(self, key: str, owner: str, now: float | None = None) -> bool:
        """Extend a held lease; returns False when the lease was lost.

        A False return means the task expired and was reclaimed (or
        finished) elsewhere — the worker may keep computing (completion
        stays correct, results being content-addressed) but should not
        assume exclusivity.
        """
        now = self.clock() if now is None else now

        def op():
            """Extend the lease expiry if still held by this owner."""
            with self._connect() as conn:
                cursor = conn.execute(
                    "UPDATE tasks SET lease_expiry = ? "
                    "WHERE key = ? AND owner = ? AND state = ?",
                    (now + self.lease_timeout, key, owner, STATE_LEASED),
                )
                return cursor.rowcount == 1

        return self._guarded("heartbeat", op)

    def complete(self, key: str, owner: str) -> None:
        """Mark a task done (idempotent, accepted even from a lost lease).

        Two workers can legitimately complete one task — the second
        computed a reclaimed copy — and their shard rows are identical by
        content addressing, so completion never checks ownership.
        """
        def op():
            """Mark the row done regardless of current lease ownership."""
            with self._connect() as conn:
                conn.execute(
                    "UPDATE tasks SET state = ?, owner = ?, lease_expiry = NULL, "
                    "error = NULL WHERE key = ?",
                    (STATE_DONE, owner, key),
                )

        self._guarded("complete", op)

    def fail(
        self, key: str, owner: str, error: str, now: float | None = None
    ) -> bool:
        """Record a failed execution; returns True when it quarantined.

        Within budget the task returns to ``pending`` (any worker may
        retry it); once ``max_attempts`` claims have failed it is
        quarantined with the failing task key and this error recorded,
        and will never be claimed again.
        """
        def op():
            """Requeue within budget, quarantine past it, atomically."""
            with self._connect() as conn:
                with self._transaction(conn):
                    row = conn.execute(
                        "SELECT attempts FROM tasks WHERE key = ? AND state = ?",
                        (key, STATE_LEASED),
                    ).fetchone()
                    if row is None:
                        return False
                    attempts = row[0]
                    if attempts >= self.max_attempts:
                        conn.execute(
                            "UPDATE tasks SET state = ?, owner = NULL, "
                            "lease_expiry = NULL, error = ? WHERE key = ?",
                            (
                                STATE_QUARANTINED,
                                f"task {key} quarantined after {attempts} "
                                f"attempt(s); last error ({owner}): {error}",
                                key,
                            ),
                        )
                        return True
                    conn.execute(
                        "UPDATE tasks SET state = ?, owner = NULL, "
                        "lease_expiry = NULL, error = ? WHERE key = ?",
                        (STATE_PENDING, error, key),
                    )
                    return False

        return self._guarded("fail", op)

    # --- observation --------------------------------------------------------------
    def stats(self) -> QueueStats:
        """Current per-state task counts."""

        def op():
            """Group-count the task states."""
            with self._connect() as conn:
                return conn.execute(
                    "SELECT state, COUNT(*) FROM tasks GROUP BY state"
                ).fetchall()

        rows = self._guarded("stats", op)
        return QueueStats(**{state: count for state, count in rows})

    def has_work(self) -> bool:
        """True while any task is pending or leased (progress possible)."""

        def op():
            """Probe for any pending/leased row."""
            with self._connect() as conn:
                return conn.execute(
                    "SELECT 1 FROM tasks WHERE state IN (?, ?) LIMIT 1",
                    (STATE_PENDING, STATE_LEASED),
                ).fetchone()

        return self._guarded("has_work", op) is not None

    def quarantined(self) -> list[tuple[str, int, str]]:
        """``(key, attempts, error)`` for every quarantined task."""

        def op():
            """List quarantined rows in enqueue order."""
            with self._connect() as conn:
                return list(
                    conn.execute(
                        "SELECT key, attempts, error FROM tasks "
                        "WHERE state = ? ORDER BY rowid",
                        (STATE_QUARANTINED,),
                    )
                )

        return self._guarded("quarantined", op)

    def task(self, key: str) -> dict | None:
        """Full row for one task (state/attempts/owner/...), or None."""

        def op():
            """Fetch the full row for ``key``."""
            with self._connect() as conn:
                return conn.execute(
                    "SELECT key, spec, state, attempts, owner, lease_expiry, "
                    "error FROM tasks WHERE key = ?",
                    (key,),
                ).fetchone()

        row = self._guarded("task", op)
        if row is None:
            return None
        return {
            "key": row[0],
            "spec": json.loads(row[1]),
            "state": row[2],
            "attempts": row[3],
            "owner": row[4],
            "lease_expiry": row[5],
            "error": row[6],
        }
