"""Unified retry policy: bounded attempts, deterministic backoff, deadlines.

Before this module, every part of the campaign runtime handled transient
infrastructure faults with its own ad-hoc rules: the pool backend
propagated the first unit exception and lost the rest of the batch, the
distributed queue carried a separate ``max_attempts`` budget, and nothing
retried a failed checkpoint flush.  :class:`RetryPolicy` is the single
policy object all of them now share:

* **Attempt budget** — ``max_attempts`` claims/executions per unit, the
  same number the distributed queue uses for lease quarantine, so "how
  many times may this computation fail" has exactly one answer per
  engine.
* **Exponential backoff with deterministic jitter** — ``backoff(attempt,
  key)`` returns ``base_delay * 2**(attempt-1)`` capped at ``max_delay``,
  multiplied by a jitter factor drawn from the same keyed-Philox
  construction as the fault injectors (:func:`repro.utils.rng.site_rng`):
  the delay is a pure function of ``(key, attempt)``, so two reruns of a
  chaos campaign sleep identically and stay bit-reproducible in wall
  clock *shape*, not just in results.
* **Transient-vs-permanent classification** — :meth:`is_transient` maps
  the :mod:`repro.errors` taxonomy onto the retry decision: a
  :class:`~repro.errors.TransientError` (chaos injections, queue
  contention, deadline aborts, lost workers) is worth retrying; a
  :class:`~repro.errors.ConfigurationError` or any other logic error
  would fail identically on every attempt and is surfaced immediately.
* **Per-unit deadline** — ``deadline`` seconds per unit execution,
  enforced inside the worker by the :func:`unit_deadline` watchdog
  (SIGALRM-based, POSIX main-thread only, a no-op elsewhere), turning a
  hung unit into a retryable :class:`~repro.errors.UnitDeadlineError`
  instead of a stalled campaign.

The policy is a frozen dataclass: safe to share between the engine, the
queue and every worker process, and safe to pickle into the distributed
backend's batch payload.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from dataclasses import dataclass

from repro.errors import ConfigurationError, TransientError, UnitDeadlineError
from repro.utils.rng import site_rng

__all__ = ["RetryPolicy", "unit_deadline"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, how spaced, and for which errors work is retried.

    Parameters
    ----------
    max_attempts:
        Execution/claim budget per unit (>= 1).  The pool backend re-runs
        a transiently failed unit until this many attempts are spent and
        then quarantines it; the distributed queue uses the same number
        as its lease claim budget.
    base_delay:
        Backoff before the *second* attempt, in seconds.  Attempt ``n``
        waits ``base_delay * 2**(n-1)`` (capped at ``max_delay``) times
        the jitter factor.
    max_delay:
        Upper bound on any single backoff sleep, in seconds.
    jitter:
        Jitter half-width as a fraction of the delay (``0.25`` means the
        realized delay is uniform in ``[0.75, 1.25] * delay``).  The draw
        is keyed by ``(key, attempt)`` through the counter RNG, so it is
        deterministic per unit — reproducible chaos runs sleep the same.
    deadline:
        Optional per-unit wall-clock budget in seconds, enforced by
        :func:`unit_deadline` inside the executing worker.  ``None``
        disables the watchdog.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 5.0
    jitter: float = 0.25
    deadline: float | None = None

    def __post_init__(self):
        """Validate budgets and delays at construction."""
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError(
                f"backoff delays must be >= 0 seconds, got "
                f"base_delay={self.base_delay} max_delay={self.max_delay}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be > 0 seconds (or None), got {self.deadline}"
            )

    @staticmethod
    def is_transient(exc: BaseException) -> bool:
        """True when ``exc`` is worth retrying under this policy.

        Transient means the failure is an infrastructure condition —
        anything in the :class:`~repro.errors.TransientError` branch of
        the taxonomy (chaos injections, queue contention, deadline
        aborts, lost workers) plus bare ``OSError``/``IOError`` (torn
        writes, full disks, vanished files on shared mounts).  Logic
        errors (:class:`~repro.errors.ConfigurationError`, shape/type
        errors, arbitrary exceptions from user code) are permanent: the
        unit is a pure function of its spec, so they recur identically.
        """
        return isinstance(exc, (TransientError, OSError))

    def backoff(self, attempt: int, key: str = "") -> float:
        """Deterministic backoff delay (seconds) before retrying ``key``.

        ``attempt`` is the attempt that just failed (1 = first
        execution).  Exponential in the attempt number, capped at
        ``max_delay``, jittered by a keyed-Philox draw that is a pure
        function of ``(key, attempt)`` — no shared RNG state, so any
        process computes the same schedule for the same unit.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        delay = min(self.base_delay * (2.0 ** (attempt - 1)), self.max_delay)
        if delay <= 0.0:
            return 0.0
        if self.jitter == 0.0:
            return delay
        u = float(site_rng(0, "retry-backoff", key, attempt).random())
        return delay * (1.0 - self.jitter + 2.0 * self.jitter * u)

    def identity(self) -> dict:
        """JSON-serializable form (engine metadata, payload transport)."""
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
            "deadline": self.deadline,
        }

    @classmethod
    def from_identity(cls, doc: dict) -> "RetryPolicy":
        """Inverse of :meth:`identity`."""
        return cls(
            max_attempts=int(doc.get("max_attempts", 3)),
            base_delay=float(doc.get("base_delay", 0.05)),
            max_delay=float(doc.get("max_delay", 5.0)),
            jitter=float(doc.get("jitter", 0.25)),
            deadline=(
                None
                if doc.get("deadline") is None
                else float(doc["deadline"])
            ),
        )


@contextlib.contextmanager
def unit_deadline(seconds: float | None, what: str = "unit"):
    """Abort the enclosed block after ``seconds`` with a deadline error.

    A SIGALRM watchdog: entered around one unit evaluation in a worker
    process, it arms an interval timer and raises
    :class:`~repro.errors.UnitDeadlineError` (a transient error — the
    retry policy re-runs the unit) if the block outlives its budget.
    Silently a no-op when ``seconds`` is None, when not on the process's
    main thread (signal handlers can only be installed there), or on
    platforms without ``SIGALRM`` — a watchdog that cannot be armed must
    not break the evaluation it was meant to guard.

    The previous handler and timer are restored on exit, so nesting an
    engine's serial path inside a user's own alarm handling stays safe.
    """
    if (
        seconds is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        """SIGALRM handler: turn the stall into a typed, transient error."""
        raise UnitDeadlineError(
            f"{what} exceeded its {seconds:g}s deadline and was aborted "
            "by the watchdog (transient: the retry policy re-runs it)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
