"""Task specifications: the engine's generalized unit of work.

PR 1's engine understood exactly one shape of work — a (BER, seed) point of
an accuracy sweep, always evaluated under one shared protection plan.  The
paper's remaining analyses do not fit that shape: layer-wise vulnerability
(Fig. 3) evaluates one *protection plan per layer*, operation-type
sensitivity (Fig. 4) evaluates three plans, and the TMR planner (Fig. 5)
evaluates a freshly grown plan every iteration.

:class:`TaskSpec` captures the general unit in two shapes:

* a **point task** (``seed=``) — one protected evaluation of a model at a
  (BER, seed) point, producing a
  :class:`~repro.faultsim.campaign.SeedPointResult`;
* a **seed-batch task** (``seeds=``) — the same evaluation over a whole
  tuple of seeds, which the engine splits into per-seed *subtasks*, shards
  across its worker pool, and reduces (in seed order, with the exact serial
  statistics code) into one
  :class:`~repro.faultsim.campaign.CampaignResult`.

Under the counter RNG scheme a point task can shard once more, along the
*sample* axis: :meth:`TaskSpec.sample_subtasks` expands a (BER, seed)
point into **sample-slice subtasks** (``sample_slice=(start, stop)``),
each scoring one contiguous window of the evaluation set via
:func:`~repro.faultsim.campaign.evaluate_sample_slice`.  The engine
reduces a slice group back with
:func:`~repro.faultsim.campaign.combine_slice_results` — bit-identical to
the unsliced point for any slice size, which is what lets a single
(BER, seed) point fill a whole worker pool.

The task's *identity* — what makes a checkpoint entry reusable — always
lives at subtask granularity: each (BER, seed) subtask is keyed by the
content hash produced by :meth:`TaskSpec.key`, which binds the model
fingerprint, the evaluation-data fingerprint, the campaign configuration,
the point, the plan and (for slice subtasks) the sample window.  A
seed-batch task therefore has no key of its own; a resumed engine
recomputes only the *missing seeds* of an interrupted batch — or the
missing *slices* of an interrupted point — and a batch task shares its
per-seed checkpoint entries with the equivalent point tasks.  The model
hash is bound by the engine at dispatch time (tasks are model-relative;
:meth:`CampaignEngine.evaluate_tasks` evaluates a batch of tasks against
one model), and the ``tag`` deliberately does not contribute: the same
evaluation reached from different figures shares one cache entry.

The adaptive drivers (:mod:`repro.stats.adaptive`) lean on exactly that
identity rule: an adaptive round tags its tasks ``"<tag>:r<round>"`` for
progress display, but because rounds are scheduling — not content — the
round number never enters the key.  A (BER, seed) unit evaluated by round
3 of an adaptive sweep, by a fixed-grid run, or on resume after a kill is
one checkpoint entry, and legacy keys are untouched.  Seeds an adaptive
run extends *past* the configured campaign seeds get distinct keys
naturally, the seed being part of every point key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.faultsim.campaign import CampaignConfig, validate_ber
from repro.faultsim.protection import ProtectionPlan
from repro.runtime.hashing import task_key

__all__ = ["TaskSpec"]


@dataclass(frozen=True)
class TaskSpec:
    """One protected evaluation: a (BER, seed(s)) point under a plan.

    Exactly one of ``seed`` (point task) and ``seeds`` (seed-batch task)
    must be provided.

    Parameters
    ----------
    ber:
        Bit error rate of the fault injection.
    seed:
        RNG seed owned by this unit; together with ``ber`` and the plan it
        fully determines the result (the unit is pure).  Mutually
        exclusive with ``seeds``.
    protection:
        Optional :class:`ProtectionPlan` applied during this evaluation
        only.  ``None`` means unprotected (the sweep default).
    tag:
        Human-readable label (e.g. ``"fault-free:c2"`` or ``"tmr-iter3"``)
        surfaced in progress events.  Not part of the task's identity.
    seeds:
        Seed tuple for a seed-batch task.  The engine shards the batch
        into one per-seed subtask each (see :meth:`subtasks`) and reduces
        the results into a single
        :class:`~repro.faultsim.campaign.CampaignResult` in seed order.
    sample_slice:
        Optional ``(start, stop)`` window into the evaluation samples:
        the task scores only those samples
        (:class:`~repro.faultsim.campaign.SampleSliceResult`).  Only valid
        on point tasks; produced by :meth:`sample_subtasks` when the
        engine sample-shards a batch.
    """

    ber: float
    seed: int | None = None
    protection: ProtectionPlan | None = None
    tag: str = field(default="", compare=False)
    seeds: tuple[int, ...] | None = None
    sample_slice: tuple[int, int] | None = None

    def __post_init__(self):
        """Validate the BER and the point/seed-batch shape invariant.

        The BER is validated here — the task boundary — because a NaN or
        out-of-range value would otherwise be content-hashed into a
        checkpoint key and persist as a row no resume can reconcile.
        """
        object.__setattr__(self, "ber", validate_ber(self.ber))
        if (self.seed is None) == (self.seeds is None):
            raise ConfigurationError(
                "TaskSpec requires exactly one of seed= (point task) or "
                f"seeds= (seed-batch task); got seed={self.seed!r} "
                f"seeds={self.seeds!r}"
            )
        if self.seeds is not None:
            if len(self.seeds) == 0:
                raise ConfigurationError("TaskSpec seeds= must be non-empty")
            object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if self.sample_slice is not None:
            if self.seed is None:
                raise ConfigurationError(
                    "sample_slice= is only valid on point tasks (seed=); "
                    "expand a seed batch with subtasks() first"
                )
            start, stop = (int(v) for v in self.sample_slice)
            if start < 0 or stop <= start:
                raise ConfigurationError(
                    f"sample_slice must satisfy 0 <= start < stop, "
                    f"got ({start}, {stop})"
                )
            object.__setattr__(self, "sample_slice", (start, stop))

    @property
    def is_batch(self) -> bool:
        """True for a seed-batch task (reduced to a CampaignResult)."""
        return self.seeds is not None

    def subtasks(self) -> tuple["TaskSpec", ...]:
        """The point tasks this task shards into, in seed order.

        A point task is its own (singleton) subtask; a seed-batch task
        yields one point task per seed, sharing its BER, plan and tag.
        The engine dispatches and checkpoints at this granularity.
        """
        if self.seeds is None:
            return (self,)
        return tuple(
            TaskSpec(
                ber=self.ber, seed=seed, protection=self.protection, tag=self.tag
            )
            for seed in self.seeds
        )

    def sample_subtasks(self, n_samples: int, shard: int) -> tuple["TaskSpec", ...]:
        """The sample-slice tasks this point task shards into.

        Splits the ``[0, n_samples)`` evaluation window into consecutive
        slices of ``shard`` samples (the last slice may be shorter).  A
        shard at least as large as the sample set returns the task
        unchanged — no slicing overhead, and the checkpoint key stays the
        plain point key.  Seed-batch tasks must be expanded with
        :meth:`subtasks` first; tasks already carrying a slice are their
        own singleton expansion.
        """
        if self.is_batch:
            raise ConfigurationError(
                "expand a seed-batch TaskSpec with subtasks() before "
                "sample-sharding"
            )
        if shard < 1:
            raise ConfigurationError(f"sample shard must be >= 1, got {shard}")
        if self.sample_slice is not None or shard >= n_samples:
            return (self,)
        return tuple(
            TaskSpec(
                ber=self.ber,
                seed=self.seed,
                protection=self.protection,
                tag=self.tag,
                sample_slice=(start, min(start + shard, n_samples)),
            )
            for start in range(0, n_samples, shard)
        )

    def key(self, model_fp: str, data_fp: str, config: CampaignConfig) -> str:
        """Content-addressed checkpoint key for this point task.

        ``model_fp``/``data_fp`` come from :func:`model_fingerprint` /
        :func:`data_fingerprint`; the engine computes them once per batch.
        A slice subtask's key additionally binds its sample window (a
        slice result is never served to a different window, nor to the
        unsliced point).  Seed-batch tasks have no key of their own —
        their identity lives in their :meth:`subtasks` — so calling this
        on one raises :class:`~repro.errors.ConfigurationError`.
        """
        if self.is_batch:
            raise ConfigurationError(
                "a seed-batch TaskSpec has no single key; key its subtasks()"
            )
        return task_key(
            model_fp, data_fp, config, self.ber, self.seed, self.protection,
            sample_slice=self.sample_slice,
        )
