"""Task specifications: the engine's generalized unit of work.

PR 1's engine understood exactly one shape of work — a (BER, seed) point of
an accuracy sweep, always evaluated under one shared protection plan.  The
paper's remaining analyses do not fit that shape: layer-wise vulnerability
(Fig. 3) evaluates one *protection plan per layer*, operation-type
sensitivity (Fig. 4) evaluates three plans, and the TMR planner (Fig. 5)
evaluates a freshly grown plan every iteration.

:class:`TaskSpec` captures the general unit: one protected evaluation of a
model at a (BER, seed) point under an optional :class:`ProtectionPlan`,
labelled with a free-form ``tag`` for progress reporting.  The task's
*identity* — what makes a checkpoint entry reusable — is the content hash
produced by :meth:`TaskSpec.key`, which binds the model fingerprint, the
evaluation-data fingerprint, the campaign configuration, the point and the
plan.  The model hash is bound by the engine at dispatch time (tasks are
model-relative; :meth:`CampaignEngine.evaluate_tasks` evaluates a batch of
tasks against one model), and the ``tag`` deliberately does not contribute:
the same evaluation reached from different figures shares one cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faultsim.campaign import CampaignConfig
from repro.faultsim.protection import ProtectionPlan
from repro.runtime.hashing import task_key

__all__ = ["TaskSpec"]


@dataclass(frozen=True)
class TaskSpec:
    """One protected evaluation: a (BER, seed) point under a protection plan.

    Parameters
    ----------
    ber:
        Bit error rate of the fault injection.
    seed:
        RNG seed owned by this unit; together with ``ber`` and the plan it
        fully determines the result (the unit is pure).
    protection:
        Optional :class:`ProtectionPlan` applied during this evaluation
        only.  ``None`` means unprotected (the sweep default).
    tag:
        Human-readable label (e.g. ``"fault-free:c2"`` or ``"tmr-iter3"``)
        surfaced in progress events.  Not part of the task's identity.
    """

    ber: float
    seed: int
    protection: ProtectionPlan | None = None
    tag: str = field(default="", compare=False)

    def key(self, model_fp: str, data_fp: str, config: CampaignConfig) -> str:
        """Content-addressed checkpoint key for this task.

        ``model_fp``/``data_fp`` come from :func:`model_fingerprint` /
        :func:`data_fingerprint`; the engine computes them once per batch.
        """
        return task_key(
            model_fp, data_fp, config, self.ber, self.seed, self.protection
        )
