"""Sequential statistics for adaptive campaign sampling.

Confidence intervals over the correct/total counts the campaign runtime
already produces (:mod:`repro.stats.intervals`), a deterministic
sequential early-stop rule per (BER, plan) point
(:mod:`repro.stats.sequential`), and the adaptive sweep / BER-knee
bisection drivers that replace fixed BER grids
(:mod:`repro.stats.adaptive`).  The determinism contract — stopping
decisions depend only on checkpoint-ordered per-seed results, never on
pool arrival order — is documented in ``docs/RUNTIME.md`` (*Adaptive
sampling & early stopping*).
"""

from repro.stats.adaptive import (
    AdaptivePoint,
    AdaptiveSweepResult,
    KneeConfig,
    KneeResult,
    adaptive_sweep,
    extended_seeds,
    knee_search,
)
from repro.stats.intervals import (
    ConfidenceInterval,
    INTERVAL_METHODS,
    binomial_interval,
    empirical_bernstein_interval,
    normal_quantile,
    wilson_interval,
)
from repro.stats.sequential import (
    SequentialAccuracy,
    StopRule,
    exact_correct_count,
)

__all__ = [
    "AdaptivePoint",
    "AdaptiveSweepResult",
    "ConfidenceInterval",
    "INTERVAL_METHODS",
    "KneeConfig",
    "KneeResult",
    "SequentialAccuracy",
    "StopRule",
    "adaptive_sweep",
    "binomial_interval",
    "empirical_bernstein_interval",
    "exact_correct_count",
    "extended_seeds",
    "knee_search",
    "normal_quantile",
    "wilson_interval",
]
