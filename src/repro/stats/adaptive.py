"""Adaptive campaign driving: early-stopped sweeps and BER-knee search.

Two drivers sit on top of the sequential stop rule
(:mod:`repro.stats.sequential`) and the campaign engine:

* :func:`adaptive_sweep` — evaluate a set of BER points, adding seeds in
  deterministic *rounds* until every point's confidence interval is
  inside the target half-width (or its seed budget is spent).  Settled
  points (typically the flat low-BER region) stop at ``min_seeds``; only
  points near the accuracy cliff spend the full ``max_seeds`` budget.
* :func:`knee_search` — replace a fixed BER grid entirely: bisect the
  accuracy knee in log-BER space, evaluating each probe adaptively, so
  figure sweeps concentrate their budget where the curve actually bends
  (Barabasz & Gregg's error analysis makes the same argument for
  Winograd error growth).

Determinism
-----------
Both drivers are deterministic by construction, for any worker count,
``--shard-samples`` setting and ``--replay`` mode:

* every scheduled unit is an ordinary engine point task — bit-identical
  across execution strategies by the runtime's existing contract;
* stop decisions consume per-seed results in canonical seed order at
  round barriers (:class:`~repro.stats.sequential.SequentialAccuracy`),
  never in pool-arrival order;
* the bisection midpoint is pure float arithmetic on accuracies that are
  themselves deterministic.

Adaptive units deliberately share checkpoint keys with fixed-grid units:
a (BER, seed) evaluation is the same pure computation no matter which
round — or which driver — scheduled it, so adaptive runs resume from (and
feed) the same checkpoint as everything else.  Extended seeds past the
campaign's configured list (:func:`extended_seeds`) get distinct keys
naturally, the seed being part of every point key.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.faultsim.campaign import (
    CampaignConfig,
    CampaignResult,
    combine_seed_results,
)
from repro.faultsim.protection import ProtectionPlan
from repro.quantized.qmodel import QuantizedModel
from repro.runtime.engine import CampaignEngine
from repro.runtime.tasks import TaskSpec
from repro.stats.intervals import ConfidenceInterval
from repro.stats.sequential import (
    SequentialAccuracy,
    StopRule,
    exact_correct_count,
)

__all__ = [
    "AdaptivePoint",
    "AdaptiveSweepResult",
    "KneeConfig",
    "KneeResult",
    "adaptive_sweep",
    "extended_seeds",
    "knee_search",
]


def extended_seeds(seeds: tuple[int, ...], count: int) -> tuple[int, ...]:
    """The canonical seed sequence an adaptive point draws from.

    The campaign's configured seeds come first (so the adaptive estimate
    at a settled point is computed from exactly the seeds a fixed-grid
    run would use, sharing their checkpoint entries); further seeds
    continue consecutively from ``max(seeds) + 1``, which cannot collide
    with the configured list.  Deterministic in its inputs — the sequence
    is part of the determinism contract.
    """
    seeds = tuple(int(s) for s in seeds)
    if count < 1:
        raise ConfigurationError(f"extended_seeds needs count >= 1, got {count}")
    if count <= len(seeds):
        return seeds[:count]
    nxt = max(seeds) + 1 if seeds else 0
    return seeds + tuple(range(nxt, nxt + count - len(seeds)))


@dataclass
class AdaptivePoint:
    """One BER point's early-stopped estimate.

    ``result`` is the ordinary :class:`CampaignResult` reduced from the
    first ``seeds_used`` seeds (the stop prefix); ``seeds_evaluated``
    additionally counts round overshoot — checkpointed and reusable, but
    never part of the estimate.
    """

    ber: float
    result: CampaignResult
    seeds_used: int
    seeds_evaluated: int
    stopped_early: bool
    interval: ConfidenceInterval

    def to_dict(self) -> dict:
        """JSON-serializable form (figure artifacts)."""
        return {
            "ber": self.ber,
            "result": self.result.to_dict(),
            "seeds_used": self.seeds_used,
            "seeds_evaluated": self.seeds_evaluated,
            "stopped_early": self.stopped_early,
            "interval": self.interval.to_dict(),
        }


@dataclass
class AdaptiveSweepResult:
    """An adaptive sweep's points plus its unit-economy bookkeeping.

    The unit counters aggregate the engine's per-round
    :class:`~repro.runtime.engine.SweepStats` — at *subtask* granularity
    (seed units, or seed x slice units under sample sharding), which is
    what the saved-samples ratio in the benchmark report compares against
    a fixed-grid run.
    """

    points: list[AdaptivePoint]
    rounds: int
    total_units: int
    computed_units: int
    cached_units: int

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "points": [p.to_dict() for p in self.points],
            "rounds": self.rounds,
            "total_units": self.total_units,
            "computed_units": self.computed_units,
            "cached_units": self.cached_units,
        }


def adaptive_sweep(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    bers: list[float],
    config: CampaignConfig | None = None,
    rule: StopRule | None = None,
    protection: ProtectionPlan | None = None,
    engine: CampaignEngine | None = None,
    tag: str = "adaptive",
    on_unit=None,
) -> AdaptiveSweepResult:
    """Evaluate BER points with per-point sequential early stopping.

    Seeds are scheduled in deterministic rounds: round 0 evaluates
    ``rule.min_seeds`` seeds for every point (all points batched into one
    engine call, so the pool fills across points), each later round adds
    ``rule.round_seeds`` seeds to every still-undecided point.  After
    each round barrier the per-seed counts are pushed into the point's
    :class:`~repro.stats.sequential.SequentialAccuracy` in canonical seed
    order; a point whose interval is inside ``rule.halfwidth`` stops
    contributing units.  Estimates use each point's stop prefix only.

    ``on_unit`` is forwarded to the engine's ``on_result`` observation
    hook (per completed subtask, arrival order); it can watch progress
    but — by the determinism contract — never influences scheduling.

    Returns an :class:`AdaptiveSweepResult` with points in ``bers``
    order.  Results are bit-identical for any worker count, sample-shard
    setting and replay mode, and resume from the engine's checkpoint like
    any other batch.
    """
    config = config or CampaignConfig()
    rule = rule or StopRule()
    engine = engine if engine is not None else CampaignEngine(workers=1)
    n_samples = (
        len(x) if config.max_samples is None else min(len(x), config.max_samples)
    )
    seeds = extended_seeds(config.seeds, rule.max_seeds)
    trackers = [SequentialAccuracy(rule) for _ in bers]
    per_seed: list[list] = [[] for _ in bers]
    rounds = total = computed = cached = 0
    while True:
        batch: list[TaskSpec] = []
        owners: list[int] = []
        for i, ber in enumerate(bers):
            if trackers[i].decided:
                continue
            have = len(per_seed[i])
            take = (
                rule.min_seeds - have if have < rule.min_seeds else rule.round_seeds
            )
            take = min(take, rule.max_seeds - have)
            for seed in seeds[have : have + take]:
                batch.append(
                    TaskSpec(
                        ber=ber, seed=seed, protection=protection,
                        tag=f"{tag}:r{rounds}",
                    )
                )
                owners.append(i)
        if not batch:
            break
        results = engine.evaluate_tasks(
            qmodel, x, labels, batch, config=config, on_result=on_unit
        )
        rounds += 1
        total += engine.last_stats.total_units
        computed += engine.last_stats.computed_units
        cached += engine.last_stats.cached_units
        # Barrier reduction in canonical order: results arrive in task
        # order (the engine's contract), which is seed order per point.
        for i, result in zip(owners, results):
            per_seed[i].append(result)
            trackers[i].push(
                exact_correct_count(result.accuracy, n_samples), n_samples
            )
    points = []
    for i, ber in enumerate(bers):
        tracker = trackers[i]
        used = tracker.seeds_used
        points.append(
            AdaptivePoint(
                ber=ber,
                result=combine_seed_results(
                    qmodel, ber, per_seed[i][:used], config, protection
                ),
                seeds_used=used,
                seeds_evaluated=len(per_seed[i]),
                stopped_early=tracker.stopped,
                interval=tracker.interval(),
            )
        )
    return AdaptiveSweepResult(
        points=points,
        rounds=rounds,
        total_units=total,
        computed_units=computed,
        cached_units=cached,
    )


@dataclass(frozen=True)
class KneeConfig:
    """Search window and convergence targets for :func:`knee_search`.

    Parameters
    ----------
    lo, hi:
        BER bracket endpoints (``0 < lo < hi <= 1``).  ``lo`` should sit
        on the flat high-accuracy shelf and ``hi`` past the collapse;
        figure drivers use their profile grid's extremes.
    target_fraction:
        Where the knee is declared, as a fraction of the accuracy drop:
        the knee BER is where accuracy crosses
        ``acc(hi) + target_fraction * (acc(lo) - acc(hi))``.
    tolerance_decades:
        Stop once the bracket is narrower than this many decades of BER.
    max_points:
        Hard cap on evaluated BER points (endpoints included).
    """

    lo: float
    hi: float
    target_fraction: float = 0.5
    tolerance_decades: float = 0.25
    max_points: int = 10

    def __post_init__(self):
        """Validate the bracket and convergence parameters."""
        if not 0.0 < self.lo < self.hi <= 1.0:
            raise ConfigurationError(
                f"knee bracket requires 0 < lo < hi <= 1, "
                f"got lo={self.lo!r} hi={self.hi!r}"
            )
        if not 0.0 < self.target_fraction < 1.0:
            raise ConfigurationError(
                f"target_fraction must be in (0, 1), got {self.target_fraction!r}"
            )
        if not self.tolerance_decades > 0.0:
            raise ConfigurationError(
                f"tolerance_decades must be > 0, got {self.tolerance_decades!r}"
            )
        if self.max_points < 2:
            raise ConfigurationError(
                f"max_points must be >= 2, got {self.max_points}"
            )

    def identity(self) -> dict:
        """Canonical payload for cache keys / fingerprints."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "target_fraction": self.target_fraction,
            "tolerance_decades": self.tolerance_decades,
            "max_points": self.max_points,
        }


@dataclass
class KneeResult:
    """A knee search's evaluated points (BER-ascending) and bracket.

    ``knee_ber`` is the bracket's log-space midpoint, or ``None`` when
    the window contained no accuracy drop (``acc(lo) <= acc(hi)``) and
    bisection never started.
    """

    points: list[AdaptivePoint]
    knee_ber: float | None
    bracket: tuple[float, float] | None
    target_accuracy: float | None
    rounds: int
    total_units: int
    computed_units: int
    cached_units: int

    def to_dict(self) -> dict:
        """JSON-serializable form (figure artifacts)."""
        return {
            "points": [p.to_dict() for p in self.points],
            "knee_ber": self.knee_ber,
            "bracket": list(self.bracket) if self.bracket else None,
            "target_accuracy": self.target_accuracy,
            "rounds": self.rounds,
            "total_units": self.total_units,
            "computed_units": self.computed_units,
            "cached_units": self.cached_units,
        }


def knee_search(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    knee: KneeConfig,
    config: CampaignConfig | None = None,
    rule: StopRule | None = None,
    protection: ProtectionPlan | None = None,
    engine: CampaignEngine | None = None,
    tag: str = "adaptive-knee",
) -> KneeResult:
    """Bisect the accuracy knee in log-BER space with adaptive probes.

    Evaluates the bracket endpoints first (one batched adaptive round
    loop, so both fill the pool together), derives the target accuracy
    from their drop, then repeatedly probes the geometric midpoint of the
    surviving bracket — ``10 ** ((lg lo + lg hi) / 2)``, a deterministic
    pure-float midpoint — until the bracket is narrower than
    ``tolerance_decades`` or ``max_points`` BERs have been evaluated.
    Every probe is an :func:`adaptive_sweep` point, so settled probes
    cost ``min_seeds`` units and every unit lands in the shared
    checkpoint.
    """
    config = config or CampaignConfig()
    rule = rule or StopRule()
    sweep = adaptive_sweep(
        qmodel, x, labels, [knee.lo, knee.hi],
        config=config, rule=rule, protection=protection, engine=engine, tag=tag,
    )
    points = {p.ber: p for p in sweep.points}
    rounds = sweep.rounds
    total = sweep.total_units
    computed = sweep.computed_units
    cached = sweep.cached_units
    top = points[knee.lo].result.mean_accuracy
    bottom = points[knee.hi].result.mean_accuracy
    if top <= bottom:
        # No accuracy drop inside the window — nothing to bisect.
        return KneeResult(
            points=sorted(points.values(), key=lambda p: p.ber),
            knee_ber=None, bracket=None, target_accuracy=None,
            rounds=rounds, total_units=total,
            computed_units=computed, cached_units=cached,
        )
    target = bottom + knee.target_fraction * (top - bottom)
    left, right = knee.lo, knee.hi
    while (
        math.log10(right) - math.log10(left) > knee.tolerance_decades
        and len(points) < knee.max_points
    ):
        mid = 10.0 ** ((math.log10(left) + math.log10(right)) / 2.0)
        if not left < mid < right:
            break  # float resolution exhausted before the tolerance
        probe = adaptive_sweep(
            qmodel, x, labels, [mid],
            config=config, rule=rule, protection=protection, engine=engine,
            tag=tag,
        )
        rounds += probe.rounds
        total += probe.total_units
        computed += probe.computed_units
        cached += probe.cached_units
        point = probe.points[0]
        points[mid] = point
        if point.result.mean_accuracy >= target:
            left = mid
        else:
            right = mid
    knee_ber = 10.0 ** ((math.log10(left) + math.log10(right)) / 2.0)
    return KneeResult(
        points=sorted(points.values(), key=lambda p: p.ber),
        knee_ber=knee_ber,
        bracket=(left, right),
        target_accuracy=target,
        rounds=rounds,
        total_units=total,
        computed_units=computed,
        cached_units=cached,
    )
