"""Binomial confidence intervals for pooled correct/total counts.

The campaign's atomic observations are Bernoulli: each evaluated sample is
either classified correctly or not, and every execution granularity the
runtime produces — :class:`~repro.faultsim.campaign.SampleSliceResult`
(explicit ``correct``/``total`` counts) and
:class:`~repro.faultsim.campaign.SeedPointResult` (an accuracy that *is*
``correct / total`` for a known total, exactly invertible in IEEE floats)
— reduces to integer counts.  This module turns pooled counts into
confidence intervals without any third-party dependency:

* :func:`wilson_interval` — the Wilson score interval.  Well-behaved at
  the accuracy extremes (never escapes [0, 1], never collapses to zero
  width at p-hat in {0, 1}), which matters because low-BER campaign points
  sit at accuracy ~= the fault-free value, often exactly 1 on small
  evaluation sets.
* :func:`empirical_bernstein_interval` — the empirical-Bernstein bound
  (Maurer & Pontil, 2009): half-width
  ``sqrt(2 V ln(2/delta) / n) + 7 ln(2/delta) / (3 (n - 1))`` with the
  empirical variance ``V``.  Variance-adaptive: much tighter than
  distribution-free bounds when the observed variance is small (the
  low-BER regime again), at the cost of a 1/(n-1) additive term.

Both are closed-form float arithmetic — no sampling, no iteration — so an
interval is a pure function of ``(correct, total, confidence)``.  That
purity is what the sequential stop rule (:mod:`repro.stats.sequential`)
builds its determinism contract on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "ConfidenceInterval",
    "INTERVAL_METHODS",
    "binomial_interval",
    "empirical_bernstein_interval",
    "normal_quantile",
    "wilson_interval",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval for a Bernoulli mean.

    Parameters
    ----------
    estimate:
        The point estimate ``correct / total``.
    lower, upper:
        Interval endpoints, clipped to [0, 1].
    method:
        Producing method name (``"wilson"`` or ``"bernstein"``).
    confidence:
        Nominal two-sided coverage level, e.g. ``0.95``.
    """

    estimate: float
    lower: float
    upper: float
    method: str
    confidence: float

    @property
    def halfwidth(self) -> float:
        """Half the interval width — the stop rule's settledness measure."""
        return (self.upper - self.lower) / 2.0

    def to_dict(self) -> dict:
        """JSON-serializable form (figure artifacts, bench reports)."""
        return {
            "estimate": self.estimate,
            "lower": self.lower,
            "upper": self.upper,
            "halfwidth": self.halfwidth,
            "method": self.method,
            "confidence": self.confidence,
        }


# Acklam's rational approximation to the inverse normal CDF (relative
# error < 1.15e-9 over (0, 1)) — closed-form, so no scipy dependency.
_ICDF_A = (
    -3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
    1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
)
_ICDF_B = (
    -5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
    6.680131188771972e+01, -1.328068155288572e+01,
)
_ICDF_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
    -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
)
_ICDF_D = (
    7.784695709041462e-03, 3.224671290700398e-01,
    2.445134137142996e+00, 3.754408661907416e+00,
)
_ICDF_P_LOW = 0.02425


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's approximation).

    Deterministic closed-form float arithmetic; accurate to ~1e-9
    relative error, far below the Monte-Carlo noise any campaign carries.
    """
    if not 0.0 < p < 1.0:
        raise ConfigurationError(
            f"normal_quantile requires 0 < p < 1, got {p!r}"
        )
    a, b, c, d = _ICDF_A, _ICDF_B, _ICDF_C, _ICDF_D
    if p < _ICDF_P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - _ICDF_P_LOW:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (
        ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
    ) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


def _validate_counts(correct: int, total: int, confidence: float) -> tuple[int, int]:
    """Shared argument validation for the interval constructors."""
    correct, total = int(correct), int(total)
    if total < 1:
        raise ConfigurationError(f"interval requires total >= 1, got {total}")
    if not 0 <= correct <= total:
        raise ConfigurationError(
            f"interval requires 0 <= correct <= total, got {correct}/{total}"
        )
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence!r}"
        )
    return correct, total


def wilson_interval(
    correct: int, total: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for ``correct`` successes in ``total`` trials.

    The score interval inverts the normal test around the *true* p rather
    than the estimate, so it stays inside [0, 1] by construction and keeps
    a sensible (non-zero) width when the observed accuracy is exactly 0 or
    1 — the standard choice for sequential accuracy monitoring.
    """
    correct, total = _validate_counts(correct, total, confidence)
    z = normal_quantile(1.0 - (1.0 - confidence) / 2.0)
    n = float(total)
    p = correct / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    spread = (
        z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom
    )
    return ConfidenceInterval(
        estimate=p,
        lower=max(0.0, center - spread),
        upper=min(1.0, center + spread),
        method="wilson",
        confidence=confidence,
    )


def empirical_bernstein_interval(
    correct: int, total: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Empirical-Bernstein interval (Maurer & Pontil) for Bernoulli counts.

    Half-width ``sqrt(2 V ln(2/delta) / n) + 7 ln(2/delta) / (3 (n - 1))``
    with the unbiased empirical variance ``V = p (1 - p) n / (n - 1)``.
    Variance-adaptive: at the low-BER regime's near-zero variance the
    sqrt term vanishes and the bound shrinks at rate 1/n rather than
    1/sqrt(n).  Requires ``total >= 2`` (the variance term is undefined
    for a single trial); a single-trial request returns the vacuous
    [0, 1] interval rather than raising, so a sequential consumer can
    always ask.
    """
    correct, total = _validate_counts(correct, total, confidence)
    p = correct / float(total)
    if total < 2:
        return ConfidenceInterval(
            estimate=p, lower=0.0, upper=1.0,
            method="bernstein", confidence=confidence,
        )
    n = float(total)
    log_term = math.log(2.0 / (1.0 - confidence))
    variance = p * (1.0 - p) * n / (n - 1.0)
    spread = math.sqrt(2.0 * variance * log_term / n) + (
        7.0 * log_term / (3.0 * (n - 1.0))
    )
    return ConfidenceInterval(
        estimate=p,
        lower=max(0.0, p - spread),
        upper=min(1.0, p + spread),
        method="bernstein",
        confidence=confidence,
    )


#: Method name -> interval constructor (the :class:`StopRule` registry).
INTERVAL_METHODS = {
    "wilson": wilson_interval,
    "bernstein": empirical_bernstein_interval,
}


def binomial_interval(
    method: str, correct: int, total: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Dispatch to a registered interval method by name."""
    try:
        build = INTERVAL_METHODS[method]
    except KeyError:
        raise ConfigurationError(
            f"unknown interval method {method!r}; "
            f"expected one of {sorted(INTERVAL_METHODS)}"
        ) from None
    return build(correct, total, confidence)
