"""Deterministic sequential early stopping for campaign points.

A fixed-budget campaign spends the same seed x sample budget at every
(BER, plan) point even though most points are statistically settled long
before the budget runs out — a low-BER point whose accuracy equals the
fault-free value has near-zero variance after the first seed or two.
:class:`StopRule` + :class:`SequentialAccuracy` implement the sequential
alternative: after each whole seed's pooled correct/total counts, compute
a confidence interval (:mod:`repro.stats.intervals`) over the counts seen
so far and stop once its half-width is inside the target.

Determinism contract
--------------------
The hard constraint (and the point): stopping decisions must be
bit-reproducible across every execution strategy the runtime offers —
worker counts, ``--shard-samples`` slicing, ``--replay``, resume from a
checkpoint.  Three rules enforce it:

1. **Canonical order, not arrival order.**  Counts are pushed one whole
   seed at a time, in campaign seed order (the checkpoint's canonical
   subtask order) — never in pool-completion order.  The engine's
   per-seed results are themselves bit-identical across workers / slicing
   / replay (the PR 4/5 invariants), so a decision computed from them in
   canonical order is too.
2. **Whole seeds only.**  The decision granularity is the seed, the unit
   whose folded result is partition-invariant.  Deciding mid-seed (after
   a sample slice lands) would make the decision depend on the engine's
   slice geometry, which ``--shard-samples auto`` deliberately varies
   with the worker count.
3. **Prefix estimates.**  The stop index is the *smallest* seed count at
   which the rule fires; the reported estimate uses exactly that prefix.
   A driver that evaluates seeds in rounds may overshoot the stop index
   (the overshoot is still checkpointed and reused on resume, like the
   speculative planner's discarded lookahead), but the estimate never
   includes it — so round sizing cannot change any reported number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.stats.intervals import (
    INTERVAL_METHODS,
    ConfidenceInterval,
    binomial_interval,
)

__all__ = ["StopRule", "SequentialAccuracy", "exact_correct_count"]


def exact_correct_count(accuracy: float, total: int) -> int:
    """Recover the integer correct-count behind a stored accuracy.

    Every accuracy the campaign produces is ``float(correct) / total``
    for integers ``0 <= correct <= total`` (both
    ``QuantizedModel.evaluate`` and ``combine_slice_results`` compute
    exactly that division), and for totals far below 2**52 that mapping
    is injective in IEEE doubles — so the division can be inverted
    exactly, and checkpointed :class:`SeedPointResult` rows feed the
    interval math without any stored-count round trip.  Raises
    :class:`~repro.errors.ConfigurationError` when ``accuracy`` is not a
    representable count ratio (a corrupted or foreign value).
    """
    total = int(total)
    if total < 1:
        raise ConfigurationError(f"exact_correct_count needs total >= 1, got {total}")
    correct = int(round(accuracy * total))
    if not 0 <= correct <= total or float(correct) / total != accuracy:
        raise ConfigurationError(
            f"accuracy {accuracy!r} is not an exact count ratio over "
            f"{total} samples"
        )
    return correct


@dataclass(frozen=True)
class StopRule:
    """When is a campaign point settled enough to stop adding seeds?

    Parameters
    ----------
    halfwidth:
        Target confidence-interval half-width on the pooled accuracy
        (CLI ``--ci-halfwidth``).  The rule fires once the interval over
        all evaluated samples is at least this tight.
    confidence:
        Two-sided coverage level of the interval.
    method:
        Interval method: ``"wilson"`` (default) or ``"bernstein"``
        (:mod:`repro.stats.intervals`).
    min_seeds:
        Never decide before this many seeds — one seed's samples share a
        fault realization, so a minimum guards against a lucky first
        draw.  Drivers default this to the campaign's configured seed
        count, making the adaptive estimate a superset of the fixed-grid
        estimate at settled points.
    max_seeds:
        Seed budget per point (CLI ``--max-seeds``): a point whose
        interval never tightens enough is exhausted here and reported
        with ``stopped_early=False``.
    round_seeds:
        How many additional seeds a driver schedules per round after the
        ``min_seeds`` opening round.  Purely a throughput knob: larger
        rounds fill wider worker pools but may overshoot the stop index
        (overshoot never enters the estimate — see the module docs).
    """

    halfwidth: float = 0.02
    confidence: float = 0.95
    method: str = "wilson"
    min_seeds: int = 2
    max_seeds: int = 8
    round_seeds: int = 1

    def __post_init__(self):
        """Validate field ranges and cross-field consistency."""
        if not 0.0 < self.halfwidth < 0.5:
            raise ConfigurationError(
                f"halfwidth must be in (0, 0.5), got {self.halfwidth!r}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError(
                f"confidence must be in (0, 1), got {self.confidence!r}"
            )
        if self.method not in INTERVAL_METHODS:
            raise ConfigurationError(
                f"unknown interval method {self.method!r}; "
                f"expected one of {sorted(INTERVAL_METHODS)}"
            )
        if self.min_seeds < 1:
            raise ConfigurationError(
                f"min_seeds must be >= 1, got {self.min_seeds}"
            )
        if self.max_seeds < self.min_seeds:
            raise ConfigurationError(
                f"max_seeds ({self.max_seeds}) must be >= min_seeds "
                f"({self.min_seeds})"
            )
        if self.round_seeds < 1:
            raise ConfigurationError(
                f"round_seeds must be >= 1, got {self.round_seeds}"
            )

    def identity(self) -> dict:
        """Canonical payload for cache keys / fingerprints.

        Excludes ``round_seeds``: round sizing is a scheduling knob that
        can never change a decision or an estimate, so two runs differing
        only in it share cache entries.
        """
        return {
            "halfwidth": self.halfwidth,
            "confidence": self.confidence,
            "method": self.method,
            "min_seeds": self.min_seeds,
            "max_seeds": self.max_seeds,
        }


class SequentialAccuracy:
    """Sequential tracker for one campaign point's per-seed counts.

    Push one whole seed's (correct, total) at a time, **in campaign seed
    order** — the canonical order the determinism contract requires (see
    the module docs).  The tracker records the smallest seed count at
    which the rule fires (:attr:`stopped_at`); pushes past that point are
    accepted (a round-scheduled driver overshoots) but never move the
    decision or the prefix estimate.

    Parameters
    ----------
    rule:
        The :class:`StopRule` to evaluate after each push.
    """

    def __init__(self, rule: StopRule):
        self.rule = rule
        #: Per-seed (correct, total) counts, in canonical seed order.
        self.counts: list[tuple[int, int]] = []
        #: Smallest seed count at which the rule fired (None = not yet).
        self.stopped_at: int | None = None

    @property
    def seeds_seen(self) -> int:
        """Seeds pushed so far (including any overshoot)."""
        return len(self.counts)

    @property
    def stopped(self) -> bool:
        """True once the interval criterion has fired."""
        return self.stopped_at is not None

    @property
    def exhausted(self) -> bool:
        """True once the seed budget is spent without the rule firing."""
        return not self.stopped and self.seeds_seen >= self.rule.max_seeds

    @property
    def decided(self) -> bool:
        """True when no further seeds are needed (stopped or exhausted)."""
        return self.stopped or self.exhausted

    @property
    def seeds_used(self) -> int:
        """Seeds the *estimate* uses: the stop prefix, or everything seen."""
        return self.stopped_at if self.stopped else self.seeds_seen

    def push(self, correct: int, total: int) -> bool:
        """Add the next seed's pooled counts; returns :attr:`decided`.

        ``total`` must be positive — a seed always scores at least one
        sample.  The rule is evaluated on the pooled prefix counts only
        while undecided and only at or past ``min_seeds``, so the stop
        index is by construction the smallest qualifying prefix.
        """
        correct, total = int(correct), int(total)
        if total < 1:
            raise ConfigurationError(
                f"push requires total >= 1, got {total}"
            )
        if not 0 <= correct <= total:
            raise ConfigurationError(
                f"push requires 0 <= correct <= total, got {correct}/{total}"
            )
        self.counts.append((correct, total))
        if (
            self.stopped_at is None
            and self.seeds_seen >= self.rule.min_seeds
            and self.interval_at(self.seeds_seen).halfwidth <= self.rule.halfwidth
        ):
            self.stopped_at = self.seeds_seen
        return self.decided

    def interval_at(self, n_seeds: int) -> ConfidenceInterval:
        """Interval over the pooled counts of the first ``n_seeds`` seeds."""
        if not 1 <= n_seeds <= self.seeds_seen:
            raise ConfigurationError(
                f"interval_at needs 1 <= n_seeds <= {self.seeds_seen}, "
                f"got {n_seeds}"
            )
        correct = sum(c for c, _ in self.counts[:n_seeds])
        total = sum(t for _, t in self.counts[:n_seeds])
        return binomial_interval(
            self.rule.method, correct, total, self.rule.confidence
        )

    def interval(self) -> ConfidenceInterval:
        """Interval over the estimate prefix (:attr:`seeds_used`)."""
        return self.interval_at(self.seeds_used)
