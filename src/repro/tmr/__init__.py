"""Fine-grained TMR: cost model, iterative planner, deployment schemes."""

from repro.tmr.cost import OpCostModel, full_protection_energy, tmr_overhead_energy
from repro.tmr.planner import TmrPlanResult, plan_tmr
from repro.tmr.schemes import (
    SCHEME_ST,
    SCHEME_WG_W_AFT,
    SCHEME_WG_WO_AFT,
    SchemeCurve,
    average_reduction,
    map_plan_to_winograd,
    normalized_overheads,
    run_tmr_schemes,
)

__all__ = [
    "OpCostModel",
    "tmr_overhead_energy",
    "full_protection_energy",
    "TmrPlanResult",
    "plan_tmr",
    "SCHEME_ST",
    "SCHEME_WG_WO_AFT",
    "SCHEME_WG_W_AFT",
    "SchemeCurve",
    "map_plan_to_winograd",
    "run_tmr_schemes",
    "normalized_overheads",
    "average_reduction",
]
