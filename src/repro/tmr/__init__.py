"""Fine-grained TMR: cost model, iterative planner, deployment schemes.

:func:`plan_tmr` and :func:`run_tmr_schemes` accept an ``engine=``
argument (:class:`repro.runtime.CampaignEngine`): every candidate-plan
evaluation is one seed-batch task through
:meth:`~repro.runtime.CampaignEngine.evaluate_tasks` (sharded per-seed
across the pool), giving Fig. 5 ``--workers/--resume/--checkpoint``
support with convergence bit-identical to the serial path.  Omitting
``engine`` falls back to a serial in-process engine.  ``speculative=True``
additionally evaluates several candidates of the planner's deterministic
growth chain concurrently per iteration — result-identical, documented in
:mod:`repro.tmr.planner`.
"""

from repro.tmr.cost import (
    OpCostModel,
    abft_overhead_energy,
    full_protection_energy,
    portfolio_overhead_energy,
    tmr_overhead_energy,
)
from repro.tmr.planner import TmrPlanResult, plan_portfolio, plan_tmr
from repro.tmr.schemes import (
    PROTECTION_ABFT,
    PROTECTION_PORTFOLIO,
    PROTECTION_TMR,
    SCHEME_ST,
    SCHEME_WG_W_AFT,
    SCHEME_WG_WO_AFT,
    SchemeCurve,
    average_reduction,
    map_plan_to_winograd,
    normalized_overheads,
    run_protection_portfolio,
    run_tmr_schemes,
)

__all__ = [
    "OpCostModel",
    "tmr_overhead_energy",
    "abft_overhead_energy",
    "portfolio_overhead_energy",
    "full_protection_energy",
    "TmrPlanResult",
    "plan_tmr",
    "plan_portfolio",
    "SCHEME_ST",
    "SCHEME_WG_WO_AFT",
    "SCHEME_WG_W_AFT",
    "PROTECTION_TMR",
    "PROTECTION_ABFT",
    "PROTECTION_PORTFOLIO",
    "SchemeCurve",
    "map_plan_to_winograd",
    "run_tmr_schemes",
    "run_protection_portfolio",
    "normalized_overheads",
    "average_reduction",
]
