"""Energy cost model for primitive operations and TMR overhead accounting.

Per-operation energies follow the widely used 45 nm numbers from Horowitz
(ISSCC 2014): integer addition scales roughly linearly with bit width and
integer multiplication roughly quadratically.  Absolute values only matter
up to a constant — every TMR result in the paper (and here) is *normalized*
overhead — but keeping real units makes the numbers interpretable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.faultsim.protection import ProtectionPlan
from repro.quantized.qmodel import QuantizedModel
from repro.winograd.opcount import ADD_CATEGORIES, MUL_CATEGORIES

__all__ = [
    "OpCostModel",
    "tmr_overhead_energy",
    "abft_overhead_energy",
    "portfolio_overhead_energy",
    "full_protection_energy",
]

#: Horowitz ISSCC'14, 45 nm: (width -> pJ).
_ADD_ENERGY_PJ = {8: 0.03, 16: 0.05, 32: 0.1}
_MUL_ENERGY_PJ = {8: 0.2, 16: 0.8, 32: 3.1}


def _interp_width(table: dict[int, float], width: int, power: float) -> float:
    """Interpolate an energy table by width with a power-law fallback."""
    if width in table:
        return table[width]
    base_width, base = 8, table[8]
    return base * (width / base_width) ** power


@dataclass(frozen=True)
class OpCostModel:
    """Energy per primitive operation at a given data width.

    Attributes
    ----------
    width:
        Datapath width in bits.
    tmr_factor:
        Energy multiplier for protecting one operation with TMR: two
        redundant executions plus majority voting (the voter is charged as
        a small fraction of an addition).
    """

    width: int = 16
    tmr_factor: float = 2.1

    def add_energy(self) -> float:
        """Energy of one addition (pJ)."""
        return _interp_width(_ADD_ENERGY_PJ, self.width, power=1.0)

    def mul_energy(self) -> float:
        """Energy of one multiplication (pJ)."""
        return _interp_width(_MUL_ENERGY_PJ, self.width, power=2.0)

    def category_energy(self, category: str) -> float:
        """Energy of one operation of a fault-site category (pJ)."""
        if category in MUL_CATEGORIES:
            return self.mul_energy()
        if category in ADD_CATEGORIES:
            return self.add_energy()
        raise ConfigurationError(f"unknown op category '{category}'")


def tmr_overhead_energy(
    qmodel: QuantizedModel,
    plan: ProtectionPlan,
    cost_model: OpCostModel | None = None,
) -> float:
    """Extra energy (pJ/inference) spent executing ``plan`` with TMR.

    A protected fraction ``rho`` of a category with ``n`` ops costs
    ``rho * n * op_energy * (tmr_factor - 1)`` extra — the baseline single
    execution is not overhead.
    """
    cost_model = cost_model or OpCostModel(width=qmodel.config.width)
    extra = cost_model.tmr_factor - 1.0
    total = 0.0
    for layer in qmodel.injectable_layers():
        for category, n_ops in layer.op_counts.by_category().items():
            if not n_ops:
                continue
            rho = plan.fraction(layer.name, category)
            if rho > 0:
                total += rho * n_ops * cost_model.category_energy(category) * extra
    return total


def abft_overhead_energy(
    qmodel: QuantizedModel,
    layers,
    cost_model: OpCostModel | None = None,
) -> float:
    """Extra energy (pJ/inference) of output-channel checksum ABFT.

    ``layers`` names the checked layers.  Per layer the checksum side
    costs one extra output channel's worth of the layer's arithmetic (the
    channel-summed filter is applied once — ``n_ops / k_out`` operations
    per category), and verification costs ``k_out`` additions per checked
    output position: ``k_out - 1`` for the output-side channel sum plus
    one for the comparison.  This is the classic ABFT cost shape — orders
    of magnitude below whole-layer TMR for wide layers, which is exactly
    the tradeoff the portfolio planner exploits.
    """
    cost_model = cost_model or OpCostModel(width=qmodel.config.width)
    names = set(layers)
    total = 0.0
    for layer in qmodel.injectable_layers():
        if layer.name not in names:
            continue
        k_out = int(layer.weight_int.shape[0])
        for category, n_ops in layer.op_counts.by_category().items():
            if n_ops:
                total += (n_ops / k_out) * cost_model.category_energy(category)
        positions = 1
        for dim in tuple(layer.out_shape)[1:]:
            positions *= int(dim)
        total += positions * k_out * cost_model.add_energy()
    return total


def portfolio_overhead_energy(
    qmodel: QuantizedModel,
    plan: ProtectionPlan,
    cost_model: OpCostModel | None = None,
) -> float:
    """Overhead of a mixed-scheme plan: TMR fractions plus ABFT layers.

    The two parts are additive because they are disjoint by construction —
    a layer under the ABFT scheme keeps its TMR fractions at 0.  For a
    scheme-free plan this reduces exactly to :func:`tmr_overhead_energy`.
    """
    cost_model = cost_model or OpCostModel(width=qmodel.config.width)
    return tmr_overhead_energy(qmodel, plan, cost_model) + abft_overhead_energy(
        qmodel, plan.abft_layers, cost_model
    )


def full_protection_energy(
    qmodel: QuantizedModel, cost_model: OpCostModel | None = None
) -> float:
    """TMR overhead of protecting every operation (normalization anchor)."""
    cost_model = cost_model or OpCostModel(width=qmodel.config.width)
    extra = cost_model.tmr_factor - 1.0
    total = 0.0
    for layer in qmodel.injectable_layers():
        for category, n_ops in layer.op_counts.by_category().items():
            if n_ops:
                total += n_ops * cost_model.category_energy(category) * extra
    return total
