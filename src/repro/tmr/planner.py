"""Fine-grained TMR planner (paper §4.1).

The paper's heuristic, verbatim: select the most vulnerable layer by its
layer-wise vulnerability factor, protect a randomly chosen *fraction* of
that layer's operations (multiplications first, since §3.2.4 shows they are
far more vulnerable), and iterate until the accuracy goal is met.

Random fractional protection is realized as Poisson thinning of the fault
rate (see :mod:`repro.faultsim.protection`), so the planner works directly
with the Monte-Carlo campaign machinery.

Execution model
---------------
Each iteration evaluates the candidate plan through
:meth:`repro.runtime.CampaignEngine.evaluate_tasks` (one seed-batch task
per candidate, sharded per-seed across the pool).  Pass ``engine=`` to
shard those per-iteration evaluations across workers and checkpoint/resume
them (the experiments CLI's ``--workers/--resume/--checkpoint`` reach here
through Fig. 5); without an engine a serial in-process engine is used.
Convergence — ``iterations``, ``converged`` and the chosen fractions — is
bit-identical for any worker count because every subtask owns its RNG
seed.

Speculative mode
----------------
One iteration evaluates one candidate over ``len(config.seeds)`` seeds —
typically fewer subtasks than workers, leaving most of the pool idle.
``speculative=True`` exploits a property of the paper's heuristic: the
increment rule (:func:`_next_increment`) depends only on the vulnerability
ranking and the current plan, *never on a measured accuracy*, so the
sequence of candidate plans the serial loop would evaluate is fully
predetermined.  The speculative planner therefore evaluates the next
``lookahead`` candidates of that exact chain concurrently (one engine
batch per round) and keeps the **first candidate in chain order** that
meets the accuracy goal — the same candidate the serial loop would have
stopped at.

Deviation from the paper's heuristic: the *outputs* (plan, iterations,
convergence, history) are identical to the serial heuristic, but up to
``lookahead - 1`` candidates *past* the convergence point are evaluated
speculatively and discarded.  That costs extra evaluation energy, and the
discarded evaluations are visible as extra checkpoint entries (harmless:
they are keyed like any other subtask and simply never served).  Were the
increment rule ever made accuracy-dependent (e.g. adaptive step sizes),
speculation would change the trajectory and this equivalence would no
longer hold — which is why the mode is opt-in (``speculative=False``
default, ``--speculative`` on the CLI).

``adaptive_lookahead=True`` bounds that overshoot cost: each round's
depth shrinks in proportion to the remaining accuracy gap (a planner far
from its goal speculates the full ``lookahead``; one nearly converged
speculates barely past the next candidate).  Depth only changes *which
prefix* of the predetermined chain a round evaluates — never the chain
itself — so adaptivity is result-identical too; the realized
evaluation/discard counts are recorded on
:attr:`TmrPlanResult.discarded_evaluations` and logged.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.faultsim.campaign import CampaignConfig
from repro.faultsim.protection import ProtectionPlan
from repro.quantized.qmodel import QuantizedModel
from repro.runtime.engine import CampaignEngine
from repro.runtime.tasks import TaskSpec
from repro.tmr.cost import OpCostModel, tmr_overhead_energy
from repro.winograd.opcount import ADD_CATEGORIES, MUL_CATEGORIES

__all__ = ["TmrPlanResult", "plan_tmr"]

_LOG = logging.getLogger(__name__)


@dataclass
class TmrPlanResult:
    """Outcome of one TMR planning run.

    Attributes
    ----------
    plan:
        The grown :class:`ProtectionPlan` (the last evaluated candidate).
    achieved_accuracy:
        Mean accuracy of ``plan`` at ``ber`` (the last history entry).
    overhead_energy:
        TMR energy overhead of ``plan`` under the run's cost model.
    target_accuracy:
        The accuracy goal the planner grew towards.
    ber:
        Operating bit error rate of the planning campaign.
    iterations:
        Number of candidate plans evaluated *on the serial trajectory*
        (speculative overshoot evaluations are not counted).
    converged:
        True when ``achieved_accuracy >= target_accuracy``.
    history:
        One ``{"iteration", "accuracy", "overhead"}`` dict per counted
        iteration, identical between serial and speculative planning.
    discarded_evaluations:
        Candidate evaluations performed beyond the counted iterations —
        the speculative overshoot cost (0 for serial planning).  An
        execution statistic, not part of the planning result, so it is
        deliberately excluded from :meth:`to_dict`.
    """

    plan: ProtectionPlan
    achieved_accuracy: float
    overhead_energy: float
    target_accuracy: float
    ber: float
    iterations: int
    converged: bool
    history: list[dict] = field(default_factory=list)
    discarded_evaluations: int = 0

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "target_accuracy": self.target_accuracy,
            "achieved_accuracy": self.achieved_accuracy,
            "overhead_energy": self.overhead_energy,
            "ber": self.ber,
            "iterations": self.iterations,
            "converged": self.converged,
            "fractions": {
                f"{layer}/{cat}": frac
                for (layer, cat), frac in sorted(self.plan.fractions.items())
                if frac > 0
            },
        }


def _layer_categories(layer, mul_first: bool) -> list[str]:
    """Categories of a layer in protection-priority order."""
    present = {cat for cat, n in layer.op_counts.by_category().items() if n}
    muls = [c for c in MUL_CATEGORIES if c in present]
    adds = [c for c in ADD_CATEGORIES if c in present]
    return muls + adds if mul_first else adds + muls


def _next_increment(
    qmodel: QuantizedModel,
    plan: ProtectionPlan,
    ranking: list[tuple[str, float]],
    step: float,
) -> bool:
    """Raise protection of the most vulnerable not-yet-saturated layer.

    Multiplication categories are filled before addition categories within
    each layer.  Returns False when every (layer, category) is saturated.
    Deliberately independent of any measured accuracy — this is what makes
    the speculative planner's candidate chain exact (see module docs).
    """
    by_name = {layer.name: layer for layer in qmodel.injectable_layers()}
    for layer_name, _vf in ranking:
        layer = by_name[layer_name]
        for category in _layer_categories(layer, mul_first=True):
            current = plan.fraction(layer_name, category)
            if current < 1.0 - 1e-9:
                plan.set(layer_name, category, min(1.0, current + step))
                return True
    return False


def _candidate_chain(
    qmodel: QuantizedModel,
    plan: ProtectionPlan,
    ranking: list[tuple[str, float]],
    step: float,
    length: int,
) -> tuple[list[ProtectionPlan], bool]:
    """The next ``length`` plans the serial heuristic would evaluate.

    ``plan`` (not yet evaluated) is the chain's first candidate; each
    successor applies one deterministic increment to a copy of its
    predecessor.  Returns ``(chain, saturated)`` where ``saturated`` means
    the last chain entry has no successor (every fraction at 1.0), so the
    chain may be shorter than requested.
    """
    chain = [plan]
    saturated = False
    while len(chain) < length:
        successor = chain[-1].copy()
        if not _next_increment(qmodel, successor, ranking, step):
            saturated = True
            break
        chain.append(successor)
    return chain, saturated


def _default_lookahead(engine: CampaignEngine, config: CampaignConfig) -> int:
    """Candidates per speculative round: enough subtasks to fill the pool."""
    seeds = max(1, len(config.seeds))
    return max(2, -(-engine.workers // seeds))


def _adaptive_depth(
    base: int, target_accuracy: float, accuracy: float, initial_gap: float
) -> int:
    """Speculation depth scaled to the remaining accuracy gap.

    ``ceil(base * gap / initial_gap)``, clamped to ``[1, base]``: while
    the goal is distant the full ``base`` lookahead amortizes round
    latency, and as the gap closes the round shrinks toward a single
    candidate so overshoot evaluations stop being wasted near
    convergence.  Depth selects only how much of the *predetermined*
    candidate chain one round evaluates, so any depth sequence yields
    identical planning results.
    """
    if initial_gap <= 0.0:
        return 1
    gap = target_accuracy - accuracy
    if gap <= 0.0:
        return 1
    return max(1, min(base, math.ceil(base * gap / initial_gap)))


def plan_tmr(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    ber: float,
    target_accuracy: float,
    vulnerability_ranking: list[tuple[str, float]],
    config: CampaignConfig | None = None,
    cost_model: OpCostModel | None = None,
    step: float = 0.25,
    initial_plan: ProtectionPlan | None = None,
    max_iterations: int = 400,
    engine: CampaignEngine | None = None,
    speculative: bool = False,
    lookahead: int | None = None,
    adaptive_lookahead: bool = False,
) -> TmrPlanResult:
    """Grow a protection plan until ``target_accuracy`` is reached at ``ber``.

    Parameters
    ----------
    qmodel:
        Quantized model whose execution mode the plan protects.
    x, labels:
        Evaluation batch the planning campaign scores accuracy on.
    ber:
        Operating bit error rate for every candidate evaluation.
    target_accuracy:
        Accuracy goal in ``(0, 1]``; planning stops at the first candidate
        meeting it.
    vulnerability_ranking:
        ``(layer, vulnerability_factor)`` pairs, most vulnerable first.
        Passing a ranking measured on a *different* execution mode is how
        the fault-tolerance-unaware scheme (WG-Conv-W/O-AFT) is realized.
    config:
        Campaign configuration (seeds, budget); default
        :class:`CampaignConfig`.
    cost_model:
        :class:`OpCostModel` for overhead accounting; defaults to the
        model's width.
    step:
        Protection-fraction increment per iteration.
    initial_plan:
        Starting plan (copied); used to warm-start scheme comparisons.
    max_iterations:
        Upper bound on counted candidate evaluations.
    engine:
        Optional :class:`~repro.runtime.CampaignEngine`.  Each candidate
        evaluation is one seed-batch task through
        :meth:`~repro.runtime.CampaignEngine.evaluate_tasks` (sharded
        per-seed, checkpointed); the default is a serial in-process
        engine.  Convergence is bit-identical either way.
    speculative:
        Evaluate ``lookahead`` candidates of the (predetermined) serial
        chain concurrently per round and keep the first in chain order
        meeting the goal.  Results are identical to the serial heuristic;
        only extra overshoot evaluations are performed (see module docs
        for the documented deviation).
    lookahead:
        Candidates per speculative round; default sizes the round to the
        engine's pool (``ceil(workers / len(seeds))``, at least 2).
    adaptive_lookahead:
        Shrink each speculative round's depth as the accuracy gap to the
        goal narrows (proportional to ``gap / initial gap``), cutting the
        overshoot evaluations discarded at convergence.  Results stay
        identical — depth only picks how much of the predetermined chain
        a round evaluates; the realized overshoot is recorded on
        :attr:`TmrPlanResult.discarded_evaluations`.  Ignored without
        ``speculative``.

    Returns
    -------
    TmrPlanResult
        The grown plan with its convergence record; identical for any
        worker count and for ``speculative`` on or off.
    """
    if not 0.0 < target_accuracy <= 1.0:
        raise ConfigurationError(f"bad target accuracy {target_accuracy}")
    config = config or CampaignConfig()
    engine = engine if engine is not None else CampaignEngine(workers=1)
    cost_model = cost_model or OpCostModel(width=qmodel.config.width)
    plan = initial_plan.copy() if initial_plan is not None else ProtectionPlan()
    if lookahead is not None and lookahead < 1:
        raise ConfigurationError(f"lookahead must be >= 1, got {lookahead}")
    base_depth = (
        (lookahead or _default_lookahead(engine, config)) if speculative else 1
    )

    history: list[dict] = []
    converged = False
    accuracy = 0.0
    iterations = 0
    evaluated = 0
    initial_gap: float | None = None
    while iterations < max_iterations and not converged:
        depth = base_depth
        if speculative and adaptive_lookahead and initial_gap is not None:
            depth = _adaptive_depth(
                base_depth, target_accuracy, accuracy, initial_gap
            )
        length = min(depth, max_iterations - iterations)
        chain, saturated = _candidate_chain(
            qmodel, plan, vulnerability_ranking, step, length
        )
        tasks = [
            TaskSpec(
                ber=ber,
                seeds=tuple(config.seeds),
                protection=candidate,
                tag=f"tmr-iter{iterations + offset + 1}",
            )
            for offset, candidate in enumerate(chain)
        ]
        points = engine.evaluate_tasks(qmodel, x, labels, tasks, config=config)
        evaluated += len(chain)
        # Walk the round in chain order — the serial evaluation order —
        # counting exactly the iterations the serial loop would have run.
        for candidate, point in zip(chain, points):
            iterations += 1
            plan = candidate
            accuracy = point.mean_accuracy
            if initial_gap is None:
                initial_gap = max(0.0, target_accuracy - accuracy)
            history.append(
                {
                    "iteration": iterations,
                    "accuracy": accuracy,
                    "overhead": tmr_overhead_energy(qmodel, candidate, cost_model),
                }
            )
            if accuracy >= target_accuracy:
                converged = True
                break
        if converged or saturated:
            break
        # Advance to the next round's first candidate.  Mirroring the
        # serial loop, the increment is applied even when max_iterations
        # was just exhausted: the returned plan is then one (unevaluated)
        # increment past the last measured candidate, exactly as the
        # serial heuristic leaves it.
        successor = plan.copy()
        if not _next_increment(qmodel, successor, vulnerability_ranking, step):
            break  # everything protected; cannot do better
        plan = successor

    discarded = evaluated - iterations
    if speculative:
        _LOG.info(
            "speculative TMR planning: %d candidate evaluations for %d "
            "counted iterations (%d discarded, adaptive_lookahead=%s)",
            evaluated, iterations, discarded, adaptive_lookahead,
        )
    return TmrPlanResult(
        plan=plan,
        achieved_accuracy=accuracy,
        overhead_energy=tmr_overhead_energy(qmodel, plan, cost_model),
        target_accuracy=target_accuracy,
        ber=ber,
        iterations=iterations,
        converged=converged,
        history=history,
        discarded_evaluations=discarded,
    )
