"""Fine-grained TMR planner (paper §4.1).

The paper's heuristic, verbatim: select the most vulnerable layer by its
layer-wise vulnerability factor, protect a randomly chosen *fraction* of
that layer's operations (multiplications first, since §3.2.4 shows they are
far more vulnerable), and iterate until the accuracy goal is met.

Random fractional protection is realized as Poisson thinning of the fault
rate (see :mod:`repro.faultsim.protection`), so the planner works directly
with the Monte-Carlo campaign machinery.

Execution model
---------------
Each iteration evaluates the candidate plan through
:meth:`repro.runtime.CampaignEngine.evaluate_tasks` (one task per campaign
seed, the candidate's fractions attached as the task's protection plan).
Pass ``engine=`` to shard those per-iteration evaluations across workers
and checkpoint/resume them (the experiments CLI's
``--workers/--resume/--checkpoint`` reach here through Fig. 5); without an
engine a serial in-process engine is used.  Convergence — ``iterations``,
``converged`` and the chosen fractions — is bit-identical for any worker
count because every task owns its RNG seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.faultsim.campaign import CampaignConfig
from repro.faultsim.protection import ProtectionPlan
from repro.quantized.qmodel import QuantizedModel
from repro.runtime.engine import CampaignEngine
from repro.tmr.cost import OpCostModel, tmr_overhead_energy
from repro.winograd.opcount import ADD_CATEGORIES, MUL_CATEGORIES

__all__ = ["TmrPlanResult", "plan_tmr"]


@dataclass
class TmrPlanResult:
    """Outcome of one TMR planning run."""

    plan: ProtectionPlan
    achieved_accuracy: float
    overhead_energy: float
    target_accuracy: float
    ber: float
    iterations: int
    converged: bool
    history: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "target_accuracy": self.target_accuracy,
            "achieved_accuracy": self.achieved_accuracy,
            "overhead_energy": self.overhead_energy,
            "ber": self.ber,
            "iterations": self.iterations,
            "converged": self.converged,
            "fractions": {
                f"{layer}/{cat}": frac
                for (layer, cat), frac in sorted(self.plan.fractions.items())
                if frac > 0
            },
        }


def _layer_categories(layer, mul_first: bool) -> list[str]:
    """Categories of a layer in protection-priority order."""
    present = {cat for cat, n in layer.op_counts.by_category().items() if n}
    muls = [c for c in MUL_CATEGORIES if c in present]
    adds = [c for c in ADD_CATEGORIES if c in present]
    return muls + adds if mul_first else adds + muls


def _next_increment(
    qmodel: QuantizedModel,
    plan: ProtectionPlan,
    ranking: list[tuple[str, float]],
    step: float,
) -> bool:
    """Raise protection of the most vulnerable not-yet-saturated layer.

    Multiplication categories are filled before addition categories within
    each layer.  Returns False when every (layer, category) is saturated.
    """
    by_name = {layer.name: layer for layer in qmodel.injectable_layers()}
    for layer_name, _vf in ranking:
        layer = by_name[layer_name]
        for category in _layer_categories(layer, mul_first=True):
            current = plan.fraction(layer_name, category)
            if current < 1.0 - 1e-9:
                plan.set(layer_name, category, min(1.0, current + step))
                return True
    return False


def plan_tmr(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    ber: float,
    target_accuracy: float,
    vulnerability_ranking: list[tuple[str, float]],
    config: CampaignConfig | None = None,
    cost_model: OpCostModel | None = None,
    step: float = 0.25,
    initial_plan: ProtectionPlan | None = None,
    max_iterations: int = 400,
    engine: CampaignEngine | None = None,
) -> TmrPlanResult:
    """Grow a protection plan until ``target_accuracy`` is reached at ``ber``.

    Parameters
    ----------
    vulnerability_ranking:
        ``(layer, vulnerability_factor)`` pairs, most vulnerable first.
        Passing a ranking measured on a *different* execution mode is how
        the fault-tolerance-unaware scheme (WG-Conv-W/O-AFT) is realized.
    step:
        Protection-fraction increment per iteration.
    initial_plan:
        Starting plan (copied); used to warm-start scheme comparisons.
    engine:
        Optional :class:`~repro.runtime.CampaignEngine`.  Each iteration's
        candidate evaluation is batched as per-seed tasks through
        :meth:`~repro.runtime.CampaignEngine.evaluate_tasks` (sharded,
        checkpointed); the default is a serial in-process engine.
        Convergence is bit-identical either way.
    """
    if not 0.0 < target_accuracy <= 1.0:
        raise ConfigurationError(f"bad target accuracy {target_accuracy}")
    config = config or CampaignConfig()
    engine = engine if engine is not None else CampaignEngine(workers=1)
    cost_model = cost_model or OpCostModel(width=qmodel.config.width)
    plan = initial_plan.copy() if initial_plan is not None else ProtectionPlan()

    history: list[dict] = []
    converged = False
    accuracy = 0.0
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        point = engine.run_point(qmodel, x, labels, ber, config=config, protection=plan)
        accuracy = point.mean_accuracy
        overhead = tmr_overhead_energy(qmodel, plan, cost_model)
        history.append({"iteration": iterations, "accuracy": accuracy, "overhead": overhead})
        if accuracy >= target_accuracy:
            converged = True
            break
        if not _next_increment(qmodel, plan, vulnerability_ranking, step):
            break  # everything protected; cannot do better

    return TmrPlanResult(
        plan=plan,
        achieved_accuracy=accuracy,
        overhead_energy=tmr_overhead_energy(qmodel, plan, cost_model),
        target_accuracy=target_accuracy,
        ber=ber,
        iterations=iterations,
        converged=converged,
        history=history,
    )
