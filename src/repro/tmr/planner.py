"""Fine-grained TMR planner (paper §4.1).

The paper's heuristic, verbatim: select the most vulnerable layer by its
layer-wise vulnerability factor, protect a randomly chosen *fraction* of
that layer's operations (multiplications first, since §3.2.4 shows they are
far more vulnerable), and iterate until the accuracy goal is met.

Random fractional protection is realized as Poisson thinning of the fault
rate (see :mod:`repro.faultsim.protection`), so the planner works directly
with the Monte-Carlo campaign machinery.

Execution model
---------------
Each iteration evaluates the candidate plan through
:meth:`repro.runtime.CampaignEngine.evaluate_tasks` (one seed-batch task
per candidate, sharded per-seed across the pool).  Pass ``engine=`` to
shard those per-iteration evaluations across workers and checkpoint/resume
them (the experiments CLI's ``--workers/--resume/--checkpoint`` reach here
through Fig. 5); without an engine a serial in-process engine is used.
Convergence — ``iterations``, ``converged`` and the chosen fractions — is
bit-identical for any worker count because every subtask owns its RNG
seed.

Speculative mode
----------------
One iteration evaluates one candidate over ``len(config.seeds)`` seeds —
typically fewer subtasks than workers, leaving most of the pool idle.
``speculative=True`` exploits a property of the paper's heuristic: the
increment rule (:func:`_next_increment`) depends only on the vulnerability
ranking and the current plan, *never on a measured accuracy*, so the
sequence of candidate plans the serial loop would evaluate is fully
predetermined.  The speculative planner therefore evaluates the next
``lookahead`` candidates of that exact chain concurrently (one engine
batch per round) and keeps the **first candidate in chain order** that
meets the accuracy goal — the same candidate the serial loop would have
stopped at.

Deviation from the paper's heuristic: the *outputs* (plan, iterations,
convergence, history) are identical to the serial heuristic, but up to
``lookahead - 1`` candidates *past* the convergence point are evaluated
speculatively and discarded.  That costs extra evaluation energy, and the
discarded evaluations are visible as extra checkpoint entries (harmless:
they are keyed like any other subtask and simply never served).  Were the
increment rule ever made accuracy-dependent (e.g. adaptive step sizes),
speculation would change the trajectory and this equivalence would no
longer hold — which is why the mode is opt-in (``speculative=False``
default, ``--speculative`` on the CLI).

``adaptive_lookahead=True`` bounds that overshoot cost: each round's
depth shrinks in proportion to the remaining accuracy gap (a planner far
from its goal speculates the full ``lookahead``; one nearly converged
speculates barely past the next candidate).  Depth only changes *which
prefix* of the predetermined chain a round evaluates — never the chain
itself — so adaptivity is result-identical too; the realized
evaluation/discard counts are recorded on
:attr:`TmrPlanResult.discarded_evaluations` and logged.

Portfolio planning
------------------
The journal extension (arXiv 2308.08230) widens the choice from "how much
TMR" to "which scheme per layer": :func:`plan_portfolio` grows a plan by
whole-layer scheme upgrades along the ladder none → ABFT → TMR, picking at
each step the most *cost-efficient* upgrade (vulnerability × coverage gain
per unit overhead energy).  The increment rule is, like
:func:`_next_increment`, independent of measured accuracy — the candidate
chain is predetermined from the vulnerability ranking and the cost model
alone — so the same speculative/adaptive machinery (and the engine's
shared golden-run cache) applies verbatim to the portfolio's larger
per-step candidate space.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.faultsim.campaign import CampaignConfig
from repro.faultsim.protection import (
    ProtectionPlan,
    SCHEME_ABFT,
    SCHEME_NONE,
    SCHEME_TMR,
)
from repro.quantized.qmodel import QuantizedModel
from repro.runtime.engine import CampaignEngine
from repro.runtime.tasks import TaskSpec
from repro.tmr.cost import (
    OpCostModel,
    abft_overhead_energy,
    portfolio_overhead_energy,
    tmr_overhead_energy,
)
from repro.winograd.opcount import ADD_CATEGORIES, MUL_CATEGORIES

__all__ = ["TmrPlanResult", "plan_tmr", "plan_portfolio"]

_LOG = logging.getLogger(__name__)


@dataclass
class TmrPlanResult:
    """Outcome of one TMR planning run.

    Attributes
    ----------
    plan:
        The grown :class:`ProtectionPlan` (the last evaluated candidate).
    achieved_accuracy:
        Mean accuracy of ``plan`` at ``ber`` (the last history entry).
    overhead_energy:
        Energy overhead of ``plan`` under the run's cost model — TMR
        fractions plus, for portfolio plans, the ABFT checksum cost.
    target_accuracy:
        The accuracy goal the planner grew towards.
    ber:
        Operating bit error rate of the planning campaign.
    iterations:
        Number of candidate plans evaluated *on the serial trajectory*
        (speculative overshoot evaluations are not counted).
    converged:
        True when ``achieved_accuracy >= target_accuracy``.
    history:
        One ``{"iteration", "accuracy", "overhead"}`` dict per counted
        iteration, identical between serial and speculative planning.
    discarded_evaluations:
        Candidate evaluations performed beyond the counted iterations —
        the speculative overshoot cost (0 for serial planning).  An
        execution statistic, not part of the planning result, so it is
        deliberately excluded from :meth:`to_dict`.
    """

    plan: ProtectionPlan
    achieved_accuracy: float
    overhead_energy: float
    target_accuracy: float
    ber: float
    iterations: int
    converged: bool
    history: list[dict] = field(default_factory=list)
    discarded_evaluations: int = 0

    def to_dict(self) -> dict:
        """JSON-serializable form.

        Scheme-free (legacy TMR) plans emit exactly the historical
        payload; plans carrying per-layer schemes add a ``"schemes"``
        map.
        """
        payload = {
            "target_accuracy": self.target_accuracy,
            "achieved_accuracy": self.achieved_accuracy,
            "overhead_energy": self.overhead_energy,
            "ber": self.ber,
            "iterations": self.iterations,
            "converged": self.converged,
            "fractions": {
                f"{layer}/{cat}": frac
                for (layer, cat), frac in sorted(self.plan.fractions.items())
                if frac > 0
            },
        }
        if self.plan.schemes:
            payload["schemes"] = dict(sorted(self.plan.schemes.items()))
        return payload


def _layer_categories(layer, mul_first: bool) -> list[str]:
    """Categories of a layer in protection-priority order."""
    present = {cat for cat, n in layer.op_counts.by_category().items() if n}
    muls = [c for c in MUL_CATEGORIES if c in present]
    adds = [c for c in ADD_CATEGORIES if c in present]
    return muls + adds if mul_first else adds + muls


def _next_increment(
    qmodel: QuantizedModel,
    plan: ProtectionPlan,
    ranking: list[tuple[str, float]],
    step: float,
) -> bool:
    """Raise protection of the most vulnerable not-yet-saturated layer.

    Multiplication categories are filled before addition categories within
    each layer.  Returns False when every (layer, category) is saturated.
    Deliberately independent of any measured accuracy — this is what makes
    the speculative planner's candidate chain exact (see module docs).
    """
    by_name = {layer.name: layer for layer in qmodel.injectable_layers()}
    for layer_name, _vf in ranking:
        layer = by_name[layer_name]
        for category in _layer_categories(layer, mul_first=True):
            current = plan.fraction(layer_name, category)
            if current < 1.0 - 1e-9:
                plan.set(layer_name, category, min(1.0, current + step))
                return True
    return False


def _candidate_chain(
    plan: ProtectionPlan,
    increment,
    length: int,
) -> tuple[list[ProtectionPlan], bool]:
    """The next ``length`` plans the serial heuristic would evaluate.

    ``plan`` (not yet evaluated) is the chain's first candidate; each
    successor applies ``increment`` (a deterministic, accuracy-independent
    in-place step returning False at saturation) to a copy of its
    predecessor.  Returns ``(chain, saturated)`` where ``saturated`` means
    the last chain entry has no successor, so the chain may be shorter
    than requested.
    """
    chain = [plan]
    saturated = False
    while len(chain) < length:
        successor = chain[-1].copy()
        if not increment(successor):
            saturated = True
            break
        chain.append(successor)
    return chain, saturated


def _default_lookahead(engine: CampaignEngine, config: CampaignConfig) -> int:
    """Candidates per speculative round: enough subtasks to fill the pool."""
    seeds = max(1, len(config.seeds))
    return max(2, -(-engine.workers // seeds))


def _adaptive_depth(
    base: int, target_accuracy: float, accuracy: float, initial_gap: float
) -> int:
    """Speculation depth scaled to the remaining accuracy gap.

    ``ceil(base * gap / initial_gap)``, clamped to ``[1, base]``: while
    the goal is distant the full ``base`` lookahead amortizes round
    latency, and as the gap closes the round shrinks toward a single
    candidate so overshoot evaluations stop being wasted near
    convergence.  Depth selects only how much of the *predetermined*
    candidate chain one round evaluates, so any depth sequence yields
    identical planning results.
    """
    if initial_gap <= 0.0:
        return 1
    gap = target_accuracy - accuracy
    if gap <= 0.0:
        return 1
    return max(1, min(base, math.ceil(base * gap / initial_gap)))


def plan_tmr(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    ber: float,
    target_accuracy: float,
    vulnerability_ranking: list[tuple[str, float]],
    config: CampaignConfig | None = None,
    cost_model: OpCostModel | None = None,
    step: float = 0.25,
    initial_plan: ProtectionPlan | None = None,
    max_iterations: int = 400,
    engine: CampaignEngine | None = None,
    speculative: bool = False,
    lookahead: int | None = None,
    adaptive_lookahead: bool = False,
) -> TmrPlanResult:
    """Grow a protection plan until ``target_accuracy`` is reached at ``ber``.

    Parameters
    ----------
    qmodel:
        Quantized model whose execution mode the plan protects.
    x, labels:
        Evaluation batch the planning campaign scores accuracy on.
    ber:
        Operating bit error rate for every candidate evaluation.
    target_accuracy:
        Accuracy goal in ``(0, 1]``; planning stops at the first candidate
        meeting it.
    vulnerability_ranking:
        ``(layer, vulnerability_factor)`` pairs, most vulnerable first.
        Passing a ranking measured on a *different* execution mode is how
        the fault-tolerance-unaware scheme (WG-Conv-W/O-AFT) is realized.
    config:
        Campaign configuration (seeds, budget); default
        :class:`CampaignConfig`.
    cost_model:
        :class:`OpCostModel` for overhead accounting; defaults to the
        model's width.
    step:
        Protection-fraction increment per iteration.
    initial_plan:
        Starting plan (copied); used to warm-start scheme comparisons.
    max_iterations:
        Upper bound on counted candidate evaluations.
    engine:
        Optional :class:`~repro.runtime.CampaignEngine`.  Each candidate
        evaluation is one seed-batch task through
        :meth:`~repro.runtime.CampaignEngine.evaluate_tasks` (sharded
        per-seed, checkpointed); the default is a serial in-process
        engine.  Convergence is bit-identical either way.
    speculative:
        Evaluate ``lookahead`` candidates of the (predetermined) serial
        chain concurrently per round and keep the first in chain order
        meeting the goal.  Results are identical to the serial heuristic;
        only extra overshoot evaluations are performed (see module docs
        for the documented deviation).
    lookahead:
        Candidates per speculative round; default sizes the round to the
        engine's pool (``ceil(workers / len(seeds))``, at least 2).
    adaptive_lookahead:
        Shrink each speculative round's depth as the accuracy gap to the
        goal narrows (proportional to ``gap / initial gap``), cutting the
        overshoot evaluations discarded at convergence.  Results stay
        identical — depth only picks how much of the predetermined chain
        a round evaluates; the realized overshoot is recorded on
        :attr:`TmrPlanResult.discarded_evaluations`.  Ignored without
        ``speculative``.

    Returns
    -------
    TmrPlanResult
        The grown plan with its convergence record; identical for any
        worker count and for ``speculative`` on or off.
    """
    cost_model = cost_model or OpCostModel(width=qmodel.config.width)
    return _grow_plan(
        qmodel,
        x,
        labels,
        ber=ber,
        target_accuracy=target_accuracy,
        config=config,
        engine=engine,
        initial_plan=initial_plan,
        increment=lambda plan: _next_increment(
            qmodel, plan, vulnerability_ranking, step
        ),
        overhead=lambda plan: tmr_overhead_energy(qmodel, plan, cost_model),
        max_iterations=max_iterations,
        speculative=speculative,
        lookahead=lookahead,
        adaptive_lookahead=adaptive_lookahead,
        tag="tmr-iter",
    )


def _grow_plan(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    ber: float,
    target_accuracy: float,
    config: CampaignConfig | None,
    engine: CampaignEngine | None,
    initial_plan: ProtectionPlan | None,
    increment,
    overhead,
    max_iterations: int,
    speculative: bool,
    lookahead: int | None,
    adaptive_lookahead: bool,
    tag: str,
) -> TmrPlanResult:
    """Shared grow-until-goal loop behind :func:`plan_tmr` and
    :func:`plan_portfolio`.

    ``increment`` is the heuristic's deterministic step (mutates a
    candidate in place, returns False at saturation) and ``overhead`` the
    matching cost accounting; both must be independent of measured
    accuracy so the speculative candidate chain stays exact.  Everything
    else — engine dispatch, chain-order iteration counting, adaptive
    speculation depth, convergence bookkeeping — is scheme-agnostic and
    bit-identical to the original serial TMR loop.
    """
    if not 0.0 < target_accuracy <= 1.0:
        raise ConfigurationError(f"bad target accuracy {target_accuracy}")
    config = config or CampaignConfig()
    engine = engine if engine is not None else CampaignEngine(workers=1)
    plan = initial_plan.copy() if initial_plan is not None else ProtectionPlan()
    if lookahead is not None and lookahead < 1:
        raise ConfigurationError(f"lookahead must be >= 1, got {lookahead}")
    base_depth = (
        (lookahead or _default_lookahead(engine, config)) if speculative else 1
    )

    history: list[dict] = []
    converged = False
    accuracy = 0.0
    iterations = 0
    evaluated = 0
    initial_gap: float | None = None
    while iterations < max_iterations and not converged:
        depth = base_depth
        if speculative and adaptive_lookahead and initial_gap is not None:
            depth = _adaptive_depth(
                base_depth, target_accuracy, accuracy, initial_gap
            )
        length = min(depth, max_iterations - iterations)
        chain, saturated = _candidate_chain(plan, increment, length)
        tasks = [
            TaskSpec(
                ber=ber,
                seeds=tuple(config.seeds),
                protection=candidate,
                tag=f"{tag}{iterations + offset + 1}",
            )
            for offset, candidate in enumerate(chain)
        ]
        points = engine.evaluate_tasks(qmodel, x, labels, tasks, config=config)
        evaluated += len(chain)
        # Walk the round in chain order — the serial evaluation order —
        # counting exactly the iterations the serial loop would have run.
        for candidate, point in zip(chain, points):
            iterations += 1
            plan = candidate
            accuracy = point.mean_accuracy
            if initial_gap is None:
                initial_gap = max(0.0, target_accuracy - accuracy)
            history.append(
                {
                    "iteration": iterations,
                    "accuracy": accuracy,
                    "overhead": overhead(candidate),
                }
            )
            if accuracy >= target_accuracy:
                converged = True
                break
        if converged or saturated:
            break
        # Advance to the next round's first candidate.  Mirroring the
        # serial loop, the increment is applied even when max_iterations
        # was just exhausted: the returned plan is then one (unevaluated)
        # increment past the last measured candidate, exactly as the
        # serial heuristic leaves it.
        successor = plan.copy()
        if not increment(successor):
            break  # everything protected; cannot do better
        plan = successor

    discarded = evaluated - iterations
    if speculative:
        _LOG.info(
            "speculative %s planning: %d candidate evaluations for %d "
            "counted iterations (%d discarded, adaptive_lookahead=%s)",
            tag.removesuffix("-iter"),
            evaluated, iterations, discarded, adaptive_lookahead,
        )
    return TmrPlanResult(
        plan=plan,
        achieved_accuracy=accuracy,
        overhead_energy=overhead(plan),
        target_accuracy=target_accuracy,
        ber=ber,
        iterations=iterations,
        converged=converged,
        history=history,
        discarded_evaluations=discarded,
    )


def _portfolio_increment(
    plan: ProtectionPlan,
    ranking: list[tuple[str, float]],
    layers_by_name: dict,
    layer_costs: dict[str, dict[str, float]],
    coverage: dict[str, float],
    ladder: tuple[str, ...],
) -> bool:
    """Apply the single most cost-efficient whole-layer scheme upgrade.

    Every ranked layer's candidate move is the next rung of the scheme
    ladder above its current scheme; the move's score is
    ``vulnerability_factor * coverage_gain / overhead_delta``.  The
    highest score wins, ties resolving to the most vulnerable layer
    (ranking order).  Upgrading to TMR sets every present category's
    fraction to 1.0 (whole-layer replication); upgrading to ABFT zeroes
    them (faults are injected in full and corrected at the accumulator).
    Deliberately independent of any measured accuracy — this keeps the
    speculative candidate chain exact.  Returns False when every layer
    sits on the ladder's top reachable rung.
    """
    best = None  # (score, layer, scheme)
    for layer_name, vulnerability in ranking:
        current = plan.scheme(layer_name)
        current_cov = coverage.get(current, 0.0)
        upgrade = next((s for s in ladder if coverage[s] > current_cov), None)
        if upgrade is None:
            continue
        gain = coverage[upgrade] - current_cov
        delta = max(
            layer_costs[layer_name][upgrade]
            - layer_costs[layer_name].get(current, 0.0),
            1e-12,
        )
        score = vulnerability * gain / delta
        if best is None or score > best[0]:
            best = (score, layer_name, upgrade)
    if best is None:
        return False
    _, layer_name, scheme = best
    plan.set_scheme(layer_name, scheme)
    fraction = 1.0 if scheme == SCHEME_TMR else 0.0
    for category in _layer_categories(layers_by_name[layer_name], mul_first=True):
        plan.set(layer_name, category, fraction)
    return True


def plan_portfolio(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    ber: float,
    target_accuracy: float,
    vulnerability_ranking: list[tuple[str, float]],
    config: CampaignConfig | None = None,
    cost_model: OpCostModel | None = None,
    allowed: tuple[str, ...] = (SCHEME_ABFT, SCHEME_TMR),
    abft_coverage: float = 0.99,
    initial_plan: ProtectionPlan | None = None,
    max_iterations: int = 400,
    engine: CampaignEngine | None = None,
    speculative: bool = False,
    lookahead: int | None = None,
    adaptive_lookahead: bool = False,
) -> TmrPlanResult:
    """Grow a mixed-scheme protection plan until ``target_accuracy`` holds.

    Per-layer the planner chooses among {none, ABFT, TMR} (restricted by
    ``allowed`` — pass ``("tmr",)`` / ``("abft",)`` for the single-scheme
    comparison curves), upgrading one whole layer per iteration along the
    coverage ladder by greatest ``vulnerability × coverage gain / energy``
    (see :func:`_portfolio_increment`).  Candidate plans are evaluated
    exactly like :func:`plan_tmr` candidates — one seed-batch task per
    candidate through the engine, so worker pools, sample sharding,
    golden-run replay, checkpointing and the speculative/adaptive
    machinery all apply; results are bit-identical for any worker count
    and for ``speculative`` on or off.

    Parameters mirror :func:`plan_tmr` except:

    allowed:
        Schemes the planner may assign, a non-empty subset of
        ``("abft", "tmr")``.
    abft_coverage:
        Assumed fault coverage of the ABFT scheme in ``(0, 1)``, used
        only to *score* upgrades (TMR scores coverage 1.0); the measured
        accuracy always comes from the campaign, where correction
        coverage is whatever the checksum actually achieves.

    Returns a :class:`TmrPlanResult`; ``plan.schemes`` carries the chosen
    per-layer schemes and ``overhead_energy`` accounts both the TMR
    replication and the ABFT checksum cost
    (:func:`~repro.tmr.cost.portfolio_overhead_energy`).
    """
    if not allowed or not set(allowed) <= {SCHEME_ABFT, SCHEME_TMR}:
        raise ConfigurationError(
            f"allowed schemes must be a non-empty subset of "
            f"('{SCHEME_ABFT}', '{SCHEME_TMR}'), got {allowed!r}"
        )
    if not 0.0 < abft_coverage < 1.0:
        raise ConfigurationError(
            f"abft_coverage must be in (0, 1), got {abft_coverage}"
        )
    cost_model = cost_model or OpCostModel(width=qmodel.config.width)
    coverage = {
        SCHEME_NONE: 0.0,
        SCHEME_ABFT: abft_coverage,
        SCHEME_TMR: 1.0,
    }
    ladder = tuple(sorted(set(allowed), key=coverage.__getitem__))
    layers_by_name = {layer.name: layer for layer in qmodel.injectable_layers()}
    extra = cost_model.tmr_factor - 1.0
    layer_costs: dict[str, dict[str, float]] = {}
    for name, layer in layers_by_name.items():
        tmr_cost = sum(
            n_ops * cost_model.category_energy(category) * extra
            for category, n_ops in layer.op_counts.by_category().items()
            if n_ops
        )
        layer_costs[name] = {
            SCHEME_NONE: 0.0,
            SCHEME_ABFT: abft_overhead_energy(qmodel, (name,), cost_model),
            SCHEME_TMR: tmr_cost,
        }
    return _grow_plan(
        qmodel,
        x,
        labels,
        ber=ber,
        target_accuracy=target_accuracy,
        config=config,
        engine=engine,
        initial_plan=initial_plan,
        increment=lambda plan: _portfolio_increment(
            plan, vulnerability_ranking, layers_by_name, layer_costs,
            coverage, ladder,
        ),
        overhead=lambda plan: portfolio_overhead_energy(qmodel, plan, cost_model),
        max_iterations=max_iterations,
        speculative=speculative,
        lookahead=lookahead,
        adaptive_lookahead=adaptive_lookahead,
        tag="portfolio-iter",
    )
