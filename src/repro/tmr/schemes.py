"""The paper's three TMR deployment schemes (§4.1, Fig. 5).

* **ST-Conv** — standard convolution; vulnerability analysis and protection
  both on the direct execution.
* **WG-Conv-W/O-AFT** — Winograd execution, but *unaware* of Winograd's
  fault tolerance: it reuses ST-Conv's vulnerability ranking and protection
  fractions (the paper: "utilizes the same TMR protection option with
  ST-Conv"), merely mapping them onto the Winograd op categories.
* **WG-Conv-W/AFT** — fully aware: vulnerability analysis and iterative
  planning run natively on the Winograd execution.

All three schemes route their protected evaluations (the two vulnerability
analyses and every planner iteration) through the
:class:`~repro.runtime.CampaignEngine` passed as ``engine=``, so Fig. 5
honors ``--workers/--resume/--checkpoint`` end-to-end; results are
bit-identical to serial execution for any worker count.  Passing
``speculative=True`` additionally enables the planner's lookahead mode
(see :mod:`repro.tmr.planner`) for every scheme's planning runs —
result-identical, but keeping the pool busy across planner iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.vulnerability import layer_vulnerability
from repro.errors import ConfigurationError
from repro.faultsim.campaign import CampaignConfig
from repro.faultsim.protection import ProtectionPlan, SCHEME_ABFT, SCHEME_TMR
from repro.quantized.qmodel import QuantizedModel
from repro.runtime.engine import CampaignEngine
from repro.tmr.cost import OpCostModel
from repro.tmr.planner import TmrPlanResult, plan_portfolio, plan_tmr
from repro.winograd.opcount import ADD_CATEGORIES, MUL_CATEGORIES

__all__ = [
    "SCHEME_ST",
    "SCHEME_WG_WO_AFT",
    "SCHEME_WG_W_AFT",
    "PROTECTION_TMR",
    "PROTECTION_ABFT",
    "PROTECTION_PORTFOLIO",
    "SchemeCurve",
    "map_plan_to_winograd",
    "run_tmr_schemes",
    "run_protection_portfolio",
]

SCHEME_ST = "ST-Conv"
SCHEME_WG_WO_AFT = "WG-Conv-W/O-AFT"
SCHEME_WG_W_AFT = "WG-Conv-W/AFT"

#: Portfolio-experiment strategies: which schemes the planner may assign.
PROTECTION_TMR = "tmr"
PROTECTION_ABFT = "abft"
PROTECTION_PORTFOLIO = "portfolio"
_PROTECTION_ALLOWED: dict[str, tuple[str, ...]] = {
    PROTECTION_TMR: (SCHEME_TMR,),
    PROTECTION_ABFT: (SCHEME_ABFT,),
    PROTECTION_PORTFOLIO: (SCHEME_ABFT, SCHEME_TMR),
}


@dataclass
class SchemeCurve:
    """Per-goal TMR results for one scheme."""

    scheme: str
    goals: list[float]
    results: list[TmrPlanResult]

    @property
    def overheads(self) -> list[float]:
        """Raw overhead energies, aligned with ``goals``."""
        return [r.overhead_energy for r in self.results]

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "scheme": self.scheme,
            "goals": self.goals,
            "results": [r.to_dict() for r in self.results],
        }


def map_plan_to_winograd(
    st_plan: ProtectionPlan, qm_winograd: QuantizedModel
) -> ProtectionPlan:
    """Translate an ST-Conv protection plan onto Winograd execution.

    The fault-tolerance-unaware scheme protects the *same fraction* of each
    layer's multiplications/additions that the ST plan chose, applied to
    whatever categories the Winograd execution of that layer actually has.
    """
    wg_plan = ProtectionPlan()
    for layer in qm_winograd.injectable_layers():
        st_mul = st_plan.fraction(layer.name, "st_mul")
        st_add = st_plan.fraction(layer.name, "st_add")
        present = {cat for cat, n in layer.op_counts.by_category().items() if n}
        for category in MUL_CATEGORIES:
            if category in present and st_mul > 0:
                wg_plan.set(layer.name, category, st_mul)
        for category in ADD_CATEGORIES:
            if category in present and st_add > 0:
                wg_plan.set(layer.name, category, st_add)
    return wg_plan


def _ranking(report) -> list[tuple[str, float]]:
    """Planner-shaped (layer, vulnerability) pairs, most vulnerable first."""
    return [(lv.layer, lv.vulnerability_factor) for lv in report.ranked()]


def run_tmr_schemes(
    qm_standard: QuantizedModel,
    qm_winograd: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    ber: float,
    goals: list[float],
    config: CampaignConfig | None = None,
    cost_model_st: OpCostModel | None = None,
    cost_model_wg: OpCostModel | None = None,
    step: float = 0.25,
    engine: CampaignEngine | None = None,
    speculative: bool = False,
    adaptive_lookahead: bool = False,
) -> dict[str, SchemeCurve]:
    """Produce Fig. 5's three overhead-vs-accuracy-goal curves.

    Goals are processed in ascending order with warm-started plans
    (protection needed for a goal is a superset of that for a lower goal).
    ``engine`` is threaded into both vulnerability analyses and every
    :func:`plan_tmr` call (default: serial in-process engine);
    ``speculative`` enables the planner's result-identical lookahead mode
    for all three schemes, and ``adaptive_lookahead`` its gap-scaled
    round depth (fewer discarded overshoot evaluations near convergence).
    """
    config = config or CampaignConfig()
    goals = sorted(goals)

    vuln_st = layer_vulnerability(
        qm_standard, x, labels, ber, config=config, engine=engine
    )
    vuln_wg = layer_vulnerability(
        qm_winograd, x, labels, ber, config=config, engine=engine
    )
    ranking_st = _ranking(vuln_st)
    ranking_wg = _ranking(vuln_wg)

    curves: dict[str, SchemeCurve] = {
        name: SchemeCurve(name, [], [])
        for name in (SCHEME_ST, SCHEME_WG_WO_AFT, SCHEME_WG_W_AFT)
    }

    st_plan: ProtectionPlan | None = None
    aware_plan: ProtectionPlan | None = None
    for goal in goals:
        st_result = plan_tmr(
            qm_standard, x, labels, ber, goal, ranking_st,
            config=config, cost_model=cost_model_st, step=step,
            initial_plan=st_plan, engine=engine, speculative=speculative,
            adaptive_lookahead=adaptive_lookahead,
        )
        st_plan = st_result.plan
        curves[SCHEME_ST].goals.append(goal)
        curves[SCHEME_ST].results.append(st_result)

        # Unaware: ST's plan mapped onto Winograd execution; grow with the
        # ST ranking only if the mapped plan misses the goal.
        mapped = map_plan_to_winograd(st_plan, qm_winograd)
        unaware = plan_tmr(
            qm_winograd, x, labels, ber, goal, ranking_st,
            config=config, cost_model=cost_model_wg, step=step,
            initial_plan=mapped, engine=engine, speculative=speculative,
            adaptive_lookahead=adaptive_lookahead,
        )
        curves[SCHEME_WG_WO_AFT].goals.append(goal)
        curves[SCHEME_WG_WO_AFT].results.append(unaware)

        aware = plan_tmr(
            qm_winograd, x, labels, ber, goal, ranking_wg,
            config=config, cost_model=cost_model_wg, step=step,
            initial_plan=aware_plan, engine=engine, speculative=speculative,
            adaptive_lookahead=adaptive_lookahead,
        )
        aware_plan = aware.plan
        curves[SCHEME_WG_W_AFT].goals.append(goal)
        curves[SCHEME_WG_W_AFT].results.append(aware)

    return curves


def run_protection_portfolio(
    qmodel: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    ber: float,
    goals: list[float],
    config: CampaignConfig | None = None,
    cost_model: OpCostModel | None = None,
    strategies: tuple[str, ...] = (
        PROTECTION_TMR, PROTECTION_ABFT, PROTECTION_PORTFOLIO,
    ),
    abft_coverage: float = 0.99,
    engine: CampaignEngine | None = None,
    speculative: bool = False,
    adaptive_lookahead: bool = False,
) -> dict[str, SchemeCurve]:
    """Overhead-vs-goal curves for whole-layer TMR, ABFT and the mix.

    The journal-extension comparison: one vulnerability analysis of
    ``qmodel``, then per strategy one :func:`plan_portfolio` ladder over
    the ascending ``goals`` with warm-started plans — ``"tmr"`` may only
    assign whole-layer TMR, ``"abft"`` only the checksum scheme, and
    ``"portfolio"`` chooses per layer.  All evaluations route through
    ``engine`` (worker pools, checkpointing, sample sharding and replay
    included) and are bit-identical for any worker count.  Returns one
    :class:`SchemeCurve` per strategy, keyed by strategy name.
    """
    unknown = set(strategies) - set(_PROTECTION_ALLOWED)
    if not strategies or unknown:
        raise ConfigurationError(
            f"strategies must be a non-empty subset of "
            f"{tuple(_PROTECTION_ALLOWED)}, got {strategies!r}"
        )
    config = config or CampaignConfig()
    goals = sorted(goals)
    vuln = layer_vulnerability(qmodel, x, labels, ber, config=config, engine=engine)
    ranking = _ranking(vuln)

    curves: dict[str, SchemeCurve] = {}
    for strategy in strategies:
        curve = SchemeCurve(strategy, [], [])
        plan: ProtectionPlan | None = None
        for goal in goals:
            result = plan_portfolio(
                qmodel, x, labels, ber, goal, ranking,
                config=config, cost_model=cost_model,
                allowed=_PROTECTION_ALLOWED[strategy],
                abft_coverage=abft_coverage, initial_plan=plan,
                engine=engine, speculative=speculative,
                adaptive_lookahead=adaptive_lookahead,
            )
            plan = result.plan
            curve.goals.append(goal)
            curve.results.append(result)
        curves[strategy] = curve
    return curves


def normalized_overheads(curves: dict[str, SchemeCurve]) -> dict[str, list[float]]:
    """Normalize every curve by ST-Conv's overhead at the highest goal."""
    anchor = curves[SCHEME_ST].overheads[-1]
    if anchor <= 0:
        anchor = max(
            max(curve.overheads, default=0.0) for curve in curves.values()
        ) or 1.0
    return {name: [o / anchor for o in curve.overheads] for name, curve in curves.items()}


def average_reduction(curves: dict[str, SchemeCurve]) -> dict[str, float]:
    """Headline numbers: mean overhead reduction of the aware scheme.

    Returns the average relative reduction of WG-Conv-W/AFT overhead versus
    ST-Conv and versus WG-Conv-W/O-AFT across all goals (the paper reports
    61.21 % and 27.49 %).  Goals where the reference scheme needed zero
    overhead are skipped (no meaningful ratio).
    """
    aware = curves[SCHEME_WG_W_AFT].overheads
    out: dict[str, float] = {}
    for reference in (SCHEME_ST, SCHEME_WG_WO_AFT):
        ref = curves[reference].overheads
        ratios = [
            1.0 - a / r for a, r in zip(aware, ref) if r > 0
        ]
        out[f"vs {reference}"] = float(np.mean(ratios)) if ratios else 0.0
    return out
