"""Shared utilities: RNG management, im2col, integer math, serialization."""

from repro.utils.rng import RngFactory, as_rng, spawn_rng
from repro.utils.im2col import (
    conv_output_size,
    im2col,
    col2im,
    pad_nchw,
)
from repro.utils.mathx import ceil_div, ilog2, next_pow2, prod
from repro.utils.serialization import (
    load_json,
    save_json,
    load_npz_state,
    save_npz_state,
)

__all__ = [
    "RngFactory",
    "as_rng",
    "spawn_rng",
    "conv_output_size",
    "im2col",
    "col2im",
    "pad_nchw",
    "ceil_div",
    "ilog2",
    "next_pow2",
    "prod",
    "load_json",
    "save_json",
    "load_npz_state",
    "save_npz_state",
]
