"""im2col / col2im and padding helpers for NCHW convolution.

These are the workhorses of both the float training path (:mod:`repro.nn`)
and the quantized direct-convolution path (:mod:`repro.quantized`).  The
im2col layout is chosen so that the reduction axis enumerates ``(c, r, s)``
in C-major order — the *canonical accumulation order* that the operation-
level fault injector assumes when it reconstructs partial sums.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["conv_output_size", "pad_nchw", "im2col", "im2col_patches", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial extent of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution produces non-positive output size "
            f"(size={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def pad_nchw(x: np.ndarray, padding: int | tuple[int, int]) -> np.ndarray:
    """Zero-pad the spatial dims of an NCHW array."""
    if x.ndim != 4:
        raise ShapeError(f"expected NCHW array, got ndim={x.ndim}")
    if isinstance(padding, int):
        ph = pw = padding
    else:
        ph, pw = padding
    if ph == 0 and pw == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")


def im2col_patches(
    x: np.ndarray,
    kernel: tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Zero-copy strided patches view behind :func:`im2col`.

    Returns a read-only-by-convention ``(N, C, R, S, P, Q)`` view whose
    C-order flattening of the middle/trailing axes is exactly the
    materialized im2col matrix.  The optimized kernel backend consumes
    this view directly (fused gather + cast), skipping the intermediate
    int64 materialization; callers that need the ``(N, C*R*S, P*Q)``
    matrix use :func:`im2col`.
    """
    if x.ndim != 4:
        raise ShapeError(f"expected NCHW array, got ndim={x.ndim}")
    n, c, h, w = x.shape
    r, s = kernel
    p = conv_output_size(h, r, stride, padding)
    q = conv_output_size(w, s, stride, padding)
    xp = pad_nchw(x, padding)

    # Gather all (r, s) shifted views with stride tricks, then reorder.
    shape = (n, c, r, s, p, q)
    strides = (
        xp.strides[0],
        xp.strides[1],
        xp.strides[2],
        xp.strides[3],
        xp.strides[2] * stride,
        xp.strides[3] * stride,
    )
    return np.lib.stride_tricks.as_strided(xp, shape=shape, strides=strides)


def im2col(
    x: np.ndarray,
    kernel: tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Unfold NCHW input into convolution columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        Kernel spatial size ``(R, S)``.
    stride, padding:
        Convolution stride and symmetric zero padding.

    Returns
    -------
    Array of shape ``(N, C * R * S, P * Q)`` where ``(P, Q)`` is the output
    spatial size.  The reduction axis is ordered ``c`` major, then ``r``,
    then ``s`` — the canonical accumulation order for fault injection.
    """
    patches = im2col_patches(x, kernel, stride, padding)
    n, c, r, s, p, q = patches.shape
    return np.ascontiguousarray(patches).reshape(n, c * r * s, p * q)


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Fold convolution columns back into an NCHW array (adjoint of im2col).

    Overlapping contributions are summed, which makes this the correct
    gradient operator for :func:`im2col` during backpropagation.
    """
    n, c, h, w = input_shape
    r, s = kernel
    p = conv_output_size(h, r, stride, padding)
    q = conv_output_size(w, s, stride, padding)
    if cols.shape != (n, c * r * s, p * q):
        raise ShapeError(
            f"cols shape {cols.shape} does not match expected "
            f"{(n, c * r * s, p * q)}"
        )

    hp, wp = h + 2 * padding, w + 2 * padding
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, r, s, p, q)
    for i in range(r):
        i_max = i + stride * p
        for j in range(s):
            j_max = j + stride * q
            out[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j]
    if padding == 0:
        return out
    return out[:, :, padding : padding + h, padding : padding + w]
