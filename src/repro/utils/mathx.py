"""Small integer-math helpers used across the accelerator and fault models."""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = ["ceil_div", "ilog2", "next_pow2", "prod"]


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division ``ceil(a / b)`` for non-negative ``a``, positive ``b``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"dividend must be non-negative, got {a}")
    return -(-a // b)


def ilog2(x: int) -> int:
    """Exact integer log2 of a positive power of two."""
    if x <= 0 or (x & (x - 1)) != 0:
        raise ValueError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


def next_pow2(x: int) -> int:
    """Smallest power of two >= ``x`` (with ``next_pow2(0) == 1``)."""
    if x < 0:
        raise ValueError(f"x must be non-negative, got {x}")
    if x <= 1:
        return 1
    return 1 << (x - 1).bit_length()


def prod(values: Iterable[int]) -> int:
    """Product of an iterable of integers (1 for an empty iterable)."""
    return math.prod(values)
