"""Deterministic random-number-generator plumbing.

Fault-injection experiments are Monte-Carlo simulations; reproducibility
requires that every stochastic component draw from an explicitly seeded
:class:`numpy.random.Generator`.  This module centralizes the conventions:

* :func:`as_rng` normalizes ``None`` / ``int`` / ``Generator`` arguments.
* :func:`spawn_rng` derives an independent child stream from a parent, keyed
  by a string label, so that e.g. per-layer fault sampling is decorrelated
  but still reproducible.
* :class:`RngFactory` hands out named, independent streams from one seed.
* :func:`site_rng` builds a **counter-based** stream: a Philox generator
  that is a pure function of ``(seed, *labels)``.  Unlike a sequential
  stream, two call sites keyed by different labels can draw in any order —
  or on different processes — and always see the same values, which is what
  makes fault sampling partition-invariant (see
  :mod:`repro.faultsim.sampling`).
"""

from __future__ import annotations

import functools
import hashlib

import numpy as np

__all__ = ["as_rng", "spawn_rng", "site_rng", "RngFactory"]

_MASK64 = (1 << 64) - 1

#: Domain-separation constant so site streams can never collide with other
#: SeedSequence users of the same integer seed.
_SITE_DOMAIN = 0x5749_4E4F_4641_554C  # "WINOFAUL"


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a fresh OS-entropy generator, an ``int`` yields a seeded
    PCG64 generator, and an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@functools.lru_cache(maxsize=4096)
def _label_to_int(label: str) -> int:
    """Hash ``label`` into a stable 64-bit integer.

    Memoized: the fault samplers re-key streams with the same small set
    of layer/site labels once per sample chunk per forward pass, which
    would otherwise repeat the SHA-256 on the hot injection path.
    """
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def site_rng(seed: int, *labels: int | str) -> np.random.Generator:
    """Counter-based keyed stream: a generator fully determined by its key.

    Returns a Philox-backed :class:`numpy.random.Generator` whose state is
    a pure function of ``(seed, labels)`` — no global state, no draw-order
    coupling between different keys.  String labels are hashed stably
    (SHA-256), integer labels are used directly, so
    ``site_rng(s, "layer3", "wg_mul", 7)`` names one independent stream per
    (seed, layer, category, chunk) tuple.

    This is the primitive behind the fault injectors' ``"counter"`` RNG
    scheme: because every draw is keyed by *what* is being sampled instead
    of *when*, splitting an evaluation batch across workers cannot shift
    any draw.
    """
    entropy = [_SITE_DOMAIN, int(seed) & _MASK64]
    for label in labels:
        if isinstance(label, str):
            entropy.append(_label_to_int(label))
        else:
            entropy.append(int(label) & _MASK64)
    return np.random.Generator(np.random.Philox(seed=np.random.SeedSequence(entropy)))


def spawn_rng(parent: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child generator from ``parent`` keyed by ``label``.

    The child is seeded from fresh draws of the parent combined with a hash
    of the label, so distinct labels produce decorrelated streams while the
    (parent seed, label) pair fully determines the child.
    """
    mix = int(parent.integers(0, 2**63 - 1))
    return np.random.default_rng((mix, _label_to_int(label)))


class RngFactory:
    """Produce named, independent random streams from a single root seed.

    Repeated requests for the same name return *new* generators seeded
    identically, so components may re-request their stream without sharing
    mutable state.

    Example
    -------
    >>> factory = RngFactory(1234)
    >>> a = factory.get("layer0")
    >>> b = factory.get("layer0")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory was constructed with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return a generator deterministically keyed by ``(seed, name)``."""
        return np.random.default_rng((self._seed, _label_to_int(name)))

    def __repr__(self) -> str:
        return f"RngFactory(seed={self._seed})"
