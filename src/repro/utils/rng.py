"""Deterministic random-number-generator plumbing.

Fault-injection experiments are Monte-Carlo simulations; reproducibility
requires that every stochastic component draw from an explicitly seeded
:class:`numpy.random.Generator`.  This module centralizes the conventions:

* :func:`as_rng` normalizes ``None`` / ``int`` / ``Generator`` arguments.
* :func:`spawn_rng` derives an independent child stream from a parent, keyed
  by a string label, so that e.g. per-layer fault sampling is decorrelated
  but still reproducible.
* :class:`RngFactory` hands out named, independent streams from one seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["as_rng", "spawn_rng", "RngFactory"]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a fresh OS-entropy generator, an ``int`` yields a seeded
    PCG64 generator, and an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _label_to_int(label: str) -> int:
    """Hash ``label`` into a stable 64-bit integer."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_rng(parent: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child generator from ``parent`` keyed by ``label``.

    The child is seeded from fresh draws of the parent combined with a hash
    of the label, so distinct labels produce decorrelated streams while the
    (parent seed, label) pair fully determines the child.
    """
    mix = int(parent.integers(0, 2**63 - 1))
    return np.random.default_rng((mix, _label_to_int(label)))


class RngFactory:
    """Produce named, independent random streams from a single root seed.

    Repeated requests for the same name return *new* generators seeded
    identically, so components may re-request their stream without sharing
    mutable state.

    Example
    -------
    >>> factory = RngFactory(1234)
    >>> a = factory.get("layer0")
    >>> b = factory.get("layer0")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory was constructed with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return a generator deterministically keyed by ``(seed, name)``."""
        return np.random.default_rng((self._seed, _label_to_int(name)))

    def __repr__(self) -> str:
        return f"RngFactory(seed={self._seed})"
