"""JSON / NPZ persistence helpers for experiment results and model weights.

Experiment drivers cache intermediate results (trained weights, campaign
accuracy curves) under ``results/`` so that re-running a benchmark does not
re-train the model zoo.  All formats are plain JSON / NumPy ``.npz`` so they
stay inspectable without this library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["save_json", "load_json", "save_npz_state", "load_npz_state"]


class _NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands NumPy scalars and arrays."""

    def default(self, o: Any) -> Any:
        if isinstance(o, np.integer):
            return int(o)
        if isinstance(o, np.floating):
            return float(o)
        if isinstance(o, np.bool_):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        return super().default(o)


def save_json(path: str | Path, payload: Any) -> Path:
    """Write ``payload`` as pretty-printed JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, cls=_NumpyJSONEncoder)
        handle.write("\n")
    return path


def load_json(path: str | Path) -> Any:
    """Load a JSON document written by :func:`save_json`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def save_npz_state(path: str | Path, state: dict[str, np.ndarray]) -> Path:
    """Persist a flat ``name -> ndarray`` state dict as a compressed npz."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **state)
    return path


def load_npz_state(path: str | Path) -> dict[str, np.ndarray]:
    """Load a state dict written by :func:`save_npz_state`."""
    with np.load(path) as data:
        return {name: data[name] for name in data.files}
