"""Winograd convolution engine: transforms, kernels, DWM, op counting."""

from repro.winograd.cook_toom import cook_toom_1d, default_points, scale_to_integer
from repro.winograd.transforms import SUPPORTED_TILES, WinogradTransform, get_transform
from repro.winograd.tiling import TileGrid, assemble_tiles, extract_tiles
from repro.winograd.conv2d import (
    WinogradConvContext,
    transform_filter_float,
    transform_filter_int,
    winograd_conv2d_float,
    winograd_conv2d_int,
)
from repro.winograd.decompose import (
    SubConvSpec,
    decompose_conv,
    extract_sub_input,
    extract_sub_kernel,
)
from repro.winograd.opcount import (
    ADD_CATEGORIES,
    ALL_CATEGORIES,
    MUL_CATEGORIES,
    OpCounts,
    linear_counts,
    standard_conv_counts,
    winograd_conv_counts,
)

__all__ = [
    "cook_toom_1d",
    "default_points",
    "scale_to_integer",
    "SUPPORTED_TILES",
    "WinogradTransform",
    "get_transform",
    "TileGrid",
    "assemble_tiles",
    "extract_tiles",
    "WinogradConvContext",
    "transform_filter_float",
    "transform_filter_int",
    "winograd_conv2d_float",
    "winograd_conv2d_int",
    "SubConvSpec",
    "decompose_conv",
    "extract_sub_input",
    "extract_sub_kernel",
    "OpCounts",
    "linear_counts",
    "standard_conv_counts",
    "winograd_conv_counts",
    "MUL_CATEGORIES",
    "ADD_CATEGORIES",
    "ALL_CATEGORIES",
]
