"""2-D Winograd convolution kernels (float reference and integer-exact).

Two entry points:

* :func:`winograd_conv2d_float` — float64/float32 reference used by the
  float training framework's inference checks and by tests.
* :class:`WinogradConvContext` + :func:`winograd_conv2d_int` — the
  integer-exact pipeline used by quantized inference.  It exposes every
  intermediate (transformed inputs ``U``, transformed weights ``V``,
  products/accumulated ``M`` and scaled output ``Y_int``) so the
  operation-level fault injector can flip bits in any of them.

Both support unit stride with ``r x r`` kernels for any supported tile size;
larger kernels and strides are handled one level up by the DWM decomposition
(:mod:`repro.winograd.decompose`).

The integer pipeline's per-stage kernels (tile transforms and the channel
reduction) execute through a pluggable :mod:`repro.backends` backend —
bit-identical across backends by contract, so the choice affects
wall-clock only.  ``_channel_reduce``, ``_cached_einsum`` and the bounded
``_EINSUM_PATHS`` path cache remain importable here for compatibility
(they now live in the backend layer).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends import get_backend, kron_row_bound
# Legacy aliases: the bounded einsum-path cache and the reference
# kernels now live in the backend layer, but tests and the ABFT checker
# import them from here.
from repro.backends.base import EINSUM_PATHS as _EINSUM_PATHS  # noqa: F401
from repro.backends.base import cached_einsum as _cached_einsum  # noqa: F401
from repro.backends.reference import channel_reduce as _channel_reduce  # noqa: F401
from repro.backends.reference import filter_transform_int as _filter_transform_int
from repro.errors import ShapeError
from repro.utils.im2col import conv_output_size, pad_nchw
from repro.winograd.tiling import TileGrid, assemble_tiles, extract_tiles
from repro.winograd.transforms import WinogradTransform, get_transform

__all__ = [
    "transform_filter_float",
    "transform_filter_int",
    "winograd_conv2d_float",
    "WinogradConvContext",
    "winograd_conv2d_int",
]


def transform_filter_float(weight: np.ndarray, tf: WinogradTransform) -> np.ndarray:
    """Compute ``G g G^T`` for every filter: (K, C, r, r) -> (K, C, t, t)."""
    g = tf.g
    return np.einsum("ij,kcjl,ml->kcim", g, weight, g, optimize=True)


def transform_filter_int(weight_int: np.ndarray, tf: WinogradTransform) -> np.ndarray:
    """Integer filter transform ``G_int g G_int^T``; scale is ``g_scale**2``."""
    return _filter_transform_int(weight_int, tf)


def _check_conv_args(x: np.ndarray, weight: np.ndarray) -> tuple[int, int]:
    if x.ndim != 4 or weight.ndim != 4:
        raise ShapeError("expected NCHW input and KCRS weight")
    if x.shape[1] != weight.shape[1]:
        raise ShapeError(
            f"channel mismatch: input C={x.shape[1]}, weight C={weight.shape[1]}"
        )
    r, s = weight.shape[2], weight.shape[3]
    if r != s:
        raise ShapeError(f"winograd kernel must be square, got {r}x{s}")
    return r, s


def winograd_conv2d_float(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    padding: int = 0,
    m: int = 2,
) -> np.ndarray:
    """Float Winograd convolution ``F(m x m, r x r)``, unit stride.

    Parameters
    ----------
    x:
        Input activations, shape ``(N, C, H, W)``.
    weight:
        Filters, shape ``(K, C, r, r)``.
    bias:
        Optional per-output-channel bias, shape ``(K,)``.
    padding:
        Symmetric zero padding.
    m:
        Winograd output-tile size.
    """
    r, _ = _check_conv_args(x, weight)
    tf = get_transform(m, r)
    n, c, h, w = x.shape
    k = weight.shape[0]
    out_h = conv_output_size(h, r, 1, padding)
    out_w = conv_output_size(w, r, 1, padding)
    grid = TileGrid(out_h, out_w, tf.m, tf.r)

    xp = pad_nchw(x.astype(np.float64, copy=False), padding)
    tiles = extract_tiles(xp, grid)  # (N, C, T, t, t)

    bt = tf.bt
    u = np.einsum("ij,nctjl,ml->nctim", bt, tiles, bt, optimize=True)
    v = transform_filter_float(weight.astype(np.float64, copy=False), tf)
    # M[n,k,T,i,j] = sum_c U[n,c,T,i,j] * V[k,c,i,j]
    m_arr = np.einsum("nctij,kcij->nktij", u, v, optimize=True)
    at = tf.at
    y_tiles = np.einsum("ui,nktij,vj->nktuv", at, m_arr, at, optimize=True)
    y = assemble_tiles(y_tiles, grid)
    if bias is not None:
        y = y + bias.reshape(1, k, 1, 1)
    return y


@dataclass
class WinogradConvContext:
    """Every intermediate of one integer Winograd convolution.

    The fault injector consumes this to (a) look up operand values at
    sampled fault sites and (b) add fault deltas in the appropriate domain.

    Attributes
    ----------
    transform:
        The ``F(m, r)`` bundle used.
    grid:
        Tile geometry.
    u_int:
        Transformed input ``B^T d B`` (integer), shape ``(N, C, T, t, t)``;
        scale ``bt_scale**2`` relative to raw input integers.  ``None``
        when the convolution ran with ``keep_intermediates=False``.
    v_int:
        Transformed filters (integer), shape ``(K, C, t, t)``; scale
        ``g_scale**2`` relative to raw weight integers.
    m_int:
        Channel-accumulated element-wise products, shape ``(N, K, T, t, t)``.
        ``None`` when the convolution ran with ``keep_intermediates=False``.
    y_int:
        Scaled integer output accumulator (before bias/requantization),
        shape ``(N, K, out_h, out_w)``; scale ``output_scale_2d`` relative
        to the direct convolution accumulator domain.
    """

    transform: WinogradTransform
    grid: TileGrid
    u_int: np.ndarray | None
    v_int: np.ndarray
    m_int: np.ndarray | None
    y_int: np.ndarray

    @property
    def y_tiles_shape(self) -> tuple[int, int, int, int, int]:
        """Shape of the output in tile layout ``(N, K, T, m, m)``."""
        n, k = self.y_int.shape[0], self.y_int.shape[1]
        return (n, k, self.grid.num_tiles, self.grid.m, self.grid.m)


def winograd_conv2d_int(
    x_int: np.ndarray,
    v_int: np.ndarray,
    padding: int = 0,
    m: int = 2,
    r: int = 3,
    keep_intermediates: bool = True,
    backend=None,
    x_bound: int | None = None,
    v_bound: int | None = None,
) -> WinogradConvContext:
    """Integer-exact Winograd convolution on quantized values.

    Parameters
    ----------
    x_int:
        Quantized input activations (stored integers), ``(N, C, H, W)``.
    v_int:
        Pre-transformed integer filters from :func:`transform_filter_int`,
        shape ``(K, C, t, t)``.
    padding:
        Symmetric zero padding.
    m, r:
        Tile and filter sizes (must match how ``v_int`` was produced).
    keep_intermediates:
        When False, ``u_int``/``m_int`` are not retained (saves memory when
        no fault injection is requested).
    backend:
        :class:`~repro.backends.base.KernelBackend` serving the transform
        and channel-reduction stages (default: the ``reference`` backend).
        Every backend is bit-identical, so this changes wall-clock only.
    x_bound, v_bound:
        Optional conservative magnitude bounds on ``x_int``/``v_int``
        (e.g. from the quantization format).  When given, the stage
        bounds are derived from them — input ``x_bound * kron(B^T)`` row
        sums, channel product ``u_bound * v_bound * C``, and so on — and
        the backends skip their per-call magnitude scans.

    Returns
    -------
    A :class:`WinogradConvContext`; ``ctx.y_int`` is exactly
    ``output_scale_2d`` times the direct-convolution integer accumulator.
    """
    if backend is None:
        backend = get_backend()
    tf = get_transform(m, r)
    n, c, h, w = x_int.shape
    k = v_int.shape[0]
    if v_int.shape[1] != c or v_int.shape[2] != tf.t or v_int.shape[3] != tf.t:
        raise ShapeError(
            f"v_int shape {v_int.shape} incompatible with C={c}, t={tf.t}"
        )
    out_h = conv_output_size(h, r, 1, padding)
    out_w = conv_output_size(w, r, 1, padding)
    grid = TileGrid(out_h, out_w, tf.m, tf.r)

    xp = pad_nchw(np.asarray(x_int, dtype=np.int64), padding)
    tiles = extract_tiles(xp, grid)

    u = backend.input_transform(tf, tiles, x_bound=x_bound)
    u_bound = None if x_bound is None else int(x_bound) * kron_row_bound(tf.bt_int)
    m_arr = backend.channel_reduce(
        u, np.asarray(v_int, dtype=np.int64), u_bound=u_bound, v_bound=v_bound
    )
    m_bound = (
        None
        if u_bound is None or v_bound is None
        else u_bound * int(v_bound) * c
    )
    y_tiles = backend.output_transform(tf, m_arr, m_bound=m_bound)
    y = assemble_tiles(y_tiles, grid)

    return WinogradConvContext(
        transform=tf,
        grid=grid,
        u_int=u if keep_intermediates else None,
        v_int=v_int,
        m_int=m_arr if keep_intermediates else None,
        y_int=y,
    )
