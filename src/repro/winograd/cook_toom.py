"""Exact Cook–Toom construction of Winograd minimal-filtering transforms.

``F(m, r)`` computes ``m`` outputs of a length-``r`` correlation using only
``n = m + r - 1`` multiplications via

    Y = A^T [ (G g) ⊙ (B^T d) ]

The construction follows the transposition principle: Toom–Cook polynomial
multiplication of a degree-(m-1) by a degree-(r-1) polynomial evaluates both
at ``n - 1`` finite points plus the point at infinity and interpolates; the
*correlation* operator is the transpose of the linear-convolution operator,
which yields

    A^T = E_m^T          (evaluation matrix of the length-m polynomial)
    G   = E_r            (evaluation matrix of the length-r polynomial)
    B^T = (V^T)^{-1}     (transposed-inverse of the interpolation Vandermonde)

All arithmetic is exact over :class:`fractions.Fraction`, so the resulting
matrices are suitable for the integer-exact quantized Winograd path.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.errors import TransformError

__all__ = [
    "default_points",
    "cook_toom_1d",
    "fraction_matrix_inverse",
    "scale_to_integer",
]

#: Interpolation points in the order they are consumed.  Chosen to keep the
#: magnitudes of transform entries small (the standard Winograd point
#: schedule: 0, ±1, ±2, ±1/2, ±4, ±1/4, ...).
_POINT_SCHEDULE: tuple[Fraction, ...] = (
    Fraction(0),
    Fraction(1),
    Fraction(-1),
    Fraction(2),
    Fraction(-2),
    Fraction(1, 2),
    Fraction(-1, 2),
    Fraction(4),
    Fraction(-4),
    Fraction(1, 4),
    Fraction(-1, 4),
    Fraction(8),
    Fraction(-8),
)


def default_points(count: int) -> list[Fraction]:
    """Return the first ``count`` interpolation points of the schedule."""
    if count > len(_POINT_SCHEDULE):
        raise TransformError(
            f"no default schedule for {count} points; pass points explicitly"
        )
    return list(_POINT_SCHEDULE[:count])


def _frac_matrix(rows: int, cols: int) -> list[list[Fraction]]:
    return [[Fraction(0) for _ in range(cols)] for _ in range(rows)]


def fraction_matrix_inverse(matrix: list[list[Fraction]]) -> list[list[Fraction]]:
    """Exact inverse of a square Fraction matrix via Gauss–Jordan elimination."""
    n = len(matrix)
    if any(len(row) != n for row in matrix):
        raise TransformError("matrix must be square")
    # Augment with identity.
    aug = [list(row) + [Fraction(int(i == j)) for j in range(n)] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if aug[r][col] != 0), None)
        if pivot_row is None:
            raise TransformError("matrix is singular; interpolation points must be distinct")
        aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        aug[col] = [v / pivot for v in aug[col]]
        for r in range(n):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [a - factor * b for a, b in zip(aug[r], aug[col])]
    return [row[n:] for row in aug]


def _evaluation_matrix(points: list[Fraction], degree_plus_one: int) -> list[list[Fraction]]:
    """Rows evaluate a polynomial with ``degree_plus_one`` coefficients.

    One row per finite point (``[1, a, a^2, ...]``) plus a final row for the
    point at infinity that extracts the leading coefficient.
    """
    n = len(points) + 1
    mat = _frac_matrix(n, degree_plus_one)
    for i, a in enumerate(points):
        value = Fraction(1)
        for j in range(degree_plus_one):
            mat[i][j] = value
            value *= a
    mat[n - 1][degree_plus_one - 1] = Fraction(1)
    return mat


def cook_toom_1d(
    m: int,
    r: int,
    points: list[Fraction] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Construct exact transforms for ``F(m, r)``.

    Parameters
    ----------
    m:
        Number of outputs per tile (m >= 1).
    r:
        Filter tap count (r >= 1).
    points:
        Optional list of ``m + r - 2`` distinct finite interpolation points;
        defaults to the standard low-magnitude schedule.

    Returns
    -------
    ``(AT, G, BT)`` as object-dtype NumPy arrays of :class:`Fraction` with
    shapes ``(m, n)``, ``(n, r)`` and ``(n, n)`` where ``n = m + r - 1``.
    Satisfies ``Y = AT @ ((G @ g) * (BT @ d))`` exactly for the correlation
    ``Y_i = sum_j g_j d_{i+j}``.
    """
    if m < 1 or r < 1:
        raise TransformError(f"F(m, r) requires m, r >= 1, got m={m}, r={r}")
    n = m + r - 1
    if n == 1:
        # Degenerate F(1, 1): a single multiplication.
        one = np.array([[Fraction(1)]], dtype=object)
        return one.copy(), one.copy(), one.copy()

    pts = default_points(n - 1) if points is None else list(points)
    if len(pts) != n - 1:
        raise TransformError(f"need {n - 1} finite points for F({m}, {r}), got {len(pts)}")
    if len(set(pts)) != len(pts):
        raise TransformError("interpolation points must be distinct")

    e_m = _evaluation_matrix(pts, m)  # (n, m)
    e_r = _evaluation_matrix(pts, r)  # (n, r)
    vandermonde = _evaluation_matrix(pts, n)  # (n, n), last row = infinity
    v_inv = fraction_matrix_inverse(vandermonde)
    # B^T = (V^T)^{-1} = (V^{-1})^T
    bt = [[v_inv[j][i] for j in range(n)] for i in range(n)]

    at = [[e_m[i][j] for i in range(n)] for j in range(m)]  # E_m^T: (m, n)

    return (
        np.array(at, dtype=object),
        np.array(e_r, dtype=object),
        np.array(bt, dtype=object),
    )


def scale_to_integer(matrix: np.ndarray) -> tuple[np.ndarray, int]:
    """Scale a Fraction matrix to integers: returns ``(M_int, s)`` with ``M = M_int / s``.

    ``s`` is the least common multiple of all entry denominators, so the
    scaling is minimal and exact.
    """
    from math import lcm

    denominators = [
        entry.denominator for row in matrix for entry in row if entry != 0
    ]
    scale = lcm(*denominators) if denominators else 1
    scaled = np.array(
        [[int(entry * scale) for entry in row] for row in matrix],
        dtype=np.int64,
    )
    return scaled, scale
