"""Decomposable Winograd Method (DWM) for large kernels and strides.

The paper relies on DWM (Huang et al., AAAI 2020) to apply Winograd
convolution beyond the canonical 3x3/stride-1 case "without any accuracy
penalty".  DWM rewrites a convolution with kernel ``R x S`` and stride ``s``
as a *sum* of unit-stride 3x3 convolutions over polyphase-subsampled,
shifted views of the input:

1. **Polyphase stride split** — ``y[p] = Σ_r g[r] x[s p + r]`` groups taps by
   ``r = s a + b``; each residue ``b`` becomes a unit-stride convolution of
   the tap subsequence ``g_b[a] = g[s a + b]`` with the input phase
   ``x_b[i] = x[s i + b]``.
2. **Kernel chunking** — a unit-stride kernel longer than 3 taps is split
   into consecutive 3-tap chunks (the last chunk zero-padded); each chunk
   convolves a shifted input view and the partial outputs are summed.

Every resulting piece is a 3x3 unit-stride convolution, executable with any
``F(m, 3)`` transform.  The recomposition is an exact linear identity, so the
decomposed result equals the direct convolution bit-for-bit on integers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.utils.im2col import conv_output_size
from repro.utils.mathx import ceil_div

__all__ = ["SubConvSpec", "decompose_conv", "extract_sub_kernel", "extract_sub_input"]

#: DWM target kernel size: every sub-convolution is 3x3 unit stride.
DWM_UNIT = 3


@dataclass(frozen=True)
class SubConvSpec:
    """One 3x3 unit-stride piece of a decomposed convolution.

    Attributes
    ----------
    phase_h, phase_w:
        Polyphase residues ``b`` in ``[0, stride)``.
    chunk_h, chunk_w:
        Kernel chunk indices ``j`` (each chunk covers taps ``3j .. 3j+2`` of
        the phase subsequence).
    taps_h, taps_w:
        Number of *real* (non-padding) taps of this chunk along each axis,
        in ``[1, 3]``.
    """

    phase_h: int
    phase_w: int
    chunk_h: int
    chunk_w: int
    taps_h: int
    taps_w: int

    @property
    def is_padded(self) -> bool:
        """True when the 3x3 sub-kernel contains zero-padded taps."""
        return self.taps_h < DWM_UNIT or self.taps_w < DWM_UNIT


def _axis_pieces(kernel: int, stride: int) -> list[tuple[int, int, int]]:
    """Decompose one axis: returns ``(phase, chunk, real_taps)`` triples."""
    pieces = []
    for phase in range(stride):
        taps_in_phase = ceil_div(max(kernel - phase, 0), stride)
        if taps_in_phase == 0:
            continue
        for chunk in range(ceil_div(taps_in_phase, DWM_UNIT)):
            real = min(DWM_UNIT, taps_in_phase - chunk * DWM_UNIT)
            pieces.append((phase, chunk, real))
    return pieces


def decompose_conv(kernel: tuple[int, int], stride: int) -> list[SubConvSpec]:
    """Enumerate the 3x3 unit-stride pieces of a ``kernel``/``stride`` conv.

    A canonical 3x3 stride-1 convolution decomposes into exactly one piece
    (itself), so callers can use this unconditionally.
    """
    r, s = kernel
    if r < 1 or s < 1 or stride < 1:
        raise ShapeError(f"invalid conv geometry kernel={kernel}, stride={stride}")
    pieces_h = _axis_pieces(r, stride)
    pieces_w = _axis_pieces(s, stride)
    return [
        SubConvSpec(
            phase_h=ph,
            phase_w=pw,
            chunk_h=ch,
            chunk_w=cw,
            taps_h=th,
            taps_w=tw,
        )
        for ph, ch, th in pieces_h
        for pw, cw, tw in pieces_w
    ]


def extract_sub_kernel(
    weight: np.ndarray, spec: SubConvSpec, stride: int
) -> np.ndarray:
    """Build the 3x3 (zero-padded) sub-kernel of ``spec`` from ``(K, C, R, S)``.

    Tap ``(a_h, a_w)`` of the sub-kernel is original tap
    ``(stride * (3 * chunk + a) + phase)`` along each axis, or zero when that
    index falls outside the original kernel.
    """
    k, c, r, s = weight.shape
    sub = np.zeros((k, c, DWM_UNIT, DWM_UNIT), dtype=weight.dtype)
    for ah in range(spec.taps_h):
        src_h = stride * (DWM_UNIT * spec.chunk_h + ah) + spec.phase_h
        if src_h >= r:
            continue
        for aw in range(spec.taps_w):
            src_w = stride * (DWM_UNIT * spec.chunk_w + aw) + spec.phase_w
            if src_w >= s:
                continue
            sub[:, :, ah, aw] = weight[:, :, src_h, src_w]
    return sub


def extract_sub_input(
    x_padded: np.ndarray,
    spec: SubConvSpec,
    stride: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Slice the input view that ``spec``'s 3x3 sub-conv consumes.

    ``x_padded`` must already include the convolution's own zero padding.
    The returned view has spatial shape ``(out_h + 2, out_w + 2)`` — exactly
    what a valid 3x3 unit-stride convolution needs to produce
    ``out_h x out_w`` outputs.  Views that overhang the input (possible for
    zero-padded chunk taps) are zero-extended; the overhang only ever
    multiplies zero taps, so the identity is preserved.
    """
    n, c, hp, wp = x_padded.shape
    need = DWM_UNIT - 1
    h0 = spec.phase_h + stride * DWM_UNIT * spec.chunk_h
    w0 = spec.phase_w + stride * DWM_UNIT * spec.chunk_w
    h_last = h0 + stride * (out_h - 1 + need)
    w_last = w0 + stride * (out_w - 1 + need)

    pad_h = max(0, h_last + 1 - hp)
    pad_w = max(0, w_last + 1 - wp)
    if pad_h or pad_w:
        x_padded = np.pad(
            x_padded, ((0, 0), (0, 0), (0, pad_h), (0, pad_w)), mode="constant"
        )
    view = x_padded[:, :, h0 : h_last + 1 : stride, w0 : w_last + 1 : stride]
    return np.ascontiguousarray(view)


def decomposed_output_size(
    in_h: int, in_w: int, kernel: tuple[int, int], stride: int, padding: int
) -> tuple[int, int]:
    """Output size of the original convolution (sub-convs all match it)."""
    return (
        conv_output_size(in_h, kernel[0], stride, padding),
        conv_output_size(in_w, kernel[1], stride, padding),
    )
