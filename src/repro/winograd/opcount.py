"""Primitive-operation counting for standard and Winograd convolution.

The paper's analyses hinge on *how many* multiplications and additions each
convolution executes (fault-site populations, TMR overhead, Fig. 3's
per-layer multiply counts).  This module derives exact counts from the layer
geometry and, for Winograd, from the structure of the transform matrices and
the DWM decomposition.

Counts are reported per the site taxonomy used by the fault injector:

====================  ========================================================
category              meaning
====================  ========================================================
``st_mul``            products in direct convolution / GEMM
``st_add``            accumulator additions in direct convolution / GEMM
``wg_input_add``      additions inside ``B^T d B``
``wg_mul``            element-wise products in the transformed domain
``wg_acc_add``        channel-reduction additions of transformed products
``wg_output_add``     additions inside ``A^T M A`` plus sub-conv recombination
====================  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.mathx import ceil_div
from repro.winograd.decompose import decompose_conv
from repro.winograd.transforms import get_transform

__all__ = ["OpCounts", "standard_conv_counts", "winograd_conv_counts", "linear_counts"]

MUL_CATEGORIES = ("st_mul", "wg_mul")
ADD_CATEGORIES = ("st_add", "wg_input_add", "wg_acc_add", "wg_output_add")
ALL_CATEGORIES = MUL_CATEGORIES + ADD_CATEGORIES


@dataclass
class OpCounts:
    """Primitive-op census for one layer execution (per batch element)."""

    st_mul: int = 0
    st_add: int = 0
    wg_input_add: int = 0
    wg_mul: int = 0
    wg_acc_add: int = 0
    wg_output_add: int = 0
    #: Offline filter-transform additions (not fault-injected at runtime,
    #: reported for completeness and energy accounting).
    wg_filter_add_offline: int = 0

    @property
    def muls(self) -> int:
        """Total runtime multiplications."""
        return self.st_mul + self.wg_mul

    @property
    def adds(self) -> int:
        """Total runtime additions."""
        return self.st_add + self.wg_input_add + self.wg_acc_add + self.wg_output_add

    @property
    def total(self) -> int:
        """Total runtime primitive operations."""
        return self.muls + self.adds

    def by_category(self) -> dict[str, int]:
        """Runtime counts keyed by fault-site category name."""
        return {name: getattr(self, name) for name in ALL_CATEGORIES}

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            st_mul=self.st_mul + other.st_mul,
            st_add=self.st_add + other.st_add,
            wg_input_add=self.wg_input_add + other.wg_input_add,
            wg_mul=self.wg_mul + other.wg_mul,
            wg_acc_add=self.wg_acc_add + other.wg_acc_add,
            wg_output_add=self.wg_output_add + other.wg_output_add,
            wg_filter_add_offline=self.wg_filter_add_offline
            + other.wg_filter_add_offline,
        )


def standard_conv_counts(
    in_channels: int,
    out_channels: int,
    kernel: tuple[int, int],
    out_size: tuple[int, int],
    bias: bool = True,
) -> OpCounts:
    """Op census for a direct (im2col/GEMM) convolution, per image."""
    r, s = kernel
    p, q = out_size
    reduction = in_channels * r * s
    outputs = out_channels * p * q
    return OpCounts(
        st_mul=outputs * reduction,
        st_add=outputs * (reduction - 1 + (1 if bias else 0)),
    )


def winograd_conv_counts(
    in_channels: int,
    out_channels: int,
    kernel: tuple[int, int],
    stride: int,
    out_size: tuple[int, int],
    m: int = 2,
    bias: bool = True,
) -> OpCounts:
    """Op census for a (possibly DWM-decomposed) Winograd convolution.

    Every 3x3 unit-stride piece of the decomposition runs ``F(m, 3)``; the
    piece outputs are recombined with one addition per output per extra
    piece (counted under ``wg_output_add``).
    """
    p, q = out_size
    tf = get_transform(m, 3)
    tiles = ceil_div(p, tf.m) * ceil_div(q, tf.m)
    pieces = decompose_conv(kernel, stride)

    counts = OpCounts()
    c, k = in_channels, out_channels
    for _ in pieces:
        counts.wg_input_add += c * tiles * tf.input_transform_adds_per_tile()
        counts.wg_mul += k * c * tiles * tf.ewise_muls_per_tile()
        counts.wg_acc_add += k * (c - 1) * tiles * tf.ewise_muls_per_tile()
        counts.wg_output_add += k * tiles * tf.output_transform_adds_per_tile()
        counts.wg_filter_add_offline += k * c * tf.filter_transform_adds()
    # Recombine piece outputs, then add bias.
    counts.wg_output_add += (len(pieces) - 1) * k * p * q
    if bias:
        counts.wg_output_add += k * p * q
    return counts


def linear_counts(in_features: int, out_features: int, bias: bool = True) -> OpCounts:
    """Op census for a fully-connected layer (always executed directly)."""
    return OpCounts(
        st_mul=out_features * in_features,
        st_add=out_features * (in_features - 1 + (1 if bias else 0)),
    )
