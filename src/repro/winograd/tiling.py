"""Tile extraction and assembly for 2-D Winograd convolution.

``F(m x m, r x r)`` processes the padded input in overlapping ``t x t``
tiles (``t = m + r - 1``) with stride ``m`` and produces non-overlapping
``m x m`` output tiles.  The helpers here convert between NCHW feature maps
and the ``(N, C, T, t, t)`` tile layout used by the convolution kernels,
handling edge padding so that any output size is supported.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.utils.mathx import ceil_div

__all__ = ["TileGrid", "extract_tiles", "assemble_tiles"]


class TileGrid:
    """Geometry of the Winograd tile decomposition for one layer.

    Parameters
    ----------
    out_h, out_w:
        Output spatial size of the convolution.
    m:
        Winograd output-tile size.
    r:
        Filter size (input tiles are ``t = m + r - 1`` wide).
    """

    def __init__(self, out_h: int, out_w: int, m: int, r: int):
        if out_h <= 0 or out_w <= 0:
            raise ShapeError(f"output size must be positive, got {out_h}x{out_w}")
        self.out_h = out_h
        self.out_w = out_w
        self.m = m
        self.r = r
        self.t = m + r - 1
        self.tiles_h = ceil_div(out_h, m)
        self.tiles_w = ceil_div(out_w, m)

    @property
    def num_tiles(self) -> int:
        """Number of tiles per (image, channel)."""
        return self.tiles_h * self.tiles_w

    @property
    def padded_in_h(self) -> int:
        """Input height after edge padding to a whole number of tiles."""
        return (self.tiles_h - 1) * self.m + self.t

    @property
    def padded_in_w(self) -> int:
        """Input width after edge padding to a whole number of tiles."""
        return (self.tiles_w - 1) * self.m + self.t

    def tile_origin(self, tile_index: int) -> tuple[int, int]:
        """Top-left output coordinate covered by flat ``tile_index``."""
        th, tw = divmod(tile_index, self.tiles_w)
        return th * self.m, tw * self.m

    def __repr__(self) -> str:
        return (
            f"TileGrid(out={self.out_h}x{self.out_w}, m={self.m}, r={self.r}, "
            f"tiles={self.tiles_h}x{self.tiles_w})"
        )


def extract_tiles(x: np.ndarray, grid: TileGrid) -> np.ndarray:
    """Cut an already-padded NCHW input into overlapping ``t x t`` tiles.

    ``x`` must include the convolution's own zero padding; this function adds
    only the right/bottom edge padding needed to complete partial tiles.

    Returns an array of shape ``(N, C, T, t, t)`` where ``T = grid.num_tiles``.
    """
    if x.ndim != 4:
        raise ShapeError(f"expected NCHW input, got ndim={x.ndim}")
    n, c, h, w = x.shape
    need_h = grid.padded_in_h
    need_w = grid.padded_in_w
    if h > need_h or w > need_w:
        raise ShapeError(
            f"input {h}x{w} larger than tile grid expects ({need_h}x{need_w})"
        )
    if h < need_h or w < need_w:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (0, need_h - h), (0, need_w - w)),
            mode="constant",
        )

    m, t = grid.m, grid.t
    shape = (n, c, grid.tiles_h, grid.tiles_w, t, t)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2] * m,
        x.strides[3] * m,
        x.strides[2],
        x.strides[3],
    )
    tiles = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    return np.ascontiguousarray(tiles).reshape(n, c, grid.num_tiles, t, t)


def assemble_tiles(tiles: np.ndarray, grid: TileGrid) -> np.ndarray:
    """Reassemble ``(N, K, T, m, m)`` output tiles into NCHW, cropping overhang."""
    if tiles.ndim != 5:
        raise ShapeError(f"expected (N, K, T, m, m) tiles, got ndim={tiles.ndim}")
    n, k, num_tiles, m1, m2 = tiles.shape
    if num_tiles != grid.num_tiles or m1 != grid.m or m2 != grid.m:
        raise ShapeError(
            f"tile array {tiles.shape} does not match grid {grid!r}"
        )
    full_h = grid.tiles_h * grid.m
    full_w = grid.tiles_w * grid.m
    out = (
        tiles.reshape(n, k, grid.tiles_h, grid.tiles_w, grid.m, grid.m)
        .transpose(0, 1, 2, 4, 3, 5)
        .reshape(n, k, full_h, full_w)
    )
    return np.ascontiguousarray(out[:, :, : grid.out_h, : grid.out_w])
