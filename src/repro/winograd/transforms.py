"""Winograd transform bundles: float, exact-rational and scaled-integer forms.

A :class:`WinogradTransform` packages the three matrices of ``F(m, r)``
together with integer-scaled versions whose combined scale factor is tracked
exactly.  The quantized Winograd convolution uses only the integer matrices,
which makes the whole pipeline exact integer arithmetic: the fault-free
quantized Winograd output is *bit-identical* to the direct quantized
convolution (the paper's "lossless conversion" premise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from repro.errors import TransformError
from repro.winograd.cook_toom import cook_toom_1d, scale_to_integer

__all__ = ["WinogradTransform", "get_transform", "SUPPORTED_TILES"]


#: Canonical F(2, 3) matrices (Lavin & Gray, CVPR 2016).
_LAVIN_F23_AT = [[1, 1, 1, 0], [0, 1, -1, -1]]
_LAVIN_F23_G = [
    [Fraction(1), Fraction(0), Fraction(0)],
    [Fraction(1, 2), Fraction(1, 2), Fraction(1, 2)],
    [Fraction(1, 2), Fraction(-1, 2), Fraction(1, 2)],
    [Fraction(0), Fraction(0), Fraction(1)],
]
_LAVIN_F23_BT = [
    [1, 0, -1, 0],
    [0, 1, 1, 0],
    [0, -1, 1, 0],
    [0, 1, 0, -1],
]

#: Canonical F(4, 3) matrices (Lavin & Gray, CVPR 2016).
_LAVIN_F43_AT = [
    [1, 1, 1, 1, 1, 0],
    [0, 1, -1, 2, -2, 0],
    [0, 1, 1, 4, 4, 0],
    [0, 1, -1, 8, -8, 1],
]
_LAVIN_F43_G = [
    [Fraction(1, 4), Fraction(0), Fraction(0)],
    [Fraction(-1, 6), Fraction(-1, 6), Fraction(-1, 6)],
    [Fraction(-1, 6), Fraction(1, 6), Fraction(-1, 6)],
    [Fraction(1, 24), Fraction(1, 12), Fraction(1, 6)],
    [Fraction(1, 24), Fraction(-1, 12), Fraction(1, 6)],
    [Fraction(0), Fraction(0), Fraction(1)],
]
_LAVIN_F43_BT = [
    [4, 0, -5, 0, 1, 0],
    [0, -4, -4, 1, 1, 0],
    [0, 4, -4, -1, 1, 0],
    [0, -2, -1, 2, 1, 0],
    [0, 2, -1, -2, 1, 0],
    [0, 4, 0, -5, 0, 1],
]

#: Output tile sizes with canonical or generated transforms for r = 3.
SUPPORTED_TILES = (2, 4, 6)


def _to_fraction_array(rows: list[list]) -> np.ndarray:
    return np.array(
        [[Fraction(entry) for entry in row] for row in rows], dtype=object
    )


def _count_transform_adds(matrix_int: np.ndarray) -> int:
    """Additions needed to apply an integer transform matrix to one vector.

    Each output element is a dot product against one row; a row with ``z``
    non-zero coefficients costs ``z - 1`` additions (coefficient scalings are
    realized as shifts/adds on constant values and are not counted as
    multiplications, the standard Winograd accounting).
    """
    nnz_per_row = (matrix_int != 0).sum(axis=1)
    return int(np.maximum(nnz_per_row - 1, 0).sum())


@dataclass(frozen=True)
class WinogradTransform:
    """All representations of the ``F(m, r)`` transform set.

    Attributes
    ----------
    m, r:
        Output tile size and filter tap count; ``t = m + r - 1`` is the
        input-tile size.
    at_frac, g_frac, bt_frac:
        Exact matrices over :class:`fractions.Fraction`.
    at_int, g_int, bt_int:
        Integer-scaled matrices with scales ``at_scale``/``g_scale``/
        ``bt_scale`` such that e.g. ``AT == at_int / at_scale`` exactly.
    """

    m: int
    r: int
    at_frac: np.ndarray
    g_frac: np.ndarray
    bt_frac: np.ndarray
    at_int: np.ndarray = field(repr=False, default=None)
    g_int: np.ndarray = field(repr=False, default=None)
    bt_int: np.ndarray = field(repr=False, default=None)
    at_scale: int = 1
    g_scale: int = 1
    bt_scale: int = 1

    @property
    def t(self) -> int:
        """Input tile size ``m + r - 1``."""
        return self.m + self.r - 1

    # --- float views ---------------------------------------------------------
    @property
    def at(self) -> np.ndarray:
        """A^T as float64, shape (m, t)."""
        return self.at_frac.astype(np.float64)

    @property
    def g(self) -> np.ndarray:
        """G as float64, shape (t, r)."""
        return self.g_frac.astype(np.float64)

    @property
    def bt(self) -> np.ndarray:
        """B^T as float64, shape (t, t)."""
        return self.bt_frac.astype(np.float64)

    # --- integer-domain bookkeeping -------------------------------------------
    @property
    def output_scale_2d(self) -> int:
        """Scale factor of the 2-D integer output: (sA sB sG)^2.

        ``Y_int = at_int^T [ (g_int g g_int^T) ⊙ (bt_int d bt_int^T... ] ``
        evaluates to ``output_scale_2d`` times the exact real output.
        """
        return (self.at_scale * self.bt_scale * self.g_scale) ** 2

    @property
    def output_ratio_2d(self) -> Fraction:
        """Exact rational ``1 / output_scale_2d`` for requantization."""
        return Fraction(1, self.output_scale_2d)

    # --- op-count metadata ------------------------------------------------------
    def input_transform_adds_per_tile(self) -> int:
        """Additions to compute ``B^T d B`` for one t×t tile of one channel."""
        per_vector = _count_transform_adds(self.bt_int)
        # Pass 1 applies B^T to each of t columns, pass 2 to each of t rows.
        return per_vector * self.t * 2

    def output_transform_adds_per_tile(self) -> int:
        """Additions to compute ``A^T M A`` for one t×t tile of one channel."""
        per_vector = _count_transform_adds(self.at_int)
        # Pass 1: A^T applied to t columns of M; pass 2: to m rows of A^T M.
        return per_vector * (self.t + self.m)

    def filter_transform_adds(self) -> int:
        """Additions to compute ``G g G^T`` for one r×r filter (offline)."""
        per_vector = _count_transform_adds(self.g_int)
        return per_vector * (self.r + self.t)

    def ewise_muls_per_tile(self) -> int:
        """Element-wise multiplications per (tile, channel) pair: t^2."""
        return self.t * self.t

    # --- validation ---------------------------------------------------------------
    def validate(self, rng: np.random.Generator | None = None) -> None:
        """Check the transform reproduces a direct 1-D correlation exactly.

        Raises :class:`TransformError` on mismatch.  The check is performed
        on integer inputs through the Fraction matrices, so it is exact.
        """
        rng = rng or np.random.default_rng(0)
        d = rng.integers(-50, 50, size=self.t).astype(object)
        g = rng.integers(-50, 50, size=self.r).astype(object)
        direct = np.array(
            [sum(g[j] * d[i + j] for j in range(self.r)) for i in range(self.m)],
            dtype=object,
        )
        transformed = self.at_frac @ ((self.g_frac @ g) * (self.bt_frac @ d))
        if any(Fraction(a) != Fraction(b) for a, b in zip(direct, transformed)):
            raise TransformError(
                f"F({self.m}, {self.r}) transform failed validation: "
                f"direct={direct}, winograd={transformed}"
            )

    @staticmethod
    def from_fraction_matrices(
        m: int, r: int, at: np.ndarray, g: np.ndarray, bt: np.ndarray
    ) -> "WinogradTransform":
        """Build a transform bundle from exact matrices, deriving integer forms."""
        at_int, at_scale = scale_to_integer(at)
        g_int, g_scale = scale_to_integer(g)
        bt_int, bt_scale = scale_to_integer(bt)
        return WinogradTransform(
            m=m,
            r=r,
            at_frac=at,
            g_frac=g,
            bt_frac=bt,
            at_int=at_int,
            g_int=g_int,
            bt_int=bt_int,
            at_scale=at_scale,
            g_scale=g_scale,
            bt_scale=bt_scale,
        )


_CANONICAL: dict[tuple[int, int], tuple[list, list, list]] = {
    (2, 3): (_LAVIN_F23_AT, _LAVIN_F23_G, _LAVIN_F23_BT),
    (4, 3): (_LAVIN_F43_AT, _LAVIN_F43_G, _LAVIN_F43_BT),
}

_CACHE: dict[tuple[int, int], WinogradTransform] = {}


def get_transform(m: int, r: int) -> WinogradTransform:
    """Return the transform bundle for ``F(m, r)``, cached.

    Uses the canonical Lavin matrices for F(2,3) and F(4,3) and exact
    Cook–Toom construction otherwise.
    """
    key = (m, r)
    if key in _CACHE:
        return _CACHE[key]
    if key in _CANONICAL:
        at_rows, g_rows, bt_rows = _CANONICAL[key]
        bundle = WinogradTransform.from_fraction_matrices(
            m,
            r,
            _to_fraction_array(at_rows),
            _to_fraction_array(g_rows),
            _to_fraction_array(bt_rows),
        )
    else:
        at, g, bt = cook_toom_1d(m, r)
        bundle = WinogradTransform.from_fraction_matrices(m, r, at, g, bt)
    bundle.validate()
    _CACHE[key] = bundle
    return bundle
