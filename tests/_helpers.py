"""Importable test helpers (shared model builders and pinned constants).

Kept separate from ``conftest.py`` on purpose: both ``tests/`` and
``benchmarks/`` carry a ``conftest.py``, so ``from conftest import ...``
is ambiguous — it resolves to whichever directory pytest put on
``sys.path`` first (``benchmarks/conftest.py`` shadows this package's in
a full-repo run).  Helpers live here and are imported unambiguously as
``from tests._helpers import ...``; the conftests define fixtures only.
"""

from __future__ import annotations

from repro.nn import GraphBuilder

#: Campaign seed pinned for the TMR-planner engine-parity regression test
#: (tests/test_engine_tasks_parity.py).  Chosen once and frozen: the test
#: asserts that plan_tmr's convergence trajectory (iterations, converged,
#: history, fractions) under this seed is identical whether the
#: per-iteration evaluations run serially or through the campaign engine.
TMR_REGRESSION_SEED = 22020867


def build_tiny_cnn(classes: int = 4) -> "Graph":
    """A small conv net exercising conv/bn/relu/pool/linear paths."""
    b = GraphBuilder("tinycnn", input_shape=(3, 16, 16))
    x = b.conv2d(b.input_node, 8, kernel=3, padding=1, name="c1")
    x = b.batchnorm2d(x, name="b1")
    x = b.relu(x, name="r1")
    x = b.maxpool2d(x, kernel=2, stride=2, name="p1")
    x = b.conv2d(x, 16, kernel=3, padding=1, name="c2")
    x = b.batchnorm2d(x, name="b2")
    x = b.relu(x, name="r2")
    x = b.globalavgpool(x, name="gap")
    x = b.flatten(x, name="fl")
    return b.output(b.linear(x, classes, name="fc"))
