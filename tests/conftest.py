"""Shared fixtures: a tiny trained network and its quantized variants.

The fixtures are session-scoped because training even a tiny NumPy network
takes a few seconds; every consumer treats them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import DatasetSpec, make_dataset
from repro.nn import Adam, GraphBuilder, TrainConfig, initialize, train
from repro.quantized import QuantConfig, quantize_model

#: Campaign seed pinned for the TMR-planner engine-parity regression test
#: (tests/test_engine_tasks_parity.py).  Chosen once and frozen: the test
#: asserts that plan_tmr's convergence trajectory (iterations, converged,
#: history, fractions) under this seed is identical whether the
#: per-iteration evaluations run serially or through the campaign engine.
TMR_REGRESSION_SEED = 22020867


def build_tiny_cnn(classes: int = 4) -> "Graph":
    """A small conv net exercising conv/bn/relu/pool/linear paths."""
    b = GraphBuilder("tinycnn", input_shape=(3, 16, 16))
    x = b.conv2d(b.input_node, 8, kernel=3, padding=1, name="c1")
    x = b.batchnorm2d(x, name="b1")
    x = b.relu(x, name="r1")
    x = b.maxpool2d(x, kernel=2, stride=2, name="p1")
    x = b.conv2d(x, 16, kernel=3, padding=1, name="c2")
    x = b.batchnorm2d(x, name="b2")
    x = b.relu(x, name="r2")
    x = b.globalavgpool(x, name="gap")
    x = b.flatten(x, name="fl")
    return b.output(b.linear(x, classes, name="fc"))


@pytest.fixture(scope="session")
def tiny_dataset():
    """Small, easy synthetic dataset (4 classes, 16x16)."""
    spec = DatasetSpec(name="tiny", classes=4, image_size=16, noise=0.3, seed=7)
    return make_dataset(spec, train_per_class=40, test_per_class=12)


@pytest.fixture(scope="session")
def tiny_trained(tiny_dataset):
    """A trained tiny CNN (accuracy > 0.9 on its test split)."""
    graph = build_tiny_cnn()
    initialize(graph, 0)
    result = train(
        graph,
        Adam(graph, 3e-3),
        tiny_dataset.train_x,
        tiny_dataset.train_y,
        tiny_dataset.test_x,
        tiny_dataset.test_y,
        TrainConfig(epochs=8, batch_size=32, target_accuracy=0.95),
    )
    assert result.final_eval_accuracy > 0.8, "fixture model failed to train"
    return graph


@pytest.fixture(scope="session")
def tiny_quantized(tiny_trained, tiny_dataset):
    """(standard, winograd) int16 quantizations of the tiny CNN."""
    calib = tiny_dataset.train_x[:64]
    qm_st = quantize_model(tiny_trained, calib, QuantConfig(width=16), "standard")
    qm_wg = quantize_model(tiny_trained, calib, QuantConfig(width=16), "winograd")
    return qm_st, qm_wg


@pytest.fixture(scope="session")
def tiny_eval(tiny_dataset):
    """Evaluation split of the tiny dataset."""
    return tiny_dataset.test_x, tiny_dataset.test_y


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tmr_regression_seed():
    """The pinned campaign seed for TMR planner regression tests."""
    return TMR_REGRESSION_SEED
