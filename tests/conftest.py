"""Shared fixtures: a tiny trained network and its quantized variants.

Fixture-only by design — importable helpers (the model builder, pinned
regression constants) live in :mod:`tests._helpers`, because a bare
``from conftest import ...`` is ambiguous in this repo
(``benchmarks/conftest.py`` shadows this file depending on collection
order).

The fixtures are session-scoped because training even a tiny NumPy network
takes a few seconds; every consumer treats them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import DatasetSpec, make_dataset
from repro.nn import Adam, TrainConfig, initialize, train
from repro.quantized import QuantConfig, quantize_model

from tests._helpers import TMR_REGRESSION_SEED, build_tiny_cnn


@pytest.fixture(scope="session")
def tiny_dataset():
    """Small, easy synthetic dataset (4 classes, 16x16)."""
    spec = DatasetSpec(name="tiny", classes=4, image_size=16, noise=0.3, seed=7)
    return make_dataset(spec, train_per_class=40, test_per_class=12)


@pytest.fixture(scope="session")
def tiny_trained(tiny_dataset):
    """A trained tiny CNN (accuracy > 0.9 on its test split)."""
    graph = build_tiny_cnn()
    initialize(graph, 0)
    result = train(
        graph,
        Adam(graph, 3e-3),
        tiny_dataset.train_x,
        tiny_dataset.train_y,
        tiny_dataset.test_x,
        tiny_dataset.test_y,
        TrainConfig(epochs=8, batch_size=32, target_accuracy=0.95),
    )
    assert result.final_eval_accuracy > 0.8, "fixture model failed to train"
    return graph


@pytest.fixture(scope="session")
def tiny_quantized(tiny_trained, tiny_dataset):
    """(standard, winograd) int16 quantizations of the tiny CNN."""
    calib = tiny_dataset.train_x[:64]
    qm_st = quantize_model(tiny_trained, calib, QuantConfig(width=16), "standard")
    qm_wg = quantize_model(tiny_trained, calib, QuantConfig(width=16), "winograd")
    return qm_st, qm_wg


@pytest.fixture(scope="session")
def tiny_eval(tiny_dataset):
    """Evaluation split of the tiny dataset."""
    return tiny_dataset.test_x, tiny_dataset.test_y


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tmr_regression_seed():
    """The pinned campaign seed for TMR planner regression tests."""
    return TMR_REGRESSION_SEED
