"""ABFT-protected campaign points are first-class engine citizens.

Acceptance gate of the exact-integer ABFT tentpole: a campaign point whose
:class:`~repro.faultsim.ProtectionPlan` assigns the ``abft`` scheme must be

* **bit-identical** between the serial evaluator and the task engine for
  any worker count (CI tier-2 re-runs this module with
  ``REPRO_PARITY_WORKERS=2``),
* **partition-invariant** along the sample axis (slice sizes 1 and N
  recombine to the unsliced point),
* **replay-invariant** (the golden-run cache serves the same accuracy and
  event totals as the full forward — this only holds because the checksum
  is exact: a single float-rounded false positive on a clean row would
  "correct" it away from the golden activations), and
* **key-bound** to the scheme: an ABFT point never shares a checkpoint
  entry with an unprotected or TMR point, while legacy scheme-free plans
  keep their pre-scheme keys bit-for-bit.
"""

from __future__ import annotations

import os

import pytest

from repro.faultsim import (
    CampaignConfig,
    FaultModelConfig,
    ProtectionPlan,
    SCHEME_ABFT,
    SCHEME_TMR,
    build_golden_run,
    combine_slice_results,
    evaluate_sample_slice,
    evaluate_seed_point,
    run_point,
)
from repro.runtime import CampaignEngine, TaskSpec

#: Worker count for the multi-worker regime (CI tier-2 sets this to 2).
PARITY_WORKERS = int(os.environ.get("REPRO_PARITY_WORKERS", "4"))

N_SAMPLES = 24
BATCH = 12

BER_LOW = 2e-6
BER_KNEE = 2e-4


def counter_config(seeds=(0, 1)):
    return CampaignConfig(
        seeds=seeds,
        batch_size=BATCH,
        max_samples=N_SAMPLES,
        fault_config=FaultModelConfig(rng_scheme="counter"),
    )


def abft_plan(qm):
    """ABFT on every injectable layer, no TMR fractions."""
    plan = ProtectionPlan()
    for layer in qm.injectable_layers():
        plan.set_scheme(layer.name, SCHEME_ABFT)
    return plan


def point_summary(result):
    """Everything observable about a CampaignResult, for exact comparison."""
    return result.to_dict()


class TestAbftEngineParity:
    """Serial evaluator == engine(workers=1) == engine(workers=N)."""

    @pytest.mark.parametrize("mode_index", [0, 1], ids=["standard", "winograd"])
    def test_worker_pool_parity(self, tiny_quantized, tiny_eval, mode_index):
        qm = tiny_quantized[mode_index]
        x, y = tiny_eval
        config = counter_config()
        plan = abft_plan(qm)
        serial = run_point(qm, x, y, BER_KNEE, config=config, protection=plan)
        one = CampaignEngine(workers=1).run_point(
            qm, x, y, BER_KNEE, config=config, protection=plan
        )
        many = CampaignEngine(workers=PARITY_WORKERS).run_point(
            qm, x, y, BER_KNEE, config=config, protection=plan
        )
        assert point_summary(one) == point_summary(serial)
        assert point_summary(many) == point_summary(serial)

    def test_abft_point_actually_detects_and_protects(
        self, tiny_quantized, tiny_eval
    ):
        """Guard: the knee point injects, ABFT corrects, accuracy recovers.

        The protected point's event total strictly exceeds the unprotected
        one (abft_detected/abft_corrected ride on top of the identical
        injection events), and correction never scores below the
        unprotected run.
        """
        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        unprotected = evaluate_seed_point(qm, x, y, BER_KNEE, 0, config=config)
        protected = evaluate_seed_point(
            qm, x, y, BER_KNEE, 0, config=config, protection=abft_plan(qm)
        )
        assert unprotected.events > 0
        assert protected.events > unprotected.events
        assert protected.accuracy >= unprotected.accuracy

    def test_checkpoint_resume_serves_abft_points(
        self, tiny_quantized, tiny_eval, tmp_path
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        plan = abft_plan(qm)
        ckpt = tmp_path / "campaign.json"
        first = CampaignEngine(
            workers=PARITY_WORKERS, checkpoint_path=ckpt
        ).run_point(qm, x, y, BER_KNEE, config=config, protection=plan)
        resumed_engine = CampaignEngine(workers=1, checkpoint_path=ckpt, resume=True)
        again = resumed_engine.run_point(
            qm, x, y, BER_KNEE, config=config, protection=plan
        )
        assert point_summary(again) == point_summary(first)
        assert resumed_engine.last_stats.computed_units == 0


class TestAbftSampleSharding:
    """ABFT points recombine bit-identically from any sample partition."""

    @pytest.mark.parametrize("size", (1, 7, N_SAMPLES))
    @pytest.mark.parametrize("mode_index", [0, 1], ids=["standard", "winograd"])
    def test_slices_recombine_bit_identically(
        self, tiny_quantized, tiny_eval, mode_index, size
    ):
        qm = tiny_quantized[mode_index]
        x, y = tiny_eval
        config = counter_config()
        plan = abft_plan(qm)
        full = evaluate_seed_point(
            qm, x, y, BER_KNEE, 0, config=config, protection=plan
        )
        parts = [
            evaluate_sample_slice(
                qm, x, y, BER_KNEE, 0,
                (start, min(start + size, N_SAMPLES)),
                config=config, protection=plan,
            )
            for start in range(0, N_SAMPLES, size)
        ]
        combined = combine_slice_results(parts)
        assert (combined.accuracy, combined.events) == (full.accuracy, full.events)

    def test_sharding_engine_parity(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        plan = abft_plan(qm)
        serial = run_point(qm, x, y, BER_KNEE, config=config, protection=plan)
        sharded = CampaignEngine(
            workers=PARITY_WORKERS, sample_shard=7
        ).run_point(qm, x, y, BER_KNEE, config=config, protection=plan)
        assert point_summary(sharded) == point_summary(serial)


class TestAbftReplayParity:
    """Golden-run replay of ABFT points == full forward."""

    @pytest.mark.parametrize("ber", [0.0, BER_LOW, BER_KNEE])
    @pytest.mark.parametrize("mode_index", [0, 1], ids=["standard", "winograd"])
    def test_seed_point_replay_parity(
        self, tiny_quantized, tiny_eval, mode_index, ber
    ):
        qm = tiny_quantized[mode_index]
        x, y = tiny_eval
        config = counter_config()
        plan = abft_plan(qm)
        golden = build_golden_run(
            qm,
            x[:N_SAMPLES],
            injector_kind=config.injector,
            fault_config=config.fault_config,
            batch_size=BATCH,
        )
        full = evaluate_seed_point(
            qm, x, y, ber, 0, config=config, protection=plan
        )
        replayed = evaluate_seed_point(
            qm, x, y, ber, 0, config=config, protection=plan, golden=golden
        )
        assert (replayed.accuracy, replayed.events) == (full.accuracy, full.events)

    def test_replay_engine_parity(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        plan = abft_plan(qm)
        plain = CampaignEngine(workers=PARITY_WORKERS).run_point(
            qm, x, y, BER_KNEE, config=config, protection=plan
        )
        replayed = CampaignEngine(workers=PARITY_WORKERS, replay=True).run_point(
            qm, x, y, BER_KNEE, config=config, protection=plan
        )
        assert point_summary(replayed) == point_summary(plain)


class TestSchemeKeyBinding:
    """Task keys bind the per-layer scheme; legacy plans keep their keys."""

    MODEL_FP = "m" * 16
    DATA_FP = "d" * 16

    def _key(self, protection):
        return TaskSpec(ber=BER_KNEE, seed=0, protection=protection).key(
            self.MODEL_FP, self.DATA_FP, counter_config()
        )

    def test_abft_scheme_changes_the_key(self):
        plan = ProtectionPlan()
        plan.set_scheme("c1", SCHEME_ABFT)
        assert self._key(plan) != self._key(None)
        assert self._key(plan) != self._key(ProtectionPlan())

    def test_abft_and_tmr_schemes_key_differently(self):
        abft = ProtectionPlan()
        abft.set_scheme("c1", SCHEME_ABFT)
        tmr = ProtectionPlan()
        tmr.set_scheme("c1", SCHEME_TMR)
        assert self._key(abft) != self._key(tmr)

    def test_scheme_free_plans_keep_legacy_keys(self):
        """cache_key of a scheme-free plan is exactly the pre-scheme tuple,
        so every existing checkpoint entry stays addressable."""
        plan = ProtectionPlan()
        plan.set("c1", "st_mul", 0.5)
        assert plan.cache_key() == ((("c1", "st_mul"), 0.5),)

    def test_unsetting_scheme_restores_legacy_key(self):
        plan = ProtectionPlan()
        plan.set("c1", "st_mul", 0.5)
        legacy_key = self._key(plan)
        plan.set_scheme("c2", SCHEME_ABFT)
        assert self._key(plan) != legacy_key
        plan.set_scheme("c2", "none")
        assert self._key(plan) == legacy_key
