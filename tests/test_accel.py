"""Tests for the accelerator models: timing, voltage, power, DVFS."""

import numpy as np
import pytest

from repro.accel import (
    AccuracyCurve,
    ArrayConfig,
    Dataflow,
    DNN_ENGINE,
    DNN_ENGINE_POWER,
    DNN_ENGINE_VBER,
    GemmShape,
    PowerModel,
    VoltageBerModel,
    gemm_timing,
    min_voltage_for_accuracy,
    scheme_energies,
    simulate_network,
)
from repro.errors import ConfigurationError, MappingError


class TestArrayConfig:
    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            ArrayConfig(rows=0)

    def test_rejects_bad_dataflow(self):
        with pytest.raises(ConfigurationError):
            ArrayConfig(dataflow="systolic-magic")


class TestGemmTiming:
    def test_rejects_bad_shape(self):
        with pytest.raises(MappingError):
            GemmShape(0, 1, 1)

    @pytest.mark.parametrize("dataflow", Dataflow.ALL)
    def test_cycles_positive_and_scale_with_work(self, dataflow):
        config = ArrayConfig(rows=8, cols=8, dataflow=dataflow)
        small = gemm_timing(GemmShape(16, 16, 16), config)
        large = gemm_timing(GemmShape(64, 64, 64), config)
        assert 0 < small.cycles < large.cycles

    def test_ws_fold_count(self):
        config = ArrayConfig(rows=8, cols=8, dataflow=Dataflow.WEIGHT_STATIONARY)
        timing = gemm_timing(GemmShape(m=10, k=32, n=24), config)
        assert timing.folds == 4 * 3

    def test_macs(self):
        assert GemmShape(2, 3, 4).macs == 24

    def test_bigger_array_fewer_cycles(self):
        shape = GemmShape(128, 128, 128)
        small = gemm_timing(shape, ArrayConfig(rows=8, cols=8))
        big = gemm_timing(shape, ArrayConfig(rows=32, cols=32))
        assert big.cycles < small.cycles


class TestNetworkSimulation:
    def test_winograd_faster_than_standard(self):
        """The premise of the paper's energy study on our simulator.

        Measured on a conv stack whose channel counts fill the array's
        reduction dimension (3-channel stem layers genuinely favor direct
        execution — real Winograd engines skip them too).
        """
        from repro.nn import GraphBuilder, initialize
        from repro.quantized import QuantConfig, quantize_model

        b = GraphBuilder("deep", (32, 16, 16))
        x = b.conv2d(b.input_node, 32, 3, padding=1, name="c1")
        x = b.relu(x)
        x = b.conv2d(x, 32, 3, padding=1, name="c2")
        b.output(b.flatten(x))
        g = b.graph
        initialize(g, 0)
        calib = np.random.default_rng(0).standard_normal((8, 32, 16, 16)).astype(
            np.float32
        )
        qm_st = quantize_model(g, calib, QuantConfig(width=16), "standard")
        qm_wg = quantize_model(g, calib, QuantConfig(width=16), "winograd")
        t_st = simulate_network(qm_st, DNN_ENGINE, batch=16)
        t_wg = simulate_network(qm_wg, DNN_ENGINE, batch=16)
        assert t_wg.total_cycles < t_st.total_cycles

    def test_per_image_amortization(self, tiny_quantized):
        qm_st, _ = tiny_quantized
        timing = simulate_network(qm_st, DNN_ENGINE, batch=8)
        assert timing.cycles_per_image == timing.total_cycles / 8

    def test_layer_kinds_assigned(self, tiny_quantized):
        qm_st, qm_wg = tiny_quantized
        kinds_st = {l.kind for l in simulate_network(qm_st).layers}
        kinds_wg = {l.kind for l in simulate_network(qm_wg).layers}
        assert "conv-direct" in kinds_st and "linear" in kinds_st
        assert "conv-winograd" in kinds_wg

    def test_runtime_seconds(self, tiny_quantized):
        qm_st, _ = tiny_quantized
        timing = simulate_network(qm_st)
        assert timing.runtime_seconds(667e6) == pytest.approx(
            timing.total_cycles / 667e6
        )

    def test_serializable(self, tiny_quantized):
        qm_st, _ = tiny_quantized
        payload = simulate_network(qm_st).to_dict()
        assert payload["total_cycles"] > 0 and payload["layers"]


class TestVoltageBer:
    def test_monotone_decreasing_in_voltage(self):
        bers = [DNN_ENGINE_VBER.ber(v) for v in np.linspace(0.71, 0.89, 10)]
        assert all(a >= b for a, b in zip(bers, bers[1:]))

    def test_calibration_points(self):
        assert DNN_ENGINE_VBER.ber(0.77) == pytest.approx(1e-8, rel=0.01)
        assert DNN_ENGINE_VBER.ber(0.82) == pytest.approx(1e-12, rel=0.05)

    def test_voltage_for_ber_inverts(self):
        v = DNN_ENGINE_VBER.voltage_for_ber(1e-10)
        assert DNN_ENGINE_VBER.ber(v) == pytest.approx(1e-10, rel=0.05)

    def test_out_of_range_voltage_rejected(self):
        with pytest.raises(ConfigurationError):
            DNN_ENGINE_VBER.ber(1.5)

    def test_sweep_covers_range(self):
        sweep = DNN_ENGINE_VBER.sweep(5)
        assert sweep[0][0] == pytest.approx(DNN_ENGINE_VBER.v_min)
        assert sweep[-1][0] == pytest.approx(DNN_ENGINE_VBER.v_max)


class TestPowerModel:
    def test_power_decreases_with_voltage(self):
        assert DNN_ENGINE_POWER.power(0.7) < DNN_ENGINE_POWER.power(0.9)

    def test_dynamic_scales_quadratically(self):
        lean = PowerModel(p_leakage_w=0.0)
        assert lean.power(0.45) == pytest.approx(lean.power(0.9) / 4)

    def test_energy_linear_in_cycles(self):
        e1 = DNN_ENGINE_POWER.energy(0.9, 1000)
        e2 = DNN_ENGINE_POWER.energy(0.9, 2000)
        assert e2 == pytest.approx(2 * e1)

    def test_rejects_bad_voltage(self):
        with pytest.raises(ConfigurationError):
            DNN_ENGINE_POWER.power(0.0)


class TestAccuracyCurveAndDvfs:
    def _curve(self, cliff_ber=1e-9, floor=0.1):
        bers = np.logspace(-12, -6, 13)
        accs = np.where(bers < cliff_ber, 0.9, floor)
        return AccuracyCurve(bers, accs, fault_free_accuracy=0.9)

    def test_below_range_gives_fault_free(self):
        assert self._curve().accuracy_at(1e-15) == 0.9

    def test_interpolates_in_log_space(self):
        curve = AccuracyCurve([1e-10, 1e-8], [0.9, 0.5], 0.9)
        assert curve.accuracy_at(1e-9) == pytest.approx(0.7)

    def test_rejects_bad_input(self):
        with pytest.raises(ConfigurationError):
            AccuracyCurve([1e-9, -1e-8], [0.5, 0.5], 0.9)

    def test_min_voltage_respects_floor(self):
        curve = self._curve(cliff_ber=1e-9)
        vber = VoltageBerModel()
        v, feasible = min_voltage_for_accuracy(curve, 0.85, vber)
        assert feasible
        assert curve.accuracy_at(vber.ber(v)) >= 0.85
        # A tolerant floor allows deeper scaling.
        v_loose, _ = min_voltage_for_accuracy(curve, 0.05, vber)
        assert v_loose <= v

    def test_scheme_energy_ordering(self):
        """Aware winograd must be cheapest; baseline most expensive."""
        curve_st = self._curve(cliff_ber=1e-9)
        curve_wg = self._curve(cliff_ber=1e-8)  # more tolerant
        points = scheme_energies(
            curve_st, curve_wg,
            cycles_standard=1000, cycles_winograd=600,
            accuracy_loss=0.03,
        )
        assert points["WG-Conv-W/AFT"].energy_joules <= points[
            "WG-Conv-W/O-AFT"
        ].energy_joules
        assert points["WG-Conv-W/O-AFT"].energy_joules <= points[
            "ST-Conv"
        ].energy_joules
        assert points["ST-Conv"].energy_joules <= points["Base"].energy_joules

    def test_winograd_voltage_at_or_below_standard(self):
        curve_st = self._curve(cliff_ber=1e-9)
        curve_wg = self._curve(cliff_ber=1e-8)
        points = scheme_energies(curve_st, curve_wg, 1000, 600, 0.03)
        assert points["WG-Conv-W/AFT"].voltage <= points["ST-Conv"].voltage
