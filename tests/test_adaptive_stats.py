"""Determinism suite for the adaptive sampling engine + input hardening.

The adaptive contract under test (``docs/RUNTIME.md``): stopping
decisions depend only on checkpoint-ordered per-seed results, so an
adaptive run is bit-identical — same stopped-point set, same accuracies,
same checkpoint keys — for any ``workers`` x ``sample_shard`` x
``replay`` combination, and resumable from its checkpoint with zero
recomputation.

CI runs this file as the tier-2 adaptive-parity step with
``REPRO_PARITY_WORKERS=2``; locally it defaults to 4 workers.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.errors import ConfigurationError, FaultModelError
from repro.faultsim import (
    CampaignConfig,
    FaultModelConfig,
    campaign_lambda,
    evaluate_seed_point,
    validate_ber,
)
from repro.faultsim.sampling import CounterSampler
from repro.runtime import CampaignEngine, TaskSpec
from repro.stats import KneeConfig, StopRule, adaptive_sweep, knee_search

PARITY_WORKERS = int(os.environ.get("REPRO_PARITY_WORKERS", "4"))

# BER landmarks of the tiny fixture model (same map as the replay parity
# suite): quiet floor, low-event region, the accuracy knee, saturation.
BER_QUIET = 1e-12
BER_LOW = 2e-6
BER_KNEE = 2e-4
BER_SATURATE = 2e-3
BERS = [BER_QUIET, BER_LOW, BER_KNEE, BER_SATURATE]

#: Loose enough that the quiet points settle at min_seeds, tight enough
#: that the knee/saturation points run to the seed budget.
RULE = StopRule(halfwidth=0.05, min_seeds=2, max_seeds=5)


def counter_config() -> CampaignConfig:
    """Counter-scheme campaign over the tiny fixtures' full 48 samples."""
    return CampaignConfig(
        seeds=(0, 1),
        batch_size=12,
        fault_config=FaultModelConfig(rng_scheme="counter"),
    )


def checkpoint_keys(path) -> set[str]:
    """The set of task keys persisted in a v2 checkpoint file."""
    lines = path.read_text(encoding="utf-8").splitlines()
    return {json.loads(line)["key"] for line in lines[1:]}


def sweep_signature(sweep) -> list[dict]:
    """The decision record of a sweep: everything the contract pins."""
    return [
        {
            "ber": p.ber,
            "seeds_used": p.seeds_used,
            "seeds_evaluated": p.seeds_evaluated,
            "stopped_early": p.stopped_early,
            "interval": p.interval.to_dict(),
            "mean_accuracy": p.result.mean_accuracy,
            "per_seed": list(p.result.per_seed),
            "events_per_seed": list(p.result.events_per_seed),
        }
        for p in sweep.points
    ]


# --- the determinism matrix -------------------------------------------------

# (workers, sample_shard, replay): ISSUE acceptance matrix — workers
# {1, N} x --shard-samples {off, auto} x --replay {on, off}, plus a
# fixed-size shard pair to pin key-set identity across worker counts.
MATRIX = [
    (1, None, False),
    (PARITY_WORKERS, None, False),
    (1, None, True),
    (PARITY_WORKERS, None, True),
    (1, "auto", False),
    (PARITY_WORKERS, "auto", False),
    (1, "auto", True),
    (PARITY_WORKERS, "auto", True),
    (1, 8, False),
    (PARITY_WORKERS, 8, True),
]


@pytest.fixture(scope="module")
def matrix_runs(tiny_quantized, tiny_eval, tmp_path_factory):
    """One adaptive sweep per matrix cell, each on a fresh checkpoint."""
    qm_st, _ = tiny_quantized
    x, labels = tiny_eval
    runs = {}
    for workers, shard, replay in MATRIX:
        ckpt = tmp_path_factory.mktemp("adaptive") / "campaign.json"
        engine = CampaignEngine(
            workers=workers,
            checkpoint_path=ckpt,
            sample_shard=shard,
            replay=replay,
        )
        sweep = adaptive_sweep(
            qm_st, x, labels, BERS, config=counter_config(), rule=RULE,
            engine=engine,
        )
        runs[(workers, shard, replay)] = (sweep, checkpoint_keys(ckpt))
    return runs


class TestAdaptiveDeterminism:
    def test_sweep_exercises_both_outcomes(self, matrix_runs):
        sweep, _ = matrix_runs[(1, None, False)]
        by_ber = {p.ber: p for p in sweep.points}
        assert by_ber[BER_QUIET].stopped_early
        assert by_ber[BER_QUIET].seeds_used == RULE.min_seeds
        assert not by_ber[BER_SATURATE].stopped_early
        assert by_ber[BER_SATURATE].seeds_used == RULE.max_seeds

    def test_decisions_identical_across_the_matrix(self, matrix_runs):
        reference = sweep_signature(matrix_runs[(1, None, False)][0])
        for cell, (sweep, _) in matrix_runs.items():
            assert sweep_signature(sweep) == reference, (
                f"adaptive decisions diverged at workers/shard/replay={cell}"
            )

    def test_checkpoint_keys_identical_at_fixed_granularity(self, matrix_runs):
        """Same shard granularity => same persisted key set.

        Point granularity (shard off) must agree across workers x replay;
        likewise a fixed slice size across worker counts and replay.
        'auto' picks its slice size from the worker count, so its keys are
        only pinned per worker count (slice keys bind their window).
        """
        point_cells = [c for c in MATRIX if c[1] is None]
        point_keys = [matrix_runs[c][1] for c in point_cells]
        assert all(k == point_keys[0] for k in point_keys)

        slice8_cells = [c for c in MATRIX if c[1] == 8]
        slice8_keys = [matrix_runs[c][1] for c in slice8_cells]
        assert all(k == slice8_keys[0] for k in slice8_keys)
        assert slice8_keys[0] != point_keys[0]

        auto_same_workers = [
            matrix_runs[c][1] for c in MATRIX if c[1] == "auto" and c[0] == 1
        ]
        assert all(k == auto_same_workers[0] for k in auto_same_workers)

    def test_units_match_seed_ledger(self, matrix_runs):
        sweep, _ = matrix_runs[(1, None, False)]
        assert sweep.total_units == sum(p.seeds_evaluated for p in sweep.points)
        assert sweep.total_units == sweep.computed_units + sweep.cached_units

    def test_saves_units_versus_fixed_grid(self, matrix_runs):
        """The whole point: fewer (seed x point) units than the fixed grid."""
        sweep, _ = matrix_runs[(1, None, False)]
        fixed_units = len(BERS) * RULE.max_seeds
        assert sweep.total_units < fixed_units
        assert any(p.stopped_early for p in sweep.points)


class TestAdaptiveResume:
    def test_resume_recomputes_nothing_and_agrees(
        self, tiny_quantized, tiny_eval, tmp_path
    ):
        qm_st, _ = tiny_quantized
        x, labels = tiny_eval
        ckpt = tmp_path / "campaign.json"
        first = adaptive_sweep(
            qm_st, x, labels, BERS, config=counter_config(), rule=RULE,
            engine=CampaignEngine(workers=1, checkpoint_path=ckpt),
        )
        assert first.computed_units == first.total_units
        resumed = adaptive_sweep(
            qm_st, x, labels, BERS, config=counter_config(), rule=RULE,
            engine=CampaignEngine(workers=1, checkpoint_path=ckpt, resume=True),
        )
        assert resumed.computed_units == 0
        assert resumed.cached_units == resumed.total_units
        assert sweep_signature(resumed) == sweep_signature(first)
        # Cache hits across granularities too: a sharded resumed engine
        # reuses point rows only at matching keys, so it recomputes — but
        # the decisions still match (the matrix test); here we only pin
        # the point-granularity zero-recompute property.


class TestKneeSearch:
    def test_finds_the_fixture_knee(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, labels = tiny_eval
        knee = knee_search(
            qm_st, x, labels,
            KneeConfig(lo=1e-7, hi=BER_SATURATE, tolerance_decades=0.5),
            config=counter_config(), rule=RULE,
            engine=CampaignEngine(workers=1),
        )
        assert knee.knee_ber is not None
        lo_b, hi_b = knee.bracket
        assert lo_b < knee.knee_ber < hi_b
        assert math.log10(hi_b) - math.log10(lo_b) <= 0.5 + 1e-9
        # The fixture model's cliff sits at ~2e-4.
        assert 1e-5 < knee.knee_ber < 1e-3
        bers = [p.ber for p in knee.points]
        assert bers == sorted(bers)
        assert knee.target_accuracy is not None

    def test_flat_window_reports_no_knee(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, labels = tiny_eval
        knee = knee_search(
            qm_st, x, labels,
            KneeConfig(lo=1e-13, hi=1e-11),
            config=counter_config(), rule=RULE,
            engine=CampaignEngine(workers=1),
        )
        assert knee.knee_ber is None
        assert knee.bracket is None
        assert len(knee.points) == 2  # endpoints only, no bisection spend


class TestEngineObservationHook:
    def test_on_result_sees_every_unit_cached_first_in_index_order(
        self, tiny_quantized, tiny_eval, tmp_path
    ):
        qm_st, _ = tiny_quantized
        x, labels = tiny_eval
        ckpt = tmp_path / "campaign.json"
        tasks = [TaskSpec(ber=BER_LOW, seed=s) for s in (0, 1, 2)]
        config = counter_config()

        live_calls = []
        engine = CampaignEngine(workers=1, checkpoint_path=ckpt)
        engine.evaluate_tasks(
            qm_st, x, labels, tasks, config,
            on_result=lambda i, u, r, cached: live_calls.append((i, cached)),
        )
        assert sorted(i for i, _ in live_calls) == [0, 1, 2]
        assert all(not cached for _, cached in live_calls)

        cached_calls = []
        resumed = CampaignEngine(workers=1, checkpoint_path=ckpt, resume=True)
        results = resumed.evaluate_tasks(
            qm_st, x, labels, tasks, config,
            on_result=lambda i, u, r, cached: cached_calls.append((i, cached)),
        )
        assert cached_calls == [(0, True), (1, True), (2, True)]
        assert [r.seed for r in results] == [0, 1, 2]


# --- input hardening (satellites 1 & 2) -------------------------------------


class TestBerValidation:
    @pytest.mark.parametrize("ber", [float("nan"), -1e-9, 1.0000001, float("inf")])
    def test_validate_ber_rejects(self, ber):
        with pytest.raises(ConfigurationError, match="ber"):
            validate_ber(ber)

    def test_validate_ber_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError, match="ber"):
            validate_ber("not-a-rate")
        with pytest.raises(ConfigurationError, match="ber"):
            validate_ber(None)

    @pytest.mark.parametrize("ber", [0.0, 1.0, 1e-12, "1e-6"])
    def test_validate_ber_accepts_probabilities(self, ber):
        value = validate_ber(ber)
        assert isinstance(value, float)
        assert 0.0 <= value <= 1.0

    @pytest.mark.parametrize("ber", [float("nan"), -0.5, 2.0])
    def test_task_boundary_rejects_bad_ber(self, ber):
        with pytest.raises(ConfigurationError, match="ber"):
            TaskSpec(ber=ber, seed=0)

    def test_evaluate_seed_point_rejects_bad_ber(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, labels = tiny_eval
        with pytest.raises(ConfigurationError, match="NaN"):
            evaluate_seed_point(qm_st, x, labels, float("nan"), 0)


class TestLambdaGuards:
    def test_campaign_lambda_validates_ber(self, tiny_quantized):
        qm_st, _ = tiny_quantized
        with pytest.raises(ConfigurationError, match="ber"):
            campaign_lambda(qm_st, -1.0, CampaignConfig())

    def test_poisson_rate_guard_names_the_site(self):
        sampler = CounterSampler(
            seed=0, ber=0.5, config=FaultModelConfig(rng_scheme="counter")
        )
        with pytest.raises(FaultModelError, match="layer 'conv1'.*site 'weight'"):
            sampler._chunk_head("conv1", "weight", 0, 1e19)
        with pytest.raises(FaultModelError, match="sampler's limit"):
            sampler._chunk_head("conv1", "weight", 0, float("inf"))

    def test_sane_rate_still_draws(self):
        sampler = CounterSampler(
            seed=0, ber=1e-6, config=FaultModelConfig(rng_scheme="counter")
        )
        rng, samples = sampler._chunk_head("conv1", "weight", 0, 2.0)
        assert rng is not None
        assert samples is None or len(samples) > 0
