"""Tests for vulnerability analysis and the TMR subsystem."""

import numpy as np
import pytest

from repro.analysis import layer_vulnerability, operation_type_sensitivity
from repro.faultsim import CampaignConfig, ProtectionPlan
from repro.tmr import (
    OpCostModel,
    SCHEME_ST,
    SCHEME_WG_W_AFT,
    SCHEME_WG_WO_AFT,
    average_reduction,
    full_protection_energy,
    map_plan_to_winograd,
    normalized_overheads,
    plan_tmr,
    run_tmr_schemes,
    tmr_overhead_energy,
)

#: BER in the tiny model's cliff region (found empirically; the tiny CNN
#: has ~4e6 exposed bits so this lands at a few hundred faults/inference).
CLIFF_BER = 1e-4
FAST = CampaignConfig(seeds=(0,), max_samples=32, batch_size=32)


class TestVulnerability:
    def test_report_structure(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        report = layer_vulnerability(qm_st, x[:32], y[:32], CLIFF_BER, config=FAST)
        names = {lv.layer for lv in report.layers}
        assert names == {l.name for l in qm_st.injectable_layers()}
        assert report.to_dict()["ber"] == CLIFF_BER

    def test_fault_free_layer_recovers_accuracy(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        report = layer_vulnerability(qm_st, x[:32], y[:32], CLIFF_BER, config=FAST)
        assert max(lv.vulnerability_factor for lv in report.layers) >= 0

    def test_ranked_is_descending(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        report = layer_vulnerability(qm_st, x[:32], y[:32], CLIFF_BER, config=FAST)
        factors = [lv.vulnerability_factor for lv in report.ranked()]
        assert factors == sorted(factors, reverse=True)

    def test_subset_of_layers(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        report = layer_vulnerability(
            qm_st, x[:16], y[:16], CLIFF_BER, config=FAST, layers=["c1"]
        )
        assert len(report.layers) == 1


class TestOpTypeSensitivity:
    def test_mul_protection_dominates(self, tiny_quantized, tiny_eval):
        """The paper's central Fig. 4 claim on our substrate."""
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        config = CampaignConfig(seeds=(0, 1), max_samples=48)
        sens = operation_type_sensitivity(qm_st, x[:48], y[:48], CLIFF_BER, config=config)
        assert sens.accuracy_muls_fault_free >= sens.accuracy_adds_fault_free
        assert sens.mul_sensitivity >= 0

    def test_serialization(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        sens = operation_type_sensitivity(qm_st, x[:16], y[:16], 1e-5, config=FAST)
        assert "mul_sensitivity" in sens.to_dict()


class TestCostModel:
    def test_mul_more_expensive_than_add(self):
        model = OpCostModel(width=16)
        assert model.mul_energy() > model.add_energy()

    def test_wider_ops_cost_more(self):
        assert OpCostModel(width=16).mul_energy() > OpCostModel(width=8).mul_energy()

    def test_overhead_zero_for_empty_plan(self, tiny_quantized):
        qm_st, _ = tiny_quantized
        assert tmr_overhead_energy(qm_st, ProtectionPlan()) == 0.0

    def test_overhead_monotone_in_fraction(self, tiny_quantized):
        qm_st, _ = tiny_quantized
        half = ProtectionPlan()
        full = ProtectionPlan()
        for layer in qm_st.injectable_layers():
            half.set(layer.name, "st_mul", 0.5)
            full.set(layer.name, "st_mul", 1.0)
        assert tmr_overhead_energy(qm_st, half) < tmr_overhead_energy(qm_st, full)

    def test_full_protection_is_upper_bound(self, tiny_quantized):
        qm_st, _ = tiny_quantized
        plan = ProtectionPlan()
        for layer in qm_st.injectable_layers():
            for cat, n in layer.op_counts.by_category().items():
                if n:
                    plan.set(layer.name, cat, 1.0)
        assert tmr_overhead_energy(qm_st, plan) == pytest.approx(
            full_protection_energy(qm_st)
        )

    def test_winograd_full_protection_cheaper(self, tiny_quantized):
        """Fewer multiplications -> cheaper blanket TMR (the paper's
        'much less operations to be protected')."""
        qm_st, qm_wg = tiny_quantized
        assert full_protection_energy(qm_wg) < full_protection_energy(qm_st)


class TestPlanner:
    def test_trivial_goal_converges_immediately(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        ranking = [(l.name, 1.0) for l in qm_st.injectable_layers()]
        result = plan_tmr(
            qm_st, x[:32], y[:32], ber=1e-9, target_accuracy=0.1,
            vulnerability_ranking=ranking, config=FAST,
        )
        assert result.converged
        assert result.overhead_energy == 0.0

    def test_hard_goal_grows_protection(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        ranking = [(l.name, 1.0) for l in qm_st.injectable_layers()]
        result = plan_tmr(
            qm_st, x[:32], y[:32], ber=5e-4, target_accuracy=0.9,
            vulnerability_ranking=ranking, config=FAST, step=0.5,
        )
        assert result.overhead_energy > 0
        assert result.iterations > 1

    def test_rejects_bad_goal(self, tiny_quantized, tiny_eval):
        from repro.errors import ConfigurationError

        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        with pytest.raises(ConfigurationError):
            plan_tmr(qm_st, x, y, 1e-6, 1.5, [], config=FAST)


class TestSchemes:
    def test_plan_mapping_transfers_fractions(self, tiny_quantized):
        qm_st, qm_wg = tiny_quantized
        st_plan = ProtectionPlan()
        conv = qm_st.injectable_layers()[0].name
        st_plan.set(conv, "st_mul", 0.75)
        wg_plan = map_plan_to_winograd(st_plan, qm_wg)
        assert wg_plan.fraction(conv, "wg_mul") == 0.75

    def test_three_scheme_ordering(self, tiny_quantized, tiny_eval):
        """WG-aware <= WG-unaware <= ST in overhead at matching goals."""
        qm_st, qm_wg = tiny_quantized
        x, y = tiny_eval
        fault_free = qm_st.evaluate(x[:32], y[:32])
        goals = [fault_free * 0.7, fault_free * 0.9]
        curves = run_tmr_schemes(
            qm_st, qm_wg, x[:32], y[:32], CLIFF_BER, goals,
            config=FAST, step=0.5,
        )
        norm = normalized_overheads(curves)
        for i in range(len(goals)):
            assert norm[SCHEME_WG_W_AFT][i] <= norm[SCHEME_ST][i] + 1e-9
        reductions = average_reduction(curves)
        assert "vs ST-Conv" in reductions
