"""Cross-backend differential suite: the bit-identity contract.

Every kernel backend must return exactly the int64 values the
``reference`` backend produces — stage by stage (each protocol method,
fast paths and int64 fallbacks, bound-fed and bound-free probes) and end
to end (model forward, campaign evaluation under both conv modes, both
injectors and BERs from zero through the accuracy knee).  Because the
contract holds, the backend choice never enters model fingerprints or
checkpoint keys, and a checkpoint written under one backend is
byte-identical to one written under another (at ``workers=1``, where
completion order is deterministic).

``REPRO_PARITY_WORKERS`` scales the engine-based parity tests' worker
count (CI runs them at 2); the byte-identity test always pins
``workers=1`` since multi-worker completion order may legally reorder
checkpoint rows.
"""

from __future__ import annotations

import os
from fractions import Fraction

import numpy as np
import pytest

from repro.backends import (
    BACKEND_NAMES,
    BoundedCache,
    EINSUM_PATHS,
    available_backends,
    format_bound,
    get_backend,
    kron_row_bound,
    row_bound,
)
from repro.errors import BackendUnavailableError, ConfigurationError
from repro.faultsim import (
    CampaignConfig,
    INJECTOR_NEURON,
    INJECTOR_OPERATION,
    evaluate_seed_point,
    run_sweep,
)
from repro.fixedpoint import QFormat, requantize
from repro.runtime import CampaignEngine, model_fingerprint
from repro.winograd import get_transform

#: Worker count for the engine-based parity tests (CI sets 2).
PARITY_WORKERS = int(os.environ.get("REPRO_PARITY_WORKERS", "1"))

#: Every non-reference backend that can be instantiated here.
ALT_BACKENDS = [n for n in available_backends() if n != "reference"]

REFERENCE = get_backend("reference")


@pytest.fixture(params=ALT_BACKENDS)
def alt(request):
    """Each available non-reference backend instance."""
    return get_backend(request.param)


def restore_backend(qmodel):
    """Reset a (session-scoped, shared) model to the reference backend."""
    qmodel.set_kernel_backend("reference")


# --- stage-level differential tests ------------------------------------------
class TestStageParity:
    """Each protocol method, reference vs every other backend."""

    @pytest.mark.parametrize("m", [2, 4])
    def test_filter_transform(self, alt, rng, m):
        tf = get_transform(m, 3)
        w = rng.integers(-(1 << 7), 1 << 7, size=(5, 3, 3, 3)).astype(np.int64)
        ref = REFERENCE.filter_transform(tf, w)
        out = alt.filter_transform(tf, w)
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("m", [2, 4])
    @pytest.mark.parametrize("magnitude", [1 << 12, 1 << 50], ids=["f64", "int64"])
    def test_input_transform(self, alt, rng, m, magnitude):
        """Fast fused-GEMM path and the beyond-f64-window fallback."""
        tf = get_transform(m, 3)
        t = tf.m + tf.r - 1
        tiles = rng.integers(-magnitude, magnitude, size=(2, 3, 5, t, t)).astype(
            np.int64
        )
        ref = REFERENCE.input_transform(tf, tiles)
        for x_bound in (None, magnitude):
            out = alt.input_transform(tf, tiles, x_bound=x_bound)
            assert out.dtype == np.int64
            np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("m", [2, 4])
    @pytest.mark.parametrize("magnitude", [1 << 16, 1 << 50], ids=["f64", "int64"])
    def test_output_transform(self, alt, rng, m, magnitude):
        tf = get_transform(m, 3)
        t = tf.m + tf.r - 1
        m_arr = rng.integers(-magnitude, magnitude, size=(2, 4, 5, t, t)).astype(
            np.int64
        )
        ref = REFERENCE.output_transform(tf, m_arr)
        for m_bound in (None, magnitude):
            out = alt.output_transform(tf, m_arr, m_bound=m_bound)
            assert out.dtype == np.int64
            np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize(
        "magnitude", [1 << 15, 1 << 25], ids=["f64", "int64-blocked"]
    )
    def test_channel_reduce(self, alt, rng, magnitude):
        """f64 BLAS path and the blocked int64 fallback (2^25·2^25·64 > 2^52)."""
        n, c, k, t_count, t = 2, 64, 5, 7, 4
        u = rng.integers(-magnitude, magnitude, size=(n, c, t_count, t, t)).astype(
            np.int64
        )
        v = rng.integers(-magnitude, magnitude, size=(k, c, t, t)).astype(np.int64)
        ref = REFERENCE.channel_reduce(u, v)
        for bounds in ({}, {"u_bound": magnitude, "v_bound": magnitude}):
            out = alt.channel_reduce(u, v, **bounds)
            assert out.dtype == np.int64
            np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("magnitude", [1 << 12, 1 << 24], ids=["f64", "int64"])
    def test_im2col_gemm_matrix_and_view(self, alt, rng, magnitude):
        """Materialized (N,C*R*S,P*Q) matrix and strided 6-D view agree."""
        from repro.utils.im2col import im2col, im2col_patches

        x = rng.integers(-magnitude, magnitude, size=(2, 8, 9, 9)).astype(np.int64)
        w = rng.integers(-magnitude, magnitude, size=(4, 8 * 3 * 3)).astype(np.int64)
        matrix = im2col(x, (3, 3), 1, 1)
        view = im2col_patches(x, (3, 3), 1, 1)
        ref = REFERENCE.im2col_gemm(w, matrix)
        for cols in (matrix, view):
            for bounds in ({}, {"w_bound": magnitude, "x_bound": magnitude}):
                out = alt.im2col_gemm(w, cols, **bounds)
                assert out.dtype == np.int64
                np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("magnitude", [1 << 12, 1 << 24], ids=["f64", "int64"])
    def test_linear_gemm(self, alt, rng, magnitude):
        x = rng.integers(-magnitude, magnitude, size=(6, 40)).astype(np.int64)
        w = rng.integers(-magnitude, magnitude, size=(4, 40)).astype(np.int64)
        ref = REFERENCE.linear_gemm(x, w)
        for bounds in ({}, {"w_bound": magnitude, "x_bound": magnitude}):
            out = alt.linear_gemm(x, w, **bounds)
            assert out.dtype == np.int64
            np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize(
        "acc_frac,out_fmt,extra",
        [
            (20, QFormat(16, 12), Fraction(1)),  # downshift (den > 1)
            (10, QFormat(16, 14), Fraction(1)),  # upshift (num > 1)
            (18, QFormat(16, 11), Fraction(1, 9)),  # Winograd scale ratio
        ],
    )
    def test_requantize(self, alt, rng, acc_frac, out_fmt, extra):
        """Rational rescale + half-away-from-zero round + saturate."""
        acc = rng.integers(-(1 << 40), 1 << 40, size=(3, 7, 11))
        # Include exact .5 ties of both signs and the format edges.
        acc.flat[:6] = [5 << 7, -(5 << 7), 1, -1, 0, 1 << 40]
        ref = requantize(acc, acc_frac, out_fmt, extra_ratio=extra)
        out = alt.requantize(acc, acc_frac, out_fmt, extra_ratio=extra)
        np.testing.assert_array_equal(out, ref)

    def test_requantize_extreme_magnitude_delegates_exactly(self, alt):
        """Accumulators at 2^52 with a 2^10 numerator exceed the int64
        fast-path window; the object-dtype fallback must still match."""
        acc = np.array([1 << 52, -(1 << 52), 12345], dtype=np.int64)
        out_fmt = QFormat(16, 14)
        ref = requantize(acc, 4, out_fmt)  # ratio = 2**10
        out = alt.requantize(acc, 4, out_fmt)
        np.testing.assert_array_equal(out, ref)

    def test_requantize_empty(self, alt):
        out = alt.requantize(np.empty((0, 3), dtype=np.int64), 12, QFormat(16, 10))
        assert out.shape == (0, 3)

    def test_returns_fresh_arrays(self, alt, rng):
        """Two successive calls must not alias each other's output."""
        tf = get_transform(2, 3)
        tiles = rng.integers(-(1 << 10), 1 << 10, size=(1, 2, 3, 4, 4)).astype(
            np.int64
        )
        a = alt.input_transform(tf, tiles)
        snapshot = a.copy()
        alt.input_transform(tf, tiles + 1)
        np.testing.assert_array_equal(a, snapshot)


class TestWholeConvParity:
    """Full integer Winograd conv: y/u/m intermediates bit-identical."""

    @pytest.mark.parametrize("m", [2, 4])
    @pytest.mark.parametrize("keep", [False, True])
    def test_conv_and_intermediates(self, alt, rng, m, keep):
        from repro.winograd import transform_filter_int, winograd_conv2d_int

        tf = get_transform(m, 3)
        x = rng.integers(-(1 << 12), 1 << 12, size=(2, 8, 12, 12)).astype(np.int64)
        w = rng.integers(-(1 << 7), 1 << 7, size=(4, 8, 3, 3)).astype(np.int64)
        v = transform_filter_int(w, tf)
        ref = winograd_conv2d_int(x, v, padding=1, m=m, keep_intermediates=keep)
        out = winograd_conv2d_int(
            x,
            v,
            padding=1,
            m=m,
            keep_intermediates=keep,
            backend=alt,
            x_bound=1 << 12,
            v_bound=int(np.abs(v).max()),
        )
        np.testing.assert_array_equal(out.y_int, ref.y_int)
        if keep:
            np.testing.assert_array_equal(out.u_int, ref.u_int)
            np.testing.assert_array_equal(out.m_int, ref.m_int)


# --- model-level differential tests ------------------------------------------
class TestModelParity:
    """Forward passes and campaign units across backends, modes, injectors."""

    @pytest.mark.parametrize("model_idx", [0, 1], ids=["standard", "winograd"])
    def test_forward_trace_bit_identical(self, alt, tiny_quantized, tiny_eval, model_idx):
        """Every node output of a fault-free forward pass is identical."""
        qm = tiny_quantized[model_idx]
        x, _ = tiny_eval
        try:
            restore_backend(qm)
            ref = qm.forward_trace(x[:8])
            qm.set_kernel_backend(alt.name)
            out = qm.forward_trace(x[:8])
        finally:
            restore_backend(qm)
        assert ref.keys() == out.keys()
        for name in ref:
            np.testing.assert_array_equal(out[name], ref[name], err_msg=name)

    @pytest.mark.parametrize("model_idx", [0, 1], ids=["standard", "winograd"])
    @pytest.mark.parametrize("injector", [INJECTOR_OPERATION, INJECTOR_NEURON])
    @pytest.mark.parametrize("ber", [0.0, 1e-7, 1e-5], ids=["zero", "low", "knee"])
    def test_seed_point_parity(
        self, alt, tiny_quantized, tiny_eval, model_idx, injector, ber
    ):
        """accuracy AND event counts identical for each (BER, seed) unit."""
        qm = tiny_quantized[model_idx]
        x, y = tiny_eval
        config = CampaignConfig(seeds=(0, 1), batch_size=12, max_samples=24,
                                injector=injector)
        try:
            restore_backend(qm)
            ref = [evaluate_seed_point(qm, x, y, ber, s, config) for s in config.seeds]
            qm.set_kernel_backend(alt.name)
            out = [evaluate_seed_point(qm, x, y, ber, s, config) for s in config.seeds]
        finally:
            restore_backend(qm)
        assert out == ref

    def test_engine_sweep_parity(self, alt, tiny_quantized, tiny_eval):
        """Full engine sweeps (REPRO_PARITY_WORKERS workers) agree with the
        serial reference sweep under the alternative backend."""
        qm = tiny_quantized[1]
        x, y = tiny_eval
        bers = [1e-5, 3e-5]
        config = CampaignConfig(seeds=(0, 1), batch_size=12, max_samples=24)
        try:
            restore_backend(qm)
            serial = [r.to_dict() for r in run_sweep(qm, x, y, bers, config=config)]
            engine = CampaignEngine(workers=PARITY_WORKERS, kernel_backend=alt.name)
            swept = [
                r.to_dict() for r in engine.run_sweep(qm, x, y, bers, config=config)
            ]
        finally:
            restore_backend(qm)
        assert swept == serial


class TestCheckpointByteIdentity:
    """A fig-3 style engine run writes byte-identical checkpoint files
    under every backend (workers=1: deterministic completion order)."""

    def test_checkpoint_files_byte_identical(
        self, alt, tiny_quantized, tiny_eval, tmp_path
    ):
        qm = tiny_quantized[1]
        x, y = tiny_eval
        bers = [0.0, 1e-5, 3e-5]
        config = CampaignConfig(seeds=(0, 1), batch_size=12, max_samples=24)
        ref_ckpt = tmp_path / "reference.json"
        alt_ckpt = tmp_path / "alt.json"
        try:
            restore_backend(qm)
            CampaignEngine(
                workers=1, checkpoint_path=ref_ckpt, kernel_backend="reference"
            ).run_sweep(qm, x, y, bers, config=config)
            CampaignEngine(
                workers=1, checkpoint_path=alt_ckpt, kernel_backend=alt.name
            ).run_sweep(qm, x, y, bers, config=config)
        finally:
            restore_backend(qm)
        ref_bytes = ref_ckpt.read_bytes()
        assert len(ref_bytes) > 0
        assert alt_ckpt.read_bytes() == ref_bytes

    def test_checkpoint_shared_across_backends(
        self, alt, tiny_quantized, tiny_eval, tmp_path
    ):
        """A checkpoint written under one backend is fully served from
        cache when resumed under another (keys exclude the backend)."""
        qm = tiny_quantized[0]
        x, y = tiny_eval
        bers = [1e-5]
        config = CampaignConfig(seeds=(0, 1), batch_size=12, max_samples=24)
        ckpt = tmp_path / "shared.json"
        try:
            restore_backend(qm)
            CampaignEngine(
                workers=1, checkpoint_path=ckpt, kernel_backend="reference"
            ).run_sweep(qm, x, y, bers, config=config)
            engine = CampaignEngine(
                workers=1, checkpoint_path=ckpt, resume=True, kernel_backend=alt.name
            )
            engine.run_sweep(qm, x, y, bers, config=config)
        finally:
            restore_backend(qm)
        assert engine.last_stats.cached_units == len(config.seeds)
        assert engine.last_stats.computed_units == 0


class TestFingerprintStability:
    """The backend is execution strategy: identity hashes must not move."""

    def test_model_fingerprint_ignores_backend(self, alt, tiny_quantized):
        for qm in tiny_quantized:
            try:
                restore_backend(qm)
                before = model_fingerprint(qm)
                qm.set_kernel_backend(alt.name)
                assert model_fingerprint(qm) == before
            finally:
                restore_backend(qm)

    def test_set_kernel_backend_propagates_to_nodes(self, tiny_quantized):
        qm = tiny_quantized[1]
        try:
            qm.set_kernel_backend("optimized")
            for node in qm.injectable_layers():
                assert node.kernel_backend == "optimized"
        finally:
            restore_backend(qm)
        for node in qm.injectable_layers():
            assert node.kernel_backend == "reference"


# --- registry, errors, caches ------------------------------------------------
class TestRegistry:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            get_backend("numba")

    def test_model_validates_backend_eagerly(self, tiny_quantized):
        with pytest.raises(ConfigurationError):
            tiny_quantized[0].set_kernel_backend("numba")

    def test_engine_validates_backend_eagerly(self):
        with pytest.raises(ConfigurationError):
            CampaignEngine(workers=1, kernel_backend="numba")

    def test_singletons(self):
        assert get_backend("reference") is get_backend("reference")
        assert get_backend("optimized") is get_backend("optimized")

    def test_names_and_availability(self):
        assert BACKEND_NAMES == ("reference", "optimized", "torch")
        avail = available_backends()
        assert avail[:2] == ("reference", "optimized")

    @pytest.mark.skipif(
        "torch" in ALT_BACKENDS, reason="torch is installed here"
    )
    def test_torch_missing_raises_backend_unavailable(self):
        with pytest.raises(BackendUnavailableError, match="torch"):
            get_backend("torch")
        assert "torch" not in available_backends()
        assert issubclass(BackendUnavailableError, ConfigurationError)


class TestBoundedCache:
    def test_fifo_eviction_at_capacity(self):
        cache = BoundedCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert "a" not in cache and "b" in cache and "c" in cache
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1

    def test_reput_existing_key_does_not_evict(self):
        cache = BoundedCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2 and cache.get("a") == 10
        assert cache.stats()["evictions"] == 0

    def test_hit_miss_counters(self):
        cache = BoundedCache(capacity=4)
        assert cache.get("x") is None
        cache.put("x", 1)
        assert cache.get("x") == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1 and stats["capacity"] == 4

    def test_clear_preserves_counters(self):
        cache = BoundedCache(capacity=4)
        cache.put("x", 1)
        cache.get("x")
        cache.clear()
        assert len(cache) == 0 and cache.stats()["hits"] == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedCache(capacity=0)

    def test_einsum_path_cache_is_bounded_and_shared(self):
        """conv2d's legacy alias and the backend layer share one capped
        cache (the previously unbounded module global)."""
        from repro.winograd import conv2d

        assert conv2d._EINSUM_PATHS is EINSUM_PATHS
        assert isinstance(EINSUM_PATHS, BoundedCache)
        assert EINSUM_PATHS.capacity == 256

    def test_cache_stats_hook(self, alt):
        stats = alt.cache_stats()
        assert "einsum_paths" in stats
        for counters in stats.values():
            assert set(counters) == {
                "size", "capacity", "hits", "misses", "evictions",
            }


class TestBoundHelpers:
    def test_format_bound(self):
        assert format_bound(16) == 1 << 15
        assert format_bound(8) == 1 << 7

    def test_row_and_kron_bounds(self):
        mat = np.array([[1, -2], [3, 4]])
        assert row_bound(mat) == 7
        assert kron_row_bound(mat) == 49
        kron = np.kron(mat, mat)
        assert int(np.abs(kron).sum(axis=1).max()) == 49

    def test_bounds_are_conservative_for_tiny_model(self, tiny_quantized):
        """The format-derived activation bound dominates every actual
        layer-input magnitude (the invariant the probes rely on)."""
        qm = tiny_quantized[0]
        for node in qm.injectable_layers():
            assert format_bound(node.in_fmt.width) >= node.in_fmt.qmax


class TestTorchBackend:
    """Torch-only checks (the generic parametrization covers parity)."""

    @pytest.fixture(autouse=True)
    def _requires_torch(self):
        pytest.importorskip("torch")

    def test_registered_and_available(self):
        assert "torch" in available_backends()
        assert get_backend("torch").name == "torch"

    def test_cache_stats_hook(self):
        stats = get_backend("torch").cache_stats()
        assert "einsum_paths" in stats
