"""Deterministic chaos framework + unified retry policy.

The chaos contract under test (see :mod:`repro.runtime.chaos`): every
injection decision is a pure function of (chaos seed, task key, attempt),
so chaos runs are reproducible across processes and schedules, and a
retried attempt draws fresh — bounded retry drains the injected faults
and the campaign completes **bit-identically** to an undisturbed run.
Poison tags are the one deliberately non-convergent kind: they fail every
attempt, exhaust the retry budget, and surface as a uniform
:class:`~repro.errors.TaskQuarantinedError` on both backends.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    ChaosError,
    ConfigurationError,
    TaskQuarantinedError,
    UnitDeadlineError,
    WorkerCrashError,
)
from repro.faultsim import CampaignConfig, FaultModelConfig
from repro.runtime import CampaignEngine, ChaosSpec, RetryPolicy, unit_deadline
from repro.runtime.chaos import apply_unit_chaos, chaos_from_env

BERS = [1e-5, 1e-4]


@pytest.fixture()
def config():
    return CampaignConfig(
        seeds=(0, 1),
        batch_size=12,
        max_samples=24,
        fault_config=FaultModelConfig(rng_scheme="counter"),
    )


class TestChaosSpec:
    def test_rates_validated(self):
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            ChaosSpec(unit_error_rate=1.5)
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            ChaosSpec(worker_crash_rate=-0.1)
        with pytest.raises(ConfigurationError, match="slow_unit_seconds"):
            ChaosSpec(slow_unit_seconds=-1.0)

    def test_active_flag(self):
        assert not ChaosSpec().active
        assert ChaosSpec(unit_error_rate=0.1).active
        assert ChaosSpec(fail_tags=("poison",)).active

    def test_decide_is_deterministic_and_keyed(self):
        spec = ChaosSpec(seed=7, unit_error_rate=0.5)
        verdicts = [
            spec.decide("unit_error", f"key-{i}", 1) for i in range(64)
        ]
        # Pure function: identical on recomputation (any process, any time).
        assert verdicts == [
            spec.decide("unit_error", f"key-{i}", 1) for i in range(64)
        ]
        # Nondegenerate at rate 0.5: both outcomes occur across keys.
        assert any(verdicts) and not all(verdicts)

    def test_retried_attempt_draws_independently(self):
        spec = ChaosSpec(seed=3, unit_error_rate=0.5)
        doomed = [
            key
            for key in (f"key-{i}" for i in range(128))
            if spec.decide("unit_error", key, 1)
        ]
        # Some unit hit on attempt 1 must draw clean on attempt 2 —
        # that independence is what makes bounded retry converge.
        assert any(
            not spec.decide("unit_error", key, 2) for key in doomed
        )

    def test_rate_shortcuts_and_unknown_kind(self):
        assert not ChaosSpec().decide("unit_error", "k", 1)
        assert ChaosSpec(torn_write_rate=1.0).decide("torn_write", "k", 1)
        with pytest.raises(ConfigurationError, match="unknown chaos kind"):
            ChaosSpec().decide("meteor_strike", "k", 1)

    def test_dict_round_trip(self):
        spec = ChaosSpec(
            seed=11, worker_crash_rate=0.2, fail_tags=("a", "b")
        )
        assert ChaosSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ConfigurationError, match="unknown ChaosSpec"):
            ChaosSpec.from_dict({"seed": 1, "bogus": 2})

    def test_parse_kv_and_json(self):
        spec = ChaosSpec.parse(
            "seed=7,unit_error=0.2,torn_write=0.1,fail_tags=bad|worse"
        )
        assert spec.seed == 7
        assert spec.unit_error_rate == 0.2
        assert spec.torn_write_rate == 0.1
        assert spec.fail_tags == ("bad", "worse")
        as_json = ChaosSpec.parse('{"seed": 7, "unit_error_rate": 0.2}')
        assert as_json.seed == 7 and as_json.unit_error_rate == 0.2

    @pytest.mark.parametrize(
        "text",
        ["", "unit_error", "bogus=1", "seed=x", "unit_error=lots", "{broken"],
    )
    def test_parse_rejects_malformed_specs(self, text):
        with pytest.raises(ConfigurationError):
            ChaosSpec.parse(text)


class TestApplyUnitChaos:
    def test_none_and_inactive_are_noops(self):
        apply_unit_chaos(None, "k", "tag", 1)
        apply_unit_chaos(ChaosSpec(), "k", "tag", 1)

    def test_unit_error_raises_transient_chaos_error(self):
        spec = ChaosSpec(unit_error_rate=1.0)
        with pytest.raises(ChaosError, match="injected transient"):
            apply_unit_chaos(spec, "k", "tag", 1)
        assert RetryPolicy.is_transient(ChaosError("x"))

    def test_worker_crash_in_band_without_allow_exit(self):
        spec = ChaosSpec(worker_crash_rate=1.0)
        with pytest.raises(WorkerCrashError, match="simulated worker crash"):
            apply_unit_chaos(spec, "k", "tag", 1, allow_exit=False)

    def test_poison_tag_fails_every_attempt(self):
        spec = ChaosSpec(fail_tags=("poison",))
        for attempt in (1, 2, 3, 7):
            with pytest.raises(ChaosError, match="poison"):
                apply_unit_chaos(spec, "k", "poison", attempt)
        apply_unit_chaos(spec, "k", "healthy", 1)  # other tags untouched


class TestChaosFromEnv:
    def test_returns_none_when_unset(self):
        assert chaos_from_env({}) is None
        assert chaos_from_env({"REPRO_WORKER_TASK_DELAY": "0"}) is None

    def test_delay_maps_to_certain_slow_unit(self):
        with pytest.warns(DeprecationWarning, match="deprecated chaos hooks"):
            spec = chaos_from_env({"REPRO_WORKER_TASK_DELAY": "2.5"})
        assert spec.slow_unit_rate == 1.0
        assert spec.slow_unit_seconds == 2.5

    def test_fail_tags_map_to_poison_tags(self):
        with pytest.warns(DeprecationWarning):
            spec = chaos_from_env({"REPRO_WORKER_FAIL_TAGS": "a,b,"})
        assert spec.fail_tags == ("a", "b")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(deadline=0)

    def test_classification_follows_taxonomy(self):
        assert RetryPolicy.is_transient(ChaosError("x"))
        assert RetryPolicy.is_transient(UnitDeadlineError("x"))
        assert RetryPolicy.is_transient(OSError(28, "ENOSPC"))
        assert not RetryPolicy.is_transient(ConfigurationError("x"))
        assert not RetryPolicy.is_transient(ValueError("x"))

    def test_backoff_deterministic_exponential_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.25)
        delays = [policy.backoff(n, "key") for n in (1, 2, 3, 4, 5)]
        assert delays == [policy.backoff(n, "key") for n in (1, 2, 3, 4, 5)]
        for n, delay in enumerate(delays, start=1):
            ideal = min(0.1 * 2 ** (n - 1), 0.5)
            assert 0.75 * ideal <= delay <= 1.25 * ideal
        # Distinct keys jitter differently; zero jitter is exact.
        assert policy.backoff(1, "a") != policy.backoff(1, "b")
        exact = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        assert exact.backoff(3, "any") == 0.4
        with pytest.raises(ConfigurationError):
            policy.backoff(0)

    def test_identity_round_trip(self):
        policy = RetryPolicy(max_attempts=5, deadline=2.0)
        assert RetryPolicy.from_identity(policy.identity()) == policy


class TestUnitDeadline:
    def test_stall_is_aborted_as_transient(self):
        with pytest.raises(UnitDeadlineError, match="deadline"):
            with unit_deadline(0.05, what="stalled unit"):
                time.sleep(5.0)

    def test_none_is_a_noop(self):
        with unit_deadline(None):
            pass

    def test_timer_disarmed_on_clean_exit(self):
        with unit_deadline(0.2):
            pass
        time.sleep(0.3)  # the timer must not fire after the block


class TestEngineChaos:
    """Pool-backend chaos runs through CampaignEngine(chaos=...)."""

    def test_chaos_run_completes_bit_identical(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ref = CampaignEngine(workers=1).run_sweep(qm, x, y, BERS, config=config)
        chaos = ChaosSpec(
            seed=5,
            unit_error_rate=0.4,
            worker_crash_rate=0.3,
            slow_unit_rate=0.25,
            slow_unit_seconds=0.01,
        )
        engine = CampaignEngine(
            workers=2,
            checkpoint_path=tmp_path / "chaos.json",
            chaos=chaos,
            retry=RetryPolicy(max_attempts=6, base_delay=0.01, max_delay=0.05),
        )
        got = engine.run_sweep(qm, x, y, BERS, config=config)
        assert [r.to_dict() for r in got] == [r.to_dict() for r in ref]

    def test_poison_tag_quarantines_with_keys(
        self, tiny_quantized, tiny_eval, config
    ):
        from repro.runtime import TaskSpec

        qm, _ = tiny_quantized
        x, y = tiny_eval
        chaos = ChaosSpec(fail_tags=("doomed",))
        engine = CampaignEngine(
            workers=1,
            chaos=chaos,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
        )
        tasks = [
            TaskSpec(ber=BERS[0], seed=0, tag="healthy"),
            TaskSpec(ber=BERS[0], seed=1, tag="doomed"),
        ]
        with pytest.raises(TaskQuarantinedError, match="doomed") as info:
            engine.evaluate_tasks(qm, x, y, tasks, config=config)
        assert info.value.tag == "doomed"
        assert len(info.value.quarantined_keys) == 1

    def test_chaos_spec_type_checked(self):
        with pytest.raises(ConfigurationError, match="ChaosSpec"):
            CampaignEngine(chaos={"unit_error_rate": 1.0})

    def test_permanent_errors_do_not_burn_retries(
        self, tiny_quantized, tiny_eval, config
    ):
        """A logic error surfaces immediately as TaskExecutionError (not
        quarantine): retrying a pure function on bad input is waste."""
        from repro.errors import TaskExecutionError
        from repro.runtime import TaskSpec

        qm, _ = tiny_quantized
        x, y = tiny_eval
        engine = CampaignEngine(workers=1)
        bad = CampaignConfig(
            seeds=(0,),
            batch_size=12,
            max_samples=24,
            injector="no-such-injector",
            fault_config=FaultModelConfig(rng_scheme="counter"),
        )
        with pytest.raises(TaskExecutionError) as info:
            engine.evaluate_tasks(
                qm, x, y, [TaskSpec(ber=BERS[0], seed=0)], config=bad
            )
        assert not isinstance(info.value, TaskQuarantinedError)
