"""Chaos matrix: worker crash + torn write + slow unit, both backends.

The PR's acceptance drill (mirrored by the CI tier-2 ``chaos-matrix``
step): run one sweep under a chaos spec that crashes workers, tears
checkpoint writes and slows units, at 2 workers, on **both** executors —
and require bit-identity with an undisturbed single-worker pool run.
Afterwards ``fsck`` must report the surviving stores clean (repairing
any torn shard lines the crashes left behind), proving the detect/
contain/recover loop actually closes.

Distributed chaos kills real worker processes mid-lease (``os._exit``)
and tears real shard appends, so this module exercises lease expiry,
respawn budgets and CRC salvage end to end.  CI uploads the fsck JSON
report as an artifact.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.faultsim import CampaignConfig, FaultModelConfig
from repro.runtime import CampaignEngine, ChaosSpec, RetryPolicy, fsck

BERS = [1e-5, 1e-4]

#: The matrix spec: every recovery path below 50% so retries converge.
CHAOS = ChaosSpec(
    seed=13,
    worker_crash_rate=0.25,
    torn_write_rate=0.25,
    slow_unit_rate=0.3,
    slow_unit_seconds=0.02,
)

RETRY = RetryPolicy(max_attempts=6, base_delay=0.01, max_delay=0.1)


@pytest.fixture()
def config():
    return CampaignConfig(
        seeds=(0, 1),
        batch_size=12,
        max_samples=24,
        fault_config=FaultModelConfig(rng_scheme="counter"),
    )


@pytest.fixture()
def undisturbed(tiny_quantized, tiny_eval, config):
    qm, _ = tiny_quantized
    x, y = tiny_eval
    return [
        r.to_dict()
        for r in CampaignEngine(workers=1).run_sweep(
            qm, x, y, BERS, config=config
        )
    ]


class TestChaosMatrix:
    def test_pool_chaos_run_is_bit_identical_and_store_clean(
        self, tiny_quantized, tiny_eval, config, tmp_path, undisturbed
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "chaos-pool.json"
        engine = CampaignEngine(
            workers=2, checkpoint_path=ckpt, chaos=CHAOS, retry=RETRY
        )
        got = engine.run_sweep(qm, x, y, BERS, config=config)
        assert [r.to_dict() for r in got] == undisturbed
        # Pool torn writes are rolled back + retried in-process, so the
        # store must already be clean with every unit's record present.
        report = fsck(ckpt)
        assert report.clean and report.unrecoverable == 0
        assert report.intact_records == len(BERS) * len(config.seeds)

    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="needs POSIX subprocesses"
    )
    def test_distributed_chaos_run_is_bit_identical_and_fsck_recovers(
        self, tiny_quantized, tiny_eval, config, tmp_path, undisturbed
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        engine = CampaignEngine(
            workers=2,
            backend="distributed",
            queue_dir=tmp_path / "q",
            checkpoint_path=tmp_path / "chaos-dist.json",
            lease_timeout=2.0,
            chaos=CHAOS,
            retry=RETRY,
        )
        got = engine.run_sweep(qm, x, y, BERS, config=config)
        assert [r.to_dict() for r in got] == undisturbed

        # Real crashes tore real shard lines; fsck names the damage,
        # repair quarantines it, and the repaired set holds every record
        # the batch needed (torn keys were recomputed by reclaims).
        (batch_dir,) = sorted((tmp_path / "q").iterdir())
        before = fsck(batch_dir / "shards")
        repaired = fsck(batch_dir / "shards", repair=True)
        after = fsck(batch_dir / "shards")
        assert after.clean and after.unrecoverable == 0
        if before.damaged_lines:
            assert repaired.repaired
        # Every key with a damaged line still has an intact copy — the
        # reclaiming worker re-appended it — so nothing was dropped.
        assert before.dropped_keys == []

        # The merged batch store and the engine checkpoint verify clean
        # and carry the full sweep; the JSON report round-trips (the CI
        # artifact format).
        merged = fsck(batch_dir / "merged.json")
        assert merged.clean
        assert merged.intact_records == len(BERS) * len(config.seeds)
        doc = json.dumps(after.to_dict())
        assert json.loads(doc)["unrecoverable"] == 0
