"""Crash-safe checkpoint integrity: CRCs, atomic flushes, fsck, ENOSPC.

Property under test (ISSUE satellite): inflict randomized damage —
truncated lines, bit flips, duplicated lines — across a set of
checkpoint shards, and ``fsck --repair`` + ``merge_shards`` must recover
*exactly* the records whose lines were intact, with the report naming
every dropped key.  Plus the durability contract of the v3 store: flushes
append whole lines atomically, torn/ENOSPC flushes roll back and retain
records in memory, and the engine degrades checkpoint-less (loudly)
rather than crashing when the disk stays broken.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.errors import CheckpointError, CheckpointWriteError
from repro.faultsim import SeedPointResult
from repro.runtime import CampaignCheckpoint, ChaosSpec, fsck
from repro.runtime.checkpoint import encode_record, record_crc


def result_for(i: int) -> SeedPointResult:
    return SeedPointResult(
        ber=1e-6 * (i + 1), seed=i % 5, accuracy=0.25 + 0.001 * i, events=i
    )


def write_shard(path, keys):
    store = CampaignCheckpoint(path, flush_every=len(keys) or 1)
    for i, key in enumerate(keys):
        store.put(key, result_for(int(key.split("-")[1])))
    store.flush()


class TestRecordCrc:
    def test_crc_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CampaignCheckpoint(path)
        store.put("abc", result_for(3))
        store.flush()
        row = json.loads(path.read_text().splitlines()[1])
        assert row["crc"] == record_crc(row)

    def test_any_field_change_breaks_crc(self):
        line = encode_record("abc", result_for(3))
        row = json.loads(line)
        row["accuracy"] += 1e-9
        assert row["crc"] != record_crc(row)

    def test_bad_crc_line_dropped_at_load_and_recomputed(self, tmp_path):
        path = tmp_path / "ck.json"
        write_shard(path, ["k-0", "k-1"])
        lines = path.read_text().splitlines()
        row = json.loads(lines[1])
        row["accuracy"] += 0.5  # silent bit-flip style corruption
        lines[1] = json.dumps(row)
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="damaged"):
            store = CampaignCheckpoint(path)
        assert store.get(row["key"]) is None  # dropped, not trusted
        assert len(store) == 1

    def test_v2_store_loads_without_crcs(self, tmp_path):
        path = tmp_path / "ck.json"
        rows = []
        for i in range(3):
            row = {"key": f"k-{i}", **result_for(i).to_dict()}
            rows.append(json.dumps(row))
        path.write_text(
            json.dumps({"version": 2}) + "\n" + "\n".join(rows) + "\n"
        )
        store = CampaignCheckpoint(path, strict=True)
        assert len(store) == 3
        # First flush compacts to v3 with CRCs everywhere.
        store.put("k-9", result_for(9))
        store.flush()
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {"version": 3}
        assert all("crc" in json.loads(line) for line in lines[1:])


def damage_shards(shard_dir, rng):
    """Randomized damage; returns the keys whose lines were destroyed.

    Three damage modes per the satellite spec: truncate a line (torn
    write), flip a byte inside the JSON payload (silent corruption), and
    duplicate an intact line (double flush / merge artifact — harmless).
    """
    destroyed = set()
    for path in sorted(shard_dir.glob("*.jsonl")):
        lines = path.read_text().splitlines()
        body = list(range(1, len(lines)))  # skip the header
        rng.shuffle(body)
        victims = body[: max(1, len(body) // 3)]
        for lineno in victims:
            key = json.loads(lines[lineno])["key"]
            mode = rng.integers(0, 3)
            if mode == 0:  # torn write: keep a prefix only
                cut = int(rng.integers(1, max(2, len(lines[lineno]) - 10)))
                lines[lineno] = lines[lineno][:cut]
                destroyed.add(key)
            elif mode == 1:  # bit flip in the accuracy digits
                row = json.loads(lines[lineno])
                row["accuracy"] = row["accuracy"] + 0.125
                lines[lineno] = json.dumps(row)  # stale crc kept
                destroyed.add(key)
            else:  # duplicate an intact line: no data lost
                lines.append(lines[lineno])
        path.write_text("\n".join(lines) + "\n")
    return destroyed


class TestFsckProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_repair_and_merge_recover_exactly_intact_records(
        self, tmp_path, seed
    ):
        rng = np.random.default_rng(seed)
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        all_keys = [f"k-{i}" for i in range(24)]
        for w, lo in enumerate(range(0, 24, 8)):
            write_shard(
                shard_dir / f"worker-{w}.jsonl", all_keys[lo : lo + 8]
            )
        destroyed = damage_shards(shard_dir, rng)
        intact = set(all_keys) - destroyed

        report = fsck(shard_dir)
        assert not report.clean
        # The report names exactly the destroyed keys (duplicated lines
        # keep their record intact elsewhere, so they never appear).
        assert set(report.dropped_keys) <= destroyed
        named = {
            entry["key"]
            for f in report.files
            for entry in f.damaged
            if entry["key"] is not None
        }
        # Every destroyed key is at least *named* as damaged (torn lines
        # may hide the key beyond recovery; those count as unrecoverable).
        keyless = sum(
            1
            for f in report.files
            for entry in f.damaged
            if entry["key"] is None
        )
        assert len(destroyed - named) <= keyless

        repaired = fsck(shard_dir, repair=True)
        assert repaired.repaired
        # Post-repair: the store is verifiably clean, damaged raw lines
        # are quarantined (not destroyed), nothing unrecoverable remains.
        rescan = fsck(shard_dir)
        assert rescan.clean and rescan.unrecoverable == 0
        assert rescan.intact_records == len(intact)
        assert list(shard_dir.glob("*.quarantined"))

        merged = CampaignCheckpoint.merge_shards(
            tmp_path / "merged.json", sorted(shard_dir.glob("*.jsonl"))
        )
        assert set(dict(merged.items())) == intact
        for key in intact:
            assert merged.get(key) == result_for(int(key.split("-")[1]))

    def test_fsck_never_repairs_foreign_files(self, tmp_path):
        target = tmp_path / "notes.json"
        target.write_text('{"totally": "unrelated"}\n')
        report = fsck(tmp_path, repair=True)
        (entry,) = [f for f in report.files if f.path == str(target)]
        assert entry.version is None and not entry.repaired
        assert target.read_text() == '{"totally": "unrelated"}\n'

    def test_fsck_missing_target_is_typed(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            fsck(tmp_path / "nope")


def chaos_firing_once(kind: str, key: str, rate: float = 0.7) -> ChaosSpec:
    """A spec whose ``kind`` fires at (key, attempt 1) but not attempt 2.

    Decisions are pure functions of (seed, key, attempt), so a suitable
    seed can simply be searched for — deterministically.
    """
    field = {"torn_write": "torn_write_rate", "enospc": "enospc_rate"}[kind]
    for seed in range(1000):
        spec = ChaosSpec(seed=seed, **{field: rate})
        if spec.decide(kind, key, 1) and not spec.decide(kind, key, 2):
            return spec
    raise AssertionError("no suitable chaos seed found")


class TestDurableFlush:
    def test_interrupted_flush_never_leaves_half_a_line(self, tmp_path):
        """Chaos-torn flush: the short write is rolled back whole — the
        same process can then append cleanly, and no half-written line
        ever precedes a later append (ISSUE satellite b)."""
        path = tmp_path / "ck.json"
        write_shard(path, ["k-0"])  # existing store -> append path
        before = path.read_bytes()
        store = CampaignCheckpoint(
            path, flush_every=100, chaos=chaos_firing_once("torn_write", "k-1")
        )
        store.put("k-1", result_for(1))
        with pytest.raises(CheckpointWriteError, match="short write"):
            store.flush()
        assert path.read_bytes() == before  # rolled back, byte-exact
        assert store.pending_records == 1  # retained in memory
        # Chaos draws per flush attempt: the retry lands the record whole.
        store.flush()
        reloaded = CampaignCheckpoint(path, strict=True)
        assert reloaded.get("k-1") == result_for(1)

    def test_enospc_flush_retains_and_recovers(self, tmp_path):
        path = tmp_path / "ck.json"
        write_shard(path, ["k-0"])
        store = CampaignCheckpoint(
            path, flush_every=100, chaos=chaos_firing_once("enospc", "k-1")
        )
        store.put("k-1", result_for(1))
        with pytest.raises(CheckpointWriteError, match="ENOSPC"):
            store.flush()
        assert store.pending_records == 1
        assert CampaignCheckpoint(path, strict=True).get("k-1") is None
        store.flush()  # fresh draw on the retry attempt
        assert CampaignCheckpoint(path, strict=True).get("k-1") == result_for(1)

    def test_engine_degrades_checkpoint_less_when_disk_stays_broken(
        self, tiny_quantized, tiny_eval, tmp_path, monkeypatch
    ):
        from repro.faultsim import CampaignConfig, FaultModelConfig
        from repro.runtime import CampaignEngine, RetryPolicy, TaskSpec

        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = CampaignConfig(
            seeds=(0,),
            batch_size=12,
            max_samples=24,
            fault_config=FaultModelConfig(rng_scheme="counter"),
        )
        ref = CampaignEngine(workers=1).evaluate_tasks(
            qm, x, y, [TaskSpec(ber=1e-5, seed=0)], config=config
        )

        def always_fails(self):
            raise CheckpointWriteError("disk is permanently full (test)")

        monkeypatch.setattr(CampaignCheckpoint, "flush", always_fails)
        engine = CampaignEngine(
            workers=1,
            checkpoint_path=tmp_path / "full-disk.json",
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
        )
        with pytest.warns(RuntimeWarning, match="checkpoint-less"):
            got = engine.evaluate_tasks(
                qm, x, y, [TaskSpec(ber=1e-5, seed=0)], config=config
            )
        # The campaign still completed, bit-identically.
        assert [r.to_dict() for r in got] == [r.to_dict() for r in ref]
