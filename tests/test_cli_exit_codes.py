"""CLI exit codes follow the errors taxonomy (ISSUE satellite f).

Scripts and CI steps branch on exit status without scraping stderr, so
each taxonomy family owns a distinct code — checked here through real
``python -m repro.experiments.cli`` subprocesses, plus the in-process
mapping rules (most-specific exception class wins).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.errors import (
    EXIT_CHECKPOINT,
    EXIT_CONFIG,
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_QUARANTINE,
    EXIT_TASK_FAILURE,
    EXIT_USAGE,
    CheckpointError,
    CheckpointWriteError,
    ChaosError,
    ConfigurationError,
    ReproError,
    TaskExecutionError,
    TaskQuarantinedError,
    exit_code_for,
)
from repro.faultsim import SeedPointResult
from repro.runtime import CampaignCheckpoint


def run_cli(*argv, cwd=None):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=120,
    )


@pytest.fixture()
def clean_store(tmp_path):
    path = tmp_path / "ck.json"
    store = CampaignCheckpoint(path)
    store.put("k-0", SeedPointResult(ber=1e-5, seed=0, accuracy=0.5, events=1))
    store.flush()
    return path


class TestSubprocessExitCodes:
    def test_fsck_clean_store_exits_zero(self, clean_store):
        proc = run_cli("checkpoint", "fsck", str(clean_store))
        assert proc.returncode == EXIT_OK, proc.stderr
        assert "clean" in proc.stdout

    def test_fsck_damaged_store_exits_checkpoint_code(self, clean_store):
        data = clean_store.read_bytes()
        clean_store.write_bytes(data[:-7])  # tear the last record
        proc = run_cli("checkpoint", "fsck", str(clean_store))
        assert proc.returncode == EXIT_CHECKPOINT
        assert "DAMAGED" in proc.stdout

    def test_fsck_repair_of_damaged_store_exits_zero(self, clean_store):
        data = clean_store.read_bytes()
        clean_store.write_bytes(data[:-7])
        proc = run_cli("checkpoint", "fsck", str(clean_store), "--repair")
        assert proc.returncode == EXIT_OK, proc.stdout
        rescan = run_cli("checkpoint", "fsck", str(clean_store), "--json")
        assert rescan.returncode == EXIT_OK
        assert json.loads(rescan.stdout)["unrecoverable"] == 0

    def test_fsck_missing_path_exits_checkpoint_code(self, tmp_path):
        proc = run_cli("checkpoint", "fsck", str(tmp_path / "nope"))
        assert proc.returncode == EXIT_CHECKPOINT
        assert "error:" in proc.stderr

    def test_argparse_usage_error_exits_two(self):
        proc = run_cli("--no-such-flag")
        assert proc.returncode == EXIT_USAGE

    def test_malformed_chaos_spec_exits_config_code(self):
        # Config errors are the operator's to fix, distinct from argparse
        # usage errors (2) and runtime task failures (4).  The spec is
        # validated before any figure starts, so this returns fast.
        proc = run_cli("fig2", "--chaos", "meteor=1.0")
        assert proc.returncode == EXIT_CONFIG
        assert "error:" in proc.stderr and "meteor" in proc.stderr


class TestExitCodeMapping:
    def test_codes_are_distinct(self):
        codes = [
            EXIT_OK,
            EXIT_FAILURE,
            EXIT_USAGE,
            EXIT_CONFIG,
            EXIT_TASK_FAILURE,
            EXIT_QUARANTINE,
            EXIT_CHECKPOINT,
        ]
        assert len(set(codes)) == len(codes)

    def test_most_specific_class_wins(self):
        # Quarantine subclasses TaskExecutionError; CheckpointError
        # subclasses ConfigurationError — the mapping must check the
        # leaf classes first or everything collapses to the base codes.
        assert exit_code_for(TaskQuarantinedError("x")) == EXIT_QUARANTINE
        assert exit_code_for(TaskExecutionError("x")) == EXIT_TASK_FAILURE
        assert exit_code_for(CheckpointWriteError("x")) == EXIT_CHECKPOINT
        assert exit_code_for(CheckpointError("x")) == EXIT_CHECKPOINT
        assert exit_code_for(ConfigurationError("x")) == EXIT_CONFIG

    def test_unmapped_errors_fall_back_to_one(self):
        assert exit_code_for(ReproError("x")) == EXIT_FAILURE
        assert exit_code_for(ChaosError("x")) == EXIT_FAILURE
        assert exit_code_for(RuntimeError("x")) == EXIT_FAILURE
