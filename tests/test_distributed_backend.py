"""Distributed backend parity and shard-merge tests.

The work-queue backend's contract is the engine's own determinism
contract stretched across process boundaries: for any worker count,
``CampaignEngine(backend="distributed")`` must produce bit-identical
accuracies, event counts and checkpoint keys to the pool backend —
including under ``sample_shard="auto"`` + ``replay`` — because every
unit is a pure function of its spec.  ``merge_shards`` must make shard
layout unobservable: any partition of rows into shards, in any order,
with duplicates, loads identically to the single-file checkpoint.

CI tier-2 re-runs this module with ``REPRO_PARITY_WORKERS=2``.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.errors import CheckpointError, TaskExecutionError
from repro.faultsim import CampaignConfig, FaultModelConfig, ProtectionPlan
from repro.faultsim.campaign import SampleSliceResult, SeedPointResult
from repro.runtime import (
    CampaignCheckpoint,
    CampaignEngine,
    TaskSpec,
    WorkQueue,
    data_fingerprint,
    model_fingerprint,
)

PARITY_WORKERS = int(os.environ.get("REPRO_PARITY_WORKERS", "4"))
BERS = [0.0, 1e-5, 1e-4]


@pytest.fixture()
def config():
    return CampaignConfig(
        seeds=(0, 1),
        batch_size=12,
        max_samples=24,
        fault_config=FaultModelConfig(rng_scheme="counter"),
    )


def as_dicts(results):
    return [r.to_dict() for r in results]


def checkpoint_keys(path):
    return set(dict(CampaignCheckpoint(path).items()))


def dist_engine(tmp_path, name, **kwargs):
    """A distributed engine with its queue under a private directory."""
    kwargs.setdefault("workers", PARITY_WORKERS)
    kwargs.setdefault("lease_timeout", 20.0)
    return CampaignEngine(
        backend="distributed", queue_dir=tmp_path / name, **kwargs
    )


class TestDistributedParity:
    def test_sweep_matches_pool(self, tiny_quantized, tiny_eval, config, tmp_path):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        pool = CampaignEngine(
            workers=PARITY_WORKERS, checkpoint_path=tmp_path / "pool.json"
        )
        ref = pool.run_sweep(qm, x, y, BERS, config=config)
        dist = dist_engine(
            tmp_path, "q", checkpoint_path=tmp_path / "dist.json"
        )
        got = dist.run_sweep(qm, x, y, BERS, config=config)
        assert as_dicts(got) == as_dicts(ref)
        # Bit-identical checkpoint keys *and* rows, not just results.
        assert checkpoint_keys(tmp_path / "dist.json") == checkpoint_keys(
            tmp_path / "pool.json"
        )
        assert dist.last_stats.computed_units == len(BERS) * len(config.seeds)

    def test_shard_auto_replay_matches_pool(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        pool = CampaignEngine(
            workers=PARITY_WORKERS,
            checkpoint_path=tmp_path / "pool.json",
            sample_shard="auto",
            replay=True,
        )
        ref = pool.run_sweep(qm, x, y, BERS, config=config)
        dist = dist_engine(
            tmp_path,
            "q",
            checkpoint_path=tmp_path / "dist.json",
            sample_shard="auto",
            replay=True,
        )
        got = dist.run_sweep(qm, x, y, BERS, config=config)
        assert as_dicts(got) == as_dicts(ref)
        assert checkpoint_keys(tmp_path / "dist.json") == checkpoint_keys(
            tmp_path / "pool.json"
        )

    def test_protected_task_batch_matches_pool(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        plan = ProtectionPlan().set("c1", "st_mul", 1.0)
        tasks = [
            TaskSpec(ber=1e-4, seeds=(0, 1), tag="plain"),
            TaskSpec(ber=1e-4, seeds=(0, 1), protection=plan, tag="protected"),
            TaskSpec(ber=3e-5, seed=0, tag="point"),
        ]
        ref = CampaignEngine(workers=PARITY_WORKERS).evaluate_tasks(
            qm, x, y, tasks, config=config
        )
        got = dist_engine(tmp_path, "q").evaluate_tasks(
            qm, x, y, tasks, config=config
        )
        assert as_dicts(got) == as_dicts(ref)

    def test_resume_serves_pool_written_checkpoint(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        # The two backends share one content-addressed store: a
        # distributed engine resumes work the pool backend checkpointed
        # without recomputing a single unit (and vice versa by key
        # symmetry, which test_sweep_matches_pool establishes).
        qm, _ = tiny_quantized
        x, y = tiny_eval
        shared = tmp_path / "shared.json"
        pool = CampaignEngine(workers=1, checkpoint_path=shared)
        ref = pool.run_sweep(qm, x, y, BERS, config=config)
        dist = dist_engine(tmp_path, "q", checkpoint_path=shared, resume=True)
        got = dist.run_sweep(qm, x, y, BERS, config=config)
        assert as_dicts(got) == as_dicts(ref)
        assert dist.last_stats.computed_units == 0
        assert dist.last_stats.cached_units == len(BERS) * len(config.seeds)

    def test_queue_requires_directory(self):
        with pytest.raises(Exception, match="queue_dir"):
            CampaignEngine(backend="distributed")

    def test_unknown_backend_rejected(self):
        with pytest.raises(Exception, match="backend"):
            CampaignEngine(backend="threads")


def synthetic_rows(n_points=14, n_slices=10):
    """Deterministic mixed point/slice rows keyed like real checkpoints."""
    rows = {}
    for i in range(n_points):
        rows[f"point-{i:03d}"] = SeedPointResult(
            ber=1e-6 * (i + 1), seed=i % 3, accuracy=1.0 - i / 100.0, events=i
        )
    for i in range(n_slices):
        rows[f"slice-{i:03d}"] = SampleSliceResult(
            ber=1e-5, seed=i % 2, start=8 * i, stop=8 * i + 8,
            correct=7, total=8, events=2 * i,
        )
    return rows


class TestMergeShards:
    @pytest.mark.parametrize("partition_seed", [0, 1, 2, 3])
    def test_any_partition_any_order_loads_identically(
        self, tmp_path, partition_seed
    ):
        rows = synthetic_rows()
        single = CampaignCheckpoint(tmp_path / "single.json", flush_every=100)
        for key, result in rows.items():
            single.put(key, result)
        single.flush()

        rng = random.Random(partition_seed)
        n_shards = rng.randint(1, 5)
        shards = [
            CampaignCheckpoint(
                tmp_path / f"shard-{i}.jsonl", flush_every=100
            )
            for i in range(n_shards)
        ]
        items = list(rows.items())
        rng.shuffle(items)  # any order
        for key, result in items:
            shards[rng.randrange(n_shards)].put(key, result)
            if rng.random() < 0.3:  # duplicated rows across shards
                shards[rng.randrange(n_shards)].put(key, result)
        for shard in shards:
            shard.flush()

        merged = CampaignCheckpoint.merge_shards(
            tmp_path / "merged.json",
            [shard.path for shard in shards] + [tmp_path / "never-written.jsonl"],
        )
        assert dict(merged.items()) == dict(
            CampaignCheckpoint(tmp_path / "single.json").items()
        )
        # The merged file reloads to the same state (one row per key).
        reloaded = CampaignCheckpoint(tmp_path / "merged.json")
        assert dict(reloaded.items()) == rows

    def test_corrupt_line_salvage_applies_per_shard(self, tmp_path):
        rows = synthetic_rows(n_points=4, n_slices=2)
        shard = CampaignCheckpoint(tmp_path / "shard-0.jsonl", flush_every=100)
        for key, result in rows.items():
            shard.put(key, result)
        shard.flush()
        with open(shard.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "torn-row", "ber": 1e-\n')

        with pytest.warns(RuntimeWarning, match="salvaged"):
            merged = CampaignCheckpoint.merge_shards(
                tmp_path / "merged.json", [shard.path]
            )
        assert dict(merged.items()) == rows
        with pytest.raises(CheckpointError, match="damaged"):
            CampaignCheckpoint.merge_shards(
                tmp_path / "merged-strict.json", [shard.path], strict=True
            )

    def test_merge_into_existing_target_accumulates(self, tmp_path):
        rows = synthetic_rows(n_points=6, n_slices=0)
        items = sorted(rows.items())
        first, second = items[:3], items[3:]
        for batch in (first, second):
            shard = CampaignCheckpoint(tmp_path / "shard.jsonl", flush_every=100)
            for key, result in batch:
                shard.put(key, result)
            shard.flush()
            CampaignCheckpoint.merge_shards(
                tmp_path / "merged.json", [shard.path]
            )
        assert dict(CampaignCheckpoint(tmp_path / "merged.json").items()) == rows


class TestFailurePropagation:
    """Worker exceptions carry the failing task's key and tag (both backends)."""

    def expected_key(self, qm, x, y, task, config):
        trim_x, trim_y = x[: config.max_samples], y[: config.max_samples]
        return task.key(
            model_fingerprint(qm), data_fingerprint(trim_x, trim_y), config
        )

    @pytest.mark.parametrize("workers", [1, PARITY_WORKERS])
    def test_pool_backend_reports_key_and_tag(
        self, tiny_quantized, tiny_eval, config, monkeypatch, workers
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval

        def explode(*args, **kwargs):
            raise ZeroDivisionError("injected failure")

        # Patching the engine module's reference survives fork, so the
        # pool path exercises the same failure route as workers=1.
        monkeypatch.setattr(
            "repro.runtime.engine.evaluate_seed_point", explode
        )
        task = TaskSpec(ber=1e-5, seed=0, tag="regression/fails")
        engine = CampaignEngine(workers=workers)
        with pytest.raises(TaskExecutionError) as err:
            engine.evaluate_tasks(qm, x, y, [task], config=config)
        assert err.value.tag == "regression/fails"
        assert err.value.task_key == self.expected_key(qm, x, y, task, config)
        message = str(err.value)
        assert "regression/fails" in message
        assert err.value.task_key in message
        assert "ZeroDivisionError: injected failure" in message

    def test_distributed_backend_quarantines_poison_task(
        self, tiny_quantized, tiny_eval, config, tmp_path, monkeypatch
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        monkeypatch.setenv("REPRO_WORKER_FAIL_TAGS", "poison")
        task = TaskSpec(ber=1e-5, seed=0, tag="poison")
        engine = dist_engine(
            tmp_path, "q", workers=2, max_attempts=2, lease_timeout=10.0
        )
        with pytest.raises(TaskExecutionError) as err:
            engine.evaluate_tasks(qm, x, y, [task], config=config)
        assert err.value.tag == "poison"
        assert err.value.task_key == self.expected_key(qm, x, y, task, config)
        assert "quarantined" in str(err.value)
        # The queue recorded the quarantine with the key in the error.
        (batch_dir,) = sorted((tmp_path / "q").iterdir())
        (key, attempts, error), = WorkQueue(batch_dir).quarantined()
        assert key == err.value.task_key
        assert attempts == 2
        assert key in error
