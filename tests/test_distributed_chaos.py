"""Fault-injection chaos harness for the distributed backend.

Real worker *processes* are spawned against a temp queue; one is
SIGKILLed mid-lease (while stalled inside a task, heartbeats and all).
The protocol's promise under that failure: the stale lease expires, a
surviving worker reclaims and re-runs the unit, and — because every unit
is a pure function of its spec — the final sweep is bit-identical
(checkpoint keys, accuracies, event counts) to the pool backend, with
nothing quarantined and nothing lost.

The victim is stalled deterministically via the worker's
``REPRO_WORKER_TASK_DELAY`` chaos hook: it claims one task, then sleeps
far past the test's deadline while its heartbeat thread keeps the lease
alive — so only SIGKILL (which stops the heartbeats) can release the
task, which is exactly the failure mode under test.

CI tier-2 re-runs this module with ``REPRO_PARITY_WORKERS=2``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.faultsim import CampaignConfig, FaultModelConfig
from repro.runtime import (
    CampaignEngine,
    TaskSpec,
    WorkQueue,
    batch_task_keys,
    data_fingerprint,
    model_fingerprint,
)
from repro.runtime.distributed import prepare_batch, shard_paths
from repro.runtime.checkpoint import CampaignCheckpoint

BERS = [0.0, 1e-5, 1e-4]
LEASE_TIMEOUT = 2.0
DEADLINE = 120.0


@pytest.fixture()
def config():
    return CampaignConfig(
        seeds=(0, 1),
        batch_size=12,
        max_samples=24,
        fault_config=FaultModelConfig(rng_scheme="counter"),
    )


def spawn_worker(root: Path, name: str, extra_env: dict | None = None):
    """Start one real CLI worker subprocess against ``root``."""
    env = dict(os.environ)
    env.pop("REPRO_WORKER_TASK_DELAY", None)
    src = str(Path(__file__).resolve().parents[1] / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    env.update(extra_env or {})
    log = open(root / f"{name}.log", "wb")
    try:
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments.cli",
                "worker",
                "--queue",
                str(root),
                "--worker-id",
                name,
                "--poll",
                "0.05",
            ],
            stdout=log,
            stderr=subprocess.STDOUT,
            env=env,
        )
    finally:
        log.close()


def wait_until(predicate, deadline=DEADLINE, message="condition"):
    """Poll ``predicate`` until true or fail the test after ``deadline``."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out after {deadline}s waiting for {message}")


class TestSigkillChaos:
    def test_sigkill_mid_lease_reclaims_and_stays_bit_identical(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval

        # Reference: the pool backend, checkpointed so we can compare
        # keys and rows (not just reduced results) against the shards.
        pool = CampaignEngine(workers=1, checkpoint_path=tmp_path / "pool.json")
        ref = pool.run_sweep(qm, x, y, BERS, config=config)

        tasks = [
            TaskSpec(ber=ber, seeds=tuple(config.seeds)) for ber in BERS
        ]
        units = [unit for task in tasks for unit in task.subtasks()]
        trim_x, trim_y = x[: config.max_samples], y[: config.max_samples]
        keys = batch_task_keys(
            model_fingerprint(qm), data_fingerprint(trim_x, trim_y), config, units
        )

        root = tmp_path / "batch"
        queue = prepare_batch(
            root, qm, x, y, config, units, keys, list(range(len(units))),
            lease_timeout=LEASE_TIMEOUT, max_attempts=5,
        )

        victim = healthy = None
        try:
            # The victim claims one task and stalls inside it, heartbeat
            # thread running, until SIGKILLed.
            victim = spawn_worker(
                root, "victim", {"REPRO_WORKER_TASK_DELAY": "600"}
            )
            wait_until(
                lambda: queue.stats().leased >= 1,
                message="the victim to claim a lease",
            )
            victim_key = next(
                key for key in keys if queue.task(key)["state"] == "leased"
            )

            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)

            # A healthy worker drains the queue; the victim's lease
            # expires (no more heartbeats) and is reclaimed on attempt 2.
            healthy = spawn_worker(root, "healthy")
            wait_until(
                lambda: not queue.has_work(),
                message="the queue to settle after the kill",
            )
            healthy.wait(timeout=30)  # settles -> worker exits on its own
        finally:
            for proc in (victim, healthy):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait()

        # Stale-lease reclaim re-ran exactly the killed unit.
        stats = queue.stats()
        assert stats.done == len(units)
        assert stats.quarantined == 0
        victim_row = queue.task(victim_key)
        assert victim_row["state"] == "done"
        assert victim_row["attempts"] == 2
        assert victim_row["owner"] == "healthy"
        others = [queue.task(key)["attempts"] for key in keys if key != victim_key]
        assert others == [1] * (len(units) - 1)
        # The victim died before writing anything: every row came from
        # the survivor's shard.
        merged = CampaignCheckpoint.merge_shards(
            root / "chaos-merged.json", shard_paths(root)
        )
        assert dict(merged.items()) == {
            key: result
            for key, result in CampaignCheckpoint(tmp_path / "pool.json").items()
            if key in set(keys)
        }

        # And the *sweep* is bit-identical: an engine resuming purely
        # from the chaos-run shards reproduces the pool results without
        # recomputing anything.
        resumed = CampaignEngine(
            workers=1, checkpoint_path=root / "chaos-merged.json", resume=True
        )
        got = resumed.run_sweep(qm, x, y, BERS, config=config)
        assert [r.to_dict() for r in got] == [r.to_dict() for r in ref]
        assert resumed.last_stats.computed_units == 0


class TestShortLeaseHeartbeat:
    def test_heartbeats_keep_live_workers_from_being_reclaimed(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        # The inverse chaos case: a lease *much shorter* than a unit's
        # compute time must never be reclaimed from a live worker — the
        # heartbeat thread (beating at a third of the timeout) keeps it
        # current, so the batch completes without spurious double
        # execution or quarantine, bit-identically.
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ref = CampaignEngine(workers=1).run_sweep(
            qm, x, y, BERS[:2], config=config
        )
        engine = CampaignEngine(
            workers=2,
            backend="distributed",
            queue_dir=tmp_path / "q",
            lease_timeout=0.5,
        )
        got = engine.run_sweep(qm, x, y, BERS[:2], config=config)
        assert [r.to_dict() for r in got] == [r.to_dict() for r in ref]
        (batch_dir,) = sorted((tmp_path / "q").iterdir())
        stats = WorkQueue(batch_dir).stats()
        assert stats.settled
        assert stats.quarantined == 0
        assert stats.done == len(BERS[:2]) * len(config.seeds)
